"""Resumable campaigns: run a sweep twice against a persistent result store.

The first run executes every cell and writes each record back to the store
under its content fingerprint; the second run finds every fingerprint
already stored and executes **zero cells**, yet returns records identical
(JSON-serialised) to the cold run.  Changing one grid axis value then
re-executes only the affected cells.

Run from the repository root::

    PYTHONPATH=src python examples/resumable_campaign.py
"""

from __future__ import annotations

import json
import tempfile
import time

from repro import Campaign, CampaignSpec, RunSpec, ScenarioSpec, SimulationConfig
from repro.store import ResultStore


def build_campaign(strategies: list[str]) -> CampaignSpec:
    return CampaignSpec(
        base=RunSpec(
            strategy=strategies[0],
            scenario=ScenarioSpec("uniform", {"num_targets": 14, "num_mules": 3}),
            sim=SimulationConfig(horizon=20_000.0, track_energy=False),
            seed=2011,
        ),
        grid={"strategy": strategies},
        replications=4,
    )


def timed_run(spec: CampaignSpec, store: ResultStore):
    t0 = time.perf_counter()
    result = Campaign(spec).run(store=store)
    elapsed = time.perf_counter() - t0
    info = result.metadata["store"]
    print(f"  {info['hits']} hits, {info['misses']} misses in {elapsed * 1000:.1f} ms")
    return result


def main() -> None:
    store = ResultStore(tempfile.mkdtemp(prefix="repro-example-store-"))
    campaign = build_campaign(["chb", "b-tctp"])

    print("cold run (every cell simulates):")
    cold = timed_run(campaign, store)

    print("warm resume (identical campaign, zero cells execute):")
    warm = timed_run(campaign, store)
    identical = json.dumps(cold.records, sort_keys=True) == json.dumps(
        warm.records, sort_keys=True
    )
    print(f"  records byte-identical to the cold run: {identical}")

    print("one axis value changed (only the new strategy's cells simulate):")
    timed_run(build_campaign(["chb", "sweep"]), store)

    print("query the store across everything run so far:")
    for strategy in ("chb", "b-tctp", "sweep"):
        records = store.records(strategy=strategy)
        mean_sd = sum(r["average_sd"] for r in records) / len(records)
        print(f"  {strategy:7s} {len(records)} stored records, mean SD {mean_sd:8.2f}")

    stats = store.stats()
    print(f"store: {stats['entries']} entries, {stats['payload_bytes']} payload bytes "
          f"({stats['root']})")


if __name__ == "__main__":
    main()
