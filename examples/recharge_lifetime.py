#!/usr/bin/env python
"""Energy-aware patrolling: RW-TCTP keeps the fleet alive, W-TCTP runs dry.

Section IV of the paper: data mules have a finite battery (moving costs
8.267 J/m, collecting costs 0.075 J) and must visit a recharge station before
exhaustion.  RW-TCTP computes the number of rounds ``r`` a full battery
supports (Equation 4), patrols the Weighted Patrolling Path for ``r - 1``
rounds, and takes the Weighted Recharge Path — which detours through the
station — on the ``r``-th round.

This example runs the same battery-limited scenario with and without the
recharge schedule and reports mule survival, recharges, delivered data and the
visiting intervals over a long horizon.

Run with::

    python examples/recharge_lifetime.py
"""

from __future__ import annotations

from repro import PatrolSimulator, SimulationConfig, plan_rwtctp, plan_wtctp, uniform_scenario
from repro.energy.model import EnergyModel, patrolling_rounds
from repro.sim.metrics import average_dcdt, max_visiting_interval


def run(scenario, plan, horizon=120_000.0):
    return PatrolSimulator(scenario.fresh_copy(), plan, SimulationConfig(horizon=horizon)).run()


def main() -> None:
    battery = 150_000.0  # joules — a few patrol rounds' worth
    scenario = uniform_scenario(
        num_targets=15, num_mules=3, seed=5,
        mule_battery=battery, with_recharge_station=True,
    )
    print(f"{scenario.num_targets} targets, {scenario.num_mules} mules, "
          f"battery {battery:.0f} J, recharge station at "
          f"({scenario.recharge_station.position.x:.0f}, {scenario.recharge_station.position.y:.0f})")

    # What does Equation (4) predict?
    rw_plan = plan_rwtctp(scenario)
    model: EnergyModel = scenario.params.energy_model
    r = patrolling_rounds(battery, rw_plan.metadata["wpp_length"], scenario.num_targets, model)
    print(f"WPP length {rw_plan.metadata['wpp_length']:.0f} m, "
          f"WRP length {rw_plan.metadata['wrp_length']:.0f} m")
    print(f"Equation (4): a full battery supports r = {r} patrol rounds "
          f"-> recharge every {rw_plan.metadata['patrol_rounds']} rounds")
    print()

    w_plan = plan_wtctp(scenario)
    results = {
        "W-TCTP (no recharge)": run(scenario, w_plan),
        "RW-TCTP (with recharge)": run(scenario, rw_plan),
    }

    for name, result in results.items():
        alive = len(result.surviving_mules())
        recharges = sum(t.recharges for t in result.traces.values())
        death_times = [t.death_time for t in result.traces.values() if t.death_time is not None]
        first_death = min(death_times) if death_times else None
        print(f"--- {name} ---")
        print(f"  surviving mules      : {alive}/{scenario.num_mules}")
        if first_death is not None:
            print(f"  first battery death  : t = {first_death:.0f} s")
        print(f"  recharges performed  : {recharges}")
        print(f"  data delivered       : {result.total_delivered_data():.0f} units")
        print(f"  mean DCDT while alive: {average_dcdt(result):.1f} s")
        print(f"  max visiting interval: {max_visiting_interval(result):.0f} s")
        print()

    print("RW-TCTP trades a slightly longer lap (the recharge detour) for an immortal fleet;")
    print("without it the mules die mid-patrol and coverage stops entirely.")


if __name__ == "__main__":
    main()
