#!/usr/bin/env python
"""Quickstart: plan a B-TCTP patrol, simulate it, and read the paper's metrics.

This is the smallest end-to-end use of the library:

1. generate a random scenario (targets + sink + data mules) on the paper's
   800 m x 800 m field;
2. build the B-TCTP patrol plan (shared Hamiltonian circuit + equally spaced
   start points);
3. run the discrete-event simulator for a few hours of simulated time;
4. print the visiting-interval metrics and compare them with the closed form
   ``|P| / (n * v)`` the algorithm is designed to achieve.

Run with::

    python examples/quickstart.py
"""

from __future__ import annotations

from repro import PatrolSimulator, SimulationConfig, plan_btctp, uniform_scenario
from repro.sim.metrics import average_dcdt, average_sd, interval_statistics, max_visiting_interval


def main() -> None:
    # 1. A random scenario: 20 targets, 4 data mules, everything seeded.
    scenario = uniform_scenario(num_targets=20, num_mules=4, seed=7)
    print(f"scenario: {scenario.name} — {scenario.num_targets} targets, "
          f"{scenario.num_mules} mules, field {scenario.field.width:.0f} m")

    # 2. Plan with B-TCTP (Section II of the paper).
    plan = plan_btctp(scenario)
    print(f"patrolling path length : {plan.metadata['path_length']:.1f} m")
    print(f"theoretical interval   : {plan.metadata['expected_visiting_interval']:.1f} s "
          "(|P| / (n * v))")

    # 3. Simulate ~14 hours of patrolling.
    result = PatrolSimulator(scenario, plan, SimulationConfig(horizon=50_000.0)).run()

    # 4. Metrics.
    stats = interval_statistics(result)
    print()
    print(f"target visits recorded : {stats['total_intervals'] + stats['targets_visited']}")
    print(f"mean visiting interval : {average_dcdt(result):.1f} s")
    print(f"max visiting interval  : {max_visiting_interval(result):.1f} s")
    print(f"SD of intervals        : {average_sd(result):.3f} s  (B-TCTP keeps this at zero)")
    print(f"data delivered to sink : {result.total_delivered_data():.0f} units")
    print(f"distance travelled     : {result.total_distance():.0f} m by {scenario.num_mules} mules")


if __name__ == "__main__":
    main()
