#!/usr/bin/env python
"""Reproduce every figure of the paper's evaluation section in one run.

Runs the Figure 7, 8, 9 and 10 experiments (plus the energy extension) with a
configurable replication count and prints the same tables the benchmark
harness and ``python -m repro figN`` produce.  With ``--full`` the paper's
20-replication protocol is used; the default is a quick pass that finishes in
well under a minute.

Every experiment runs through the :mod:`repro.runner` campaign executor, so
``--workers N`` fans the replication cells of each figure out over ``N``
worker processes (the results are identical to a serial run).

Run with::

    python examples/reproduce_paper.py                # quick pass
    python examples/reproduce_paper.py --full         # paper protocol (20 replications)
    python examples/reproduce_paper.py --workers 4    # same numbers, 4 processes
"""

from __future__ import annotations

import argparse
import dataclasses
import time

from repro.experiments import (
    ExperimentSettings,
    ablation_init,
    ablation_tsp,
    ext_energy,
    fig10_policy_sd,
    fig7_dcdt,
    fig8_sd,
    fig9_policy_dcdt,
)


def main() -> None:
    parser = argparse.ArgumentParser(description=__doc__)
    parser.add_argument("--full", action="store_true",
                        help="use the paper's protocol (20 replications, long horizon)")
    parser.add_argument("--skip-ablations", action="store_true",
                        help="only run the four paper figures")
    parser.add_argument("--workers", type=int, default=None,
                        help="fan replication cells out over this many processes")
    args = parser.parse_args()

    settings = ExperimentSettings() if args.full else ExperimentSettings.quick(replications=5)
    if args.workers is not None:
        settings = dataclasses.replace(settings, max_workers=args.workers)
    print(f"running with {settings.replications} replications, "
          f"horizon {settings.horizon:.0f} s, {settings.num_targets} targets, "
          f"{settings.num_mules} mules, "
          f"{settings.max_workers or 1} worker process(es)\n")

    stages = [
        ("Figure 7 (DCDT per visit)", fig7_dcdt.main),
        ("Figure 8 (SD: CHB vs TCTP)", fig8_sd.main),
        ("Figure 9 (policy DCDT)", fig9_policy_dcdt.main),
        ("Figure 10 (policy SD)", fig10_policy_sd.main),
    ]
    if not args.skip_ablations:
        stages += [
            ("EXT-E1 (energy / recharge)", ext_energy.main),
            ("EXT-A1 (location initialisation ablation)", ablation_init.main),
            ("EXT-A2 (TSP heuristic ablation)", ablation_tsp.main),
        ]

    for title, runner in stages:
        print("=" * 72)
        print(title)
        print("=" * 72)
        start = time.perf_counter()
        runner(settings)
        print(f"[{title}] completed in {time.perf_counter() - start:.1f} s\n")


if __name__ == "__main__":
    main()
