#!/usr/bin/env python
"""Declarative campaigns: author a workload as data, run it in parallel.

The :mod:`repro.runner` API separates *describing* a workload from *running*
it.  This example

1. builds a :class:`~repro.runner.RunSpec` (scenario spec + strategy +
   simulator config + seed) and a :class:`~repro.runner.CampaignSpec`
   crossing four strategies with a mule-count sweep and seeded replications;
2. executes the campaign twice — serially and over four worker processes —
   and verifies the tidy records are identical;
3. reduces the records to a (strategy x mule-count) table of mean DCDT / SD;
4. round-trips the campaign through JSON, the format used by
   ``python -m repro run spec.json``.

Run with::

    python examples/campaign_sweep.py
"""

from __future__ import annotations

import json
import time

from repro import Campaign, CampaignSpec, RunSpec, ScenarioSpec, SimulationConfig
from repro.experiments.reporting import format_table
from repro.runner.spec import spec_from_dict

STRATEGIES = ["random", "sweep", "chb", "b-tctp"]
MULE_COUNTS = [2, 4]


def main() -> None:
    # 1. The whole workload as one declarative object.
    spec = CampaignSpec(
        base=RunSpec(
            strategy="b-tctp",
            scenario=ScenarioSpec("uniform", {"num_targets": 16, "num_mules": 2,
                                              "mule_placement": "random"}),
            sim=SimulationConfig(horizon=20_000.0, track_energy=False),
            seed=7,
        ),
        grid={"strategy": STRATEGIES, "num_mules": MULE_COUNTS},
        replications=3,
    )
    cells = spec.cells()
    print(f"campaign: {len(STRATEGIES)} strategies x {len(MULE_COUNTS)} fleet sizes "
          f"x {spec.replications} replications = {len(cells)} independent runs\n")

    # 2. Serial and parallel execution produce byte-identical records.
    t0 = time.perf_counter()
    serial = Campaign(spec).run()
    t_serial = time.perf_counter() - t0

    t0 = time.perf_counter()
    parallel = Campaign(spec, max_workers=4).run()
    t_parallel = time.perf_counter() - t0

    identical = json.dumps(serial.records) == json.dumps(parallel.records)
    print(f"serial   : {t_serial:6.2f} s")
    print(f"parallel : {t_parallel:6.2f} s  (4 workers, {t_serial / t_parallel:.1f}x)")
    print(f"records identical: {identical}\n")
    assert identical

    # 3. Tidy records reduce with one group-by.
    dcdt = serial.group_mean("average_dcdt", by=("strategy", "num_mules"))
    sd = serial.group_mean("average_sd", by=("strategy", "num_mules"))
    rows = [
        [strategy, n, dcdt[(strategy, n)], sd[(strategy, n)]]
        for strategy in STRATEGIES
        for n in MULE_COUNTS
    ]
    print(format_table(
        ["strategy", "mules", "mean DCDT (s)", "mean SD (s)"], rows,
        title="Campaign reduction: freshness and regularity per strategy and fleet size",
    ))

    # 4. The spec is data: it round-trips through JSON unchanged.
    restored = spec_from_dict(json.loads(spec.to_json()))
    print(f"\nJSON round-trip preserves the campaign: {restored == spec}")
    print("save it and run it from the shell:  python -m repro run spec.json --workers 4")


if __name__ == "__main__":
    main()
