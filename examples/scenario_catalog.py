#!/usr/bin/env python
"""Tour of the scenario family catalog: one campaign, every registered family.

The :mod:`repro.scenarios` registry makes scenario construction declarative:
every family is a named entry with declared parameters, and
``"scenario.family"`` is an ordinary campaign grid axis.  This example

1. lists the registered families with their declared parameters,
2. runs B-TCTP across *all* of them in a single campaign (shared scenario
   parameters are filtered per family, exactly like strategy parameters),
3. prints an ASCII sketch of three characteristic layouts, and
4. registers a brand-new family at runtime and immediately sweeps it —
   new workloads are data, not code changes.

Run with::

    python examples/scenario_catalog.py
"""

from __future__ import annotations

import numpy as np

from repro import (
    Campaign,
    CampaignSpec,
    RunSpec,
    ScenarioSpec,
    SimulationConfig,
    available_scenario_families,
    build_scenario,
    register_scenario,
    scenario_family_info,
)
from repro.experiments.reporting import format_table
from repro.geometry.point import Point
from repro.network.field import Field
from repro.workloads.generator import assemble_scenario

SEED = 7


def ascii_sketch(scenario, rows: int = 12, cols: int = 44) -> str:
    """Crude density sketch of a scenario's target layout."""
    grid = [[" "] * cols for _ in range(rows)]
    for t in scenario.targets:
        c = min(cols - 1, int(t.position.x / scenario.field.width * cols))
        r = min(rows - 1, int(t.position.y / scenario.field.height * rows))
        grid[rows - 1 - r][c] = "o" if grid[rows - 1 - r][c] == " " else "O"
    return "\n".join("".join(row) for row in grid)


def main() -> None:
    # 1. The catalog, straight from the registry.
    families = available_scenario_families()
    rows = []
    for name in families:
        info = scenario_family_info(name)
        rows.append([name, len(info.params), info.description[:60]])
    print(format_table(["family", "#params", "description"], rows,
                       title=f"{len(families)} registered scenario families"))

    # 2. One campaign across the whole catalog.  Shared scenario parameters
    #    (num_targets, num_mules) are kept only by families that declare them.
    spec = CampaignSpec(
        base=RunSpec(
            strategy="b-tctp",
            scenario=ScenarioSpec("uniform", {"num_targets": 12, "num_mules": 3}),
            sim=SimulationConfig(horizon=15_000.0, track_energy=False),
            seed=SEED,
        ),
        grid={"scenario.family": families},
        replications=2,
    )
    result = Campaign(spec, max_workers=2).run()
    dcdt = result.group_mean("average_dcdt", by="scenario.family")
    sd = result.group_mean("average_sd", by="scenario.family")
    print(format_table(
        ["family", "mean DCDT (s)", "mean SD (s)"],
        [[f, dcdt[f], sd[f]] for f in families],
        title="B-TCTP across the whole scenario catalog (2 replications each)",
        precision=1,
    ))

    # 3. What do the new spatial families look like?
    for family in ("corridor", "ring", "mixed-density"):
        sc = build_scenario(family, {"num_targets": 40}, seed=SEED)
        print(f"\n--- {family} ---")
        print(ascii_sketch(sc))

    # 4. New workloads are one decorator away — and instantly sweepable.
    @register_scenario("diagonal", description="targets strung along the field diagonal")
    def diagonal_family(*, seed: int = 0, num_targets: int = 20, spread: float = 40.0,
                        num_mules: int = 4) -> object:
        rng = np.random.default_rng(seed)
        fld = Field(800.0, 800.0)
        ts = rng.uniform(0.05, 0.95, size=num_targets)
        offsets = rng.normal(0.0, spread, size=num_targets)
        pts = [fld.clamp(Point(800.0 * t + o, 800.0 * t - o))
               for t, o in zip(ts, offsets)]
        return assemble_scenario(rng, fld, pts, num_mules=num_mules, name="diagonal")

    record = Campaign(RunSpec(
        strategy="b-tctp",
        scenario=ScenarioSpec("diagonal", {"num_targets": 10, "spread": 25.0}),
        sim=SimulationConfig(horizon=15_000.0, track_energy=False),
        seed=SEED,
    )).run().records[0]
    print(f"\ncustom 'diagonal' family registered and run: "
          f"DCDT {record['average_dcdt']:.1f} s over {record['num_targets']} targets")
    print("the same family is now available to JSON specs and "
          "`--scenario diagonal:spread=25`.")


if __name__ == "__main__":
    main()
