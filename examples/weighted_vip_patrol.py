#!/usr/bin/env python
"""Weighted patrolling: VIP targets, the two break-edge policies, and their trade-off.

The scenario of Section III: a few targets are Very Important Points (VIPs)
that must be visited ``w`` times per traversal.  W-TCTP builds a Weighted
Patrolling Path by breaking edges of the Hamiltonian circuit and reconnecting
them at the VIP; the *Shortest-Length* policy keeps the path short while the
*Balancing-Length* policy makes the VIP's cycles (and hence its visiting
intervals) even.

This example builds both WPPs on the same scenario, prints the per-VIP cycle
lengths, simulates both, and shows the paper's Figure 9/10 trade-off:
Shortest-Length gives fresher data on average (smaller DCDT), Balancing-Length
gives steadier VIP revisits (smaller SD).

Run with::

    python examples/weighted_vip_patrol.py
"""

from __future__ import annotations

from repro import PatrolSimulator, SimulationConfig, plan_wtctp, uniform_scenario
from repro.sim.metrics import average_dcdt, average_sd, per_target_intervals


def describe_policy(scenario, policy: str) -> dict:
    plan = plan_wtctp(scenario, policy=policy)
    result = PatrolSimulator(scenario.fresh_copy(), plan,
                             SimulationConfig(horizon=100_000.0)).run()
    vip_ids = [t.id for t in scenario.targets if t.is_vip]
    return {
        "policy": policy,
        "plan": plan,
        "result": result,
        "wpp_length": plan.metadata["wpp_length"],
        "dcdt": average_dcdt(result),
        "sd_all": average_sd(result),
        "sd_vip": average_sd(result, targets=vip_ids),
        "vip_cycles": plan.metadata["vip_cycles"],
    }


def main() -> None:
    # One mule, three VIPs of weight 3: the per-walk effect of the policies is
    # cleanest with a single mule (see EXPERIMENTS.md for the multi-mule case).
    scenario = uniform_scenario(num_targets=18, num_mules=1, seed=11,
                                num_vips=3, vip_weight=3)
    vips = [t.id for t in scenario.targets if t.is_vip]
    print(f"scenario with {scenario.num_targets} targets; VIPs (weight 3): {', '.join(vips)}")
    print()

    reports = [describe_policy(scenario, p) for p in ("shortest", "balanced")]

    for rep in reports:
        print(f"--- {rep['policy']} policy ---")
        print(f"  WPP length          : {rep['wpp_length']:.1f} m")
        for vip, cycles in rep["vip_cycles"].items():
            cycle_str = ", ".join(f"{c:.0f}" for c in cycles)
            print(f"  cycles at {vip:<4}      : [{cycle_str}] m")
        print(f"  average DCDT        : {rep['dcdt']:.1f} s")
        print(f"  SD (all targets)    : {rep['sd_all']:.1f} s")
        print(f"  SD (VIPs only)      : {rep['sd_vip']:.1f} s")
        print()

    shortest, balanced = reports
    print("Paper's Figure 9/10 trade-off on this instance:")
    print(f"  Shortest-Length DCDT {shortest['dcdt']:.0f} s <= Balancing-Length {balanced['dcdt']:.0f} s")
    print(f"  Balancing-Length VIP SD {balanced['sd_vip']:.0f} s <= Shortest-Length {shortest['sd_vip']:.0f} s")

    # Show how often the first VIP actually gets visited under the balanced policy.
    vip = vips[0]
    intervals = per_target_intervals(balanced["result"])[vip]
    preview = ", ".join(f"{iv:.0f}" for iv in intervals[:8])
    print(f"\nfirst visiting intervals of {vip} under Balancing-Length: {preview} ... (s)")


if __name__ == "__main__":
    main()
