#!/usr/bin/env python
"""The paper's motivating scenario: disconnected target clusters, four strategies compared.

The introduction motivates data mules with targets "distributed over several
disconnected areas": no static multi-hop network can cover them, so mobility
must.  This example

1. generates a clustered scenario and *verifies* that the target set is
   disconnected at the paper's 20 m communication range,
2. runs all four Section V strategies (Random, Sweep, CHB, B-TCTP) on it as
   one declarative :class:`~repro.runner.Campaign` over the same scenario
   config + seed, and
3. prints the head-to-head comparison of DCDT, SD and maximal visiting
   interval — the Figure 7/8 story on a single instance.

Run with::

    python examples/disconnected_clusters.py
"""

from __future__ import annotations

from repro import Campaign, CampaignSpec, RunSpec, ScenarioSpec, SimulationConfig
from repro.experiments.reporting import format_table
from repro.network.field import connected_components_by_range

STRATEGIES = ["random", "sweep", "chb", "b-tctp"]
SEED = 13


def main() -> None:
    scenario_spec = ScenarioSpec("clustered", {
        "num_targets": 24,
        "num_mules": 4,
        "num_clusters": 4,
        "name": "clustered-h24-n4-c4",
    })

    # 1. How disconnected is the field, really?  (The campaign cells below
    #    regenerate this exact scenario from the same spec + seed.)
    scenario = scenario_spec.build(SEED)
    components = connected_components_by_range(
        [t.position for t in scenario.targets], scenario.params.communication_range
    )
    sizes = sorted((len(c) for c in components), reverse=True)
    print(f"{scenario.num_targets} targets fall into {len(components)} radio-disconnected "
          f"groups (sizes {sizes}) at a {scenario.params.communication_range:.0f} m range —")
    print("no static multi-hop network can cover them; the data mules provide connectivity.\n")

    # 2. The four strategies of Section V as one campaign on that instance.
    spec = CampaignSpec(
        base=RunSpec(strategy=STRATEGIES[0], scenario=scenario_spec,
                     sim=SimulationConfig(horizon=80_000.0), seed=SEED),
        grid={"strategy": STRATEGIES},
    )
    result = Campaign(spec).run()

    # 3. Report.
    rows = [
        [
            record["planner"],
            record["average_dcdt"],
            record["average_sd"],
            record["max_visiting_interval"],
            record["total_distance"] / record["num_mules"],
        ]
        for record in result
    ]
    print(format_table(
        ["strategy", "mean DCDT (s)", "SD (s)", "max interval (s)", "distance/mule (m)"],
        rows,
        title="Disconnected-cluster scenario: Section V strategies head to head",
        precision=1,
    ))
    print("B-TCTP keeps the SD at zero and the maximal visiting interval lowest — the")
    print("equal-spacing start points are doing exactly what Section 2.2-B promises.")


if __name__ == "__main__":
    main()
