#!/usr/bin/env python
"""Run ``python -m doctest`` over every docstring example in ``repro`` (CI docs job).

Imports every module of the installed ``repro`` package and executes its
doctests, so the examples in module/function docstrings (the quickstart in
``repro/__init__``, the cache examples in ``repro.geometry.cache``, ...)
stay truthful as the code evolves.  Examples marked ``# doctest: +SKIP``
are ignored as usual.

Usage::

    PYTHONPATH=src python scripts/run_doctests.py [-v]
"""

from __future__ import annotations

import doctest
import importlib
import pkgutil
import sys


def iter_modules(package_name: str = "repro"):
    package = importlib.import_module(package_name)
    yield package
    for info in pkgutil.walk_packages(package.__path__, prefix=package_name + "."):
        yield importlib.import_module(info.name)


def main() -> int:
    verbose = "-v" in sys.argv[1:]
    flags = doctest.ELLIPSIS | doctest.NORMALIZE_WHITESPACE
    attempted = failed = 0
    failures: list[str] = []
    for module in iter_modules():
        result = doctest.testmod(module, verbose=verbose, optionflags=flags)
        attempted += result.attempted
        failed += result.failed
        if result.failed:
            failures.append(module.__name__)
    print(f"doctests: {attempted} examples, {failed} failures")
    if failures:
        print("failing modules: " + ", ".join(failures), file=sys.stderr)
        return 1
    if attempted == 0:
        print("no doctest examples found — refusing to pass vacuously", file=sys.stderr)
        return 1
    return 0


if __name__ == "__main__":
    raise SystemExit(main())
