#!/usr/bin/env python
"""End-to-end smoke test for the serve daemon (CI `serve-smoke` job).

Starts ``repro-patrol serve`` as a real subprocess on a free loopback port
with a temporary result store, then proves the service contract of
docs/SERVICE.md over the wire:

1. a POSTed CampaignSpec streams NDJSON whose records are **byte-identical**
   (sorted JSON) to ``repro-patrol run`` executing the same spec file;
2. re-POSTing the same campaign re-executes **zero** cells — every record is
   served from the store, byte-identical to the first stream;
3. ``/stats`` agrees with the observed admission counters and embeds the
   store stats document;
4. ``/metrics`` serves Prometheus text telling the same story as ``/stats``
   (one formatter behind both surfaces, see docs/OBSERVABILITY.md).

Run locally: ``python scripts/serve_smoke.py``.
"""

from __future__ import annotations

import json
import socket
import subprocess
import sys
import tempfile
import time
from http.client import HTTPConnection
from pathlib import Path

CAMPAIGN = {
    "kind": "campaign",
    "base": {
        "strategy": "b-tctp",
        "scenario": {"family": "uniform",
                     "params": {"num_targets": 8, "num_mules": 2}},
        "sim": {"horizon": 6000.0, "track_energy": False},
    },
    "grid": {"strategy": ["b-tctp", "chb"]},
    "replications": 2,
}
NUM_CELLS = 4


def free_port() -> int:
    with socket.socket() as probe:
        probe.bind(("127.0.0.1", 0))
        return probe.getsockname()[1]


def request(port: int, method: str, path: str, body: "dict | None" = None):
    conn = HTTPConnection("127.0.0.1", port, timeout=120)
    try:
        payload = None if body is None else json.dumps(body).encode()
        conn.request(method, path, body=payload)
        response = conn.getresponse()
        return response.status, response.read()
    finally:
        conn.close()


def wait_healthy(port: int, proc: subprocess.Popen, deadline_s: float = 30) -> None:
    deadline = time.monotonic() + deadline_s
    while time.monotonic() < deadline:
        if proc.poll() is not None:
            raise SystemExit(f"daemon exited early with code {proc.returncode}")
        try:
            status, _body = request(port, "GET", "/healthz")
            if status == 200:
                return
        except OSError:
            pass
        time.sleep(0.2)
    raise SystemExit("daemon did not become healthy in time")


def post_campaign(port: int) -> list[dict]:
    status, raw = request(port, "POST", "/campaigns", CAMPAIGN)
    assert status == 200, (status, raw)
    events = [json.loads(line) for line in raw.decode().splitlines()]
    assert events[0] == {"event": "start", "total": NUM_CELLS}, events[0]
    assert events[-1]["event"] == "done" and events[-1]["failed"] == 0, events[-1]
    return events


def canonical(records: list[dict]) -> list[str]:
    return [json.dumps(r, sort_keys=True) for r in records]


def main() -> int:
    with tempfile.TemporaryDirectory(prefix="repro-serve-smoke-") as tmp:
        store_dir = str(Path(tmp) / "store")
        spec_path = Path(tmp) / "campaign.json"
        spec_path.write_text(json.dumps(CAMPAIGN))
        port = free_port()
        proc = subprocess.Popen(
            [sys.executable, "-m", "repro", "serve", "--port", str(port),
             "--workers", "2", "--store", store_dir],
        )
        try:
            wait_healthy(port, proc)

            cold = post_campaign(port)
            assert cold[-1]["executed"] == NUM_CELLS, cold[-1]
            served = [e["record"] for e in cold if e["event"] == "cell"]

            # 1. byte identity with the CLI executing the same spec file
            cli = subprocess.run(
                [sys.executable, "-m", "repro", "run", str(spec_path),
                 "--no-store", "--json"],
                check=True, capture_output=True, text=True)
            cli_records = json.loads(cli.stdout)["records"]
            assert canonical(served) == canonical(cli_records), \
                "daemon stream diverged from CLI execution"

            # 2. re-POST: zero re-executions, identical bytes
            warm = post_campaign(port)
            assert warm[-1]["executed"] == 0, warm[-1]
            assert warm[-1]["store"] == NUM_CELLS, warm[-1]
            warm_records = [e["record"] for e in warm if e["event"] == "cell"]
            assert canonical(warm_records) == canonical(served), \
                "store-served records diverged from the first stream"

            # 3. /stats tells the same story, with the store document embedded
            status, raw = request(port, "GET", "/stats")
            assert status == 200, (status, raw)
            stats = json.loads(raw)
            scheduler = stats["scheduler"]
            assert scheduler["requests"] == 2, scheduler
            assert scheduler["executed"] == NUM_CELLS, scheduler
            assert scheduler["store_hits"] == NUM_CELLS, scheduler
            assert scheduler["rejected"] == 0, scheduler
            assert stats["store"]["entries"] == NUM_CELLS, stats["store"]

            # 4. /metrics: Prometheus text, consistent with /stats
            status, raw = request(port, "GET", "/metrics")
            assert status == 200, (status, raw)
            text = raw.decode()
            assert "# TYPE repro_service_requests_total counter" in text, text[:400]
            assert "repro_service_requests_total 2" in text, text[:400]
            assert f"repro_service_executed_total {NUM_CELLS}" in text
            assert f"repro_service_store_hits_total {NUM_CELLS}" in text
            assert f"repro_store_entries {NUM_CELLS}" in text
        finally:
            proc.terminate()
            proc.wait(timeout=30)
    print(f"serve smoke ok: {NUM_CELLS} cells executed once, "
          f"re-POST served {NUM_CELLS}/{NUM_CELLS} from the store, "
          "streams byte-identical to the CLI")
    return 0


if __name__ == "__main__":
    raise SystemExit(main())
