#!/usr/bin/env python
"""Fail on broken intra-repository Markdown links (CI docs job).

Scans every tracked ``*.md`` file for inline links/images and checks that

* relative targets resolve to an existing file or directory, and
* fragment links (``file.md#section`` or ``#section``) point at a heading
  that actually exists in the target document (GitHub-style slugs).

External links (``http(s)://``, ``mailto:``) are ignored — CI must not
depend on the network.  Exit code 1 lists every broken link.

Usage::

    python scripts/check_docs_links.py [root]
"""

from __future__ import annotations

import re
import sys
from pathlib import Path

# Inline links/images: [text](target) — code spans are stripped first.
_LINK_RE = re.compile(r"!?\[[^\]]*\]\(([^)\s]+)(?:\s+\"[^\"]*\")?\)")
_CODE_SPAN_RE = re.compile(r"`[^`]*`")
_FENCE_RE = re.compile(r"^(```|~~~)")
_HEADING_RE = re.compile(r"^#{1,6}\s+(.*)$")


def _slugify(heading: str) -> str:
    """GitHub-style anchor slug of a heading line."""
    text = _CODE_SPAN_RE.sub(lambda m: m.group(0).strip("`"), heading)
    text = re.sub(r"[^\w\- ]", "", text.strip().lower())
    return re.sub(r"[ ]", "-", text)


def _headings(path: Path) -> set[str]:
    slugs: set[str] = set()
    in_fence = False
    for line in path.read_text(encoding="utf-8").splitlines():
        if _FENCE_RE.match(line):
            in_fence = not in_fence
            continue
        if in_fence:
            continue
        match = _HEADING_RE.match(line)
        if match:
            slugs.add(_slugify(match.group(1)))
    return slugs


def _links(path: Path):
    in_fence = False
    for lineno, line in enumerate(path.read_text(encoding="utf-8").splitlines(), 1):
        if _FENCE_RE.match(line):
            in_fence = not in_fence
            continue
        if in_fence:
            continue
        for match in _LINK_RE.finditer(_CODE_SPAN_RE.sub("", line)):
            yield lineno, match.group(1)


def check(root: Path) -> list[str]:
    errors: list[str] = []
    md_files = sorted(
        p for p in root.rglob("*.md")
        if not any(part.startswith(".") for part in p.relative_to(root).parts)
    )
    for md in md_files:
        for lineno, target in _links(md):
            if target.startswith(("http://", "https://", "mailto:")):
                continue
            raw_path, _, fragment = target.partition("#")
            resolved = (md.parent / raw_path).resolve() if raw_path else md.resolve()
            where = f"{md.relative_to(root)}:{lineno}"
            if raw_path and not resolved.exists():
                errors.append(f"{where}: broken link target {target!r}")
                continue
            if fragment:
                if resolved.is_dir() or resolved.suffix.lower() != ".md":
                    continue  # anchors into non-markdown targets: skip
                if _slugify(fragment) not in _headings(resolved):
                    errors.append(f"{where}: missing anchor {target!r}")
    return errors


def main() -> int:
    root = Path(sys.argv[1]) if len(sys.argv) > 1 else Path(".")
    errors = check(root.resolve())
    for error in errors:
        print(error, file=sys.stderr)
    checked = len(list(root.resolve().rglob('*.md')))
    print(f"checked markdown links under {root.resolve()} "
          f"({checked} files): {len(errors)} broken")
    return 1 if errors else 0


if __name__ == "__main__":
    raise SystemExit(main())
