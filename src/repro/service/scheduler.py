"""Transport-agnostic scheduler: bounded workers, coalescing, backpressure.

The scheduler is the service's core and knows nothing about wire formats:
transports hand it :class:`~repro.runner.RunSpec` /
:class:`~repro.runner.CampaignSpec` objects and receive a
:class:`CampaignTicket` whose :meth:`~CampaignTicket.events` generator
streams one JSON-safe event dict per cell plus a summary — the transports
only serialise.

Three production behaviours live here:

* **request coalescing** — every cell is keyed by its
  :func:`~repro.store.run_fingerprint`; a request for a fingerprint that is
  already in flight *subscribes to the same future* instead of executing
  again, so N concurrent identical requests cost one execution and each
  subscriber still receives the full record stream.  Cells already in the
  result store are served from it without consuming a worker at all
  (PR 5's ~54x warm-hit economics are what make the daemon cheap);
* **backpressure** — admission is atomic per request: the cells that would
  actually execute (misses that are not already in flight) must fit into
  the bounded queue, else the whole request is rejected with
  :class:`ServiceOverloaded` (HTTP transports map it to ``429`` +
  ``Retry-After``) *before* any of its cells are enqueued;
* **graceful shutdown** — :meth:`ServiceScheduler.shutdown` stops admitting
  work and drains the in-flight cells; each finished record was already
  written back to the store as it completed, so nothing computed is lost.

Records are produced by :func:`repro.runner.campaign.execute_cell` over the
cells of ``Campaign(spec).cells()`` — exactly the path ``repro-patrol run``
takes — so every record the daemon streams is byte-identical (under JSON
serialisation) to the same spec executed via the CLI, and daemon and CLI
share one store keyspace.
"""

from __future__ import annotations

import threading
from concurrent.futures import Future, ThreadPoolExecutor
from typing import Any, Iterator, Mapping

from repro.obs import registry as _obs
from repro.runner.campaign import Campaign, _json_sanitize, execute_cell
from repro.runner.spec import CampaignSpec, RunSpec
from repro.store import run_fingerprint
from repro.store.store import ResultStore, resolve_store

__all__ = [
    "ServiceScheduler",
    "CampaignTicket",
    "ServiceOverloaded",
    "ServiceClosed",
]


class ServiceOverloaded(RuntimeError):
    """The bounded queue cannot admit the request; retry after ``retry_after`` s."""

    def __init__(self, message: str, *, retry_after: float) -> None:
        super().__init__(message)
        self.retry_after = float(retry_after)


class ServiceClosed(RuntimeError):
    """The scheduler is shutting down and admits no new work."""


class _Cell:
    """One admitted cell: its spec, fingerprint and how it resolves."""

    __slots__ = ("spec", "fingerprint", "source", "record", "future")

    def __init__(
        self,
        spec: RunSpec,
        fingerprint: str,
        *,
        source: str,
        record: "dict | None" = None,
        future: "Future | None" = None,
    ) -> None:
        self.spec = spec
        self.fingerprint = fingerprint
        self.source = source          # "store" | "executed" | "coalesced"
        self.record = record          # set for store hits
        self.future = future          # set for executed / coalesced cells

    def resolve(self) -> dict:
        """Block until the cell's record exists and return it."""
        if self.record is not None:
            return self.record
        assert self.future is not None
        return self.future.result()


class CampaignTicket:
    """One admitted request: stream its per-cell events or wait for all records.

    Tickets are cheap subscriptions: coalesced cells share the executing
    request's future, so several tickets can stream the same underlying
    work.  :meth:`events` yields JSON-safe dicts in deterministic cell order
    (the same order ``Campaign.run`` records them), which is what makes the
    daemon's stream byte-comparable to a CLI run.
    """

    def __init__(self, cells: "list[_Cell]") -> None:
        self._cells = cells

    def __len__(self) -> int:
        return len(self._cells)

    def fingerprints(self) -> list[str]:
        """The admitted cells' fingerprints, in cell order."""
        return [cell.fingerprint for cell in self._cells]

    def events(self) -> Iterator[dict]:
        """Yield ``start``, per-cell ``cell``/``error``, then ``done`` events.

        Every ``cell`` event carries the sanitized record (strict JSON: no
        NaN tokens, no numpy scalars) plus the cell's fingerprint and how it
        was satisfied (``"executed"``, ``"store"`` or ``"coalesced"``).  A
        failing cell yields an ``error`` event and the stream continues; the
        final ``done`` event carries the source/failure tallies.
        """
        total = len(self._cells)
        yield {"event": "start", "total": total}
        tally = {"executed": 0, "store": 0, "coalesced": 0, "failed": 0}
        for index, cell in enumerate(self._cells):
            try:
                record = cell.resolve()
            except Exception as exc:
                tally["failed"] += 1
                yield {
                    "event": "error",
                    "index": index,
                    "fingerprint": cell.fingerprint,
                    "message": f"{type(exc).__name__}: {exc}",
                }
                continue
            tally[cell.source] += 1
            yield {
                "event": "cell",
                "index": index,
                "total": total,
                "fingerprint": cell.fingerprint,
                "source": cell.source,
                "record": _json_sanitize(record),
            }
        yield {"event": "done", "total": total, **tally}

    def records(self) -> list[dict]:
        """Block until every cell resolves; records in cell order (unsanitized)."""
        return [cell.resolve() for cell in self._cells]


class ServiceScheduler:
    """Bounded worker pool around the campaign executor, with coalescing.

    Parameters
    ----------
    store:
        Result store the daemon reads/writes (see
        :func:`repro.store.resolve_store` semantics): ``None`` uses the
        configured default when one exists, ``False`` disables persistence
        (coalescing still deduplicates in-flight work), a path or
        :class:`~repro.store.ResultStore` names one explicitly.
    workers:
        Worker threads executing cells.  Threads (not processes) keep the
        store connection, the coalescing table and the geometry caches
        shared; the simulation itself is pure Python + numpy, so ``workers``
        bounds concurrency, it does not promise linear speedup.
    queue_limit:
        Maximum number of admitted-but-unfinished *executing* cells.  A
        request whose misses do not fit is rejected whole with
        :class:`ServiceOverloaded` — bounded memory, bounded latency.
    retry_after:
        The ``Retry-After`` hint (seconds) carried by rejections.
    cell_runner:
        Test seam: the function executing one cell, defaulting to
        :func:`repro.runner.campaign.execute_cell`.  Must accept
        ``(spec, store=...)`` and return ``(record, source)``.
    """

    def __init__(
        self,
        *,
        store: Any = None,
        workers: int = 2,
        queue_limit: int = 64,
        retry_after: float = 1.0,
        cell_runner=None,
    ) -> None:
        if workers < 1:
            raise ValueError("workers must be >= 1")
        if queue_limit < 1:
            raise ValueError("queue_limit must be >= 1")
        self.store: "ResultStore | None" = resolve_store(store)
        self.workers = workers
        self.queue_limit = queue_limit
        self.retry_after = float(retry_after)
        self._cell_runner = cell_runner if cell_runner is not None else execute_cell
        self._pool = ThreadPoolExecutor(
            max_workers=workers, thread_name_prefix="repro-serve"
        )
        self._lock = threading.Lock()
        self._inflight: dict[str, Future] = {}
        self._pending = 0           # admitted executing cells not yet finished
        self._closed = False
        self._counters = {
            "requests": 0,          # admitted submit() calls
            "rejected": 0,          # ServiceOverloaded rejections
            "cells": 0,             # cells across admitted requests
            "executed": 0,          # cells that ran a simulation
            "coalesced": 0,         # cells subscribed to an in-flight future
            "store_hits": 0,        # cells served straight from the store
            "failed": 0,            # executed cells that raised
        }

    # -- admission --------------------------------------------------------- #

    def submit(self, spec: "RunSpec | CampaignSpec | Mapping[str, Any]") -> CampaignTicket:
        """Admit one run/campaign spec; returns the ticket streaming its cells.

        The spec is expanded exactly as ``repro-patrol run`` expands it
        (:meth:`repro.runner.Campaign.cells` — including validation, so a
        typo'd strategy or scenario parameter raises :class:`ValueError`
        here, before any admission).  Then, atomically under the scheduler
        lock: in-flight fingerprints coalesce, stored fingerprints resolve
        immediately, and the remaining misses are admitted only if they all
        fit into the bounded queue — otherwise the request is rejected whole
        with :class:`ServiceOverloaded` and nothing is enqueued.
        """
        if isinstance(spec, Mapping):
            from repro.runner.spec import spec_from_dict

            spec = spec_from_dict(spec)
        cell_specs = Campaign(spec).cells()  # raises ValueError on bad specs
        fingerprints = [run_fingerprint(cell) for cell in cell_specs]
        with self._lock:
            if self._closed:
                raise ServiceClosed("scheduler is shut down; not accepting work")
            cells = self._admit(cell_specs, fingerprints)
            self._counters["requests"] += 1
            self._counters["cells"] += len(cells)
            _obs.inc("service_requests", outcome="admitted")
            _obs.inc("service_cells", len(cells))
            _obs.observe("service_queue_depth", self._pending)
        return CampaignTicket(cells)

    def _admit(self, cell_specs: list[RunSpec], fingerprints: list[str]) -> "list[_Cell]":
        """Resolve every cell under the lock; raises before enqueuing on overflow."""
        cells: list[_Cell] = []
        to_execute: list[_Cell] = []
        started: dict[str, Future] = {}  # fingerprints this request starts
        for spec, fingerprint in zip(cell_specs, fingerprints):
            inflight = self._inflight.get(fingerprint) or started.get(fingerprint)
            if inflight is not None:
                self._counters["coalesced"] += 1
                _obs.inc("service_admission", outcome="coalesced")
                cells.append(_Cell(spec, fingerprint, source="coalesced", future=inflight))
                continue
            record = self.store.get(fingerprint) if self.store is not None else None
            if record is not None:
                self._counters["store_hits"] += 1
                _obs.inc("service_admission", outcome="store")
                cells.append(_Cell(spec, fingerprint, source="store", record=record))
                continue
            future: Future = Future()
            started[fingerprint] = future
            cell = _Cell(spec, fingerprint, source="executed", future=future)
            cells.append(cell)
            to_execute.append(cell)
        if self._pending + len(to_execute) > self.queue_limit:
            self._counters["rejected"] += 1
            _obs.inc("service_requests", outcome="rejected")
            raise ServiceOverloaded(
                f"queue full: {len(to_execute)} new cell(s) do not fit "
                f"({self._pending}/{self.queue_limit} in flight); "
                f"retry after {self.retry_after:g}s",
                retry_after=self.retry_after,
            )
        for cell in to_execute:
            self._counters["executed"] += 1
            _obs.inc("service_admission", outcome="executed")
            self._pending += 1
            self._inflight[cell.fingerprint] = cell.future
            self._pool.submit(self._run_cell, cell.spec, cell.fingerprint, cell.future)
        return cells

    # -- execution --------------------------------------------------------- #

    def _run_cell(self, spec: RunSpec, fingerprint: str, future: Future) -> None:
        """Worker body: execute one cell, publish its record, settle the books.

        ``execute_cell`` re-checks the store (another process may have
        published the record meanwhile) and writes the fresh record back as
        soon as it exists — which is why shutdown only needs to *drain*: a
        finished cell is already persistent.
        """
        try:
            record, _source = self._cell_runner(spec, store=self.store)
        except BaseException as exc:
            with self._lock:
                self._counters["failed"] += 1
                _obs.inc("service_cells_failed")
                self._pending -= 1
                self._inflight.pop(fingerprint, None)
            future.set_exception(exc)
            return
        with self._lock:
            self._pending -= 1
            self._inflight.pop(fingerprint, None)
        future.set_result(record)

    # -- lookups / introspection ------------------------------------------- #

    def lookup(self, fingerprint: str) -> "dict | None":
        """Status of one fingerprint: stored payload, in-flight marker, or None."""
        with self._lock:
            inflight = fingerprint in self._inflight
        if inflight:
            return {"fingerprint": fingerprint, "status": "in-flight"}
        if self.store is None:
            return None
        entry = self.store.get_entry(fingerprint)
        if entry is None:
            return None
        return {
            "fingerprint": fingerprint,
            "status": "stored",
            "strategy": entry.strategy,
            "family": entry.family,
            "seed": entry.seed,
            "library_version": entry.library_version,
            "record": _json_sanitize(entry.record),
        }

    def stats(self) -> dict:
        """JSON-safe snapshot: admission counters, queue occupancy, limits."""
        with self._lock:
            counters = dict(self._counters)
            pending = self._pending
            inflight = len(self._inflight)
            closed = self._closed
        return {
            **counters,
            "pending": pending,
            "inflight": inflight,
            "workers": self.workers,
            "queue_limit": self.queue_limit,
            "accepting": not closed,
        }

    # -- lifecycle --------------------------------------------------------- #

    def shutdown(self, *, wait: bool = True) -> None:
        """Stop admitting work and (by default) drain the in-flight cells.

        Every record a worker finishes during the drain was already written
        to the store by :func:`~repro.runner.campaign.execute_cell`, so a
        drained shutdown loses nothing and a re-submitted campaign resumes
        from the store.
        """
        with self._lock:
            self._closed = True
            pending = self._pending
        _obs.inc("service_shutdowns")
        _obs.observe("service_drain_pending", pending)
        self._pool.shutdown(wait=wait)

    def __enter__(self) -> "ServiceScheduler":
        return self

    def __exit__(self, *exc_info) -> None:
        self.shutdown(wait=True)
