"""Line-oriented stdio transport: the daemon over stdin/stdout pipes.

The second built-in transport keeps the registry honestly plural and gives
scripted clients (and tests) a socket-free way to drive the scheduler: one
JSON request per input line, NDJSON events on the output stream — the exact
event documents the HTTP transport chunks over the wire, so a client can
switch transports without reparsing anything.

Request lines::

    {"kind": "run", "strategy": "b-tctp", "seed": 3}     stream the cell events
    {"kind": "campaign", "base": {...}, ...}             stream every cell
    {"op": "stats"}                                      one stats line
    {"op": "metrics"}                                    one Prometheus-text line
    {"op": "lookup", "fingerprint": "<fp>"}              one lookup line

Errors never kill the session: a malformed line or rejected spec emits one
``{"event": "error", ...}`` line (overload rejections carry
``retry_after``), and the loop reads on.  EOF on the input ends the session
and drains the scheduler.

Run it as ``repro-patrol serve --transport stdio``.
"""

from __future__ import annotations

import json
from typing import Any, IO

from repro.service.registry import register_transport
from repro.service.scheduler import ServiceClosed, ServiceOverloaded, ServiceScheduler

__all__ = ["StdioTransport"]


class StdioTransport:
    """Serve scheduler requests line by line over a pair of text streams.

    Parameters
    ----------
    scheduler:
        The scheduler executing and coalescing the admitted specs.
    input_stream / output_stream:
        Text streams to read requests from / write NDJSON events to;
        ``None`` means the process's stdin/stdout (resolved lazily, so a
        test can swap :data:`sys.stdin` before serving).  Tests pass
        :class:`io.StringIO` pairs.
    """

    def __init__(self, scheduler: ServiceScheduler, *,
                 input_stream: "IO[str] | None" = None,
                 output_stream: "IO[str] | None" = None) -> None:
        self.scheduler = scheduler
        self._input = input_stream
        self._output = output_stream

    def _emit(self, payload: Any) -> None:
        output = self._output
        if output is None:
            import sys

            output = sys.stdout
        output.write(json.dumps(payload, sort_keys=True) + "\n")
        output.flush()

    def _serve_line(self, line: str) -> None:
        try:
            request = json.loads(line)
        except json.JSONDecodeError as exc:
            self._emit({"event": "error", "message": f"line is not valid JSON: {exc}"})
            return
        if not isinstance(request, dict):
            self._emit({"event": "error",
                        "message": "each line must be a JSON object (a spec or an op)"})
            return
        op = request.get("op")
        if op == "stats":
            self._emit({"event": "stats", "stats": self.scheduler.stats()})
            return
        if op == "metrics":
            # The same exposition text GET /metrics serves on the http
            # transport, carried as one JSON line.
            from repro.obs import prometheus_text
            from repro.obs.adapters import stats_document

            document = stats_document(store=self.scheduler.store,
                                      scheduler=self.scheduler)
            self._emit({"event": "metrics", "text": prometheus_text(document)})
            return
        if op == "lookup":
            fingerprint = request.get("fingerprint", "")
            found = self.scheduler.lookup(fingerprint)
            self._emit(found if found is not None
                       else {"fingerprint": fingerprint, "status": "unknown"})
            return
        if op is not None:
            self._emit({"event": "error", "message": f"unknown op {op!r}; "
                        "ops: stats, metrics, lookup"})
            return
        try:
            ticket = self.scheduler.submit(request)
        except ServiceOverloaded as exc:
            self._emit({"event": "error", "message": str(exc),
                        "retry_after": exc.retry_after})
            return
        except ServiceClosed as exc:
            self._emit({"event": "error", "message": str(exc)})
            return
        except (ValueError, TypeError, KeyError) as exc:
            self._emit({"event": "error", "message": f"{exc}"})
            return
        for event in ticket.events():
            self._emit(event)

    def serve_forever(self) -> None:
        """Process request lines until EOF, then drain the scheduler."""
        stream = self._input
        if stream is None:
            import sys

            stream = sys.stdin
        try:
            for line in stream:
                if line.strip():
                    self._serve_line(line)
        finally:
            self.scheduler.shutdown(wait=True)


@register_transport(
    "stdio",
    aliases=("console",),
    description="line-oriented JSON over stdin/stdout: one request per line, "
                "NDJSON events out (socket-free scripting and testing)",
)
def stdio_transport(scheduler) -> StdioTransport:
    """Build the stdio transport (see :class:`StdioTransport`); no options."""
    return StdioTransport(scheduler)
