"""Simulation as a service: the ``repro-patrol serve`` daemon's machinery.

Three layers, deliberately separable:

* :mod:`repro.service.scheduler` — the transport-agnostic core: a bounded
  worker pool around the campaign executor, request **coalescing** keyed on
  run fingerprints (concurrent identical requests share one execution),
  store-hit short-circuiting, bounded-queue **backpressure** and graceful
  drain-to-store shutdown;
* :mod:`repro.service.registry` — the transport registry, symmetric to the
  strategy / scenario / stage registries: ``@register_transport`` declares a
  wire protocol with a validated option table, listed by
  ``repro-patrol transports``;
* the built-in transports — :mod:`repro.service.http` (stdlib asyncio
  HTTP/1.1 with chunked NDJSON streaming) and :mod:`repro.service.stdio`
  (line-oriented JSON over stdin/stdout).

Every record the service emits is byte-identical (under JSON serialisation)
to the same spec executed by ``repro-patrol run`` — the scheduler expands
specs through the exact campaign path and shares the CLI's result store.
See ``docs/SERVICE.md``.

>>> from repro.service import ServiceScheduler
>>> with ServiceScheduler(store=False, workers=2) as scheduler:
...     ticket = scheduler.submit({"kind": "run", "strategy": "b-tctp",
...                                "scenario": {"family": "uniform",
...                                             "params": {"num_targets": 6,
...                                                        "num_mules": 2}},
...                                "sim": {"horizon": 500.0}})
...     events = list(ticket.events())
>>> events[0]["event"], events[-1]["event"], events[-1]["executed"]
('start', 'done', 1)
"""

from repro.service.registry import (
    TransportInfo,
    TransportParam,
    all_transport_infos,
    available_transports,
    canonical_transport_name,
    filter_transport_kwargs,
    get_transport,
    register_transport,
    transport_alias_table,
    transport_info,
    transport_params,
    validate_transport_options,
)
from repro.service.scheduler import (
    CampaignTicket,
    ServiceClosed,
    ServiceOverloaded,
    ServiceScheduler,
)

__all__ = [
    # scheduler core
    "ServiceScheduler",
    "CampaignTicket",
    "ServiceOverloaded",
    "ServiceClosed",
    # transport registry
    "TransportInfo",
    "TransportParam",
    "register_transport",
    "available_transports",
    "canonical_transport_name",
    "transport_info",
    "transport_params",
    "validate_transport_options",
    "get_transport",
    "filter_transport_kwargs",
    "all_transport_infos",
    "transport_alias_table",
]
