"""Transport registry: pluggable wire protocols for the ``serve`` daemon.

Symmetric to the strategy / scenario-family / planning-stage registries
(:mod:`repro.baselines.base`, :mod:`repro.scenarios.registry`,
:mod:`repro.planning.stages`): every way of exposing the
:class:`~repro.service.scheduler.ServiceScheduler` over a wire — the
stdlib-asyncio HTTP/JSON transport, the line-oriented stdio transport, and
any transport a downstream package registers — lives under a name with a
declared option table (names, defaults, type annotations), aliases and a
description.  The ``repro-patrol serve --transport`` flag, the
``repro-patrol transports`` listing and programmatic embedders all resolve
transports through this registry, so a typo'd transport or option is
rejected with a did-you-mean suggestion *before* any socket is bound.

Registering a transport is a decorator::

    @register_transport("http", aliases=("rest",),
                        description="HTTP/1.1 + NDJSON streaming")
    def http_transport(scheduler, *, host: str = "127.0.0.1", port: int = 8422):
        return HttpTransport(scheduler, host=host, port=port)

The factory's keyword parameters (after the leading ``scheduler`` argument,
which the server wiring injects) become the transport's declared option
table.  Factories must be strict — ``**kwargs`` catch-alls are rejected so
the declaration stays truthful, exactly as the scenario registry does.
"""

from __future__ import annotations

import inspect
from dataclasses import dataclass
from typing import Any, Callable, Mapping

from repro.planning.stages import did_you_mean

__all__ = [
    "TransportParam",
    "TransportInfo",
    "register_transport",
    "available_transports",
    "canonical_transport_name",
    "transport_info",
    "transport_params",
    "validate_transport_options",
    "get_transport",
    "filter_transport_kwargs",
    "all_transport_infos",
    "transport_alias_table",
]


class _Required:
    """Sentinel default for options a transport requires explicitly."""

    def __repr__(self) -> str:  # pragma: no cover - cosmetic
        return "<required>"


REQUIRED = _Required()


@dataclass(frozen=True)
class TransportParam:
    """One declared option of a transport: name, default, type annotation."""

    name: str
    default: Any = REQUIRED
    kind: str = ""

    @property
    def required(self) -> bool:
        return self.default is REQUIRED


@dataclass(frozen=True)
class TransportInfo:
    """Registry record: how to build a transport and which options it takes.

    ``params`` maps each declared option name to its
    :class:`TransportParam`.  The factory receives the scheduler as its
    first positional argument plus the validated options as keywords and
    must return an object exposing ``serve_forever()`` (blocking) — the
    :class:`~repro.service.http.HttpTransport` /
    :class:`~repro.service.stdio.StdioTransport` protocol.
    """

    name: str
    factory: Callable[..., Any]
    params: Mapping[str, TransportParam]
    aliases: tuple[str, ...] = ()
    description: str = ""

    def defaults(self) -> dict[str, Any]:
        """The declared defaults (required options omitted)."""
        return {p.name: p.default for p in self.params.values() if not p.required}


_REGISTRY: dict[str, TransportInfo] = {}     # canonical name -> info
_ALIASES: dict[str, str] = {}                # every accepted key -> canonical name
_defaults_loaded = False                     # guards the lazy built-in registration


def _annotation_name(annotation: Any) -> str:
    if annotation is inspect.Parameter.empty:
        return ""
    if isinstance(annotation, str):
        return annotation
    return getattr(annotation, "__name__", str(annotation))


def _param_table(factory: Callable[..., Any]) -> dict[str, TransportParam]:
    """Derive the declared option table from the factory signature.

    The first positional parameter (the scheduler) is excluded — it is
    injected by the server wiring, not chosen by users.  ``**kwargs``
    factories are rejected: the registry's whole point is that the
    declaration is complete and validation can trust it.
    """
    signature = inspect.signature(factory)
    table: dict[str, TransportParam] = {}
    positional_seen = False
    for param in signature.parameters.values():
        if param.kind is inspect.Parameter.VAR_KEYWORD:
            raise TypeError(
                f"transport factory {factory!r} takes **{param.name}; transports "
                "must declare an explicit keyword option set"
            )
        if param.kind is inspect.Parameter.VAR_POSITIONAL:
            continue
        if param.kind is inspect.Parameter.POSITIONAL_OR_KEYWORD and not positional_seen:
            positional_seen = True  # the injected scheduler argument
            continue
        default = REQUIRED if param.default is inspect.Parameter.empty else param.default
        table[param.name] = TransportParam(
            name=param.name, default=default, kind=_annotation_name(param.annotation)
        )
    return table


def register_transport(
    name: str,
    factory: "Callable[..., Any] | None" = None,
    *,
    aliases: tuple[str, ...] = (),
    description: str = "",
):
    """Register a transport (decorator or direct call, case-insensitive).

    As a decorator::

        @register_transport("http", description="...")
        def http_transport(scheduler, *, host: str = "127.0.0.1", port: int = 8422):
            ...

    or directly: ``register_transport("http", http_transport, description=...)``.
    """
    def _register(fac: Callable[..., Any]) -> Callable[..., Any]:
        _ensure_defaults()  # custom registrations must never shadow the built-ins
        key = name.lower()
        if key in _ALIASES:
            raise ValueError(f"transport {name!r} is already registered")
        for alias in aliases:
            if alias.lower() in _ALIASES:
                raise ValueError(f"transport alias {alias!r} is already registered")
        info = TransportInfo(
            name=key,
            factory=fac,
            params=_param_table(fac),
            aliases=tuple(a.lower() for a in aliases),
            description=description,
        )
        _REGISTRY[key] = info
        _ALIASES[key] = key
        for alias in info.aliases:
            _ALIASES[alias] = key
        return fac

    if factory is not None:
        return _register(factory)
    return _register


def available_transports(*, include_aliases: bool = False) -> list[str]:
    """Names of all registered transports (canonical only by default)."""
    _ensure_defaults()
    return sorted(_ALIASES) if include_aliases else sorted(_REGISTRY)


def canonical_transport_name(name: str) -> str:
    """Resolve an alias (``"rest"``) to its canonical transport name (``"http"``)."""
    _ensure_defaults()
    try:
        return _ALIASES[name.lower()]
    except KeyError as exc:
        raise ValueError(
            f"unknown transport {name!r}; available: "
            f"{', '.join(available_transports())}"
            f"{did_you_mean(name, _ALIASES)}"
        ) from exc


def transport_info(name: str) -> TransportInfo:
    """The :class:`TransportInfo` record for ``name`` (alias-tolerant)."""
    return _REGISTRY[canonical_transport_name(name)]


def transport_params(name: str) -> frozenset[str]:
    """The option names declared by transport ``name``."""
    return frozenset(transport_info(name).params)


def validate_transport_options(name: str, options: Mapping[str, Any]) -> None:
    """Raise :class:`ValueError` on an unknown transport or undeclared options.

    Runs the declared-option check (with a did-you-mean suggestion) and the
    required-option check without binding any socket — cheap enough for the
    CLI to run before the daemon starts.
    """
    info = transport_info(name)  # raises on unknown transport
    unknown = sorted(set(options) - set(info.params))
    if unknown:
        accepted = ", ".join(sorted(info.params)) or "(none)"
        raise ValueError(
            f"transport {info.name!r} does not accept option(s) "
            f"{', '.join(repr(o) for o in unknown)}; accepted: {accepted}"
            f"{did_you_mean(unknown[0], info.params)}"
        )
    missing = sorted(
        p.name for p in info.params.values() if p.required and p.name not in options
    )
    if missing:
        raise ValueError(
            f"transport {info.name!r} requires option(s): {', '.join(missing)}"
        )


def get_transport(name: str, scheduler, **options: Any):
    """Build a registered transport around ``scheduler``, validating options.

    Parameters
    ----------
    name : str
        Registry name or alias of the transport (see
        ``repro-patrol transports`` for the catalog).
    scheduler :
        The :class:`~repro.service.scheduler.ServiceScheduler` the transport
        serves; injected as the factory's first positional argument.
    **options
        The transport's declared options, e.g. ``host="0.0.0.0"``; a typo'd
        option name raises with a did-you-mean suggestion.

    Returns
    -------
    object
        A transport exposing ``serve_forever()``.
    """
    validate_transport_options(name, options)
    info = transport_info(name)
    return info.factory(scheduler, **options)


def filter_transport_kwargs(name: str, kwargs: Mapping[str, Any]) -> dict[str, Any]:
    """Subset of ``kwargs`` that transport ``name`` declares it accepts.

    The CLI convenience: one shared flag set (``--host``/``--port``) can be
    handed to transports that each take only part of it (the stdio transport
    takes neither), symmetric to
    :func:`repro.baselines.base.filter_strategy_kwargs`.
    """
    declared = transport_info(name).params
    return {k: v for k, v in kwargs.items() if k in declared}


def all_transport_infos() -> dict[str, TransportInfo]:
    """Snapshot of the whole registry: canonical name -> :class:`TransportInfo`.

    The introspection hook for :mod:`repro.analysis.registry_contract`; the
    returned dict is a copy, so analyzers can never mutate the registry.
    """
    _ensure_defaults()
    return dict(_REGISTRY)


def transport_alias_table() -> dict[str, str]:
    """Every accepted transport key (canonical names included) -> canonical name."""
    _ensure_defaults()
    return dict(_ALIASES)


def _ensure_defaults() -> None:
    """Populate the registry lazily (avoids import cycles at module load)."""
    global _defaults_loaded
    if _defaults_loaded:
        return
    _defaults_loaded = True
    import repro.service.http  # noqa: F401  (registers the HTTP transport)
    import repro.service.stdio  # noqa: F401  (registers the stdio transport)
