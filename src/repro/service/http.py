"""Stdlib-only HTTP/1.1 + NDJSON transport for the ``serve`` daemon.

No web framework, no new dependency: :func:`asyncio.start_server` plus a
minimal, deliberately strict HTTP/1.1 layer (request line, headers,
``Content-Length`` bodies, ``Transfer-Encoding: chunked`` responses).  The
event loop only parses and serialises; every simulation runs on the
scheduler's worker threads, and the blocking per-cell event stream is
bridged into the loop one event at a time via ``run_in_executor`` — slow
simulations never stall other connections.

Endpoints (full reference with wire examples in ``docs/SERVICE.md``):

====================  ======================================================
``POST /runs``        body: RunSpec JSON — stream the cell's events (NDJSON)
``POST /campaigns``   body: CampaignSpec JSON — stream every cell's events
``GET /runs/{fp}``    cached lookup: 200 stored / 202 in flight / 404 miss
``GET /stats``        scheduler counters + the store's stats document
``GET /metrics``      Prometheus text exposition of the same stats document
``GET /healthz``      liveness + whether the scheduler still admits work
``GET /version``      the library version serving this daemon
====================  ======================================================

Streaming responses are ``application/x-ndjson``: one JSON object per line,
sent chunked as each cell resolves.  Every ``cell`` event's ``record`` is
byte-identical (under ``json.dumps(..., sort_keys=True)``) to the record
``repro-patrol run`` produces for the same spec — the scheduler guarantees
it by expanding specs through the exact campaign path.

Backpressure maps :class:`~repro.service.scheduler.ServiceOverloaded` to
``429`` with a ``Retry-After`` header; a malformed spec is ``400``; a
draining scheduler is ``503``.
"""

from __future__ import annotations

import asyncio
import json
import threading
from typing import Any

from repro.service.registry import register_transport
from repro.service.scheduler import (
    CampaignTicket,
    ServiceClosed,
    ServiceOverloaded,
    ServiceScheduler,
)

__all__ = ["HttpTransport"]

_REASONS = {
    200: "OK",
    202: "Accepted",
    400: "Bad Request",
    404: "Not Found",
    405: "Method Not Allowed",
    413: "Payload Too Large",
    429: "Too Many Requests",
    500: "Internal Server Error",
    503: "Service Unavailable",
}

#: Upper bound on request bodies; a CampaignSpec is a few KB, so anything
#: near this is a client bug, not a workload.
MAX_BODY_BYTES = 4 * 1024 * 1024


class _BadRequest(ValueError):
    """Protocol-level parse failure: malformed request line, header or body."""


def _dumps(payload: Any) -> str:
    return json.dumps(payload, sort_keys=True)


def _plain_response(status: int, payload: Any, *, headers: "tuple[tuple[str, str], ...]" = ()) -> bytes:
    body = (_dumps(payload) + "\n").encode()
    head = (
        f"HTTP/1.1 {status} {_REASONS[status]}\r\n"
        "Content-Type: application/json\r\n"
        f"Content-Length: {len(body)}\r\n"
        "Connection: close\r\n"
        + "".join(f"{name}: {value}\r\n" for name, value in headers)
        + "\r\n"
    ).encode("latin-1")
    return head + body


def _text_response(status: int, text: str, *, content_type: str) -> bytes:
    body = text.encode()
    head = (
        f"HTTP/1.1 {status} {_REASONS[status]}\r\n"
        f"Content-Type: {content_type}\r\n"
        f"Content-Length: {len(body)}\r\n"
        "Connection: close\r\n"
        "\r\n"
    ).encode("latin-1")
    return head + body


def _chunk(data: bytes) -> bytes:
    return f"{len(data):x}\r\n".encode("latin-1") + data + b"\r\n"


class HttpTransport:
    """The HTTP/JSON face of a :class:`~repro.service.scheduler.ServiceScheduler`.

    Parameters
    ----------
    scheduler:
        The scheduler executing and coalescing the admitted specs.
    host:
        Interface to bind (default loopback; ``0.0.0.0`` exposes the daemon).
    port:
        TCP port; ``0`` binds an ephemeral port and publishes the real one
        on :attr:`port` once serving (how the tests run parallel daemons).

    Two run modes: :meth:`serve_forever` blocks the calling thread (the CLI
    path, ``repro-patrol serve``); :meth:`start` / :meth:`stop` run the same
    loop on a background thread (the test / embedding path).
    """

    def __init__(self, scheduler: ServiceScheduler, *, host: str = "127.0.0.1",
                 port: int = 8422) -> None:
        self.scheduler = scheduler
        self.host = host
        self.port = port
        self._loop: "asyncio.AbstractEventLoop | None" = None
        self._stop_event: "asyncio.Event | None" = None
        self._thread: "threading.Thread | None" = None
        self._ready = threading.Event()
        self._startup_error: "BaseException | None" = None

    @property
    def url(self) -> str:
        return f"http://{self.host}:{self.port}"

    # -- lifecycle --------------------------------------------------------- #

    async def _main(self) -> None:
        self._loop = asyncio.get_running_loop()
        self._stop_event = asyncio.Event()
        server = await asyncio.start_server(self._handle_connection, self.host, self.port)
        self.port = server.sockets[0].getsockname()[1]
        self._ready.set()
        async with server:
            await self._stop_event.wait()

    def serve_forever(self) -> None:
        """Serve on the calling thread until interrupted; drains on the way out."""
        try:
            asyncio.run(self._main())
        except KeyboardInterrupt:  # pragma: no cover - interactive shutdown
            pass
        finally:
            self.scheduler.shutdown(wait=True)

    def start(self) -> "HttpTransport":
        """Serve on a background thread; returns once the port is bound."""
        def _run() -> None:
            try:
                asyncio.run(self._main())
            except BaseException as exc:  # surface bind failures to start()
                self._startup_error = exc
                self._ready.set()

        self._thread = threading.Thread(target=_run, name="repro-http", daemon=True)
        self._thread.start()
        self._ready.wait(timeout=10)
        if self._startup_error is not None:
            raise RuntimeError(f"http transport failed to start: {self._startup_error!r}")
        if not self._ready.is_set():  # pragma: no cover - pathological scheduler stall
            raise RuntimeError("http transport did not start within 10s")
        return self

    def stop(self, *, shutdown_scheduler: bool = True) -> None:
        """Stop a background server started with :meth:`start`."""
        if self._loop is not None and self._stop_event is not None:
            loop, event = self._loop, self._stop_event
            loop.call_soon_threadsafe(event.set)
        if self._thread is not None:
            self._thread.join(timeout=10)
            self._thread = None
        if shutdown_scheduler:
            self.scheduler.shutdown(wait=True)

    # -- request plumbing -------------------------------------------------- #

    async def _read_request(
        self, reader: asyncio.StreamReader
    ) -> "tuple[str, str, dict[str, str], bytes] | None":
        request_line = await reader.readline()
        if not request_line.strip():
            return None  # client connected and went away
        try:
            method, path, _version = request_line.decode("latin-1").split(" ", 2)
        except ValueError as exc:
            raise _BadRequest(f"malformed request line {request_line!r}") from exc
        headers: dict[str, str] = {}
        while True:
            line = await reader.readline()
            if line in (b"\r\n", b"\n", b""):
                break
            name, sep, value = line.decode("latin-1").partition(":")
            if not sep:
                raise _BadRequest(f"malformed header line {line!r}")
            headers[name.strip().lower()] = value.strip()
        try:
            length = int(headers.get("content-length", "0") or "0")
        except ValueError as exc:
            raise _BadRequest("Content-Length is not an integer") from exc
        if length > MAX_BODY_BYTES:
            raise _BadRequest(f"body of {length} bytes exceeds the {MAX_BODY_BYTES} limit")
        body = await reader.readexactly(length) if length else b""
        return method.upper(), path.split("?", 1)[0], headers, body

    async def _handle_connection(
        self, reader: asyncio.StreamReader, writer: asyncio.StreamWriter
    ) -> None:
        try:
            try:
                request = await self._read_request(reader)
                if request is None:
                    return
                method, path, _headers, body = request
            except (_BadRequest, asyncio.IncompleteReadError) as exc:
                writer.write(_plain_response(400, {"error": str(exc)}))
                await writer.drain()
                return
            try:
                await self._dispatch(method, path, body, writer)
            except ServiceOverloaded as exc:
                writer.write(_plain_response(
                    429, {"error": str(exc), "retry_after": exc.retry_after},
                    headers=(("Retry-After", f"{max(1, round(exc.retry_after))}"),),
                ))
            except ServiceClosed as exc:
                writer.write(_plain_response(503, {"error": str(exc)}))
            except (ValueError, TypeError, KeyError) as exc:
                writer.write(_plain_response(400, {"error": f"{exc}"}))
            except Exception as exc:  # never tear the connection without a status
                writer.write(_plain_response(
                    500, {"error": f"{type(exc).__name__}: {exc}"}
                ))
            await writer.drain()
        except (ConnectionError, BrokenPipeError):  # client hung up mid-response
            pass
        finally:
            try:
                writer.close()
                await writer.wait_closed()
            except (ConnectionError, BrokenPipeError):  # pragma: no cover
                pass

    # -- routing ----------------------------------------------------------- #

    async def _dispatch(
        self, method: str, path: str, body: bytes, writer: asyncio.StreamWriter
    ) -> None:
        if method == "POST" and path in ("/runs", "/campaigns"):
            await self._handle_submit(path, body, writer)
            return
        if method == "GET" and path.startswith("/runs/"):
            self._handle_lookup(path.removeprefix("/runs/"), writer)
            return
        if method == "GET" and path == "/stats":
            writer.write(_plain_response(200, self._stats_payload()))
            return
        if method == "GET" and path == "/metrics":
            from repro.obs import prometheus_text

            writer.write(_text_response(
                200, prometheus_text(self._stats_document()),
                content_type="text/plain; version=0.0.4; charset=utf-8",
            ))
            return
        if method == "GET" and path == "/healthz":
            stats = self.scheduler.stats()
            writer.write(_plain_response(
                200 if stats["accepting"] else 503,
                {"status": "ok" if stats["accepting"] else "draining",
                 "accepting": stats["accepting"], "pending": stats["pending"]},
            ))
            return
        if method == "GET" and path == "/version":
            from repro import __version__

            writer.write(_plain_response(200, {"version": __version__}))
            return
        known_get = ("/runs/{fingerprint}", "/stats", "/metrics", "/healthz", "/version")
        if path in ("/runs", "/campaigns"):
            writer.write(_plain_response(
                405, {"error": f"{path} only accepts POST (a spec JSON body)"}
            ))
            return
        writer.write(_plain_response(
            404, {"error": f"no route {method} {path}; GET routes: "
                           f"{', '.join(known_get)}; POST routes: /runs, /campaigns"}
        ))

    def _stats_document(self) -> dict:
        """The unified stats document for this daemon's scheduler and store."""
        from repro.obs.adapters import stats_document

        return stats_document(store=self.scheduler.store, scheduler=self.scheduler)

    def _stats_payload(self) -> dict:
        from repro import __version__
        from repro.obs.adapters import scheduler_stats_view

        document = self._stats_document()
        return {
            "version": __version__,
            "scheduler": scheduler_stats_view(document),
            "store": document.get("store"),
        }

    def _handle_lookup(self, fingerprint: str, writer: asyncio.StreamWriter) -> None:
        found = self.scheduler.lookup(fingerprint)
        if found is None:
            writer.write(_plain_response(
                404, {"fingerprint": fingerprint, "status": "unknown"}
            ))
        elif found["status"] == "in-flight":
            writer.write(_plain_response(202, found))
        else:
            writer.write(_plain_response(200, found))

    async def _handle_submit(
        self, path: str, body: bytes, writer: asyncio.StreamWriter
    ) -> None:
        try:
            payload = json.loads(body.decode() or "null")
        except (json.JSONDecodeError, UnicodeDecodeError) as exc:
            raise ValueError(f"body is not valid JSON: {exc}") from exc
        if not isinstance(payload, dict):
            raise ValueError("body must be a JSON object (a RunSpec / CampaignSpec)")
        # The route names the spec kind; an explicit "kind" key must agree.
        kind = "run" if path == "/runs" else "campaign"
        declared = payload.get("kind")
        if declared is not None and declared != kind:
            raise ValueError(
                f"spec kind {declared!r} does not match the {path} route; "
                f"POST it to /{declared}s instead"
            )
        payload.setdefault("kind", kind)
        ticket = self.scheduler.submit(payload)  # raises before any streaming
        await self._stream_ticket(ticket, writer)

    async def _stream_ticket(
        self, ticket: CampaignTicket, writer: asyncio.StreamWriter
    ) -> None:
        """Send the ticket's events as chunked NDJSON, one chunk per event.

        ``ticket.events()`` blocks on worker futures, so each ``next()`` runs
        in the default executor; the loop stays free to serve other
        connections between events.
        """
        writer.write((
            "HTTP/1.1 200 OK\r\n"
            "Content-Type: application/x-ndjson\r\n"
            "Transfer-Encoding: chunked\r\n"
            "Connection: close\r\n"
            "\r\n"
        ).encode("latin-1"))
        await writer.drain()
        loop = asyncio.get_running_loop()
        events = ticket.events()
        sentinel: Any = object()
        while True:
            event = await loop.run_in_executor(None, next, events, sentinel)
            if event is sentinel:
                break
            writer.write(_chunk((_dumps(event) + "\n").encode()))
            await writer.drain()
        writer.write(b"0\r\n\r\n")
        await writer.drain()


@register_transport(
    "http",
    aliases=("rest",),
    description="stdlib asyncio HTTP/1.1 + chunked NDJSON streaming (POST "
                "/runs, POST /campaigns, GET /runs/{fp}, /stats, /metrics, "
                "/healthz)",
)
def http_transport(scheduler, *, host: str = "127.0.0.1", port: int = 8422) -> HttpTransport:
    """Build the HTTP transport (see :class:`HttpTransport`).

    Parameters
    ----------
    host : str
        Interface to bind; default loopback.
    port : int
        TCP port to listen on; ``0`` picks an ephemeral port.
    """
    return HttpTransport(scheduler, host=host, port=port)
