"""Named stage compositions: every strategy of the library as pipeline data.

The six legacy strategies (B/W/RW-TCTP, CHB, Sweep, Random) are expressed
here as four-stage compositions whose output is **byte-identical** to the
historical fused planners — each carries a metadata profile reproducing its
exact historical ``PatrolPlan.metadata``.  On top of those, this module
registers cross-combined strategies the fused planners could not express
(sweep-sector tours with VIP expansion, cluster-first tours with recharge
weaving, reversed traversal, random-offset initialisation) and the generic
``pipeline`` strategy whose four stage parameters make any composition
sweepable from campaign grids (``plan.tour``, ``plan.order``, ...) and the
CLI.
"""

from __future__ import annotations

import functools
from typing import Any, Callable, Mapping

from repro.core.btctp import expected_visiting_interval
from repro.planning.pipeline import (
    PlanningContext,
    PlanningPipeline,
    start_point_table,
)
from repro.planning.spec import PipelineSpec, StageSpec

__all__ = [
    "btctp_pipeline",
    "chb_pipeline",
    "sweep_pipeline",
    "random_pipeline",
    "wtctp_pipeline",
    "rwtctp_pipeline",
    "pipeline_strategy",
    "register_builtin_compositions",
]


# --------------------------------------------------------------------------- #
# Historical metadata profiles (byte-compat with the fused planners)
# --------------------------------------------------------------------------- #

def _btctp_metadata(ctx: PlanningContext) -> dict:
    lane = ctx.lanes[0]
    scenario = ctx.scenario
    metadata: dict[str, Any] = {
        "path_length": lane.tour.length(),
        "tour": lane.loop,
        "expected_visiting_interval": expected_visiting_interval(
            lane.tour.length(), scenario.num_mules, scenario.params.mule_velocity
        ),
    }
    if lane.start_points is not None:
        metadata["start_points"] = start_point_table(lane.start_points)
    return metadata


def _chb_metadata(ctx: PlanningContext) -> dict:
    lane = ctx.lanes[0]
    return {"path_length": lane.tour.length(), "tour": lane.loop}


def _sweep_metadata(ctx: PlanningContext) -> dict:
    return {"groups": [dict(lane.meta) for lane in ctx.lanes]}


def _random_metadata(ctx: PlanningContext) -> dict:
    stochastic = ctx.lanes[0].stochastic or {}
    return {"seed": stochastic.get("seed"), "candidates": len(stochastic.get("candidates", ()))}


def _wtctp_metadata(ctx: PlanningContext) -> dict:
    lane = ctx.lanes[0]
    return {
        "hamiltonian_length": lane.tour.length(),
        "wpp_length": lane.structure.length(),
        "walk": lane.loop,
        "policy": ctx.facts["policy"],
        "vip_cycles": {
            vip.id: [c.length for c in lane.structure.cycles_at(vip.id, lane.walk)]
            for vip in ctx.scenario.vips()
        },
    }


def _rwtctp_metadata(ctx: PlanningContext) -> dict:
    lane = ctx.lanes[0]
    return {
        "hamiltonian_length": lane.tour.length(),
        "wpp_length": lane.structure.length(),
        "wrp_length": lane.recharge_structure.length(),
        "patrol_rounds": lane.patrol_rounds,
        "policy": ctx.facts["policy"],
        "recharge_station": lane.recharge_id,
    }


# --------------------------------------------------------------------------- #
# The six legacy strategies as compositions
# --------------------------------------------------------------------------- #

def _memoize_pipeline(builder: Callable[..., PlanningPipeline]):
    """Reuse pipeline instances across plans with equal parameters.

    A :class:`PlanningPipeline` is immutable and carries no per-plan state
    (every ``plan()`` call threads a fresh context), so planners that are
    constructed repeatedly — every campaign cell builds its strategy — share
    one pipeline per parameter combination instead of re-coercing the stage
    specs each time.  Unhashable parameter values (dict-form stage specs)
    fall through to a direct build.
    """
    cache: dict[tuple, PlanningPipeline] = {}

    @functools.wraps(builder)
    def wrapper(**kwargs) -> PlanningPipeline:
        try:
            key = tuple(sorted(kwargs.items()))
            cached = cache.get(key)
        except TypeError:
            return builder(**kwargs)
        if cached is None:
            if len(cache) > 256:  # unbounded param sweeps must not leak
                cache.clear()
            cached = cache[key] = builder(**kwargs)
        return cached

    return wrapper


@_memoize_pipeline
def btctp_pipeline(
    *, tsp_method: str = "hull-insertion", improve_tour: bool = False,
    location_initialization: bool = True, name: str = "B-TCTP",
) -> PlanningPipeline:
    """``hamiltonian | none | as-built | equal-spacing`` (Section II)."""
    spec = PipelineSpec(
        tour=StageSpec("hamiltonian", {"tsp_method": tsp_method, "improve_tour": improve_tour}),
        augment=StageSpec("none"),
        order=StageSpec("as-built"),
        init=StageSpec("equal-spacing" if location_initialization else "depot-start"),
    )
    return PlanningPipeline(spec, name=name, metadata_profile=_btctp_metadata)


@_memoize_pipeline
def chb_pipeline(
    *, tsp_method: str = "hull-insertion", improve_tour: bool = False, name: str = "CHB",
) -> PlanningPipeline:
    """``hamiltonian | none | as-built | depot-start`` (reference [5])."""
    spec = PipelineSpec(
        tour=StageSpec("hamiltonian", {"tsp_method": tsp_method, "improve_tour": improve_tour}),
        augment=StageSpec("none"),
        order=StageSpec("as-built"),
        init=StageSpec("depot-start"),
    )
    return PlanningPipeline(spec, name=name, metadata_profile=_chb_metadata)


@_memoize_pipeline
def sweep_pipeline(
    *, include_sink_in_groups: bool = True, tsp_method: str = "hull-insertion",
    name: str = "Sweep",
) -> PlanningPipeline:
    """``sweep-sector | none | as-built | depot-start`` (reference [4])."""
    spec = PipelineSpec(
        tour=StageSpec("sweep-sector", {
            "include_sink_in_groups": include_sink_in_groups, "tsp_method": tsp_method,
        }),
        augment=StageSpec("none"),
        order=StageSpec("as-built"),
        init=StageSpec("depot-start"),
    )
    return PlanningPipeline(spec, name=name, metadata_profile=_sweep_metadata)


@_memoize_pipeline
def random_pipeline(
    *, seed: "int | None" = 0, include_sink: bool = True, avoid_repeat: bool = True,
    name: str = "Random",
) -> PlanningPipeline:
    """``pool | none | stochastic | depot-start`` (the Random baseline)."""
    spec = PipelineSpec(
        tour=StageSpec("pool", {"include_sink": include_sink}),
        augment=StageSpec("none"),
        order=StageSpec("stochastic", {"seed": seed, "avoid_repeat": avoid_repeat}),
        init=StageSpec("depot-start"),
    )
    return PlanningPipeline(spec, name=name, metadata_profile=_random_metadata)


@_memoize_pipeline
def wtctp_pipeline(
    *, policy: str = "balanced", tsp_method: str = "hull-insertion",
    improve_tour: bool = False, location_initialization: bool = True, name: str = "W-TCTP",
) -> PlanningPipeline:
    """``hamiltonian | wpp | ccw-angle | equal-spacing`` (Section III)."""
    spec = PipelineSpec(
        tour=StageSpec("hamiltonian", {"tsp_method": tsp_method, "improve_tour": improve_tour}),
        augment=StageSpec("wpp", {"policy": policy}),
        order=StageSpec("ccw-angle"),
        init=StageSpec("equal-spacing" if location_initialization else "depot-start"),
    )
    return PlanningPipeline(spec, name=name + "[{policy}]", metadata_profile=_wtctp_metadata)


@_memoize_pipeline
def rwtctp_pipeline(
    *, policy: str = "balanced", tsp_method: str = "hull-insertion",
    improve_tour: bool = False, location_initialization: bool = True,
    treat_targets_as_vips: bool = False, vip_weight: int = 2, name: str = "RW-TCTP",
) -> PlanningPipeline:
    """``hamiltonian | recharge | ccw-angle | equal-spacing`` (Section IV)."""
    spec = PipelineSpec(
        tour=StageSpec("hamiltonian", {"tsp_method": tsp_method, "improve_tour": improve_tour}),
        augment=StageSpec("recharge", {
            "policy": policy,
            "treat_targets_as_vips": treat_targets_as_vips,
            "vip_weight": vip_weight,
        }),
        order=StageSpec("ccw-angle"),
        init=StageSpec("equal-spacing" if location_initialization else "depot-start"),
    )
    return PlanningPipeline(spec, name=name + "[{policy}]", metadata_profile=_rwtctp_metadata)


#: Builders of the legacy compositions, keyed by strategy registry name.
LEGACY_PIPELINES: Mapping[str, Callable[..., PlanningPipeline]] = {
    "b-tctp": btctp_pipeline,
    "chb": chb_pipeline,
    "sweep": sweep_pipeline,
    "random": random_pipeline,
    "w-tctp": wtctp_pipeline,
    "rw-tctp": rwtctp_pipeline,
}


def composition_validator(builder: Callable[..., PlanningPipeline]):
    """Strategy-level parameter validator derived from a pipeline builder.

    Builds the composition from the given params (without planning anything)
    and validates every stage — so a typo'd ``tsp_method`` or out-of-range
    ``vip_weight`` in a campaign grid fails before any simulation runs, with
    the stage registry's did-you-mean suggestions.
    """

    def validate(params: Mapping[str, Any]) -> None:
        kwargs = {k: v for k, v in params.items() if k != "seed" or _accepts_seed(builder)}
        builder(**kwargs).validate()

    def _accepts_seed(fn: Callable) -> bool:
        import inspect

        return "seed" in inspect.signature(fn).parameters

    return validate


# --------------------------------------------------------------------------- #
# New cross-combined strategies
# --------------------------------------------------------------------------- #

@_memoize_pipeline
def sw_tctp_pipeline(
    *, policy: str = "balanced", include_sink_in_groups: bool = True,
    tsp_method: str = "hull-insertion",
) -> PlanningPipeline:
    """Sweep-sector circuits with per-sector W-TCTP VIP expansion.

    Previously inexpressible: Sweep ignored target weights, W-TCTP required a
    single shared circuit.  Here each mule's sector circuit gets the Section
    III cycle construction for the VIPs inside its sector, traversed with the
    counter-clockwise angle rule.
    """
    spec = PipelineSpec(
        tour=StageSpec("sweep-sector", {
            "include_sink_in_groups": include_sink_in_groups, "tsp_method": tsp_method,
        }),
        augment=StageSpec("wpp", {"policy": policy}),
        order=StageSpec("ccw-angle"),
        init=StageSpec("depot-start"),
    )
    return PlanningPipeline(spec, name="SW-TCTP[{policy}]")


@_memoize_pipeline
def cb_tctp_pipeline(*, num_clusters: "int | None" = None) -> PlanningPipeline:
    """Cluster-first tour with B-TCTP's equal-spacing initialisation."""
    spec = PipelineSpec(
        tour=StageSpec("cluster-first", {"num_clusters": num_clusters}),
        augment=StageSpec("none"),
        order=StageSpec("as-built"),
        init=StageSpec("equal-spacing"),
    )
    return PlanningPipeline(spec, name="CB-TCTP")


@_memoize_pipeline
def crw_tctp_pipeline(
    *, policy: str = "balanced", num_clusters: "int | None" = None,
    treat_targets_as_vips: bool = False, vip_weight: int = 2,
) -> PlanningPipeline:
    """Cluster-first tour with Section-IV recharge weaving (needs a station)."""
    spec = PipelineSpec(
        tour=StageSpec("cluster-first", {"num_clusters": num_clusters}),
        augment=StageSpec("recharge", {
            "policy": policy,
            "treat_targets_as_vips": treat_targets_as_vips,
            "vip_weight": vip_weight,
        }),
        order=StageSpec("ccw-angle"),
        init=StageSpec("equal-spacing"),
    )
    return PlanningPipeline(spec, name="CRW-TCTP[{policy}]")


@_memoize_pipeline
def btctp_cw_pipeline(
    *, tsp_method: str = "hull-insertion", improve_tour: bool = False,
) -> PlanningPipeline:
    """B-TCTP patrolled clockwise: the shared circuit, traversal reversed."""
    spec = PipelineSpec(
        tour=StageSpec("hamiltonian", {"tsp_method": tsp_method, "improve_tour": improve_tour}),
        augment=StageSpec("none"),
        order=StageSpec("reversed"),
        init=StageSpec("equal-spacing"),
    )
    return PlanningPipeline(spec, name="B-TCTP-CW")


@_memoize_pipeline
def staggered_chb_pipeline(
    *, seed: "int | None" = 0, tsp_method: str = "hull-insertion",
) -> PlanningPipeline:
    """CHB's shared circuit with seeded random arc-offset initialisation.

    Sits between CHB (mules bunch where deployed) and B-TCTP (perfect equal
    spacing): the offsets are uncoordinated but at least spread over the lap.
    """
    spec = PipelineSpec(
        tour=StageSpec("hamiltonian", {"tsp_method": tsp_method, "improve_tour": False}),
        augment=StageSpec("none"),
        order=StageSpec("as-built"),
        init=StageSpec("random-offset", {"seed": seed}),
    )
    return PlanningPipeline(spec, name="Staggered-CHB")


# --------------------------------------------------------------------------- #
# The generic, fully sweepable pipeline strategy
# --------------------------------------------------------------------------- #

@_memoize_pipeline
def pipeline_strategy(
    *,
    tour: "str | Mapping | StageSpec" = "hamiltonian",
    augment: "str | Mapping | StageSpec" = "none",
    order: "str | Mapping | StageSpec" = "as-built",
    init: "str | Mapping | StageSpec" = "equal-spacing",
) -> PlanningPipeline:
    """Compose a planning pipeline from four stage specs.

    Each parameter accepts a backend name (``"ccw-angle"``), a compact string
    with parameters (``"wpp:policy=shortest"``), or a
    ``{"name": ..., "params": {...}}`` dict — exactly the spellings campaign
    grid axes (``plan.tour``, ``plan.order``, ...) and the CLI's ``--param``
    option pass through.

    Examples
    --------
    >>> from repro.baselines.base import get_strategy
    >>> planner = get_strategy("pipeline", tour="cluster-first", order="reversed")
    >>> planner.name
    'Pipeline[cluster-first|none|reversed|equal-spacing]'
    """
    spec = PipelineSpec(tour=tour, augment=augment, order=order, init=init).validate()
    name = f"Pipeline[{spec.tour.name}|{spec.augment.name}|{spec.order.name}|{spec.init.name}]"
    return PlanningPipeline(spec, name=name)


def _validate_pipeline_params(params: Mapping[str, Any]) -> None:
    pipeline_strategy(**{k: v for k, v in params.items()})


# --------------------------------------------------------------------------- #
# Registration
# --------------------------------------------------------------------------- #

def register_builtin_compositions() -> None:
    """Register the cross-combined strategies and the generic ``pipeline``.

    Called by the strategy registry's lazy default loading
    (:func:`repro.baselines.base._ensure_defaults`); idempotence is the
    caller's concern (the registry guards with ``_defaults_loaded``).
    """
    from repro.baselines.base import register_strategy

    entries = (
        ("sw-tctp", sw_tctp_pipeline, ("sweep-w",),
         "sweep-sector circuits with per-sector W-TCTP VIP expansion"),
        ("cb-tctp", cb_tctp_pipeline, ("cluster-b",),
         "cluster-first tour + equally spaced start points"),
        ("crw-tctp", crw_tctp_pipeline, ("cluster-rw",),
         "cluster-first tour + recharge weaving (needs a recharge station)"),
        ("b-tctp-cw", btctp_cw_pipeline, ("btctp-cw",),
         "B-TCTP traversed clockwise (reversed patrol direction)"),
        ("staggered-chb", staggered_chb_pipeline, (),
         "shared circuit + seeded random arc-offset initialisation"),
    )
    for name, builder, aliases, description in entries:
        register_strategy(
            name, builder, aliases=aliases, description=description,
            validator=composition_validator(builder), composition=builder().spec,
        )
    register_strategy(
        "pipeline", pipeline_strategy, aliases=("composed",),
        description="any four-stage composition: tour | augment | order | init "
                    "(each a stage spec like 'wpp:policy=shortest')",
        validator=_validate_pipeline_params, composition=PipelineSpec(),
    )
