"""The composable planning pipeline: four stages from scenario to patrol plan.

Every strategy in the library — the paper's three TCTP variants, the three
baselines, and any cross-combination — is the same four-stage computation:

1. **tour** — build the base circuit(s): one shared Hamiltonian circuit
   (TCTP/CHB), one angular-sector circuit per mule (Sweep), a cluster-first
   chain, or a bare candidate pool (Random);
2. **augment** — lift each circuit into a weighted patrol structure: the WPP
   cycle construction of Section III, the recharge-path weaving of Section
   IV, or nothing;
3. **order** — fix the traversal: the counter-clockwise minimal-included-angle
   patrolling rule, the circuit's as-built order, its reverse, or online
   stochastic waypoint selection;
4. **init** — place the mules: equal-spacing start points with the paper's
   energy-based conflict rule, depot-start (enter at the nearest waypoint),
   or seeded random arc offsets.

The pipeline threads a :class:`PlanningContext` through the four registered
backends (see :mod:`repro.planning.stages`) and assembles the final
:class:`~repro.core.plan.PatrolPlan`.  Stage state flows through
:class:`Lane` objects — one lane per independent patrol circuit, so shared-
circuit strategies use a single lane covering every mule while Sweep-style
strategies use one lane per mule.  Route construction uses the exact same
route classes as the fused legacy planners (:class:`~repro.core.plan.LoopRoute`
and friends), so the analytic fast path of :mod:`repro.sim.fastpath` applies
to composed strategies exactly as it does to the built-ins.
"""

from __future__ import annotations

from dataclasses import dataclass, field as dc_field
from typing import Any, Callable

from repro.core.plan import MuleRoute, PatrolPlan
from repro.core.start_points import StartPoint
from repro.geometry.point import Point
from repro.graphs.multitour import MultiTour
from repro.graphs.tour import Tour
from repro.network.scenario import Scenario
from repro.obs import registry as _obs
from repro.planning.spec import PipelineSpec
from repro.planning.stages import stage_backend_info

__all__ = ["Lane", "PlanningContext", "PlanningPipeline"]


@dataclass(slots=True)
class Lane:
    """One independent patrol circuit and the mules assigned to it.

    The tour stage creates lanes; the augment and order stages refine them in
    place; the init stage reads the finished lanes to construct routes.
    """

    mule_ids: tuple[str, ...]
    #: the constructed base circuit; ``None`` for pool lanes, which carry a
    #: bare candidate set instead (no circuit to traverse).
    tour: "Tour | None"
    #: candidate waypoints of a pool lane (stochastic ordering draws from these).
    candidates: "list[str] | None" = None
    #: target ids of the lane's group (sector/cluster partitions); ``None``
    #: when the lane covers the whole scenario.
    group_targets: "tuple[str, ...] | None" = None
    #: lane-local metadata contributed by the tour stage (e.g. Sweep's groups).
    meta: dict = dc_field(default_factory=dict)

    # -- augment stage ---------------------------------------------------- #
    structure: "MultiTour | None" = None
    recharge_structure: "MultiTour | None" = None
    weights: "dict[str, int] | None" = None
    recharge_id: "str | None" = None
    patrol_rounds: int = 1

    # -- order stage ------------------------------------------------------ #
    #: closed traversal walk (first node repeated at the end) and its lap.
    walk: "list[str] | None" = None
    loop: "list[str] | None" = None
    recharge_loop: "list[str] | None" = None
    coords: "dict[str, Point] | None" = None
    #: set by the stochastic order backend: ``{"seed", "avoid_repeat", "candidates"}``.
    stochastic: "dict | None" = None

    # -- init stage ------------------------------------------------------- #
    start_points: "tuple[StartPoint, ...] | None" = None

    @property
    def augmented(self) -> bool:
        return self.structure is not None


@dataclass(slots=True)
class PlanningContext:
    """Mutable state threaded through the four pipeline stages."""

    scenario: Scenario
    spec: PipelineSpec
    lanes: list[Lane] = dc_field(default_factory=list)
    #: cross-stage facts for metadata/naming (e.g. the resolved policy name).
    facts: dict[str, Any] = dc_field(default_factory=dict)

    @property
    def single_lane(self) -> "Lane | None":
        """The lane, when the whole scenario runs on one shared circuit."""
        return self.lanes[0] if len(self.lanes) == 1 else None

    def lane_mules(self, lane: Lane):
        """The lane's mule objects, in scenario order."""
        mules = self.scenario.mules
        if len(lane.mule_ids) == len(mules):  # the common shared-circuit lane
            return list(mules)
        wanted = set(lane.mule_ids)
        return [m for m in mules if m.id in wanted]


class PlanningPipeline:
    """Executable form of a :class:`PipelineSpec`; satisfies ``PatrolStrategy``.

    Parameters
    ----------
    spec:
        The four-stage composition to run.
    name:
        Display name recorded as ``PatrolPlan.strategy``.  May contain
        ``{policy}``, which resolves to the augment stage's break-edge policy
        name at planning time (mirroring ``"W-TCTP[balanced]"``).
    metadata_profile:
        Optional callable mapping the finished :class:`PlanningContext` to the
        plan's metadata dict.  The legacy strategies install profiles that
        reproduce their historical metadata byte for byte; composed strategies
        default to :func:`default_metadata`.

    Examples
    --------
    >>> from repro.planning import PipelineSpec, PlanningPipeline
    >>> from repro.scenarios import get_scenario
    >>> spec = PipelineSpec(tour="hamiltonian", augment="none",
    ...                     order="as-built", init="equal-spacing")
    >>> plan = PlanningPipeline(spec, name="demo").plan(get_scenario("uniform"))
    >>> sorted(plan.mule_ids)[:2]
    ['m1', 'm2']
    """

    def __init__(
        self,
        spec: PipelineSpec,
        *,
        name: str = "pipeline",
        metadata_profile: "Callable[[PlanningContext], dict] | None" = None,
    ) -> None:
        self.spec = spec
        self.name = name
        self.metadata_profile = metadata_profile
        # Backend resolution memoized per pipeline: specs are immutable and
        # campaign cells re-plan through shared pipeline instances.
        self._resolved: "list[tuple[str, str, Callable, dict]] | None" = None
        self._name_is_template = "{policy}" in name

    def __repr__(self) -> str:  # pragma: no cover - debugging helper
        return f"PlanningPipeline({self.spec.compact()!r}, name={self.name!r})"

    # ------------------------------------------------------------------ #
    def validate(self) -> "PlanningPipeline":
        """Validate the underlying spec (names, params, stage compatibility)."""
        self.spec.validate()
        return self

    def plan(self, scenario: Scenario) -> PatrolPlan:
        """Run the four stages and assemble the patrol plan."""
        if self._resolved is None:
            self._resolved = [
                (kind, stage.name,
                 stage_backend_info(kind, stage.name).factory, dict(stage.params))
                for kind, stage in self.spec.stages()
            ]
        ctx = PlanningContext(scenario=scenario, spec=self.spec)
        routes: "dict[str, MuleRoute] | None" = None
        for kind, backend, factory, params in self._resolved:
            with _obs.span(f"stage:{kind}", cat="planning", backend=backend):
                result = factory(ctx, **params)
            if kind == "init":
                routes = result
        assert routes is not None  # the init stage always returns the routes
        try:
            ordered = {m.id: routes[m.id] for m in scenario.mules}
        except KeyError:
            missing = [m.id for m in scenario.mules if m.id not in routes]
            raise ValueError(f"init stage produced no route for mule(s): {missing}") from None
        profile = self.metadata_profile or default_metadata
        return PatrolPlan(
            strategy=self._display_name(ctx), routes=ordered, metadata=profile(ctx)
        )

    def _display_name(self, ctx: PlanningContext) -> str:
        if self._name_is_template:
            return self.name.format(policy=ctx.facts.get("policy", "?"))
        return self.name


def default_metadata(ctx: PlanningContext) -> dict:
    """Stage-derived metadata for composed strategies.

    The legacy six install exact historical profiles instead (see
    :mod:`repro.planning.compositions`); everything else gets this uniform
    assembly: the pipeline composition itself plus whatever the stages
    produced (tour/structure lengths, traversal walk, groups, start points).
    """
    md: dict[str, Any] = {"pipeline": ctx.spec.to_dict()}
    lane = ctx.single_lane
    if lane is None:
        md["groups"] = [dict(ln.meta) for ln in ctx.lanes if ln.meta]
        return md
    if lane.stochastic is not None:
        md["seed"] = lane.stochastic.get("seed")
        md["candidates"] = len(lane.stochastic.get("candidates", ()))
        return md
    md["path_length"] = lane.tour.length()
    if lane.structure is not None:
        md["wpp_length"] = lane.structure.length()
        if "policy" in ctx.facts:
            md["policy"] = ctx.facts["policy"]
    if lane.recharge_structure is not None:
        md["wrp_length"] = lane.recharge_structure.length()
        md["patrol_rounds"] = lane.patrol_rounds
        md["recharge_station"] = lane.recharge_id
    if lane.loop is not None:
        md["walk"] = list(lane.loop)
    if lane.start_points is not None:
        md["start_points"] = start_point_table(lane.start_points)
    return md


def start_point_table(start_points) -> list[dict]:
    """The historical JSON-safe start-point table (B-TCTP metadata format)."""
    return [
        {"index": sp.index, "x": sp.position.x, "y": sp.position.y, "arc": sp.arc_length}
        for sp in start_points
    ]
