"""Built-in stage backends: every planning step of the library as a plug-in.

Each backend replicates one step of the historical fused planners exactly —
the byte-identity tests in ``tests/test_planning_identity.py`` hold the
compositions to the pre-refactor golden plans — plus the new cross-combinable
backends (cluster-first tours, reversed ordering, random-offset
initialisation) that the fused planners could not express.

Backend contract (see :mod:`repro.planning.stages`):

* every backend takes the :class:`~repro.planning.pipeline.PlanningContext`
  as its only positional argument and declares stage parameters keyword-only;
* **tour** backends populate ``ctx.lanes``;
* **augment** and **order** backends refine the lanes in place;
* **init** backends return the finished ``{mule_id: MuleRoute}`` mapping.
"""

from __future__ import annotations

import math

import numpy as np

from repro.baselines.sweep import partition_targets_balanced
from repro.core.plan import AlternatingLoopRoute, LoopRoute, MuleRoute, StochasticRoute
from repro.core.policies import POLICIES, get_policy
from repro.core.rwtctp import compute_patrol_rounds, insert_recharge_station
from repro.core.start_points import (
    StartPoint,
    assign_mules_to_start_points,
    compute_start_points,
)
from repro.core.wtctp import build_wpp_structure
from repro.core.patrol_rules import build_patrol_walk
from repro.geometry.point import as_point, centroid
from repro.geometry.polyline import Polyline
from repro.graphs.hamiltonian import TOUR_BUILDERS, build_hamiltonian_circuit
from repro.graphs.multitour import MultiTour
from repro.graphs.tour import Tour
from repro.graphs.validation import validate_tour, validate_walk_visits
from repro.planning.pipeline import Lane, PlanningContext
from repro.planning.stages import did_you_mean, register_stage

__all__: list[str] = []  # backends are reached through the stage registry


# --------------------------------------------------------------------------- #
# Shared parameter validators
# --------------------------------------------------------------------------- #

def _check_tsp_method(params: dict) -> None:
    method = params.get("tsp_method")
    if method is not None and method not in TOUR_BUILDERS:
        raise ValueError(
            f"unknown tour construction method {method!r}; expected one of "
            f"{sorted(TOUR_BUILDERS)}{did_you_mean(method, TOUR_BUILDERS)}"
        )


def _check_policy(params: dict) -> None:
    policy = params.get("policy")
    if isinstance(policy, str) and policy.lower() not in POLICIES:
        raise ValueError(
            f"unknown break-edge policy {policy!r}; expected one of "
            f"{sorted(set(POLICIES))}{did_you_mean(policy, POLICIES)}"
        )


# --------------------------------------------------------------------------- #
# Tour stage
# --------------------------------------------------------------------------- #

@register_stage(
    "tour", "hamiltonian", aliases=("hull", "shared-circuit"),
    description="one shared Hamiltonian circuit over all targets plus the sink",
    validator=_check_tsp_method,
)
def tour_hamiltonian(
    ctx: PlanningContext, *, tsp_method: str = "hull-insertion", improve_tour: bool = False
) -> None:
    # Construction (and the optional 2-opt pass) dispatches to the vectorized
    # planning kernels when REPRO_PLANNING_VECTOR is on — byte-identical
    # circuits either way (see repro.planning.kernels).
    scenario = ctx.scenario
    coords = scenario.patrol_points()
    tour = build_hamiltonian_circuit(
        coords, method=tsp_method, improve=improve_tour, start=scenario.sink.id
    )
    validate_tour(tour, expected_nodes=list(coords))
    ctx.lanes = [Lane(mule_ids=tuple(m.id for m in scenario.mules), tour=tour)]


@register_stage(
    "tour", "sweep-sector", aliases=("sector",),
    description="one angular-sector circuit per mule (the Sweep partition)",
    validator=_check_tsp_method,
)
def tour_sweep_sector(
    ctx: PlanningContext, *, include_sink_in_groups: bool = True,
    tsp_method: str = "hull-insertion",
) -> None:
    scenario = ctx.scenario
    center = scenario.field.center if scenario.field is not None else centroid(
        [t.position for t in scenario.targets]
    )
    groups = partition_targets_balanced(list(scenario.targets), scenario.num_mules, center)
    lanes: list[Lane] = []
    for mule, group in zip(scenario.mules, groups):
        coords = {t.id: t.position for t in group}
        if include_sink_in_groups or not coords:
            coords[scenario.sink.id] = scenario.sink.position
        start = scenario.sink.id if scenario.sink.id in coords else next(iter(coords))
        tour = build_hamiltonian_circuit(coords, method=tsp_method, start=start)
        lanes.append(Lane(
            mule_ids=(mule.id,),
            tour=tour,
            group_targets=tuple(t.id for t in group),
            meta={
                "mule": mule.id,
                "targets": [t.id for t in group],
                "cycle_length": tour.length(),
            },
        ))
    ctx.lanes = lanes


def _check_cluster_params(params: dict) -> None:
    k = params.get("num_clusters")
    if k is not None and (not isinstance(k, int) or isinstance(k, bool) or k < 1):
        raise ValueError(f"num_clusters must be a positive integer or None, got {k!r}")


def _kmeans_labels(pts: np.ndarray, k: int) -> np.ndarray:
    """Deterministic k-means: farthest-point seeding + a bounded Lloyd loop."""
    n = len(pts)
    if k >= n:
        return np.arange(n)
    seeds = [0]
    d2 = ((pts - pts[0]) ** 2).sum(axis=1)
    while len(seeds) < k:
        nxt = int(np.argmax(d2))
        seeds.append(nxt)
        d2 = np.minimum(d2, ((pts - pts[nxt]) ** 2).sum(axis=1))
    centroids = pts[seeds].copy()
    labels = np.zeros(n, dtype=int)
    for _ in range(25):
        dists = ((pts[:, None, :] - centroids[None, :, :]) ** 2).sum(axis=2)
        labels = dists.argmin(axis=1)
        updated = centroids.copy()
        for j in range(k):
            members = pts[labels == j]
            if len(members):
                updated[j] = members.mean(axis=0)
        if np.allclose(updated, centroids):
            break
        centroids = updated
    return labels


@register_stage(
    "tour", "cluster-first", aliases=("cluster",),
    description="cluster targets (deterministic k-means), chain the clusters "
                "nearest-first from the sink, nearest-neighbour inside each",
    validator=_check_cluster_params,
)
def tour_cluster_first(ctx: PlanningContext, *, num_clusters: "int | None" = None) -> None:
    scenario = ctx.scenario
    coords = scenario.patrol_points()
    targets = list(scenario.targets)
    if not targets:
        raise ValueError("cluster-first tours need at least one target")
    if num_clusters is None:
        k = max(1, int(round(math.sqrt(len(targets)))))
    else:
        k = int(num_clusters)
        if k < 1:
            raise ValueError(f"num_clusters must be a positive integer or None, got {num_clusters!r}")
    k = min(k, len(targets))
    pts = np.array([[t.position.x, t.position.y] for t in targets], dtype=float)
    labels = _kmeans_labels(pts, k)
    clusters = [[t for t, lab in zip(targets, labels) if lab == j] for j in range(k)]
    clusters = [c for c in clusters if c]

    order = [scenario.sink.id]
    current = scenario.sink.position
    while clusters:
        ci = min(
            range(len(clusters)),
            key=lambda i: (current.distance_to(centroid([t.position for t in clusters[i]])), i),
        )
        cluster = clusters.pop(ci)
        while cluster:
            ti = min(
                range(len(cluster)),
                key=lambda i: (current.distance_to(cluster[i].position), str(cluster[i].id)),
            )
            nxt = cluster.pop(ti)
            order.append(nxt.id)
            current = nxt.position
    tour = Tour(order, coords)
    validate_tour(tour, expected_nodes=list(coords))
    ctx.lanes = [Lane(mule_ids=tuple(m.id for m in scenario.mules), tour=tour)]


@register_stage(
    "tour", "pool", aliases=("candidates",),
    description="no constructed circuit: the bare candidate pool (targets "
                "plus, optionally, the sink) for online waypoint selection",
)
def tour_pool(ctx: PlanningContext, *, include_sink: bool = True) -> None:
    scenario = ctx.scenario
    candidates = [t.id for t in scenario.targets]
    if include_sink:
        candidates.append(scenario.sink.id)
    lane = Lane(
        mule_ids=tuple(m.id for m in scenario.mules),
        tour=None,
        candidates=candidates,
    )
    # Full coordinate map (sink included even when it is not a candidate),
    # exactly what the stochastic routes historically received.
    lane.coords = scenario.patrol_points()
    ctx.lanes = [lane]


# --------------------------------------------------------------------------- #
# Augment stage
# --------------------------------------------------------------------------- #

@register_stage(
    "augment", "none", aliases=("identity",),
    description="no augmentation: traverse the base circuit as constructed",
)
def augment_none(ctx: PlanningContext) -> None:
    return None


def _require_tour(lane: Lane, stage: str):
    if lane.tour is None:
        raise ValueError(
            f"the {stage!r} stage needs a constructed circuit; 'pool' tours "
            "provide only a candidate set"
        )
    return lane.tour


@register_stage(
    "augment", "wpp", aliases=("weighted", "vip"),
    description="Section III cycle construction: a VIP of weight w joins w "
                "cycles of the weighted patrolling path",
    validator=_check_policy,
)
def augment_wpp(ctx: PlanningContext, *, policy: str = "balanced") -> None:
    weights = ctx.scenario.weights()
    for lane in ctx.lanes:
        tour = _require_tour(lane, "wpp augment")
        lane.structure, lane.weights = build_wpp_structure(tour, weights, policy)
    ctx.facts["policy"] = get_policy(policy).name


def _check_recharge_params(params: dict) -> None:
    _check_policy(params)
    w = params.get("vip_weight")
    if w is not None and (not isinstance(w, int) or isinstance(w, bool) or w < 1):
        raise ValueError(f"vip_weight must be a positive integer, got {w!r}")


@register_stage(
    "augment", "recharge", aliases=("wrp", "recharge-weave"),
    description="Section IV: build the WPP, then weave the recharge station "
                "in (Exp. 3) and schedule Equation (4)'s patrol rounds",
    validator=_check_recharge_params,
)
def augment_recharge(
    ctx: PlanningContext, *, policy: str = "balanced",
    treat_targets_as_vips: bool = False, vip_weight: int = 2,
) -> None:
    scenario = ctx.scenario
    if scenario.recharge_station is None:
        raise ValueError(
            "the recharge augment stage requires a scenario with a recharge station"
        )
    weights = scenario.weights()
    if treat_targets_as_vips:
        weights = {
            n: (max(w, vip_weight) if n != scenario.sink.id else w)
            for n, w in weights.items()
        }
    station = scenario.recharge_station
    for lane in ctx.lanes:
        tour = _require_tour(lane, "recharge augment")
        lane.structure, lane.weights = build_wpp_structure(tour, weights, policy)
        lane.recharge_structure = insert_recharge_station(
            lane.structure, lane.weights, station.id, station.position
        )
        lane.recharge_id = station.id
        lane.patrol_rounds = compute_patrol_rounds(scenario, lane.structure.length())
    ctx.facts["policy"] = get_policy(policy).name


# --------------------------------------------------------------------------- #
# Order stage
# --------------------------------------------------------------------------- #

def _trim_closed_walk(walk: "list[str]") -> "list[str]":
    """One lap of a closed walk (drop the repeated head, if any)."""
    if len(walk) > 1 and walk[0] == walk[-1]:
        return list(walk[:-1])
    return list(walk)


def _natural_walks(lane: Lane) -> None:
    """The lane's natural traversal: as-built for plain circuits, the
    counter-clockwise minimal-included-angle patrolling rule for structures."""
    if lane.tour is None:
        raise ValueError(
            "this order backend needs a constructed circuit; the 'pool' tour "
            "provides only a candidate set (use order='stochastic')"
        )
    if lane.structure is None and lane.recharge_structure is None:
        loop = list(lane.tour.order)
        lane.loop = loop
        lane.walk = loop + loop[:1]
        lane.coords = lane.tour.coordinates
        return
    start = lane.tour.order[0]
    walk = build_patrol_walk(lane.structure, start)
    if lane.weights is not None:
        validate_walk_visits(walk, lane.weights)
    lane.walk = walk
    lane.loop = _trim_closed_walk(walk)
    lane.coords = lane.structure.coordinates
    if lane.recharge_structure is not None:
        recharge_walk = build_patrol_walk(lane.recharge_structure, start)
        combined = dict(lane.weights or {})
        combined[lane.recharge_id] = 1
        validate_walk_visits(recharge_walk, combined)
        lane.recharge_loop = _trim_closed_walk(recharge_walk)
        # superset: includes the recharge station
        lane.coords = lane.recharge_structure.coordinates


@register_stage(
    "order", "as-built", aliases=("forward", "tour-order"),
    description="traverse the circuit in construction order",
)
def order_as_built(ctx: PlanningContext) -> None:
    for lane in ctx.lanes:
        if lane.augmented:
            raise ValueError(
                "as-built ordering cannot traverse a weighted structure; "
                "use the 'ccw-angle' (or 'reversed') order backend"
            )
        _natural_walks(lane)


@register_stage(
    "order", "ccw-angle", aliases=("ccw", "angle-rule"),
    description="the paper's counter-clockwise minimal-included-angle "
                "patrolling rule (a specific Euler circuit of the structure)",
)
def order_ccw_angle(ctx: PlanningContext) -> None:
    for lane in ctx.lanes:
        if lane.structure is None:
            # A plain circuit is still a (degree-2) structure; the angle rule
            # picks a deterministic direction around it.
            lane.structure = MultiTour.from_tour(_require_tour(lane, "ccw-angle order"))
        _natural_walks(lane)


@register_stage(
    "order", "reversed", aliases=("cw", "clockwise"),
    description="the natural traversal, reversed (clockwise patrol)",
)
def order_reversed(ctx: PlanningContext) -> None:
    for lane in ctx.lanes:
        _natural_walks(lane)
        lane.loop = [lane.loop[0]] + lane.loop[:0:-1]
        lane.walk = lane.loop + lane.loop[:1]
        if lane.recharge_loop is not None:
            lane.recharge_loop = [lane.recharge_loop[0]] + lane.recharge_loop[:0:-1]


@register_stage(
    "order", "stochastic", aliases=("random-walk",),
    description="online waypoint selection: each next target drawn from a "
                "seeded per-mule random stream",
)
def order_stochastic(
    ctx: PlanningContext, *, seed: "int | None" = 0, avoid_repeat: bool = True
) -> None:
    for lane in ctx.lanes:
        if lane.augmented:
            raise ValueError("stochastic ordering cannot traverse a weighted structure")
        lane.stochastic = {
            "seed": seed,
            "avoid_repeat": bool(avoid_repeat),
            # Pool lanes carry an explicit candidate set; for constructed
            # circuits the tour's nodes are the candidates.
            "candidates": list(lane.candidates if lane.candidates is not None
                               else lane.tour.order),
        }
        if lane.coords is None:  # pool lanes already carry the full map
            lane.coords = ctx.scenario.patrol_points()


# --------------------------------------------------------------------------- #
# Init stage
# --------------------------------------------------------------------------- #

def _make_route(lane: Lane, mule_id: str, *, entry_index: int, start) -> MuleRoute:
    if lane.recharge_loop is not None:
        return AlternatingLoopRoute(
            mule_id,
            lane.loop,
            lane.recharge_loop,
            lane.coords,
            patrol_rounds=lane.patrol_rounds,
            entry_index=entry_index,
            start=start,
        )
    return LoopRoute(mule_id, lane.loop, lane.coords, entry_index=entry_index, start=start)


def _require_lap(lane: Lane, backend: str) -> None:
    if lane.stochastic is not None or lane.loop is None:
        raise ValueError(
            f"the {backend!r} initialisation needs a fixed patrol lap; "
            "stochastic routes have none (use 'depot-start')"
        )


@register_stage(
    "init", "equal-spacing", aliases=("location-initialization", "start-points"),
    description="Section 2.2-B location initialisation: equal-length start "
                "points, closest-first claims, energy-based displacement",
)
def init_equal_spacing(ctx: PlanningContext) -> "dict[str, MuleRoute]":
    routes: dict[str, MuleRoute] = {}
    for lane in ctx.lanes:
        _require_lap(lane, "equal-spacing")
        mules = ctx.lane_mules(lane)
        start_points = compute_start_points(lane.loop, lane.coords, len(mules))
        assignment = assign_mules_to_start_points(
            start_points,
            {m.id: m.position for m in mules},
            {m.id: m.remaining_energy for m in mules},
        )
        lane.start_points = start_points
        for mule in mules:
            sp = assignment.start_point_for(mule.id)
            routes[mule.id] = _make_route(
                lane, mule.id, entry_index=sp.entry_index, start=sp.position
            )
    return routes


@register_stage(
    "init", "depot-start", aliases=("nearest", "as-deployed"),
    description="no initialisation phase: each mule starts where it was "
                "deployed and enters the lap at its nearest waypoint",
)
def init_depot_start(ctx: PlanningContext) -> "dict[str, MuleRoute]":
    routes: dict[str, MuleRoute] = {}
    for lane in ctx.lanes:
        mules = ctx.lane_mules(lane)
        if lane.stochastic is not None:
            seed_seq = np.random.SeedSequence(lane.stochastic["seed"])
            children = seed_seq.spawn(len(mules))
            for child, mule in zip(children, mules):
                routes[mule.id] = StochasticRoute(
                    mule.id,
                    lane.stochastic["candidates"],
                    lane.coords,
                    rng=np.random.default_rng(child),
                    avoid_repeat=lane.stochastic["avoid_repeat"],
                )
            continue
        # Resolve the lap's coordinates once; the per-mule scan below matches
        # the historical tie-breaking exactly (first index of minimal distance).
        lap_points = [lane.coords[n] for n in lane.loop]
        for mule in mules:
            position = mule.position
            entry = min(
                range(len(lap_points)),
                key=lambda i: position.distance_to(lap_points[i]),
            )
            routes[mule.id] = _make_route(lane, mule.id, entry_index=entry, start=None)
    return routes


def _check_offset_seed(params: dict) -> None:
    seed = params.get("seed")
    if seed is not None and (not isinstance(seed, int) or isinstance(seed, bool)):
        raise ValueError(f"seed must be an integer or None, got {seed!r}")


@register_stage(
    "init", "random-offset", aliases=("staggered",),
    description="seeded uniform-random arc-length offsets along the lap "
                "(uncoordinated spacing, for ablating the start-point rule)",
    validator=_check_offset_seed,
)
def init_random_offset(ctx: PlanningContext, *, seed: "int | None" = 0) -> "dict[str, MuleRoute]":
    routes: dict[str, MuleRoute] = {}
    rng = np.random.default_rng(np.random.SeedSequence(seed))
    for lane in ctx.lanes:
        _require_lap(lane, "random-offset")
        mules = ctx.lane_mules(lane)
        pts = [as_point(lane.coords[n]) for n in lane.loop]
        poly = Polyline(pts, closed=True)
        total = poly.length
        cumulative = [poly.arc_length_of_vertex(i) for i in range(len(lane.loop))]
        offsets = rng.uniform(0.0, total if total > 0 else 1.0, size=len(mules))
        start_points: list[StartPoint] = []
        for index, (mule, raw) in enumerate(zip(mules, offsets)):
            s = float(raw) % total if total > 0 else 0.0
            entry = _entry_index_after(s, cumulative, total)
            position = poly.point_at(s)
            start_points.append(
                StartPoint(index=index, position=position, arc_length=s, entry_index=entry)
            )
            routes[mule.id] = _make_route(lane, mule.id, entry_index=entry, start=position)
        lane.start_points = tuple(start_points)
    return routes


def _entry_index_after(s: float, cumulative, total: float, *, eps: float = 1e-9) -> int:
    """Index of the first lap vertex at arc length >= ``s`` (wrapping around)."""
    if total <= 0:
        return 0
    for i, c in enumerate(cumulative):
        if c >= s - eps:
            return i
    return 0  # wrapped past the last vertex: the next node is the lap head
