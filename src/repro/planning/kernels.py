"""Vectorized planning kernels: the scalar tour heuristics as NumPy passes.

PR 3/8 made *simulation* run at tensor speed; this module does the same for
*planning*.  The four hot loops of tour construction and improvement —

* cheapest insertion (:func:`cheapest_insertion_order`),
* greedy nearest-neighbour (:func:`nearest_neighbor_order`),
* 2-opt (:func:`two_opt_order`),
* Or-opt (:func:`or_opt_order`),

— are reformulated as bulk array updates per round: one broadcast evaluates
every candidate move of a round at once, and the *selection* among
candidates replicates the scalar scan's first-improvement semantics exactly.
Every kernel is **byte-identical** to its scalar original:

* float expressions keep the scalar grouping — e.g. the insertion cost is
  computed as ``(dmat[a, p] + dmat[p, b]) - dmat[a, b]``, never reassociated
  — so each candidate's value is the same IEEE double the scalar loop saw;
* the cheapest-insertion scan's ``cost < best - 1e-12`` chain is *not* an
  argmin: which candidate wins depends on scan order.  Every accepted
  candidate is provably a strict running minimum of the cost sequence, so
  :func:`chain_argmin` extracts the strict running minima with one
  ``np.minimum.accumulate`` and replays the epsilon chain over just those
  few indices;
* 2-opt / Or-opt pick the first improving move in the scalar scan's
  row-major order (a flattened ``argmax`` over the improvement mask);
* nearest-neighbour keeps the scalar ``(distance, str(id))`` tie key:
  ``np.hypot`` is not guaranteed bit-identical to ``math.hypot``, so the
  vector row only shortlists candidates inside a relative window around the
  row minimum (1e-12, about four thousand ulps — vastly wider than any
  faithful-rounding discrepancy) and the exact ``math.hypot`` key decides
  among the shortlist.

Dispatch is wired into :mod:`repro.graphs.hamiltonian` and
:mod:`repro.graphs.improve` behind this module's switch, which mirrors the
geometry-cache and batchpath opt-outs: per process via :func:`configure` or
``REPRO_PLANNING_VECTOR=0``, scoped via :func:`vector_disabled`.  The
differential fuzz harness (``tests/test_planning_kernels.py``,
``tests/test_fastpath_differential.py``) and ``benchmarks/bench_pr9.py``
assert plans and full run records are byte-identical with the switch on or
off before any speed claim.
"""

from __future__ import annotations

import math
import os
import threading
from contextlib import contextmanager
from typing import Sequence

import numpy as np

from repro.geometry.point import hypot_row

__all__ = [
    "configure",
    "vector_enabled",
    "vector_disabled",
    "chain_argmin",
    "cheapest_insertion_order",
    "nearest_neighbor_order",
    "two_opt_order",
    "or_opt_order",
    "order_length",
]

_LOCK = threading.Lock()

# Process-wide dispatch switch.  The environment variable gives CI and
# benchmark harnesses an off-switch without code changes (case/whitespace
# insensitive: "0", "false", "no", "off" all disable).  Byte-invisible by
# proof: the kernel fuzz harness and bench_pr9 assert plans and records are
# identical with the switch on or off, so this env read can never change a
# result — exactly the justification the determinism lint suppression wants.
_ENABLED: bool = (
    os.environ.get("REPRO_PLANNING_VECTOR", "1").strip().lower()  # repro: allow[det-env-branch]
    not in ("0", "false", "no", "off")
)

# Soft bound on floats per delta/cost block in the 2-opt and Or-opt rounds;
# larger tours are scanned in row chunks (in scan order, so first-improvement
# selection is unaffected) to keep peak memory flat.
_MAX_BLOCK_FLOATS = 4_000_000

# Relative shortlist window for the nearest-neighbour row minimum (see the
# module docstring): any candidate whose np.hypot distance is within this
# factor of the row minimum is re-measured with math.hypot before the exact
# (distance, str(id)) key picks the winner.
_NN_WINDOW = 1e-12


def configure(*, enabled: bool) -> None:
    """Turn the vectorized planning kernels on or off for this process."""
    global _ENABLED
    with _LOCK:
        _ENABLED = bool(enabled)


def vector_enabled() -> bool:
    """Whether the process-wide vectorized-planning switch is on."""
    return _ENABLED


@contextmanager
def vector_disabled():
    """Temporarily force the scalar planning loops (benchmark baselines, tests)."""
    previous = _ENABLED
    configure(enabled=False)
    try:
        yield
    finally:
        configure(enabled=previous)


# --------------------------------------------------------------------------- #
# The first-improvement chain
# --------------------------------------------------------------------------- #

def chain_argmin(costs: np.ndarray, eps: float) -> int:
    """Index the scalar scan ``if best is None or c < best - eps`` would accept last.

    The scalar cheapest-insertion scan is *not* an argmin: ``best`` follows a
    sequential chain in which a candidate is accepted only when it beats the
    current best by more than ``eps``.  But every accepted candidate is a
    strict running minimum of the sequence: when ``c[k]`` is accepted,
    ``c[k] < best - eps``, every earlier rejected value satisfies
    ``v >= best_then - eps >= best - eps > c[k]`` (``best`` never increases),
    and every earlier accepted value is ``>= best`` — so no earlier value is
    smaller.  The converse lets the chain be replayed over only the strict
    running minima (a logarithmic-size set in expectation), extracted here
    with one vectorized ``np.minimum.accumulate``.
    """
    flat = np.ascontiguousarray(costs).ravel()
    if flat.size == 0:
        raise ValueError("chain_argmin over an empty cost array")
    running = np.minimum.accumulate(flat)
    strict = np.empty(flat.size, dtype=bool)
    strict[0] = True
    strict[1:] = flat[1:] < running[:-1]
    candidates = np.flatnonzero(strict)
    best_index = int(candidates[0])
    best = flat[best_index]
    for k in candidates[1:]:
        value = flat[k]
        if value < best - eps:
            best_index = int(k)
            best = value
    return best_index


def order_length(order: Sequence[int], dmat: np.ndarray) -> float:
    """Closed-tour length of an index order over a distance matrix.

    Diagnostic accounting for the kernels' test/bench harnesses (monotone
    improvement checks); the byte-identity contract never depends on it.
    """
    idx = np.asarray(order)
    return float(dmat[idx, np.roll(idx, -1)].sum())


# --------------------------------------------------------------------------- #
# Cheapest insertion (convex-hull construction)
# --------------------------------------------------------------------------- #

def cheapest_insertion_order(
    dmat: np.ndarray, hull: Sequence[int], n: int, *, eps: float = 1e-12
) -> list[int]:
    """Complete a convex-hull sub-tour by repeated cheapest insertion.

    Vectorized twin of the scalar loop in
    :func:`repro.graphs.hamiltonian.convex_hull_insertion_tour`: each
    iteration evaluates the full (remaining x positions) insertion-cost
    matrix in one broadcast pass — cost rows in ``remaining`` order,
    position-minor, exactly the scalar scan's (p, pos) row-major order —
    and :func:`chain_argmin` replays the ``cost < best - eps`` tie-break.
    Returns the completed index tour (a permutation of ``range(n)``).
    """
    tour_idx: list[int] = list(hull)
    in_hull = set(hull)
    remaining = [i for i in range(n) if i not in in_hull]

    while remaining:
        tour = np.asarray(tour_idx)
        rem = np.asarray(remaining)
        nxt = np.roll(tour, -1)
        # cost[p, pos] = (dmat[a, p] + dmat[p, b]) - dmat[a, b]  with
        # a = tour[pos], b = tour[(pos+1) % m] — the scalar float grouping.
        d_ap = dmat[tour][:, rem]          # (m, R): [pos, p]
        d_pb = dmat[rem][:, nxt]           # (R, m): [p, pos]
        costs = (d_ap.T + d_pb) - dmat[tour, nxt][None, :]
        winner = chain_argmin(costs, eps)
        p_index, pos = divmod(winner, len(tour_idx))
        tour_idx.insert(pos + 1, remaining.pop(p_index))
    return tour_idx


# --------------------------------------------------------------------------- #
# Nearest neighbour
# --------------------------------------------------------------------------- #

def nearest_neighbor_order(coords: np.ndarray, keys: Sequence[str], start: int) -> list[int]:
    """Greedy nearest-neighbour visiting order over coordinate rows.

    ``keys[i]`` is the scalar loop's ``str(node_id)`` tie-break key,
    precomputed once.  Each step takes a masked ``np.hypot`` row, shortlists
    everything within a relative window of the row minimum, and applies the
    exact scalar key ``(math.hypot(...), keys[i])`` to the shortlist — so the
    selected index matches the scalar ``min(unvisited, key=...)`` even where
    ``np.hypot`` and ``math.hypot`` disagree in the last ulp.
    """
    coords = np.ascontiguousarray(coords, dtype=float)
    n = coords.shape[0]
    xs, ys = coords[:, 0], coords[:, 1]
    alive = np.ones(n, dtype=bool)
    alive[start] = False
    order = [start]
    current = start
    for _ in range(n - 1):
        row = hypot_row(coords, current)
        masked = np.where(alive, row, np.inf)
        rmin = masked.min()
        shortlist = np.flatnonzero(masked <= rmin * (1.0 + _NN_WINDOW))
        cx, cy = xs[current], ys[current]
        nxt = min(
            (int(i) for i in shortlist),
            key=lambda i: (math.hypot(cx - xs[i], cy - ys[i]), keys[i]),
        )
        order.append(nxt)
        alive[nxt] = False
        current = nxt
    return order


# --------------------------------------------------------------------------- #
# 2-opt
# --------------------------------------------------------------------------- #

def _first_true(mask: np.ndarray) -> "tuple[int, int] | None":
    """Row-major (row, col) of the first True in a 2-D boolean mask, else None."""
    flat = mask.ravel()
    pos = int(flat.argmax())
    if not flat[pos]:
        return None
    return divmod(pos, mask.shape[1])


def two_opt_round(
    order: list[int], dmat: np.ndarray, tol: float
) -> "tuple[int, int] | None":
    """The (i, j) move the scalar 2-opt scan would apply this round, else None.

    Evaluates the whole delta matrix
    ``(dmat[a, c] + dmat[b, d]) - (dmat[a, b] + dmat[c, d])`` by broadcast
    (in row chunks so peak memory stays flat) and returns the first entry
    with ``delta < -tol`` in the scalar scan's row-major (i, j) order —
    i over ``range(n - 1)``, j over ``range(i + 2, n)``, skipping the
    wrap-adjacent (0, n-1) pair.
    """
    n = len(order)
    o = np.asarray(order)
    succ = np.roll(o, -1)                  # d[j] = order[(j+1) % n]
    edge = dmat[o, succ]                   # dmat[c, d] per j; rows reuse o/succ
    j_idx = np.arange(n)
    block = max(1, _MAX_BLOCK_FLOATS // max(n, 1))
    for i0 in range(0, n - 1, block):
        i1 = min(i0 + block, n - 1)
        a = o[i0:i1]
        b = o[i0 + 1 : i1 + 1]
        # delta[i, j] = (dmat[a, c] + dmat[b, d]) - (dmat[a, b] + dmat[c, d])
        delta = (dmat[a][:, o] + dmat[b][:, succ]) - (
            dmat[a, b][:, None] + edge[None, :]
        )
        valid = j_idx[None, :] >= (np.arange(i0, i1) + 2)[:, None]
        if i0 == 0:
            valid[0, n - 1] = False        # d == a: reversing the whole tour
        hit = _first_true((delta < -tol) & valid)
        if hit is not None:
            return i0 + hit[0], hit[1]
    return None


def two_opt_order(
    order: list[int], dmat: np.ndarray, *, max_rounds: int, tol: float
) -> list[int]:
    """Run the scalar 2-opt move sequence over an index order, vectorized.

    Each round applies the first improving reversal (exactly the move the
    scalar first-improvement scan takes) and rescans; stops when a round
    finds no improving move or after ``max_rounds`` rounds.
    """
    order = list(order)
    rounds = 0
    while rounds < max_rounds:
        rounds += 1
        hit = two_opt_round(order, dmat, tol)
        if hit is None:
            break
        i, j = hit
        order[i + 1 : j + 1] = reversed(order[i + 1 : j + 1])
    return order


# --------------------------------------------------------------------------- #
# Or-opt
# --------------------------------------------------------------------------- #

def _or_opt_round(
    order: list[int], dmat: np.ndarray, seg_len: int, tol: float
) -> "tuple[int, int] | None":
    """First improving (i, j) relocation of a ``seg_len`` chain, else None.

    Mirrors one ``seg_len`` pass of the scalar ``try_round``: for every
    rotation start i the removal gain and the full row of insertion costs
    over the reduced tour ``rest`` are evaluated at once, and the first
    (i, j) with ``insertion_cost < removal_gain - tol`` in row-major order
    wins.  Segments that contain their own neighbours (only possible when
    ``seg_len >= n``) never improve in the scalar loop, so those passes are
    skipped wholesale.
    """
    n = len(order)
    if seg_len >= n:
        return None
    m = n - seg_len
    o = np.asarray(order)
    idx = np.arange(n)
    s0 = o                                  # seg[0]  = order[i]
    sl = o[(idx + seg_len - 1) % n]         # seg[-1] = order[(i+L-1) % n]
    prev = o[(idx - 1) % n]
    nxt = o[(idx + seg_len) % n]
    # removal_gain[i] = (dmat[prev, seg0] + dmat[segL, next]) - dmat[prev, next]
    gain = (dmat[prev, s0] + dmat[sl, nxt]) - dmat[prev, nxt]
    threshold = gain - tol                  # scalar compares against this value

    jj = np.arange(m)
    block = max(1, _MAX_BLOCK_FLOATS // max(m, 1))
    for i0 in range(0, n, block):
        i1 = min(i0 + block, n)
        rows = idx[i0:i1]
        # rest = order minus the seg positions, original order preserved:
        # without wrap-around rest skips positions [i, i+L); with wrap-around
        # (i + L > n) the segment covers the ends and rest is the contiguous
        # middle [i+L-n, i).
        wrap = (rows + seg_len > n)[:, None]
        positions = np.where(
            wrap,
            (rows + seg_len - n)[:, None] + jj[None, :],
            jj[None, :] + seg_len * (jj[None, :] >= rows[:, None]),
        )
        a = o[positions]
        b = o[positions[:, (jj + 1) % m]]
        # insertion_cost = (dmat[a, seg0] + dmat[segL, b]) - dmat[a, b]
        cost = (dmat[a, s0[i0:i1, None]] + dmat[sl[i0:i1, None], b]) - dmat[a, b]
        hit = _first_true(cost < threshold[i0:i1, None])
        if hit is not None:
            return i0 + hit[0], hit[1]
    return None


def or_opt_order(
    order: list[int],
    dmat: np.ndarray,
    *,
    segment_lengths: "tuple[int, ...]",
    max_rounds: int,
    tol: float,
) -> list[int]:
    """Run the scalar Or-opt move sequence over an index order, vectorized.

    Each round scans segment lengths in the given order and applies the
    first improving relocation (the exact scalar move); rounds repeat while
    a move was found and ``max_rounds`` is not exhausted.
    """
    order = list(order)
    rounds = 0
    while rounds < max_rounds:
        hit = None
        for seg_len in segment_lengths:
            found = _or_opt_round(order, dmat, seg_len, tol)
            if found is not None:
                hit = (seg_len, *found)
                break
        if hit is None:
            break
        seg_len, i, j = hit
        n = len(order)
        seg = [order[(i + k) % n] for k in range(seg_len)]
        removed = {(i + k) % n for k in range(seg_len)}
        rest = [order[k] for k in range(n) if k not in removed]
        order = rest[: j + 1] + seg + rest[j + 1 :]
        rounds += 1
    return order
