"""Declarative pipeline specifications: a planning strategy as data.

A :class:`PipelineSpec` names one backend (plus parameters) for each of the
four planning stages — tour, augment, order, init — the planning twin of
:class:`repro.scenarios.ScenarioSpec`.  It round-trips losslessly through
JSON, so composed strategies can live in run-spec files and campaign grids
can sweep individual stages (``plan.tour``, ``plan.order``, ...) exactly the
way they sweep ``scenario.family``.

Stage values are accepted in three spellings, all equivalent:

* a :class:`StageSpec` instance;
* a dict ``{"name": "wpp", "params": {"policy": "shortest"}}``;
* a compact string ``"wpp:policy=shortest"`` (the CLI / grid-axis form).
"""

from __future__ import annotations

import json
from dataclasses import dataclass, field, replace
from typing import Any, Mapping

from repro.planning.stages import (
    STAGE_KINDS,
    canonical_stage_backend,
    validate_stage_params,
)

__all__ = ["StageSpec", "PipelineSpec", "split_stage_params", "parse_param_value"]


def split_stage_params(text: str) -> list[str]:
    """Split ``k=v,k=v`` on commas that are not nested inside brackets."""
    items: list[str] = []
    depth, current = 0, []
    for ch in text:
        if ch in "[(":
            depth += 1
        elif ch in "])":
            depth -= 1
        if ch == "," and depth == 0:
            items.append("".join(current))
            current = []
        else:
            current.append(ch)
    items.append("".join(current))
    return [item for item in (i.strip() for i in items) if item]


def parse_param_value(text: str):
    """Best-effort typed parse: JSON literals, ``none``, else the bare string."""
    if text.lower() in ("none", "null"):
        return None
    try:
        return json.loads(text)
    except json.JSONDecodeError:
        return text


@dataclass(frozen=True)
class StageSpec:
    """One stage of a planning pipeline: backend name + parameters."""

    name: str
    params: Mapping[str, Any] = field(default_factory=dict)

    def __post_init__(self) -> None:
        object.__setattr__(self, "name", str(self.name))
        object.__setattr__(self, "params", dict(self.params))

    # -- construction ----------------------------------------------------- #
    @classmethod
    def coerce(cls, value: "StageSpec | Mapping[str, Any] | str | None") -> "StageSpec":
        """Accept a spec, a ``{"name", "params"}`` dict, or ``"name:k=v,..."``.

        ``None`` coerces to the backend named ``"none"``: CLI-style parsers
        (``--param augment=none``, grid axes) turn the literal string
        ``"none"`` into Python ``None`` before it reaches us, and the no-op
        augment backend is legitimately called ``none``.
        """
        if value is None:
            return cls("none")
        if isinstance(value, StageSpec):
            return value
        if isinstance(value, Mapping):
            payload = dict(value)
            name = payload.pop("name", None)
            params = payload.pop("params", {})
            if name is None or payload:
                raise ValueError(
                    f"stage spec dict must be {{'name': ..., 'params': {{...}}}}, got {dict(value)!r}"
                )
            return cls(name=name, params=params)
        if isinstance(value, str):
            name, _, rest = value.partition(":")
            name = name.strip()
            if not name:
                raise ValueError(
                    f"stage spec {value!r} needs a backend name, e.g. 'wpp' or 'wpp:policy=shortest'"
                )
            params: dict[str, Any] = {}
            for item in split_stage_params(rest):
                key, sep, raw = item.partition("=")
                if not sep or not key.strip():
                    raise ValueError(f"stage parameter {item!r} must look like key=value")
                params[key.strip()] = parse_param_value(raw.strip())
            return cls(name=name, params=params)
        raise TypeError(f"cannot interpret {value!r} as a stage spec")

    # -- serialisation ---------------------------------------------------- #
    def to_value(self) -> "str | dict":
        """Compact JSON value: the bare name when there are no parameters."""
        if not self.params:
            return self.name
        return {"name": self.name, "params": dict(self.params)}

    def compact(self) -> str:
        """The ``"name:k=v,..."`` one-line spelling (used by listings)."""
        if not self.params:
            return self.name
        rendered = ",".join(f"{k}={json.dumps(v)}" for k, v in self.params.items())
        return f"{self.name}:{rendered}"

    def with_params(self, **params: Any) -> "StageSpec":
        return replace(self, params={**self.params, **params})


@dataclass(frozen=True)
class PipelineSpec:
    """A four-stage planning pipeline as data (tour | augment | order | init)."""

    tour: StageSpec = field(default_factory=lambda: StageSpec("hamiltonian"))
    augment: StageSpec = field(default_factory=lambda: StageSpec("none"))
    order: StageSpec = field(default_factory=lambda: StageSpec("as-built"))
    init: StageSpec = field(default_factory=lambda: StageSpec("equal-spacing"))

    def __post_init__(self) -> None:
        for kind in STAGE_KINDS:
            object.__setattr__(self, kind, StageSpec.coerce(getattr(self, kind)))

    # -- access ----------------------------------------------------------- #
    def stage(self, kind: str) -> StageSpec:
        if kind not in STAGE_KINDS:
            raise ValueError(f"unknown stage kind {kind!r}; expected one of {STAGE_KINDS}")
        return getattr(self, kind)

    def stages(self) -> list[tuple[str, StageSpec]]:
        """The ``(kind, stage spec)`` pairs in execution order."""
        return [(kind, getattr(self, kind)) for kind in STAGE_KINDS]

    def with_stage(self, kind: str, value: "StageSpec | Mapping | str") -> "PipelineSpec":
        self.stage(kind)  # raises on unknown kind
        return replace(self, **{kind: StageSpec.coerce(value)})

    def compact(self) -> str:
        """One-line composition summary: ``"tour | augment | order | init"``."""
        return " | ".join(spec.compact() for _, spec in self.stages())

    # -- validation ------------------------------------------------------- #
    def validate(self) -> "PipelineSpec":
        """Raise :class:`ValueError` on unknown backends, bad params or an
        impossible stage combination — all without building anything."""
        for kind, spec in self.stages():
            validate_stage_params(kind, spec.name, spec.params)
        tour = canonical_stage_backend("tour", self.tour.name)
        augment = canonical_stage_backend("augment", self.augment.name)
        order = canonical_stage_backend("order", self.order.name)
        init = canonical_stage_backend("init", self.init.name)
        if tour == "pool" and order != "stochastic":
            raise ValueError(
                "the 'pool' tour backend provides only a candidate set — no "
                "circuit to traverse; combine it with order='stochastic'"
            )
        if augment != "none" and order not in ("ccw-angle", "reversed"):
            raise ValueError(
                f"order backend {order!r} cannot traverse a weighted structure "
                f"(augment={augment!r}); use 'ccw-angle' or 'reversed'"
            )
        if order == "stochastic":
            if augment != "none":
                raise ValueError("the stochastic order backend requires augment='none'")
            if init != "depot-start":
                raise ValueError(
                    "the stochastic order backend requires init='depot-start' "
                    "(stochastic routes have no lap to space mules along)"
                )
        return self

    # -- serialisation ---------------------------------------------------- #
    def to_dict(self) -> dict:
        return {kind: spec.to_value() for kind, spec in self.stages()}

    @classmethod
    def from_dict(cls, data: Mapping[str, Any]) -> "PipelineSpec":
        payload = dict(data)
        unknown = sorted(set(payload) - set(STAGE_KINDS))
        if unknown:
            raise ValueError(
                f"unknown pipeline stage(s): {', '.join(unknown)}; "
                f"allowed: {', '.join(STAGE_KINDS)}"
            )
        return cls(**{k: StageSpec.coerce(v) for k, v in payload.items()})

    def to_json(self, *, indent: int | None = None) -> str:
        return json.dumps(self.to_dict(), indent=indent, sort_keys=True)

    @classmethod
    def from_json(cls, text: str) -> "PipelineSpec":
        return cls.from_dict(json.loads(text))
