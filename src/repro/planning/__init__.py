"""Composable planning pipeline: tour | augment | order | init.

Every patrol strategy in the library is one four-stage composition (see
:mod:`repro.planning.pipeline`); each stage is a registered, pluggable
backend (:mod:`repro.planning.stages` / :mod:`repro.planning.backends`); a
composition is round-trippable data (:class:`PipelineSpec`); and named
compositions — the paper's six strategies plus the new cross-combinations —
live in :mod:`repro.planning.compositions`, wired into the strategy registry.

Quick tour::

    from repro.planning import PipelineSpec, PlanningPipeline
    from repro.scenarios import get_scenario

    spec = PipelineSpec(tour="cluster-first", augment="wpp:policy=shortest",
                        order="ccw-angle", init="equal-spacing")
    plan = PlanningPipeline(spec.validate(), name="demo").plan(get_scenario("ring"))

or, through the strategy registry (sweepable from campaigns and the CLI)::

    from repro import get_strategy
    planner = get_strategy("pipeline", tour="cluster-first", order="reversed")
"""

from repro.planning.stages import (
    STAGE_KINDS,
    StageBackendInfo,
    StageParam,
    available_stage_backends,
    canonical_stage_backend,
    register_stage,
    stage_backend_info,
    validate_stage_params,
)
from repro.planning.spec import PipelineSpec, StageSpec
from repro.planning.pipeline import Lane, PlanningContext, PlanningPipeline
from repro.planning.kernels import (
    vector_disabled,
    vector_enabled,
    configure as configure_kernels,
)

__all__ = [
    "STAGE_KINDS",
    "StageParam",
    "StageBackendInfo",
    "register_stage",
    "available_stage_backends",
    "canonical_stage_backend",
    "stage_backend_info",
    "validate_stage_params",
    "StageSpec",
    "PipelineSpec",
    "Lane",
    "PlanningContext",
    "PlanningPipeline",
    "vector_enabled",
    "vector_disabled",
    "configure_kernels",
]
