"""The planning-stage registry: pluggable backends for the four pipeline stages.

Every planner in the library shares one hidden shape — build a base **tour**,
**augment** it for VIP weights or recharge, fix a traversal **order**, and
**initialise** the mules along it.  This module makes that shape explicit:
each of the four stage kinds owns a decorator-based registry of named
backends, mirroring :mod:`repro.scenarios.registry` on the scenario side.

Registering a backend is a decorator::

    @register_stage("order", "reversed", description="traverse clockwise")
    def order_reversed(ctx):
        ...

Backends receive the :class:`~repro.planning.pipeline.PlanningContext` as
their only positional argument; every stage parameter must be declared
keyword-only so the registry can derive a truthful parameter table from the
signature (``**kwargs`` catch-alls are rejected).  An optional ``validator``
receives the parameter dict and raises :class:`ValueError` on out-of-range
values — it runs during campaign validation, before any planning happens.
"""

from __future__ import annotations

import difflib
import inspect
from dataclasses import dataclass
from typing import Any, Callable, Mapping

__all__ = [
    "STAGE_KINDS",
    "StageParam",
    "StageBackendInfo",
    "register_stage",
    "available_stage_backends",
    "canonical_stage_backend",
    "stage_backend_info",
    "validate_stage_params",
    "did_you_mean",
    "all_stage_infos",
    "stage_alias_table",
]

#: The four stage kinds, in execution order.
STAGE_KINDS: tuple[str, ...] = ("tour", "augment", "order", "init")


def did_you_mean(name: str, options) -> str:
    """``"; did you mean 'x'?"`` when ``name`` is a near-miss of an option, else ``""``."""
    matches = difflib.get_close_matches(str(name).lower(), [str(o) for o in options], n=1)
    return f"; did you mean {matches[0]!r}?" if matches else ""


@dataclass(frozen=True)
class StageParam:
    """One declared parameter of a stage backend: name, default, annotation."""

    name: str
    default: Any
    kind: str = ""


@dataclass(frozen=True)
class StageBackendInfo:
    """Registry record for one backend of one stage kind."""

    kind: str
    name: str
    factory: Callable
    params: Mapping[str, StageParam]
    aliases: tuple[str, ...] = ()
    description: str = ""
    validator: "Callable[[dict], None] | None" = None

    def defaults(self) -> dict[str, Any]:
        return {p.name: p.default for p in self.params.values()}

    def merged(self, params: Mapping[str, Any]) -> dict[str, Any]:
        merged = self.defaults()
        merged.update(params)
        return merged


# kind -> canonical name -> info;  kind -> every accepted key -> canonical name
_REGISTRY: dict[str, dict[str, StageBackendInfo]] = {k: {} for k in STAGE_KINDS}
_ALIASES: dict[str, dict[str, str]] = {k: {} for k in STAGE_KINDS}
_defaults_loaded = False


def _check_kind(kind: str) -> str:
    if kind not in STAGE_KINDS:
        raise ValueError(
            f"unknown stage kind {kind!r}; expected one of {', '.join(STAGE_KINDS)}"
            f"{did_you_mean(kind, STAGE_KINDS)}"
        )
    return kind


def _annotation_name(annotation: Any) -> str:
    if annotation is inspect.Parameter.empty:
        return ""
    if isinstance(annotation, str):
        return annotation
    return getattr(annotation, "__name__", str(annotation))


def _param_table(factory: Callable) -> dict[str, StageParam]:
    """Stage parameters are the keyword-only parameters of the backend.

    The positional parameter (the planning context) is skipped; ``**kwargs``
    is rejected so the declaration stays complete and validation can trust it.
    """
    signature = inspect.signature(factory)
    table: dict[str, StageParam] = {}
    for param in signature.parameters.values():
        if param.kind is inspect.Parameter.VAR_KEYWORD:
            raise TypeError(
                f"stage backend {factory!r} takes **{param.name}; backends must "
                "declare an explicit keyword-only parameter set"
            )
        if param.kind is not inspect.Parameter.KEYWORD_ONLY:
            continue
        default = None if param.default is inspect.Parameter.empty else param.default
        table[param.name] = StageParam(
            name=param.name, default=default, kind=_annotation_name(param.annotation)
        )
    return table


def register_stage(
    kind: str,
    name: str,
    factory: "Callable | None" = None,
    *,
    aliases: tuple[str, ...] = (),
    description: str = "",
    validator: "Callable[[dict], None] | None" = None,
):
    """Register a stage backend (decorator or direct call, case-insensitive)."""

    def _register(fac: Callable) -> Callable:
        _ensure_defaults()  # custom registrations must never shadow the built-ins
        _check_kind(kind)
        key = name.lower()
        if key in _ALIASES[kind]:
            raise ValueError(f"{kind} backend {name!r} is already registered")
        for alias in aliases:
            if alias.lower() in _ALIASES[kind]:
                raise ValueError(f"{kind} backend alias {alias!r} is already registered")
        info = StageBackendInfo(
            kind=kind,
            name=key,
            factory=fac,
            params=_param_table(fac),
            aliases=tuple(a.lower() for a in aliases),
            description=description,
            validator=validator,
        )
        _REGISTRY[kind][key] = info
        _ALIASES[kind][key] = key
        for alias in info.aliases:
            _ALIASES[kind][alias] = key
        return fac

    if factory is not None:
        return _register(factory)
    return _register


def available_stage_backends(kind: str, *, include_aliases: bool = False) -> list[str]:
    """Names of the registered backends for one stage kind."""
    _ensure_defaults()
    _check_kind(kind)
    return sorted(_ALIASES[kind]) if include_aliases else sorted(_REGISTRY[kind])


def canonical_stage_backend(kind: str, name: str) -> str:
    """Resolve an alias to the backend's canonical name; raise with suggestions."""
    _ensure_defaults()
    _check_kind(kind)
    try:
        return _ALIASES[kind][name.lower()]
    except KeyError as exc:
        options = available_stage_backends(kind, include_aliases=True)
        raise ValueError(
            f"unknown {kind} stage backend {name!r}; available: "
            f"{', '.join(available_stage_backends(kind))}{did_you_mean(name, options)}"
        ) from exc


def stage_backend_info(kind: str, name: str) -> StageBackendInfo:
    """The :class:`StageBackendInfo` record for ``(kind, name)`` (alias-tolerant)."""
    return _REGISTRY[kind][canonical_stage_backend(kind, name)]


def validate_stage_params(kind: str, name: str, params: Mapping[str, Any]) -> None:
    """Raise :class:`ValueError` on an unknown backend, undeclared or bad params.

    Cheap enough to run on every cell of a campaign before planning starts;
    unknown names come back with a did-you-mean suggestion.
    """
    info = stage_backend_info(kind, name)  # raises on unknown backend
    unknown = sorted(set(params) - set(info.params))
    if unknown:
        accepted = ", ".join(sorted(info.params)) or "(none)"
        raise ValueError(
            f"{kind} stage backend {info.name!r} does not accept parameter(s) "
            f"{', '.join(repr(p) for p in unknown)}; accepted: {accepted}"
            f"{did_you_mean(unknown[0], info.params)}"
        )
    if info.validator is not None:
        try:
            info.validator(info.merged(params))
        except TypeError as exc:
            raise ValueError(
                f"invalid parameter value for {kind} stage backend {info.name!r}: {exc}"
            ) from exc


def all_stage_infos() -> dict[str, dict[str, StageBackendInfo]]:
    """Snapshot of all four registries: kind -> canonical name -> info.

    The introspection hook for :mod:`repro.analysis.registry_contract`; the
    returned dicts are copies, so analyzers can never mutate the registries.
    """
    _ensure_defaults()
    return {kind: dict(_REGISTRY[kind]) for kind in STAGE_KINDS}


def stage_alias_table(kind: str) -> dict[str, str]:
    """Every accepted backend key of one kind (canonical names included) -> canonical."""
    _ensure_defaults()
    _check_kind(kind)
    return dict(_ALIASES[kind])


def _ensure_defaults() -> None:
    """Populate the registries lazily (avoids import cycles at module load)."""
    global _defaults_loaded
    if _defaults_loaded:
        return
    _defaults_loaded = True
    import repro.planning.backends  # noqa: F401  (registers the built-in backends)
