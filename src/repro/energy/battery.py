"""A simple battery with capacity, drain, refill and depletion tracking."""

from __future__ import annotations

from dataclasses import dataclass, field

__all__ = ["Battery"]


@dataclass
class Battery:
    """Finite energy store of a data mule.

    Attributes
    ----------
    capacity:
        Full-charge energy in joules (the paper's ``M_Energy``).
    remaining:
        Current energy; defaults to the full capacity.

    Draining below zero clamps at zero and marks the battery depleted; the
    simulator turns the owning mule ``DEAD`` at that point, which is exactly
    the failure mode RW-TCTP is designed to avoid.
    """

    capacity: float
    remaining: float = field(default=None)  # type: ignore[assignment]

    def __post_init__(self) -> None:
        if self.capacity <= 0:
            raise ValueError("battery capacity must be positive")
        if self.remaining is None:
            self.remaining = self.capacity
        if not 0 <= self.remaining <= self.capacity:
            raise ValueError("remaining energy must lie in [0, capacity]")
        self.total_drained = 0.0
        self.total_recharged = 0.0
        self.recharge_count = 0

    # ------------------------------------------------------------------ #
    @property
    def depleted(self) -> bool:
        return self.remaining <= 0.0

    @property
    def fraction(self) -> float:
        """Remaining charge as a fraction of capacity in ``[0, 1]``."""
        return self.remaining / self.capacity

    def drain(self, amount: float) -> float:
        """Consume ``amount`` joules; returns the energy actually drained."""
        if amount < 0:
            raise ValueError("cannot drain a negative amount")
        drained = min(amount, self.remaining)
        self.remaining -= drained
        self.total_drained += drained
        return drained

    def refill(self) -> float:
        """Recharge to full capacity; returns the energy added."""
        added = self.capacity - self.remaining
        self.remaining = self.capacity
        self.total_recharged += added
        self.recharge_count += 1
        return added

    def charge(self, amount: float) -> float:
        """Add ``amount`` joules without exceeding capacity; returns the energy added."""
        if amount < 0:
            raise ValueError("cannot charge a negative amount")
        added = min(amount, self.capacity - self.remaining)
        self.remaining += added
        self.total_recharged += added
        return added

    def copy(self) -> "Battery":
        b = Battery(self.capacity, self.remaining)
        b.total_drained = self.total_drained
        b.total_recharged = self.total_recharged
        b.recharge_count = self.recharge_count
        return b
