"""The paper's energy-consumption model and the RW-TCTP round computation.

Equation (4) of the paper:

    r = M_Energy / ( |P̄| * c_m  +  h * c_s )

where ``|P̄|`` is the length of the weighted patrolling path, ``c_m`` the
movement cost per metre, ``h`` the number of targets and ``c_s`` the cost of
collecting one target's data.  A mule patrols the WPP ``r - 1`` times and then
follows the weighted recharge path on the ``r``-th round.
"""

from __future__ import annotations

import math
from dataclasses import dataclass

__all__ = ["EnergyModel", "patrolling_rounds"]


@dataclass(frozen=True)
class EnergyModel:
    """Energy cost coefficients (defaults are the paper's Section 5.1 values)."""

    move_cost_per_meter: float = 8.267  # J/m
    collect_cost: float = 0.075         # J per data collection

    def __post_init__(self) -> None:
        if self.move_cost_per_meter < 0 or self.collect_cost < 0:
            raise ValueError("energy cost coefficients must be non-negative")

    def movement_energy(self, dist: float) -> float:
        """Energy to drive ``dist`` metres."""
        if dist < 0:
            raise ValueError("distance must be non-negative")
        return dist * self.move_cost_per_meter

    def collection_energy(self, num_collections: int = 1) -> float:
        """Energy to collect data from ``num_collections`` targets."""
        if num_collections < 0:
            raise ValueError("num_collections must be non-negative")
        return num_collections * self.collect_cost

    def round_energy(self, path_length: float, num_targets: int) -> float:
        """Energy required for one full traversal of a patrolling path."""
        return self.movement_energy(path_length) + self.collection_energy(num_targets)

    def rounds_supported(self, initial_energy: float, path_length: float, num_targets: int) -> int:
        """Number of complete patrolling rounds ``r`` supported by ``initial_energy`` (Equ. 4)."""
        return patrolling_rounds(initial_energy, path_length, num_targets, self)


def patrolling_rounds(
    initial_energy: float,
    path_length: float,
    num_targets: int,
    model: EnergyModel | None = None,
) -> int:
    """Equation (4): how many rounds a mule can patrol before it must recharge.

    The result is floored (the paper's ⌊·⌋ brackets) and never negative.  A
    zero result means the mule cannot complete even one round on a full
    battery; RW-TCTP then patrols the recharge path on every round.
    """
    if model is None:
        model = EnergyModel()
    if initial_energy < 0:
        raise ValueError("initial energy must be non-negative")
    per_round = model.round_energy(path_length, num_targets)
    if per_round <= 0:
        raise ValueError("per-round energy must be positive to compute patrolling rounds")
    return max(int(math.floor(initial_energy / per_round)), 0)
