"""Energy substrate: batteries and the paper's consumption model.

Section 5.1 fixes the two consumption constants used throughout the
evaluation: 8.267 J per metre of movement and 0.075 J per data collection.
RW-TCTP (Section IV) uses these to compute the number of patrolling rounds a
mule can complete before it must detour through the recharge station.
"""

from repro.energy.battery import Battery
from repro.energy.model import EnergyModel, patrolling_rounds

__all__ = ["Battery", "EnergyModel", "patrolling_rounds"]
