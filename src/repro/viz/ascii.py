"""ASCII rendering of scenarios, patrol routes and metric series."""

from __future__ import annotations

import math
from typing import Iterable, Mapping, Sequence

from repro.geometry.point import Point, as_point
from repro.network.scenario import Scenario

__all__ = ["ascii_field_map", "ascii_route_map", "sparkline", "series_panel"]

_SPARK_LEVELS = "▁▂▃▄▅▆▇█"


def _grid(width: int, height: int) -> list[list[str]]:
    return [[" " for _ in range(width)] for _ in range(height)]


def _project(point: Point, field_w: float, field_h: float, cols: int, rows: int,
             origin: Point) -> tuple[int, int]:
    """Map field coordinates to character-grid coordinates (row 0 is the field's top)."""
    x = (point.x - origin.x) / field_w if field_w > 0 else 0.0
    y = (point.y - origin.y) / field_h if field_h > 0 else 0.0
    col = min(max(int(round(x * (cols - 1))), 0), cols - 1)
    row = min(max(int(round((1.0 - y) * (rows - 1))), 0), rows - 1)
    return row, col


def ascii_field_map(scenario: Scenario, *, cols: int = 60, rows: int = 24,
                    legend: bool = True) -> str:
    """Render the scenario's field: targets (``o``), VIPs (``V``), sink (``S``),
    recharge station (``R``) and mule start positions (``m``)."""
    if cols < 10 or rows < 5:
        raise ValueError("map must be at least 10x5 characters")
    grid = _grid(cols, rows)
    field = scenario.field
    def place(p):
        return _project(as_point(p), field.width, field.height, cols, rows, field.origin)

    for target in scenario.targets:
        r, c = place(target.position)
        grid[r][c] = "V" if target.is_vip else "o"
    for mule in scenario.mules:
        r, c = place(mule.position)
        if grid[r][c] == " ":
            grid[r][c] = "m"
    if scenario.recharge_station is not None:
        r, c = place(scenario.recharge_station.position)
        grid[r][c] = "R"
    r, c = place(scenario.sink.position)
    grid[r][c] = "S"

    border = "+" + "-" * cols + "+"
    lines = [border] + ["|" + "".join(row) + "|" for row in grid] + [border]
    if legend:
        lines.append("o target   V VIP   S sink   R recharge   m mule")
    return "\n".join(lines) + "\n"


def ascii_route_map(scenario: Scenario, loop: Sequence[str], *, cols: int = 60,
                    rows: int = 24) -> str:
    """Render the field with the patrol route drawn as ``.`` samples between waypoints."""
    grid_text = ascii_field_map(scenario, cols=cols, rows=rows, legend=False)
    lines = [list(line) for line in grid_text.splitlines()]
    field = scenario.field
    coords = scenario.patrol_points(include_recharge=scenario.recharge_station is not None)

    def place(p: Point) -> tuple[int, int]:
        r, c = _project(p, field.width, field.height, cols, rows, field.origin)
        return r + 1, c + 1  # +1 for the border row/column

    loop = [n for n in loop if n in coords]
    for a, b in zip(loop, loop[1:] + loop[:1]):
        pa, pb = coords[a], coords[b]
        steps = max(int(pa.distance_to(pb) / 10.0), 1)
        for k in range(1, steps):
            t = k / steps
            p = Point(pa.x + (pb.x - pa.x) * t, pa.y + (pb.y - pa.y) * t)
            r, c = place(p)
            if lines[r][c] == " ":
                lines[r][c] = "."
    out = "\n".join("".join(line) for line in lines)
    return out + "\no target   V VIP   S sink   R recharge   . route\n"


def sparkline(values: Iterable[float]) -> str:
    """One-line unicode sparkline of a numeric series (NaNs rendered as spaces)."""
    vals = list(values)
    finite = [v for v in vals if v is not None and not math.isnan(v)]
    if not finite:
        return ""
    lo, hi = min(finite), max(finite)
    span = hi - lo
    chars = []
    for v in vals:
        if v is None or math.isnan(v):
            chars.append(" ")
            continue
        level = 0 if span == 0 else int((v - lo) / span * (len(_SPARK_LEVELS) - 1))
        chars.append(_SPARK_LEVELS[level])
    return "".join(chars)


def series_panel(series: Mapping[str, Sequence[float]], *, width: int = 24) -> str:
    """Multi-line panel: one sparkline per named series with min/max annotations.

    Used by the examples to show Figure 7's DCDT curves without matplotlib.
    """
    if not series:
        return ""
    name_width = max(len(name) for name in series)
    lines = []
    for name, values in series.items():
        vals = list(values)
        finite = [v for v in vals if v is not None and not math.isnan(v)]
        if len(vals) > width:
            stride = len(vals) / width
            vals = [vals[int(i * stride)] for i in range(width)]
        spark = sparkline(vals)
        if finite:
            lines.append(f"{name.ljust(name_width)} {spark}  "
                         f"[{min(finite):.0f} .. {max(finite):.0f}]")
        else:
            lines.append(f"{name.ljust(name_width)} {spark}")
    return "\n".join(lines) + "\n"
