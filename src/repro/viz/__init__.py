"""Terminal visualisation: ASCII field maps and series sparklines.

The library deliberately has no plotting dependency; these helpers make the
scenarios and experiment series inspectable directly in a terminal or a CI
log — a field map of targets / mules / patrol route, and compact sparkline
plots of the DCDT series from Figure 7.
"""

from repro.viz.ascii import ascii_field_map, ascii_route_map, sparkline, series_panel

__all__ = ["ascii_field_map", "ascii_route_map", "sparkline", "series_panel"]
