"""Batched fast path: evaluate many campaign cells as one stacked tensor pass.

The scalar fast path (:mod:`repro.sim.fastpath`) already replaces the event
loop with one cumulative sum per mule — but a campaign still dispatches it
cell by cell from Python, and each cell pays a Python heap merge over every
arrival event plus per-record object materialisation.  For the cells that
dominate mega-campaigns none of that is needed either:

* without energy-tracked batteries nothing truncates a stream, so a cell's
  visit log is exactly "every precomputed arrival up to the horizon" — no
  merge required to *find* the events;
* the record's interval metrics consume per-target **sorted** visit times,
  which are order-independent;
* the only genuinely order-dependent quantities — collection-window packet
  sizes and the sink-delivery sum — are recovered from the sorted arrays
  with ``np.searchsorted`` / ``np.lexsort``, provided no two visit events
  share a timestamp (cells with ties fall back to the scalar path, where the
  heap's sequence numbers arbitrate exactly as the engine does).

So this module groups a campaign's eligible cells by **leg-pattern shape**
(rows of identical interleaved travel/dwell length), stacks every
``(cell, mule)`` row into one matrix and runs a single ``np.cumsum(axis=1)``
over the whole block — the (cells × mules × legs) tensor pass — then reduces
each cell straight to its tidy record dict without ever materialising
:class:`~repro.sim.recorder.VisitRecord` objects.  Per-row sequential
additions inside the stacked cumsum are bit-for-bit the additions the engine
would have performed, so records are **byte-identical** to per-cell dispatch
(asserted by ``benchmarks/bench_pr8.py`` and the differential fuzz harness
before any speed claim).

A cell rides the batch only when every check passes; anything else silently
degrades to the per-cell scalar fast path (or the event loop), never to a
wrong answer:

* the cell's :func:`~repro.sim.fastpath.fast_path_rejection` is ``None``;
* no energy-tracked batteries (death truncates streams mid-pattern);
* no ``max_visits`` (a global cut mid-merge is order-dependent);
* no custom ``spec.metrics`` (extractors receive a full
  :class:`~repro.sim.recorder.SimulationResult`, which the batch never
  builds);
* no duplicate event timestamps, and the lap estimate must clear the
  horizon (both verified *after* the tensor pass, per cell).

Toggle with :attr:`repro.sim.engine.SimulationConfig.batch_path` per spec,
:func:`configure` per process, or the ``REPRO_BATCHPATH`` environment
variable — mirroring the geometry-cache switch.  All three are
byte-invisible: they only choose the dispatch path.
"""

from __future__ import annotations

import json
import os
import threading
from contextlib import contextmanager

import numpy as np

from repro.geometry.cache import ContentCache
from repro.geometry.point import distance
from repro.obs import registry as _obs
from repro.sim.fastpath import (
    _Fallback,
    dedup_walk,
    fast_path_rejection,
    route_pattern,
)
from repro.sim.metrics import average_dcdt, average_sd, max_visiting_interval
from repro.sim.recorder import SimulationResult

__all__ = [
    "batch_execute_records",
    "batchpath_enabled",
    "batchpath_disabled",
    "configure",
]

# Per-row event cap: beyond this the stacked matrices stop paying for
# themselves; such cells stay on the per-cell scalar fast path.
_MAX_BATCH_EVENTS = 250_000

# Soft bound on floats per stacked block; groups larger than this are
# processed in row chunks so peak memory stays flat regardless of campaign
# size.
_MAX_BLOCK_FLOATS = 8_000_000

_LOCK = threading.Lock()

# Patrol plans memoized by (strategy, declared params incl. any injected
# seed, scenario content key).  Planning is deterministic in that triple —
# the determinism patrol enforces it — so every replication cell of a pinned
# scenario reuses one plan instead of re-planning identical content.  The
# batch only ever *reads* a plan (routes are generator factories; nothing is
# advanced), so sharing one object across cells is safe, and the cache is
# purely memoizing: byte-identical records with it on or off.
_PLAN_CACHE = ContentCache("batch_plan", maxsize=128)

# Prepared increment rows memoized by (plan key, horizon, synchronized
# start): everything a row reads — routes, mule velocities and deployment
# positions, the collection dwell — is a function of that key, so every
# replication cell of a pinned scenario shares one row set (and its cumsum
# output, which depends only on the row).  Cells whose row construction
# falls back cache the sentinel so identical cells skip straight to the
# scalar path.
_ROW_CACHE = ContentCache("batch_rows", maxsize=256)
_ROW_FALLBACK = "fallback"

# One process-wide switch for the batched dispatch.  The environment variable
# gives CI and benchmark harnesses an off-switch without code changes
# (case/whitespace-insensitive: "0", "false", "no", "off" all disable).
# Byte-invisible by proof: the differential harness and bench_pr8 assert
# records are identical with the switch on or off, so this env read can never
# change a result — exactly the justification the determinism lint
# suppression wants.
_ENABLED: bool = (
    os.environ.get("REPRO_BATCHPATH", "1").strip().lower()  # repro: allow[det-env-branch]
    not in ("0", "false", "no", "off")
)


def configure(*, enabled: bool) -> None:
    """Turn the batched dispatch on or off for this process."""
    global _ENABLED
    with _LOCK:
        _ENABLED = bool(enabled)


def batchpath_enabled() -> bool:
    """Whether the process-wide batched-dispatch switch is on."""
    return _ENABLED


@contextmanager
def batchpath_disabled():
    """Temporarily force per-cell dispatch (benchmark baselines, tests)."""
    previous = _ENABLED
    configure(enabled=False)
    try:
        yield
    finally:
        configure(enabled=previous)


# --------------------------------------------------------------------------- #
# Per-(cell, mule) row precomputation
# --------------------------------------------------------------------------- #

class _Row:
    """One mule's interleaved travel/dwell increment row, pre-cumsum."""

    __slots__ = (
        "base", "init_event", "init_time", "init_dist", "codes", "tidx",
        "dists", "inc", "cyclic", "full", "dist_prefix", "init_prefix",
    )

    def __init__(
        self, sim, mule, route, sync_time: float, node_code, node_tidx
    ) -> None:
        cfg = sim.config
        horizon = cfg.horizon
        velocity = mule.velocity
        position = mule.position
        start = route.start_position()
        dwell_time = sim._params.collection_time

        emitted, cycle_start = dedup_walk(*route_pattern(route))
        if not emitted:
            raise _Fallback

        prefix_len = len(emitted)
        cycle_len = prefix_len - cycle_start if cycle_start >= 0 else 0
        coords = route.coordinates
        points = [coords[n] for n in emitted]
        codes0 = np.fromiter(
            (node_code.get(n, 0) for n in emitted), dtype=np.int8,
            count=prefix_len,
        )
        tidx0 = np.fromiter(
            (node_tidx.get(n, -1) for n in emitted), dtype=np.int32,
            count=prefix_len,
        )
        dwell0 = np.where(codes0 == 1, dwell_time, 0.0)

        # -- initial leg and the first-departure base time (as _Stream) ---- #
        self.init_event = False
        self.init_time = 0.0
        self.init_dist = 0.0
        if start is not None:
            d0 = distance(position, start)
            if d0 > 1e-12:
                self.init_event = True
                self.init_time = d0 / velocity if d0 > 0 else 0.0
                self.init_dist = d0
                base = max(self.init_time, sync_time)
                first_from = start
            else:
                base = sync_time
                first_from = position
        else:
            base = 0.0
            first_from = position
        self.base = base

        # -- leg lengths (exactly the engine's per-leg distance() calls) --- #
        leg = np.empty(prefix_len, dtype=float)
        leg[0] = distance(first_from, points[0])
        for k in range(1, prefix_len):
            leg[k] = distance(points[k - 1], points[k])

        if cycle_len:
            cyc = np.empty(cycle_len, dtype=float)
            cyc[0] = distance(points[-1], points[cycle_start])
            cyc[1:] = leg[cycle_start + 1:]
            cyc_dwell = dwell0[cycle_start:]
            lap_advance = float(cyc.sum()) / velocity + float(cyc_dwell.sum())
            if lap_advance <= 0.0:
                raise _Fallback  # zero-advance lap
            prefix_time = base + float(leg.sum()) / velocity + float(dwell0.sum())
            laps = int(max(0.0, horizon - prefix_time) / lap_advance) + 2
            if prefix_len + laps * cycle_len > _MAX_BATCH_EVENTS:
                raise _Fallback
            dists = np.concatenate([leg, np.tile(cyc, laps)])
            dwells = np.concatenate([dwell0, np.tile(cyc_dwell, laps)])
            codes = np.concatenate([codes0, np.tile(codes0[cycle_start:], laps)])
            tidx = np.concatenate([tidx0, np.tile(tidx0[cycle_start:], laps)])
        else:
            dists = leg
            dwells = dwell0
            codes = codes0
            tidx = tidx0

        self.cyclic = cycle_len > 0
        self.codes = codes
        self.tidx = tidx
        self.dists = dists
        inc = np.empty(2 * len(dists), dtype=float)
        inc[0::2] = dists / velocity
        inc[1::2] = dwells
        self.inc = inc
        self.full: "np.ndarray | None" = None  # filled by the stacked cumsum
        # Lazy per-row prefix sums of travelled distance (see _finish_cell).
        self.dist_prefix: "np.ndarray | None" = None
        self.init_prefix: "np.ndarray | None" = None


class _Cell:
    """One campaign cell prepared for batch evaluation."""

    __slots__ = (
        "spec", "scenario", "plan", "sink_id", "rows", "target_ids",
        "rates_arr",
    )

    def __init__(
        self, spec, scenario, plan, sink_id, rows, target_ids, rates_arr
    ) -> None:
        self.spec = spec
        self.scenario = scenario
        self.plan = plan
        self.sink_id = sink_id
        self.rows = rows
        self.target_ids = target_ids
        self.rates_arr = rates_arr


def _reject(reason: str) -> None:
    """Count one cell's fall to the scalar path; always returns ``None``.

    The reason taxonomy is the end-to-end dispatch story ("why is this
    sweep slow"): static spec vetoes (``batch-path-disabled`` /
    ``max-visits`` / ``custom-metrics`` / ``tracked-energy``), the scalar
    fast path's own rejection prefixed ``fastpath-``, row construction
    fallbacks (``row-fallback``), and the two post-tensor per-cell checks
    (``lap-estimate``, ``order-dependent``).
    """
    _obs.inc("batch_dispatch", outcome="scalar", reason=reason)
    return None


def _prepare_cell(spec) -> "_Cell | None":
    """Build scenario/plan for ``spec`` and vet it for the batch class."""
    from repro.runner.campaign import _scenario_cache_key, build_cell_scenario

    from repro.baselines.base import get_strategy, strategy_params
    from repro.sim.engine import PatrolSimulator

    cfg = spec.sim
    if not cfg.batch_path:
        return _reject("batch-path-disabled")
    if cfg.max_visits is not None:
        return _reject("max-visits")
    if spec.metrics:
        return _reject("custom-metrics")
    scenario = build_cell_scenario(spec)
    if cfg.track_energy and any(m.battery is not None for m in scenario.mules):
        return _reject("tracked-energy")
    params = dict(spec.params)
    if "seed" in strategy_params(spec.strategy) and "seed" not in params:
        params["seed"] = spec.seed
    plan_key = (
        spec.strategy,
        json.dumps(sorted(params.items()), default=repr),
        _scenario_cache_key(spec),
    )
    plan = _PLAN_CACHE.get(plan_key)
    if plan is None:
        planner = get_strategy(spec.strategy, **params)
        plan = planner.plan(scenario)
        _PLAN_CACHE.put(plan_key, plan)
    sim = PatrolSimulator(scenario, plan, cfg)
    rejection = fast_path_rejection(sim)
    if rejection is not None:
        return _reject(f"fastpath-{rejection}")

    sync_time = sim._synchronized_start_time() if cfg.synchronized_start else 0.0
    targets = scenario.targets
    node_code: dict[str, int] = {t.id: 1 for t in targets}
    node_code[sim._sink_id] = 2
    if sim._recharge_id is not None:
        node_code[sim._recharge_id] = 3
    node_tidx: dict[str, int] = {t.id: i for i, t in enumerate(targets)}
    node_tidx[sim._sink_id] = len(targets)
    row_key = (plan_key, cfg.horizon, cfg.synchronized_start)
    rows = _ROW_CACHE.get(row_key)
    if rows is _ROW_FALLBACK:
        return _reject("row-fallback")
    if rows is None:
        try:
            rows = [
                _Row(sim, mule, plan.route_for(mule.id), sync_time, node_code,
                     node_tidx)
                for mule in scenario.mules
            ]
        except _Fallback:
            _ROW_CACHE.put(row_key, _ROW_FALLBACK)
            return _reject("row-fallback")
        _ROW_CACHE.put(row_key, rows)
    target_ids = [t.id for t in targets]
    rates_arr = np.array([t.data_rate for t in targets], dtype=float)
    return _Cell(spec, scenario, plan, sim._sink_id, rows, target_ids, rates_arr)


# --------------------------------------------------------------------------- #
# The stacked tensor pass
# --------------------------------------------------------------------------- #

def _stacked_cumsum(rows: "list[_Row]") -> None:
    """One ``np.cumsum(axis=1)`` per leg-pattern shape group, over all rows.

    Rows are grouped by increment length, stacked into a ``[base, inc...]``
    matrix and cumsum'd along axis 1 — per-row this is the identical
    sequence of sequential float additions the scalar path performs, so the
    resulting arrival/departure chains are bitwise equal.
    """
    groups: "dict[int, list[_Row]]" = {}
    for row in rows:
        groups.setdefault(len(row.inc), []).append(row)
    for width, members in groups.items():
        # Group-size distribution: how well the campaign's rows stack.
        _obs.observe("batch_group_rows", len(members))
        chunk = max(1, _MAX_BLOCK_FLOATS // (width + 1))
        for lo in range(0, len(members), chunk):
            part = members[lo:lo + chunk]
            block = np.empty((len(part), width + 1), dtype=float)
            for r, row in enumerate(part):
                block[r, 0] = row.base
                block[r, 1:] = row.inc
            block = np.cumsum(block, axis=1)
            for r, row in enumerate(part):
                row.full = block[r]


# --------------------------------------------------------------------------- #
# Per-cell reduction to a record
# --------------------------------------------------------------------------- #

def _ties_are_benign(times_all, codes_all, tidx_all, row_all) -> bool:
    """Whether every equal-timestamp group of visit events is order-invariant.

    See the call site for the three material shapes.  The scan touches only
    the tied runs of the sorted recorded-event times, so tie-free cells (the
    vast majority) pay one sort and one diff.
    """
    recorded_idx = np.nonzero((codes_all == 1) | (codes_all == 2))[0]
    if recorded_idx.size < 2:
        return True
    order = recorded_idx[np.argsort(times_all[recorded_idx], kind="stable")]
    sorted_times = times_all[order]
    eq = np.nonzero(np.diff(sorted_times) == 0.0)[0]
    if eq.size == 0:
        return True
    collect_times = times_all[codes_all == 1]
    min_collect = float(collect_times.min()) if collect_times.size else np.inf
    # eq holds positions where sorted_times[i] == sorted_times[i+1];
    # consecutive positions chain into one tied run.
    run_breaks = np.nonzero(np.diff(eq) > 1)[0] + 1
    for run in np.split(eq, run_breaks):
        members = order[run[0]:run[-1] + 2]
        g_codes = codes_all[members]
        g_rows = row_all[members]
        g_collect = g_codes == 1
        g_sink = g_codes == 2
        targets = tidx_all[members[g_collect]]
        if np.unique(targets).size < int(g_collect.sum()):
            return False  # same-target simultaneous collections
        if set(g_rows[g_sink].tolist()) & set(g_rows[g_collect].tolist()):
            return False  # one mule collecting and flushing at one instant
        if int(g_sink.sum()) >= 2 and min_collect < sorted_times[run[0]]:
            return False  # simultaneous flushes, possibly with data on board
    return True


def _finish_cell(cell: _Cell) -> "dict | None":
    """Reduce one cumsum'd cell to its record; ``None`` → scalar fallback."""
    spec = cell.spec
    cfg = spec.sim
    horizon = cfg.horizon

    per_mule_distance: list[float] = []
    kept_times: list[np.ndarray] = []
    kept_codes: list[np.ndarray] = []
    kept_tidx: list[np.ndarray] = []
    kept_rows: list[int] = []
    sink_times_by_row: "dict[int, np.ndarray]" = {}

    for row_index, row in enumerate(cell.rows):
        full = row.full
        arrivals = full[1::2]
        if row.cyclic and arrivals[-1] <= horizon:
            # Lap estimate fell short: the scalar path extends exactly.
            return _reject("lap-estimate")
        n_keep = int(np.searchsorted(arrivals, horizon, side="right"))
        init_applied = 1 if (row.init_event and row.init_time <= horizon) else 0
        applied = n_keep + init_applied
        if applied:
            # Travelled distance is the engine's leg-by-leg running sum —
            # a cumsum prefix, computed once per (shared) row.  The
            # initial-leg variant is a separate prefix: prepending the leg
            # changes every partial sum's rounding, so it cannot be derived
            # from the plain one by adding init_dist afterwards.
            if row.init_event:
                if row.init_prefix is None:
                    row.init_prefix = np.cumsum(
                        np.concatenate(([row.init_dist], row.dists))
                    )
                per_mule_distance.append(float(row.init_prefix[applied - 1]))
            else:
                if row.dist_prefix is None:
                    row.dist_prefix = np.cumsum(row.dists)
                per_mule_distance.append(float(row.dist_prefix[applied - 1]))
        else:
            per_mule_distance.append(0.0)
        times = arrivals[:n_keep]
        codes = row.codes[:n_keep]
        kept_times.append(times)
        kept_codes.append(codes)
        kept_tidx.append(row.tidx[:n_keep])
        kept_rows.append(row_index)
        sink_times_by_row[row_index] = times[codes == 2]

    times_all = np.concatenate(kept_times) if kept_times else np.empty(0)
    codes_all = (
        np.concatenate(kept_codes) if kept_codes
        else np.empty(0, dtype=np.int8)
    )
    tidx_all = (
        np.concatenate(kept_tidx) if kept_tidx
        else np.empty(0, dtype=np.int32)
    )
    row_all = np.concatenate(
        [np.full(len(t), r, dtype=np.int32) for t, r in zip(kept_times, kept_rows)]
    ) if kept_times else np.empty(0, dtype=np.int32)

    # Tie audit: visit events sharing a timestamp are ordered by the
    # engine's heap sequence counters, which the batch does not replay.
    # Most ties cannot reach the record — two mules arriving at *different*
    # targets at once interact with nothing, and a mule at the sink with an
    # empty buffer flushes nothing — but three shapes are genuinely
    # order-dependent and send the cell to the scalar path:
    # same-target simultaneous collections (the second packet has size 0 —
    # which mule carries which size depends on heap order), a mule hitting a
    # target and the sink at the same instant (deliver-now vs next flush),
    # and simultaneous flushes with data on board (delivery-list order is
    # the float summation order).
    if not _ties_are_benign(times_all, codes_all, tidx_all, row_all):
        return _reject("order-dependent")

    # Per-target grouping in one lexsort: primary key target index, secondary
    # key time — each group slice comes out time-sorted, exactly the
    # recorder's per-node ``np.sort``.
    collect_indices = np.nonzero(codes_all == 1)[0]
    ct = times_all[collect_indices]
    cx = tidx_all[collect_indices]
    node_times: dict[str, np.ndarray] = {}
    collect_sizes = np.empty(ct.size, dtype=float)
    num_targets = len(cell.target_ids)
    if ct.size:
        order = np.lexsort((ct, cx))
        ct_s = ct[order]
        cx_s = cx[order]
        # Collection-window packet sizes: (t_j - t_{j-1}) * rate with the
        # window opening at 0.0 — the engine's max(now - last, 0.0) reduces
        # to the plain difference under time-ordered processing.  Group
        # starts (where the target index changes) reset the window to 0.0.
        prev = np.empty_like(ct_s)
        prev[0] = 0.0
        prev[1:] = ct_s[:-1]
        starts = np.nonzero(np.diff(cx_s) != 0)[0] + 1
        prev[starts] = 0.0
        sizes_s = (ct_s - prev) * cell.rates_arr[cx_s]
        collect_sizes[order] = sizes_s
        bounds = np.searchsorted(cx_s, np.arange(num_targets + 1))
        for ti in range(num_targets):
            lo, hi = bounds[ti], bounds[ti + 1]
            if hi > lo:
                node_times[cell.target_ids[ti]] = ct_s[lo:hi]
    sink_visit_times = times_all[codes_all == 2]
    if sink_visit_times.size:
        node_times[cell.sink_id] = np.sort(sink_visit_times)

    # Sink deliveries: each collected packet flushes at its mule's first
    # strictly-later sink visit; the engine's delivery list is ordered by
    # flush time, FIFO within a flush — ``lexsort`` reproduces both.
    delivery_sink_t: list[np.ndarray] = []
    delivery_collect_t: list[np.ndarray] = []
    delivery_sizes: list[np.ndarray] = []
    row_of_collect = row_all[collect_indices]
    for row_index in kept_rows:
        lo, hi = np.searchsorted(row_of_collect, [row_index, row_index + 1])
        if hi == lo:
            continue
        c_times = ct[lo:hi]
        c_sizes = collect_sizes[lo:hi]
        s_times = sink_times_by_row[row_index]
        sidx = np.searchsorted(s_times, c_times, side="left")
        delivered = sidx < len(s_times)
        if delivered.any():
            delivery_sink_t.append(s_times[sidx[delivered]])
            delivery_collect_t.append(c_times[delivered])
            delivery_sizes.append(c_sizes[delivered])
    if delivery_sizes:
        sink_t = np.concatenate(delivery_sink_t)
        col_t = np.concatenate(delivery_collect_t)
        sizes = np.concatenate(delivery_sizes)
        order = np.lexsort((col_t, sink_t))
        delivered_data: "float | int" = float(np.cumsum(sizes[order])[-1])
    else:
        delivered_data = 0  # sum([]) in the recorder is the int 0

    # The metric extractors run unchanged on a stub result pre-seeded with
    # the per-node arrays — identical inputs, identical code, identical
    # floats (and the same int/float JSON spelling).
    stub = SimulationResult(strategy=cell.plan.strategy, horizon=horizon)
    stub.__dict__["_visit_times_cache"] = (
        0, {n: node_times[n] for n in sorted(node_times)}
    )

    record: dict = {
        "strategy": spec.strategy,
        "seed": spec.seed,
        "num_targets": cell.scenario.num_targets,
        "num_mules": cell.scenario.num_mules,
        "horizon": cfg.horizon,
    }
    record.update(spec.labels)
    record["planner"] = cell.plan.strategy
    record["average_dcdt"] = average_dcdt(stub)
    record["average_sd"] = average_sd(stub)
    record["max_visiting_interval"] = max_visiting_interval(stub)
    record["delivered_data"] = delivered_data
    record["total_distance"] = sum(per_mule_distance)
    record["num_dead_mules"] = 0
    _obs.inc("batch_dispatch", outcome="batch")
    return record


# --------------------------------------------------------------------------- #
# Entry point
# --------------------------------------------------------------------------- #

def batch_execute_records(specs) -> "list[dict | None]":
    """Evaluate the batch-eligible cells of ``specs`` in one tensor pass.

    Returns one entry per spec, in order: the finished record for every cell
    the batch handled, ``None`` for every cell that must run per-cell (the
    caller dispatches those through the ordinary
    :func:`~repro.runner.campaign.execute_run`).  Records are byte-identical
    to per-cell execution; with the switch off (or fewer than two specs,
    where stacking cannot win) everything is ``None``.
    """
    specs = list(specs)
    out: "list[dict | None]" = [None] * len(specs)
    if not _ENABLED or len(specs) < 2:
        return out
    cells: "list[_Cell | None]" = [_prepare_cell(spec) for spec in specs]
    # Cells sharing cached row sets alias the same _Row objects; stack each
    # distinct row once (and skip rows a previous batch already cumsum'd —
    # the output depends only on the row, so recomputing it is a no-op).
    rows = []
    seen: set[int] = set()
    for cell in cells:
        if cell is None:
            continue
        for row in cell.rows:
            if row.full is None and id(row) not in seen:
                seen.add(id(row))
                rows.append(row)
    if rows:
        _stacked_cumsum(rows)
    if not any(cell is not None for cell in cells):
        return out
    for index, cell in enumerate(cells):
        if cell is not None:
            out[index] = _finish_cell(cell)
    return out
