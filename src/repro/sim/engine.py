"""The discrete-event patrolling simulator.

Given a :class:`~repro.network.scenario.Scenario` and a
:class:`~repro.core.plan.PatrolPlan`, the engine plays out the plan for a
configurable time horizon:

* mules first drive to their start position if the plan performed location
  initialisation, then follow their waypoint iterator forever;
* every arrival at a target collects the accumulated data (costing
  ``c_s`` joules) and is recorded as a visit;
* arrivals at the sink deliver the on-board buffer; arrivals at the recharge
  station refill the battery;
* movement costs ``c_m`` joules per metre; a mule whose battery empties
  mid-leg dies on the spot (the failure RW-TCTP avoids).

Mules do not interact, so the simulation is deterministic given the plan (the
Random baseline's randomness lives inside its route object, which is seeded).
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Iterator

from repro.core.plan import MuleRoute, PatrolPlan
from repro.geometry.point import Point, distance
from repro.network.datamodel import DataCollectionModel
from repro.network.mules import DataMule, MuleState
from repro.network.scenario import Scenario
from repro.obs.registry import inc as _obs_inc, obs_enabled as _obs_enabled
from repro.sim.events import Event, EventKind, EventQueue
from repro.sim.recorder import DeliveryRecord, MuleTrace, SimulationResult, VisitRecord

__all__ = ["SimulationConfig", "PatrolSimulator"]


@dataclass(frozen=True)
class SimulationConfig:
    """Run-level knobs of the simulator.

    Attributes
    ----------
    horizon:
        Simulated seconds; events past the horizon are not executed.
    max_visits:
        Optional safety valve: stop after this many recorded target visits.
    track_energy:
        When ``False`` batteries are ignored even if mules carry one
        (used by the B-TCTP / W-TCTP experiments, which do not model energy).
    synchronized_start:
        When the plan performed location initialisation, hold every mule at
        its start point until the slowest mule has reached its own, then let
        all of them start patrolling simultaneously.  This is the behaviour
        the paper assumes ("all DMs initially move to the appreciate locations
        and then patrol the targets"): only with a common start instant are
        consecutive mules separated by exactly ``|P| / n`` of path, which is
        what drives TCTP's zero visiting-interval variance.
    fast_path:
        Allow the analytic loop-route fast path (:mod:`repro.sim.fastpath`)
        for runs it can reproduce exactly.  Results are byte-identical either
        way; disable to force the discrete-event loop (used by equivalence
        tests and benchmarks).
    batch_path:
        Allow the campaign-level batched fast path
        (:mod:`repro.sim.batchpath`), which evaluates many fastpath-eligible
        cells of one campaign as a single stacked tensor pass.  Results are
        byte-identical either way; disable (or set ``REPRO_BATCHPATH=0``) to
        force per-cell dispatch.  Has no effect on single runs — only
        :func:`repro.runner.campaign.execute_many` consults it.
    obs:
        Turn on the instrumentation registry (:mod:`repro.obs`) for the
        campaign this spec belongs to, as if ``REPRO_OBS=1`` were set for
        its duration.  Recording is proven byte-invisible — records and
        fingerprints are identical either way — so like the dispatch
        switches this knob is exempt from run fingerprints.  Has no effect
        on single runs — only :meth:`repro.runner.campaign.Campaign.run`
        consults it.
    """

    horizon: float = 50_000.0
    max_visits: int | None = None
    track_energy: bool = True
    synchronized_start: bool = True
    fast_path: bool = True
    batch_path: bool = True
    obs: bool = False

    def __post_init__(self) -> None:
        if self.horizon <= 0:
            raise ValueError("simulation horizon must be positive")
        if self.max_visits is not None and self.max_visits <= 0:
            raise ValueError("max_visits must be positive when given")


class _MuleRuntime:
    """Mutable per-mule simulation state."""

    __slots__ = ("mule", "route", "waypoints", "position", "current_node", "trace", "dead")

    def __init__(self, mule: DataMule, route: MuleRoute) -> None:
        self.mule = mule
        self.route = route
        self.waypoints: Iterator[str] = route.waypoints()
        self.position: Point = mule.position
        self.current_node: str | None = None
        self.trace = MuleTrace(mule_id=mule.id)
        self.dead = False


class PatrolSimulator:
    """Plays a patrol plan against a scenario and records what happened."""

    def __init__(self, scenario: Scenario, plan: PatrolPlan, config: SimulationConfig | None = None) -> None:
        self.scenario = scenario
        self.plan = plan
        self.config = config or SimulationConfig()
        missing = [m.id for m in scenario.mules if m.id not in plan.routes]
        if missing:
            raise ValueError(f"plan has no route for mules: {missing}")
        self._target_ids = {t.id for t in scenario.targets}
        self._sink_id = scenario.sink.id
        self._recharge_id = scenario.recharge_station.id if scenario.recharge_station else None
        self._params = scenario.params
        self._energy = scenario.params.energy_model

    # ------------------------------------------------------------------ #
    def run(self) -> SimulationResult:
        """Execute the simulation and return the recorded result.

        Deterministic loop-route runs (all TCTP variants including RW-TCTP's
        alternating recharge schedule, CHB, Sweep — with or without tracked
        batteries, dwell times and visit limits) are served by the analytic
        fast path in :mod:`repro.sim.fastpath`, which reproduces the event
        loop's output byte for byte; everything else — stochastic routes,
        pre-loaded buffers, degenerate zero-advance laps — runs the full
        discrete-event loop below.
        """
        if self.config.fast_path:
            from repro.sim.fastpath import run_fast_path

            result = run_fast_path(self)
            if result is not None:
                _obs_inc("sim_dispatch", outcome="fastpath")
                return result
            if _obs_enabled():
                from repro.sim.fastpath import fast_path_rejection

                # A None result with no static rejection means a dynamic
                # fallback fired mid-flight (zero-advance lap, event-cap
                # overflow, empty walk) — the static probe can't see those.
                reason = fast_path_rejection(self) or "dynamic-fallback"
                _obs_inc("sim_dispatch", outcome="event-loop", reason=reason)
        else:
            _obs_inc("sim_dispatch", outcome="event-loop",
                     reason="fast-path-disabled")
        return self._run_event_loop()

    def _run_event_loop(self) -> SimulationResult:
        """The reference discrete-event implementation."""
        cfg = self.config
        result = SimulationResult(strategy=self.plan.strategy, horizon=cfg.horizon,
                                  metadata=dict(self.plan.metadata))
        collection = DataCollectionModel(self.scenario.data_rates())
        queue = EventQueue()
        runtimes: dict[str, _MuleRuntime] = {}

        sync_time = self._synchronized_start_time() if cfg.synchronized_start else 0.0
        result.metadata.setdefault("patrol_start_time", sync_time)

        for mule in self.scenario.mules:
            runtime = _MuleRuntime(mule, self.plan.route_for(mule.id))
            runtimes[mule.id] = runtime
            result.traces[mule.id] = runtime.trace
            self._schedule_initial_leg(runtime, queue, sync_time)

        visits_recorded = 0
        while queue:
            event = queue.pop()
            if event.time > cfg.horizon:
                break
            runtime = runtimes[event.mule_id]
            if runtime.dead:
                continue
            if event.kind is EventKind.INITIALIZED:
                self._finish_leg(runtime, event)
                runtime.trace.initialization_time = event.time
                # Wait for the slowest mule before the patrol proper begins.
                self._schedule_next_leg(runtime, max(event.time, sync_time), queue)
            elif event.kind is EventKind.ARRIVAL:
                self._finish_leg(runtime, event)
                recorded = self._handle_arrival(runtime, event, collection, result)
                visits_recorded += int(recorded)
                if cfg.max_visits is not None and visits_recorded >= cfg.max_visits:
                    break
                dwell = self._params.collection_time if event.node_id in self._target_ids else 0.0
                if dwell > 0.0:
                    queue.push(event.time + dwell, EventKind.COLLECTION_DONE,
                               mule_id=runtime.mule.id, node_id=event.node_id)
                else:
                    self._schedule_next_leg(runtime, event.time, queue)
            elif event.kind is EventKind.COLLECTION_DONE:
                self._schedule_next_leg(runtime, event.time, queue)
            elif event.kind is EventKind.ENERGY_DEPLETED:
                self._kill_mule(runtime, event)
            # STOP events are not generated currently; the horizon check handles termination.

        return result

    # ------------------------------------------------------------------ #
    # Leg scheduling
    # ------------------------------------------------------------------ #
    def _synchronized_start_time(self) -> float:
        """Time at which the slowest mule reaches its start position (0 when no initialisation)."""
        times = []
        for mule in self.scenario.mules:
            start = self.plan.route_for(mule.id).start_position()
            if start is not None:
                times.append(distance(mule.position, start) / mule.velocity)
        return max(times) if times else 0.0

    def _schedule_initial_leg(self, runtime: _MuleRuntime, queue: EventQueue, sync_time: float = 0.0) -> None:
        start = runtime.route.start_position()
        if start is not None and distance(runtime.position, start) > 1e-12:
            self._schedule_move(runtime, 0.0, start, EventKind.INITIALIZED, None, queue)
        elif start is not None:
            # Already standing on the start position: just wait for the others.
            runtime.trace.initialization_time = 0.0
            self._schedule_next_leg(runtime, sync_time, queue)
        else:
            self._schedule_next_leg(runtime, 0.0, queue)

    def _schedule_next_leg(self, runtime: _MuleRuntime, now: float, queue: EventQueue) -> None:
        node = self._next_distinct_waypoint(runtime)
        if node is None:
            return
        destination = runtime.route.point_of(node)
        self._schedule_move(runtime, now, destination, EventKind.ARRIVAL, node, queue)

    def _next_distinct_waypoint(self, runtime: _MuleRuntime) -> str | None:
        """Next waypoint different from the node the mule is standing on."""
        for _ in range(8):  # a patrol loop with >8 consecutive repeats of one node is malformed
            node = next(runtime.waypoints)
            if node != runtime.current_node or distance(
                runtime.position, runtime.route.point_of(node)
            ) > 1e-9:
                return node
        return None

    def _schedule_move(
        self,
        runtime: _MuleRuntime,
        now: float,
        destination: Point,
        kind: EventKind,
        node_id: str | None,
        queue: EventQueue,
    ) -> None:
        mule = runtime.mule
        dist = distance(runtime.position, destination)
        travel_time = dist / mule.velocity if dist > 0 else 0.0

        if self.config.track_energy and mule.battery is not None and self._energy.move_cost_per_meter > 0:
            reachable = mule.battery.remaining / self._energy.move_cost_per_meter
            if reachable + 1e-9 < dist:
                # The battery dies mid-leg.
                death_time = now + (reachable / mule.velocity if mule.velocity > 0 else 0.0)
                queue.push(death_time, EventKind.ENERGY_DEPLETED, mule_id=mule.id,
                           node_id=node_id, payload={"destination": destination, "reachable": reachable})
                return
        queue.push(now + travel_time, kind, mule_id=mule.id, node_id=node_id,
                   payload={"destination": destination, "distance": dist, "departed": now})

    def _finish_leg(self, runtime: _MuleRuntime, event: Event) -> None:
        """Apply the movement of the leg that just completed."""
        payload = event.payload or {}
        destination: Point = payload.get("destination", runtime.position)
        dist: float = payload.get("distance", distance(runtime.position, destination))
        mule = runtime.mule
        runtime.position = destination
        mule.position = destination
        runtime.trace.distance_travelled += dist
        if self.config.track_energy and mule.battery is not None:
            cost = self._energy.movement_energy(dist)
            drained = mule.battery.drain(cost)
            runtime.trace.energy_consumed += drained
        else:
            runtime.trace.energy_consumed += self._energy.movement_energy(dist)
        if event.node_id is not None:
            runtime.current_node = event.node_id
        mule.state = MuleState.MOVING

    def _kill_mule(self, runtime: _MuleRuntime, event: Event) -> None:
        payload = event.payload or {}
        reachable = payload.get("reachable", 0.0)
        destination = payload.get("destination", runtime.position)
        final_position = runtime.position.towards(destination, reachable)
        runtime.position = final_position
        runtime.mule.position = final_position
        runtime.trace.distance_travelled += reachable
        if runtime.mule.battery is not None:
            runtime.trace.energy_consumed += runtime.mule.battery.drain(
                runtime.mule.battery.remaining
            )
        runtime.dead = True
        runtime.trace.death_time = event.time
        runtime.mule.state = MuleState.DEAD

    # ------------------------------------------------------------------ #
    # Arrival handling
    # ------------------------------------------------------------------ #
    def _handle_arrival(
        self,
        runtime: _MuleRuntime,
        event: Event,
        collection: DataCollectionModel,
        result: SimulationResult,
    ) -> bool:
        """Process a waypoint arrival; returns True when a target visit was recorded."""
        node = event.node_id
        mule = runtime.mule
        now = event.time
        recorded = False

        is_plain_target = node in self._target_ids
        is_sink = node == self._sink_id
        is_recharge = self._recharge_id is not None and node == self._recharge_id

        if is_plain_target or is_sink:
            # Section 2.1 treats the sink as a target point, so its visits count too.
            result.visits.append(VisitRecord(time=now, node_id=node, mule_id=mule.id, is_target=True))
            recorded = True
        elif is_recharge:
            result.visits.append(VisitRecord(time=now, node_id=node, mule_id=mule.id, is_target=False))

        if is_plain_target:
            packet = collection.collect(node, now)
            mule.buffer.add(packet)
            runtime.trace.collections += 1
            if self.config.track_energy and mule.battery is not None:
                drained = mule.battery.drain(self._energy.collect_cost)
                runtime.trace.energy_consumed += drained
                if mule.battery.depleted:
                    runtime.dead = True
                    runtime.trace.death_time = now
                    mule.state = MuleState.DEAD
            else:
                runtime.trace.energy_consumed += self._energy.collect_cost

        if is_sink:
            for packet in mule.buffer.flush():
                result.deliveries.append(
                    DeliveryRecord(
                        delivered_at=now,
                        mule_id=mule.id,
                        target_id=packet.target_id,
                        generated_from=packet.generated_from,
                        generated_to=packet.generated_to,
                        collected_at=packet.collected_at,
                        size=packet.size,
                    )
                )
                runtime.trace.deliveries += 1

        if is_recharge and mule.battery is not None:
            mule.recharge_full()
            runtime.trace.recharges += 1

        return recorded
