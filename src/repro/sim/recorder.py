"""Simulation output records: visits, deliveries, per-mule traces and the result bundle.

The hot-path metric queries (:meth:`SimulationResult.visit_times`,
:meth:`SimulationResult.visit_times_by_target` and everything in
:mod:`repro.sim.metrics` built on them) group the visit log into per-target
numpy arrays **once** per result and cache the grouping, instead of
re-filtering the full log for every target as the original per-event code
did.  The cache is invalidated by visit-log length, so incremental consumers
that append records still see fresh data.
"""

from __future__ import annotations

from dataclasses import dataclass, field
import numpy as np

__all__ = ["VisitRecord", "DeliveryRecord", "MuleTrace", "SimulationResult"]


@dataclass(frozen=True)
class VisitRecord:
    """One visit of a data mule to a patrol node (target, sink or recharge station)."""

    time: float
    node_id: str
    mule_id: str
    is_target: bool = True


@dataclass(frozen=True)
class DeliveryRecord:
    """One data packet handed over at the sink."""

    delivered_at: float
    mule_id: str
    target_id: str
    generated_from: float
    generated_to: float
    collected_at: float
    size: float

    @property
    def latency(self) -> float:
        """Latency from the midpoint of the generation window to delivery."""
        return self.delivered_at - 0.5 * (self.generated_from + self.generated_to)


@dataclass
class MuleTrace:
    """Per-mule bookkeeping accumulated during a simulation run."""

    mule_id: str
    distance_travelled: float = 0.0
    energy_consumed: float = 0.0
    collections: int = 0
    deliveries: int = 0
    recharges: int = 0
    initialization_time: float = 0.0
    death_time: float | None = None

    @property
    def alive(self) -> bool:
        return self.death_time is None


@dataclass
class SimulationResult:
    """Everything recorded during one simulation run."""

    strategy: str
    horizon: float
    visits: list[VisitRecord] = field(default_factory=list)
    deliveries: list[DeliveryRecord] = field(default_factory=list)
    traces: dict[str, MuleTrace] = field(default_factory=dict)
    metadata: dict = field(default_factory=dict)

    # ------------------------------------------------------------------ #
    def target_visits(self, target_id: str | None = None) -> list[VisitRecord]:
        """Visits to targets only (optionally filtered to one target), time-ordered."""
        out = [v for v in self.visits if v.is_target and (target_id is None or v.node_id == target_id)]
        return sorted(out, key=lambda v: (v.time, v.node_id, v.mule_id))

    def visit_times_by_target(self) -> "dict[str, np.ndarray]":
        """Sorted visit-time array per visited target, grouped in one pass.

        The grouping is cached on the result (keyed by visit-log length) so
        the metric extractors — which all need the same per-target view —
        share one O(V) pass instead of filtering the full log per target.
        The arrays are cache-shared: copy before mutating.
        """
        cached = self.__dict__.get("_visit_times_cache")
        if cached is not None and cached[0] == len(self.visits):
            return cached[1]
        groups: dict[str, list[float]] = {}
        for v in self.visits:
            if v.is_target:
                groups.setdefault(v.node_id, []).append(v.time)
        arrays = {
            t: np.sort(np.asarray(groups[t], dtype=float)) for t in sorted(groups)
        }
        self.__dict__["_visit_times_cache"] = (len(self.visits), arrays)
        return arrays

    def visit_times(self, target_id: str) -> list[float]:
        """Sorted visit times of one target."""
        times = self.visit_times_by_target().get(target_id)
        return [] if times is None else times.tolist()

    def visited_targets(self) -> list[str]:
        """Identifiers of all targets visited at least once."""
        return list(self.visit_times_by_target())

    def visit_count(self, target_id: str) -> int:
        times = self.visit_times_by_target().get(target_id)
        return 0 if times is None else int(times.size)

    def total_distance(self) -> float:
        return sum(t.distance_travelled for t in self.traces.values())

    def total_energy(self) -> float:
        return sum(t.energy_consumed for t in self.traces.values())

    def total_delivered_data(self) -> float:
        return sum(d.size for d in self.deliveries)

    def surviving_mules(self) -> list[str]:
        return sorted(m for m, t in self.traces.items() if t.alive)

    def dead_mules(self) -> list[str]:
        return sorted(m for m, t in self.traces.items() if not t.alive)

    def summary(self) -> dict:
        """Compact dictionary summary used by experiment reports."""
        return {
            "strategy": self.strategy,
            "horizon": self.horizon,
            "num_visits": len([v for v in self.visits if v.is_target]),
            "num_deliveries": len(self.deliveries),
            "total_distance": round(self.total_distance(), 3),
            "total_energy": round(self.total_energy(), 3),
            "delivered_data": round(self.total_delivered_data(), 3),
            "dead_mules": self.dead_mules(),
        }
