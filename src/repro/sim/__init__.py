"""Discrete-event patrolling simulator and the metrics of Section V.

The engine advances each data mule along the waypoints dictated by its
:class:`~repro.core.plan.MuleRoute`, charging movement/collection energy,
recording every target visit, transferring data buffers at the sink and
refilling batteries at the recharge station.  The metrics module turns the
recorded visit log into the quantities the paper plots: visiting intervals,
Data Collection Delay Time (DCDT), per-target standard deviation of visiting
intervals, energy usage and data-delivery latency.

Deterministic loop-route runs are served by the analytic fast path in
:mod:`repro.sim.fastpath` (byte-identical to the event loop, several times
faster; toggled by :attr:`SimulationConfig.fast_path`), and the metric
extractors operate on vectorised per-target visit-time arrays cached on the
:class:`SimulationResult`.
"""

from repro.sim.engine import PatrolSimulator, SimulationConfig
from repro.sim.recorder import VisitRecord, DeliveryRecord, MuleTrace, SimulationResult
from repro.sim.metrics import (
    visiting_intervals,
    per_target_intervals,
    dcdt_series,
    average_dcdt,
    per_target_sd,
    average_sd,
    max_visiting_interval,
    delivery_latencies,
)

__all__ = [
    "PatrolSimulator",
    "SimulationConfig",
    "VisitRecord",
    "DeliveryRecord",
    "MuleTrace",
    "SimulationResult",
    "visiting_intervals",
    "per_target_intervals",
    "dcdt_series",
    "average_dcdt",
    "per_target_sd",
    "average_sd",
    "max_visiting_interval",
    "delivery_latencies",
]
