"""Analytic fast path for deterministic loop-route simulations.

The discrete-event engine in :mod:`repro.sim.engine` spends almost all of its
time on per-event bookkeeping: heap-managed :class:`~repro.sim.events.Event`
objects, payload dicts, per-leg ``distance()`` calls and per-event dataclass
construction.  For the workloads that dominate campaign time — every TCTP
variant, CHB and Sweep — none of that is necessary: each mule follows a
**fixed closed walk** at constant velocity, so its entire arrival-time
sequence is an arithmetic chain over a periodic pattern of leg lengths.

This module exploits that:

1. per mule, the effective waypoint sequence is reduced to a *prefix + cycle*
   pattern (mirroring the engine's consecutive-duplicate skip rule), its leg
   lengths are computed once, and the full arrival/departure-time chain up to
   the horizon — travel legs interleaved with per-target dwell times — is
   produced by one ``np.cumsum``, bit-for-bit equal to the engine's
   sequential ``now + dist / velocity`` and ``now + dwell`` additions;
2. the per-mule streams are merged by a light ``(time, sequence)`` heap that
   replicates the engine's event-queue tie-breaking exactly, so visits,
   collections, dwell completions, mid-leg deaths and sink deliveries
   interleave in the identical global order (packet sizes depend on that
   order: collection windows are shared between mules);
3. per-mule distance/energy accumulators come from cumulative-sum arrays cut
   at the number of applied legs (battery-tracked mules instead replay their
   drain/recharge/death bookkeeping live against the precomputed schedule,
   which battery state never shifts — death only truncates it).

The result is **byte-identical** to the event loop — same visit log, same
deliveries, same traces, same metadata — at a fraction of the cost.  Positive
``collection_time`` dwells, ``max_visits`` cutoffs, energy-tracked batteries
(including mid-leg death and recharge laps) and RW-TCTP's
:class:`~repro.core.plan.AlternatingLoopRoute` are all reproduced exactly.
Runs the fast path cannot reproduce exactly fall back to the event loop:

* stochastic routes (any route class other than
  :class:`~repro.core.plan.LoopRoute` /
  :class:`~repro.core.plan.AlternatingLoopRoute` has no precomputable
  waypoint pattern),
* mules deployed with pre-loaded data buffers (the merged replay assumes
  every buffer starts empty), and
* pathological zero-advance laps (the event loop's behaviour — spinning at a
  single instant — is preserved by falling back).

Eligibility is decided per *route class*, not per strategy name, so
strategies composed through the planning pipeline (:mod:`repro.planning`) —
including new cross-combinations like ``sw-tctp`` or ``cb-tctp`` — ride the
fast path automatically whenever they emit plain or alternating loop routes.
:func:`fast_path_rejection` names the reason a simulation stays on the event
loop; the fallback-boundary tests pin every reason it can return.

Toggle with :attr:`repro.sim.engine.SimulationConfig.fast_path`; the
equivalence tests in ``tests/test_fastpath.py`` and the differential fuzz
harness in ``tests/test_fastpath_differential.py`` assert byte-identical
results against the event loop for every eligible strategy family.
"""

from __future__ import annotations

import heapq

import numpy as np

from repro.core.plan import AlternatingLoopRoute, LoopRoute, MuleRoute
from repro.geometry.point import Point, distance
from repro.network.datamodel import DataPacket
from repro.network.mules import MuleState
from repro.sim.recorder import DeliveryRecord, MuleTrace, SimulationResult, VisitRecord

__all__ = ["fast_path_eligible", "fast_path_rejection", "run_fast_path"]

# Safety valve: beyond this many precomputed arrival events per mule the
# array stage would dominate memory; such runs are no faster analytically,
# so they stay on the event loop.
_MAX_EVENTS_PER_MULE = 4_000_000

# Merge-heap event kinds (the engine's EventKind, reduced to what the replay
# needs; values are only compared for equality, never ordered — the
# (time, counter) prefix of each heap tuple is already a total order).
_ARRIVAL = 0
_INIT = 1
_DWELL_DONE = 2
_DEATH = 3


class _Fallback(Exception):
    """Internal signal: this run needs the exact event loop after all."""


def fast_path_rejection(sim) -> str | None:
    """Why ``sim`` cannot take the fast path, or ``None`` when it can.

    Returns a stable reason code so callers (and the fallback-boundary
    tests) can tell the remaining rejection classes apart:

    * ``"fast-path-disabled"`` — :attr:`SimulationConfig.fast_path` is off;
    * ``"preloaded-buffer"`` — a mule starts with data already on board;
    * ``"route-class"`` — a route is neither :class:`LoopRoute` nor
      :class:`AlternatingLoopRoute` (e.g. the Random baseline's
      :class:`StochasticRoute`).

    A ``None`` here is necessary but not sufficient: degenerate runs
    (zero-advance laps, streams past the event-count safety valve) still
    fall back dynamically inside :func:`run_fast_path`.
    """
    if not sim.config.fast_path:
        return "fast-path-disabled"
    mules = sim.scenario.mules
    if any(len(m.buffer) > 0 for m in mules):
        return "preloaded-buffer"
    for m in mules:
        if type(sim.plan.route_for(m.id)) not in (LoopRoute, AlternatingLoopRoute):
            return "route-class"
    return None


def fast_path_eligible(sim) -> bool:
    """Whether ``sim`` (a :class:`~repro.sim.engine.PatrolSimulator`) qualifies."""
    return fast_path_rejection(sim) is None


def run_fast_path(sim) -> "SimulationResult | None":
    """Run ``sim`` analytically; ``None`` means "use the event loop instead"."""
    if not fast_path_eligible(sim):
        return None
    try:
        return _run(sim)
    except _Fallback:
        return None


# --------------------------------------------------------------------------- #
# Waypoint-pattern resolution
# --------------------------------------------------------------------------- #

def route_pattern(route: MuleRoute) -> "tuple[list[str], list[str]]":
    """Raw waypoint sequence of ``route`` as a ``(prefix, cycle)`` pair.

    The infinite ``route.waypoints()`` stream equals ``prefix`` followed by
    ``cycle`` repeated forever.  Supported route classes:

    * :class:`LoopRoute`: no prefix, one lap rotated to the entry index;
    * :class:`AlternatingLoopRoute` with ``patrol_rounds == 1``: every lap
      follows the recharge path (and the first lap is *not* rotated — the
      rotation only applies to a first *patrol* lap);
    * :class:`AlternatingLoopRoute` with ``patrol_rounds == r > 1``: a
      prefix of one rotated patrol lap, ``r - 2`` plain patrol laps and one
      recharge lap, then a steady-state cycle of ``r - 1`` patrol laps plus
      one recharge lap.
    """
    if type(route) is LoopRoute:
        loop = route.loop
        entry = route.entry_index
        return [], loop[entry:] + loop[:entry]
    if type(route) is AlternatingLoopRoute:
        patrol = route.patrol_loop
        recharge = route.recharge_loop
        rounds = route.patrol_rounds
        if rounds == 1:
            return [], list(recharge)
        entry = route.entry_index
        rotated = patrol[entry:] + patrol[:entry]
        prefix = rotated + patrol * (rounds - 2) + recharge
        cycle = patrol * (rounds - 1) + recharge
        return prefix, cycle
    raise _Fallback


def dedup_walk(
    raw_prefix: "list[str]", raw_cycle: "list[str]"
) -> "tuple[list[str], int]":
    """Collapse the engine's duplicate-skip rule over a prefix + cycle pattern.

    Mirrors ``_next_distinct_waypoint``: a waypoint equal to the node the
    mule is standing on is skipped; more than 8 skips in a row halts the
    mule.  With static coordinates the rule collapses to "drop consecutive
    duplicate ids", which keeps the emitted sequence eventually periodic;
    the (position-in-cycle, previous node) state detects the period.

    Returns ``(emitted, cycle_start)`` where ``emitted[cycle_start:]`` is one
    full period of the steady state, or ``cycle_start == -1`` when the walk
    halts (the engine's waypoint iterator would return ``None``).
    """
    plen = len(raw_prefix)
    clen = len(raw_cycle)
    emitted: list[str] = []
    prev: "str | None" = None
    seen: dict = {}
    pos = 0
    while True:
        if pos >= plen:
            if clen == 0:
                break  # finite raw sequence exhausted: the mule halts
            state = ((pos - plen) % clen, prev)
            if state in seen:
                return emitted, seen[state]
            seen[state] = len(emitted)
        node = None
        for _ in range(8):
            if pos < plen:
                candidate = raw_prefix[pos]
            else:
                candidate = raw_cycle[(pos - plen) % clen]
            pos += 1
            if candidate != prev:
                node = candidate
                break
        if node is None:
            break  # the engine's waypoint iterator would halt this mule
        emitted.append(node)
        prev = node
    return emitted, -1


# --------------------------------------------------------------------------- #
# Per-mule precomputation
# --------------------------------------------------------------------------- #

class _Stream:
    """One mule's precomputed arrival-event stream."""

    __slots__ = (
        "mule", "mule_id", "trace", "coords", "init_event", "init_time",
        "init_dist", "times", "departs", "nodes", "codes", "dists", "n_events",
        "dist_cum", "energy_cum", "applied", "collections", "deliveries",
        "packets", "start_point", "tracked", "dead", "position", "velocity",
        "move_cost", "pending_death", "energy",
    )

    def __init__(self, sim, mule, route: MuleRoute, sync_time: float, node_code) -> None:
        cfg = sim.config
        horizon = cfg.horizon
        velocity = mule.velocity
        position = mule.position
        start = route.start_position()
        energy = sim._energy
        dwell_time = sim._params.collection_time

        self.mule = mule
        self.mule_id = mule.id
        self.trace = MuleTrace(mule_id=mule.id)
        self.coords = route.coordinates
        self.applied = 0
        self.collections = 0
        self.deliveries = 0
        self.packets: list = []
        self.tracked = cfg.track_energy and mule.battery is not None
        self.dead = False
        self.position = position
        self.velocity = velocity
        self.move_cost = energy.move_cost_per_meter
        self.energy = energy
        self.pending_death: "tuple[float, Point] | None" = None

        # -- effective waypoint sequence: prefix + cycle ------------------- #
        emitted, cycle_start = dedup_walk(*route_pattern(route))
        if not emitted:
            # Unreachable for the supported routes (the first candidate is
            # always accepted against prev=None and loops are non-empty), but
            # any future route shape that emits nothing belongs on the event
            # loop rather than on a zero-event stream here.
            raise _Fallback

        prefix_len = len(emitted)
        cycle_len = prefix_len - cycle_start if cycle_start >= 0 else 0
        points = [self.coords[n] for n in emitted]
        codes0 = [node_code.get(n, 0) for n in emitted]
        # Dwell applies on plain-target arrivals only (the engine checks
        # ``node_id in self._target_ids``, which excludes sink and recharge).
        dwell0 = np.array(
            [dwell_time if c == 1 else 0.0 for c in codes0], dtype=float
        )

        # -- initial leg and the first-departure base time ----------------- #
        self.init_event = False
        self.init_time = 0.0
        self.init_dist = 0.0
        self.start_point: "Point | None" = None
        if start is not None:
            d0 = distance(position, start)
            if d0 > 1e-12:
                self.init_event = True
                self.init_time = d0 / velocity if d0 > 0 else 0.0
                self.init_dist = d0
                base = max(self.init_time, sync_time)
                first_from = start
                self.start_point = start
            else:
                self.trace.initialization_time = 0.0
                base = sync_time
                first_from = position
        else:
            base = 0.0
            first_from = position

        # -- leg lengths (exactly the engine's per-leg distance() calls) --- #
        leg = np.empty(prefix_len, dtype=float)
        leg[0] = distance(first_from, points[0])
        for k in range(1, prefix_len):
            leg[k] = distance(points[k - 1], points[k])

        if cycle_len:
            cyc = np.empty(cycle_len, dtype=float)
            cyc[0] = distance(points[-1], points[cycle_start])
            cyc[1:] = leg[cycle_start + 1:]
            cyc_nodes = emitted[cycle_start:]
            cyc_dwell = dwell0[cycle_start:]
            # One steady-state lap advances time by its travel plus its
            # dwells; a lap that advances neither is the event loop's
            # spin-in-place pathology.
            lap_advance = float(cyc.sum()) / velocity + float(cyc_dwell.sum())
            if lap_advance <= 0.0:
                raise _Fallback  # zero-advance lap: the event loop spins in place
            prefix_time = base + float(leg.sum()) / velocity + float(dwell0.sum())
            laps = int(max(0.0, horizon - prefix_time) / lap_advance) + 2
            if prefix_len + laps * cycle_len > _MAX_EVENTS_PER_MULE:
                raise _Fallback
            dists = np.concatenate([leg, np.tile(cyc, laps)])
            dwells = np.concatenate([dwell0, np.tile(cyc_dwell, laps)])
            nodes = emitted + cyc_nodes * laps
        else:
            dists = leg
            dwells = dwell0
            nodes = list(emitted)

        # -- the arrival/departure chain, one cumulative sum --------------- #
        # The engine alternates ``now + dist / velocity`` (travel) with
        # ``now + dwell`` (COLLECTION_DONE); interleaving both increment
        # kinds before a single cumsum reproduces the identical sequence of
        # float additions (adding a 0.0 dwell is a bitwise no-op for the
        # non-negative partial sums).  full = [depart_0, arrive_0, depart_1,
        # arrive_1, ...]: arrivals are the odd slots, departures the even.
        inc = np.empty(2 * len(dists), dtype=float)
        inc[0::2] = dists / velocity
        inc[1::2] = dwells
        full = np.cumsum(np.concatenate(([base], inc)))
        # The estimate leaves slack, but guarantee at least one arrival
        # beyond the horizon so the merge always terminates on a popped
        # event.  full[-2] is the last arrival (full ends on a departure).
        while cycle_len and full[-2] <= horizon:
            cyc_tiled = np.tile(cyc, 8)
            dwell_tiled = np.tile(cyc_dwell, 8)
            extra = np.empty(2 * len(cyc_tiled), dtype=float)
            extra[0::2] = cyc_tiled / velocity
            extra[1::2] = dwell_tiled
            full = np.concatenate(
                [full, np.cumsum(np.concatenate(([full[-1]], extra)))[1:]]
            )
            dists = np.concatenate([dists, cyc_tiled])
            dwells = np.concatenate([dwells, dwell_tiled])
            nodes += cyc_nodes * 8
            if len(nodes) > _MAX_EVENTS_PER_MULE:
                raise _Fallback

        self.times = full[1::2].tolist()    # arrival of leg k
        self.departs = full[0::2].tolist()  # departure before leg k (len n+1)
        self.nodes = nodes
        self.codes = [node_code.get(n, 0) for n in nodes]
        self.dists = dists.tolist()
        self.n_events = len(nodes)

        # -- per-applied-leg accumulators ---------------------------------- #
        # The engine adds movement energy on leg completion and the collect
        # cost on target arrivals as *separate* additions; interleaving the
        # increments before one cumulative sum reproduces the identical
        # sequence of float operations (adding 0.0 where no collection
        # happens is a bitwise no-op for the non-negative partial sums).
        # Battery-tracked mules skip the bulk arrays: their drains clip
        # against live battery charge, so the merge replays them one by one.
        if not self.tracked:
            if self.init_event:
                dists_applied = np.concatenate(([self.init_dist], dists))
                collect_flags = np.array(
                    [False] + [c == 1 for c in self.codes], dtype=bool
                )
            else:
                dists_applied = dists
                collect_flags = np.array([c == 1 for c in self.codes], dtype=bool)
            self.dist_cum = np.cumsum(dists_applied)
            increments = np.empty(2 * len(dists_applied), dtype=float)
            increments[0::2] = dists_applied * energy.move_cost_per_meter
            increments[1::2] = np.where(collect_flags, energy.collect_cost, 0.0)
            self.energy_cum = np.cumsum(increments)[1::2]
        else:
            self.dist_cum = None
            self.energy_cum = None

    # ------------------------------------------------------------------ #
    # Live battery bookkeeping (battery-tracked streams only)
    # ------------------------------------------------------------------ #

    def finish_leg(self, destination: Point, dist: float) -> None:
        """The engine's ``_finish_leg`` for a tracked mule: move + drain."""
        mule = self.mule
        self.position = destination
        mule.position = destination
        self.trace.distance_travelled += dist
        drained = mule.battery.drain(self.energy.movement_energy(dist))
        self.trace.energy_consumed += drained
        mule.state = MuleState.MOVING

    def kill(self, now: float) -> None:
        """The engine's ``_kill_mule``: strand the mule mid-leg."""
        reachable, destination = self.pending_death
        final_position = self.position.towards(destination, reachable)
        self.position = final_position
        mule = self.mule
        mule.position = final_position
        self.trace.distance_travelled += reachable
        self.trace.energy_consumed += mule.battery.drain(mule.battery.remaining)
        self.dead = True
        self.trace.death_time = now
        mule.state = MuleState.DEAD


# --------------------------------------------------------------------------- #
# The merged replay
# --------------------------------------------------------------------------- #

def _run(sim) -> SimulationResult:
    cfg = sim.config
    scenario = sim.scenario
    plan = sim.plan
    horizon = cfg.horizon
    max_visits = cfg.max_visits
    has_dwell = sim._params.collection_time > 0.0
    collect_cost = sim._energy.collect_cost

    result = SimulationResult(
        strategy=plan.strategy, horizon=horizon, metadata=dict(plan.metadata)
    )
    sync_time = sim._synchronized_start_time() if cfg.synchronized_start else 0.0
    result.metadata.setdefault("patrol_start_time", sync_time)

    # Node kind codes: 1 = plain target, 2 = sink, 3 = recharge station.
    node_code: dict[str, int] = {t.id: 1 for t in scenario.targets}
    node_code[sim._sink_id] = 2
    if sim._recharge_id is not None:
        node_code[sim._recharge_id] = 3

    heap: list[tuple] = []
    counter = 0

    def push_leg(stream: _Stream, k: int, depart: float) -> None:
        """The engine's ``_schedule_move`` for leg ``k`` departing at ``depart``.

        Pushes the arrival — or, for a tracked mule whose battery cannot
        cover the leg, the mid-leg ENERGY_DEPLETED event — consuming exactly
        one sequence number either way.  No push when the (halted, acyclic)
        stream is exhausted, matching the engine's waypoint iterator
        returning ``None``.
        """
        nonlocal counter
        if k >= stream.n_events:
            return
        if stream.tracked and stream.move_cost > 0:
            dist = stream.dists[k]
            reachable = stream.mule.battery.remaining / stream.move_cost
            if reachable + 1e-9 < dist:
                velocity = stream.velocity
                death_time = depart + (reachable / velocity if velocity > 0 else 0.0)
                stream.pending_death = (reachable, stream.coords[stream.nodes[k]])
                heapq.heappush(heap, (death_time, counter, stream, _DEATH, k))
                counter += 1
                return
        heapq.heappush(heap, (stream.times[k], counter, stream, _ARRIVAL, k))
        counter += 1

    streams: list[_Stream] = []
    for mule in scenario.mules:
        stream = _Stream(sim, mule, plan.route_for(mule.id), sync_time, node_code)
        result.traces[mule.id] = stream.trace
        streams.append(stream)
        # Initial pushes replicate the engine's scheduling order (and thus
        # its tie-breaking sequence numbers) exactly: one event per mule, in
        # scenario order.
        if stream.init_event:
            if stream.tracked and stream.move_cost > 0:
                reachable = mule.battery.remaining / stream.move_cost
                if reachable + 1e-9 < stream.init_dist:
                    velocity = stream.velocity
                    death_time = reachable / velocity if velocity > 0 else 0.0
                    stream.pending_death = (reachable, stream.start_point)
                    heap.append((death_time, counter, stream, _DEATH, -1))
                    counter += 1
                    continue
            heap.append((stream.init_time, counter, stream, _INIT, -1))
            counter += 1
        else:
            push_leg(stream, 0, stream.departs[0])
    heapq.heapify(heap)  # pop order is the unique (time, counter) total order

    # Shared collection state (windows are global per target, so the merged
    # order across mules decides every packet size — exactly as the engine's
    # DataCollectionModel does).
    last_collected: dict[str, float] = {t.id: 0.0 for t in scenario.targets}
    rates: dict[str, float] = {t.id: t.data_rate for t in scenario.targets}

    visits_raw: list[tuple] = []
    deliveries: list[tuple] = []
    visits_recorded = 0

    push = heapq.heappush
    pop = heapq.heappop
    while heap:
        now, _seq, stream, kind, k = pop(heap)
        if now > horizon:
            break
        if stream.dead:
            continue  # discard events of a mule that died at a collect
        if kind == _INIT:  # INITIALIZED: apply the leg, wait for the slowest mule
            stream.applied += 1
            if stream.tracked:
                stream.finish_leg(stream.start_point, stream.init_dist)
            stream.trace.initialization_time = now
            push_leg(stream, 0, max(now, sync_time))
            continue
        if kind == _DEATH:  # ENERGY_DEPLETED: strand mid-leg, no further events
            stream.kill(now)
            continue
        if kind == _DWELL_DONE:  # COLLECTION_DONE: resume patrolling
            push_leg(stream, k + 1, stream.departs[k + 1])
            continue
        # ARRIVAL
        stream.applied += 1
        node = stream.nodes[k]
        code = stream.codes[k]
        mule_id = stream.mule_id
        if stream.tracked:
            stream.finish_leg(stream.coords[node], stream.dists[k])
        if code == 1:  # plain target: visit + collect the backlog
            visits_raw.append((now, node, mule_id, True))
            visits_recorded += 1
            last = last_collected[node]
            # now >= last always (pops are time-ordered), so the engine's
            # max(now - last, 0.0) reduces to the plain difference.
            stream.packets.append((node, last, now, (now - last) * rates[node]))
            last_collected[node] = now
            stream.collections += 1
            if stream.tracked:
                battery = stream.mule.battery
                drained = battery.drain(collect_cost)
                stream.trace.energy_consumed += drained
                if battery.depleted:
                    stream.dead = True
                    stream.trace.death_time = now
                    stream.mule.state = MuleState.DEAD
        elif code == 2:  # sink: visit + flush the on-board buffer
            visits_raw.append((now, node, mule_id, True))
            visits_recorded += 1
            if stream.packets:
                for packet in stream.packets:
                    deliveries.append((now, mule_id) + packet)
                stream.deliveries += len(stream.packets)
                stream.packets = []
        elif code == 3:  # recharge station: non-target visit (+ refill)
            visits_raw.append((now, node, mule_id, False))
            if stream.mule.battery is not None:
                stream.mule.recharge_full()
                stream.trace.recharges += 1
        if max_visits is not None and visits_recorded >= max_visits:
            break
        # The engine pushes the dwell/next-leg event even for a mule that
        # just died collecting (the event is discarded dead on pop), so the
        # sequence counter advances identically here.
        if has_dwell and code == 1:
            push(heap, (stream.departs[k + 1], counter, stream, _DWELL_DONE, k))
            counter += 1
        else:
            push_leg(stream, k + 1, stream.departs[k + 1])

    # ----------------------------------------------------------------- #
    # Materialise records and final mule/trace state in bulk
    # ----------------------------------------------------------------- #
    result.visits = [VisitRecord(t, n, m, f) for t, n, m, f in visits_raw]
    # Pre-seed the recorder's per-target grouping from the columnar data so
    # the metric extractors never re-scan the materialised visit records.
    # Exactly what visit_times_by_target() would compute from result.visits.
    target_groups: dict[str, list[float]] = {}
    for t, n, _m, f in visits_raw:
        if f:
            target_groups.setdefault(n, []).append(t)
    result.__dict__["_visit_times_cache"] = (
        len(visits_raw),
        {n: np.sort(np.asarray(target_groups[n], dtype=float))
         for n in sorted(target_groups)},
    )
    # DeliveryRecord(delivered_at, mule_id, target_id, generated_from,
    #                generated_to, collected_at, size); generated_to and
    # collected_at are the same instant, as in DataCollectionModel.collect.
    result.deliveries = [
        DeliveryRecord(delivered_at, mule_id, target_id, generated_from,
                       collected_at, collected_at, size)
        for delivered_at, mule_id, target_id, generated_from, collected_at, size
        in deliveries
    ]

    for stream in streams:
        trace = stream.trace
        applied = stream.applied
        mule = stream.mule
        if stream.tracked:
            pass  # distance/energy/position/state were replayed live
        elif applied:
            trace.distance_travelled = float(stream.dist_cum[applied - 1])
            trace.energy_consumed = float(stream.energy_cum[applied - 1])
            mule.state = MuleState.MOVING
            arrivals = applied - 1 if stream.init_event else applied
            if arrivals:
                mule.position = stream.coords[stream.nodes[arrivals - 1]]
            elif stream.start_point is not None:
                mule.position = stream.start_point
        trace.collections = stream.collections
        trace.deliveries = stream.deliveries
        if stream.packets:  # backlog still on board when the horizon hit
            mule.buffer.extend(
                DataPacket(
                    target_id=target_id,
                    generated_from=generated_from,
                    generated_to=collected_at,
                    collected_at=collected_at,
                    size=size,
                )
                for target_id, generated_from, collected_at, size in stream.packets
            )
    return result
