"""Analytic fast path for deterministic loop-route simulations.

The discrete-event engine in :mod:`repro.sim.engine` spends almost all of its
time on per-event bookkeeping: heap-managed :class:`~repro.sim.events.Event`
objects, payload dicts, per-leg ``distance()`` calls and per-event dataclass
construction.  For the workloads that dominate campaign time — every TCTP
variant, CHB and Sweep — none of that is necessary: each mule follows a
**fixed closed walk** at constant velocity, so its entire arrival-time
sequence is an arithmetic chain over a periodic pattern of leg lengths.

This module exploits that:

1. per mule, the effective waypoint sequence is reduced to a *prefix + cycle*
   pattern (mirroring the engine's consecutive-duplicate skip rule), its leg
   lengths are computed once, and the full arrival-time chain up to the
   horizon is produced by one ``np.cumsum`` — bit-for-bit equal to the
   engine's sequential ``now + dist / velocity`` additions;
2. the per-mule streams are merged by a light ``(time, sequence)`` heap that
   replicates the engine's event-queue tie-breaking exactly, so visits,
   collections and sink deliveries interleave in the identical global order
   (packet sizes depend on that order: collection windows are shared between
   mules);
3. per-mule distance/energy accumulators come from cumulative-sum arrays cut
   at the number of applied legs, reproducing the engine's sequential float
   additions.

The result is **byte-identical** to the event loop — same visit log, same
deliveries, same traces, same metadata — at a fraction of the cost.  Runs the
fast path cannot reproduce exactly fall back to the event loop:

* energy-tracked batteries (mid-leg death can truncate a leg),
* positive ``collection_time`` (dwell events shift queue tie-breaking),
* ``max_visits`` limits (cut mid-stream),
* non-:class:`~repro.core.plan.LoopRoute` routes (stochastic or alternating
  walks have no fixed lap), and
* pathological zero-length laps (the event loop's behaviour — spinning at a
  single instant — is preserved by falling back).

Eligibility is decided per *route class*, not per strategy name, so
strategies composed through the planning pipeline (:mod:`repro.planning`) —
including new cross-combinations like ``sw-tctp`` or ``cb-tctp`` — ride the
fast path automatically whenever they emit plain loop routes; recharge
compositions (``rw-tctp``, ``crw-tctp``) fall back exactly like the fused
planners did.

Toggle with :attr:`repro.sim.engine.SimulationConfig.fast_path`; the
equivalence tests in ``tests/test_fastpath.py`` assert byte-identical results
against the event loop for every eligible strategy family.
"""

from __future__ import annotations

import heapq

import numpy as np

from repro.core.plan import LoopRoute
from repro.geometry.point import distance
from repro.network.datamodel import DataPacket
from repro.network.mules import MuleState
from repro.sim.recorder import DeliveryRecord, MuleTrace, SimulationResult, VisitRecord

__all__ = ["fast_path_eligible", "run_fast_path"]

# Safety valve: beyond this many precomputed arrival events per mule the
# array stage would dominate memory; such runs are no faster analytically,
# so they stay on the event loop.
_MAX_EVENTS_PER_MULE = 4_000_000


class _Fallback(Exception):
    """Internal signal: this run needs the exact event loop after all."""


def fast_path_eligible(sim) -> bool:
    """Whether ``sim`` (a :class:`~repro.sim.engine.PatrolSimulator`) qualifies."""
    cfg = sim.config
    if not cfg.fast_path or cfg.max_visits is not None:
        return False
    if sim._params.collection_time != 0.0:
        return False
    mules = sim.scenario.mules
    if cfg.track_energy and any(m.battery is not None for m in mules):
        return False
    if any(len(m.buffer) > 0 for m in mules):
        return False
    return all(type(sim.plan.route_for(m.id)) is LoopRoute for m in mules)


def run_fast_path(sim) -> "SimulationResult | None":
    """Run ``sim`` analytically; ``None`` means "use the event loop instead"."""
    if not fast_path_eligible(sim):
        return None
    try:
        return _run(sim)
    except _Fallback:
        return None


# --------------------------------------------------------------------------- #
# Per-mule precomputation
# --------------------------------------------------------------------------- #

class _Stream:
    """One mule's precomputed arrival-event stream."""

    __slots__ = (
        "mule", "mule_id", "trace", "coords", "init_event", "init_time", "times",
        "nodes", "codes", "n_events", "dist_cum", "energy_cum", "applied",
        "collections", "deliveries", "packets", "start_point",
    )

    def __init__(self, sim, mule, route: LoopRoute, sync_time: float, node_code) -> None:
        cfg = sim.config
        horizon = cfg.horizon
        velocity = mule.velocity
        position = mule.position
        start = route.start_position()
        energy = sim._energy

        self.mule = mule
        self.mule_id = mule.id
        self.trace = MuleTrace(mule_id=mule.id)
        self.coords = route.coordinates
        self.applied = 0
        self.collections = 0
        self.deliveries = 0
        self.packets: list = []

        # -- effective waypoint sequence: prefix + cycle ------------------- #
        # Mirrors the engine's _next_distinct_waypoint: a waypoint equal to
        # the node the mule is standing on is skipped; more than 8 skips in a
        # row halts the mule.  With static coordinates the rule collapses to
        # "drop consecutive duplicate ids", which makes the emitted sequence
        # eventually periodic; the (raw index, previous node) state detects
        # the period.
        loop = route.loop
        raw_len = len(loop)
        i = route.entry_index
        emitted: list[str] = []
        prev: "str | None" = None
        seen: dict = {}
        cycle_start = -1
        while True:
            state = (i, prev)
            if state in seen:
                cycle_start = seen[state]
                break
            seen[state] = len(emitted)
            node = None
            for _ in range(8):
                candidate = loop[i]
                i = (i + 1) % raw_len
                if candidate != prev:
                    node = candidate
                    break
            if node is None:
                break  # the engine's waypoint iterator would halt this mule
            emitted.append(node)
            prev = node

        prefix_len = len(emitted)
        cycle_len = prefix_len - cycle_start if cycle_start >= 0 else 0
        points = [self.coords[n] for n in emitted]

        # -- initial leg and the first-arrival base time ------------------- #
        self.init_event = False
        self.init_time = 0.0
        init_dist = 0.0
        self.start_point: "Point | None" = None
        if start is not None:
            d0 = distance(position, start)
            if d0 > 1e-12:
                self.init_event = True
                self.init_time = d0 / velocity if d0 > 0 else 0.0
                init_dist = d0
                base = max(self.init_time, sync_time)
                first_from = start
                self.start_point = start
            else:
                self.trace.initialization_time = 0.0
                base = sync_time
                first_from = position
        else:
            base = 0.0
            first_from = position

        if not emitted:
            # Unreachable for LoopRoute (the first candidate is always
            # accepted against prev=None and loops are non-empty), but any
            # future route shape that emits nothing belongs on the event
            # loop rather than on a zero-event stream here.
            raise _Fallback

        # -- leg lengths (exactly the engine's per-leg distance() calls) --- #
        leg = np.empty(prefix_len, dtype=float)
        leg[0] = distance(first_from, points[0])
        for k in range(1, prefix_len):
            leg[k] = distance(points[k - 1], points[k])

        if cycle_len:
            cyc = np.empty(cycle_len, dtype=float)
            cyc[0] = distance(points[-1], points[cycle_start])
            cyc[1:] = leg[cycle_start + 1:]
            cyc_nodes = emitted[cycle_start:]
            lap_time = float(cyc.sum()) / velocity
            if lap_time <= 0.0:
                raise _Fallback  # zero-length lap: the event loop spins in place
            prefix_time = base + float(leg.sum()) / velocity
            laps = int(max(0.0, horizon - prefix_time) / lap_time) + 2
            if prefix_len + laps * cycle_len > _MAX_EVENTS_PER_MULE:
                raise _Fallback
            dists = np.concatenate([leg, np.tile(cyc, laps)])
            nodes = emitted + cyc_nodes * laps
        else:
            dists = leg
            nodes = list(emitted)

        times = np.cumsum(np.concatenate(([base], dists / velocity)))[1:]
        # The estimate leaves slack, but guarantee at least one event beyond
        # the horizon so the merge always terminates on a popped event.
        while cycle_len and times[-1] <= horizon:
            extra = np.tile(cyc, 8)
            times = np.concatenate(
                [times, np.cumsum(np.concatenate(([times[-1]], extra / velocity)))[1:]]
            )
            dists = np.concatenate([dists, extra])
            nodes += cyc_nodes * 8
            if len(nodes) > _MAX_EVENTS_PER_MULE:
                raise _Fallback

        self.times = times.tolist()
        self.nodes = nodes
        self.codes = [node_code.get(n, 0) for n in nodes]
        self.n_events = len(nodes)

        # -- per-applied-leg accumulators ---------------------------------- #
        # The engine adds movement energy on leg completion and the collect
        # cost on target arrivals as *separate* additions; interleaving the
        # increments before one cumulative sum reproduces the identical
        # sequence of float operations (adding 0.0 where no collection
        # happens is a bitwise no-op for the non-negative partial sums).
        if self.init_event:
            dists_applied = np.concatenate(([init_dist], dists))
            collect_flags = np.array(
                [False] + [c == 1 for c in self.codes], dtype=bool
            )
        else:
            dists_applied = dists
            collect_flags = np.array([c == 1 for c in self.codes], dtype=bool)
        self.dist_cum = np.cumsum(dists_applied)
        increments = np.empty(2 * len(dists_applied), dtype=float)
        increments[0::2] = dists_applied * energy.move_cost_per_meter
        increments[1::2] = np.where(collect_flags, energy.collect_cost, 0.0)
        self.energy_cum = np.cumsum(increments)[1::2]


# --------------------------------------------------------------------------- #
# The merged replay
# --------------------------------------------------------------------------- #

def _run(sim) -> SimulationResult:
    cfg = sim.config
    scenario = sim.scenario
    plan = sim.plan
    horizon = cfg.horizon

    result = SimulationResult(
        strategy=plan.strategy, horizon=horizon, metadata=dict(plan.metadata)
    )
    sync_time = sim._synchronized_start_time() if cfg.synchronized_start else 0.0
    result.metadata.setdefault("patrol_start_time", sync_time)

    # Node kind codes: 1 = plain target, 2 = sink, 3 = recharge station.
    node_code: dict[str, int] = {t.id: 1 for t in scenario.targets}
    node_code[sim._sink_id] = 2
    if sim._recharge_id is not None:
        node_code[sim._recharge_id] = 3

    streams: list[_Stream] = []
    heap: list[tuple] = []
    counter = 0
    for mule in scenario.mules:
        stream = _Stream(sim, mule, plan.route_for(mule.id), sync_time, node_code)
        result.traces[mule.id] = stream.trace
        streams.append(stream)
        # Initial pushes replicate the engine's scheduling order (and thus
        # its tie-breaking sequence numbers) exactly: one event per mule, in
        # scenario order.
        if stream.init_event:
            heap.append((stream.init_time, counter, stream, -1))
            counter += 1
        elif stream.n_events:
            heap.append((stream.times[0], counter, stream, 0))
            counter += 1
    heapq.heapify(heap)  # pop order is the unique (time, counter) total order

    # Shared collection state (windows are global per target, so the merged
    # order across mules decides every packet size — exactly as the engine's
    # DataCollectionModel does).
    last_collected: dict[str, float] = {t.id: 0.0 for t in scenario.targets}
    rates: dict[str, float] = {t.id: t.data_rate for t in scenario.targets}

    visits_raw: list[tuple] = []
    deliveries: list[tuple] = []

    push = heapq.heappush
    pop = heapq.heappop
    while heap:
        now, _seq, stream, k = pop(heap)
        if now > horizon:
            break
        if k == -1:  # INITIALIZED: apply the leg, wait for the slowest mule
            stream.applied += 1
            stream.trace.initialization_time = now
            push(heap, (stream.times[0], counter, stream, 0))
            counter += 1
            continue
        stream.applied += 1
        node = stream.nodes[k]
        code = stream.codes[k]
        mule_id = stream.mule_id
        if code == 1:  # plain target: visit + collect the backlog
            visits_raw.append((now, node, mule_id, True))
            last = last_collected[node]
            # now >= last always (pops are time-ordered), so the engine's
            # max(now - last, 0.0) reduces to the plain difference.
            stream.packets.append((node, last, now, (now - last) * rates[node]))
            last_collected[node] = now
            stream.collections += 1
        elif code == 2:  # sink: visit + flush the on-board buffer
            visits_raw.append((now, node, mule_id, True))
            if stream.packets:
                for packet in stream.packets:
                    deliveries.append((now, mule_id) + packet)
                stream.deliveries += len(stream.packets)
                stream.packets = []
        elif code == 3:  # recharge station: non-target visit (+ refill)
            visits_raw.append((now, node, mule_id, False))
            if stream.mule.battery is not None:
                stream.mule.recharge_full()
                stream.trace.recharges += 1
        next_k = k + 1
        if next_k < stream.n_events:
            push(heap, (stream.times[next_k], counter, stream, next_k))
            counter += 1
        # else: a halted (acyclic) stream is exhausted — no further events,
        # matching the engine's waypoint iterator returning None.

    # ----------------------------------------------------------------- #
    # Materialise records and final mule/trace state in bulk
    # ----------------------------------------------------------------- #
    result.visits = [VisitRecord(t, n, m, f) for t, n, m, f in visits_raw]
    # Pre-seed the recorder's per-target grouping from the columnar data so
    # the metric extractors never re-scan the materialised visit records.
    # Exactly what visit_times_by_target() would compute from result.visits.
    target_groups: dict[str, list[float]] = {}
    for t, n, _m, f in visits_raw:
        if f:
            target_groups.setdefault(n, []).append(t)
    result.__dict__["_visit_times_cache"] = (
        len(visits_raw),
        {n: np.sort(np.asarray(target_groups[n], dtype=float))
         for n in sorted(target_groups)},
    )
    # DeliveryRecord(delivered_at, mule_id, target_id, generated_from,
    #                generated_to, collected_at, size); generated_to and
    # collected_at are the same instant, as in DataCollectionModel.collect.
    result.deliveries = [
        DeliveryRecord(delivered_at, mule_id, target_id, generated_from,
                       collected_at, collected_at, size)
        for delivered_at, mule_id, target_id, generated_from, collected_at, size
        in deliveries
    ]

    for stream in streams:
        trace = stream.trace
        applied = stream.applied
        mule = stream.mule
        if applied:
            trace.distance_travelled = float(stream.dist_cum[applied - 1])
            trace.energy_consumed = float(stream.energy_cum[applied - 1])
            mule.state = MuleState.MOVING
            arrivals = applied - 1 if stream.init_event else applied
            if arrivals:
                mule.position = stream.coords[stream.nodes[arrivals - 1]]
            elif stream.start_point is not None:
                mule.position = stream.start_point
        trace.collections = stream.collections
        trace.deliveries = stream.deliveries
        if stream.packets:  # backlog still on board when the horizon hit
            mule.buffer.extend(
                DataPacket(
                    target_id=target_id,
                    generated_from=generated_from,
                    generated_to=collected_at,
                    collected_at=collected_at,
                    size=size,
                )
                for target_id, generated_from, collected_at, size in stream.packets
            )
    return result
