"""Event types and the priority queue used by the patrolling simulator.

The simulator is a classic discrete-event loop: a heap of timestamped events,
popped in chronological order.  Ties are broken by a monotonically increasing
sequence number so the execution order is fully deterministic.
"""

from __future__ import annotations

import enum
import heapq
import itertools
from dataclasses import dataclass, field
from typing import Any

__all__ = ["EventKind", "Event", "EventQueue"]


class EventKind(str, enum.Enum):
    """What happened / what should happen at the event's timestamp."""

    ARRIVAL = "arrival"            # mule reaches a waypoint (target / sink / recharge station)
    INITIALIZED = "initialized"    # mule reaches its start position (location initialisation done)
    COLLECTION_DONE = "collection_done"  # dwell time at a target finished
    ENERGY_DEPLETED = "energy_depleted"  # mule battery ran out mid-leg
    STOP = "stop"                  # simulation horizon reached


@dataclass(order=True)
class Event:
    """A single simulation event (orderable by time, then sequence number)."""

    time: float
    sequence: int
    kind: EventKind = field(compare=False)
    mule_id: str | None = field(compare=False, default=None)
    node_id: str | None = field(compare=False, default=None)
    payload: Any = field(compare=False, default=None)


class EventQueue:
    """A deterministic min-heap of :class:`Event` objects."""

    def __init__(self) -> None:
        self._heap: list[Event] = []
        self._counter = itertools.count()

    def push(
        self,
        time: float,
        kind: EventKind,
        *,
        mule_id: str | None = None,
        node_id: str | None = None,
        payload: Any = None,
    ) -> Event:
        if time < 0:
            raise ValueError("event time must be non-negative")
        event = Event(time=time, sequence=next(self._counter), kind=kind,
                      mule_id=mule_id, node_id=node_id, payload=payload)
        heapq.heappush(self._heap, event)
        return event

    def pop(self) -> Event:
        if not self._heap:
            raise IndexError("pop from an empty event queue")
        return heapq.heappop(self._heap)

    def peek_time(self) -> float | None:
        return self._heap[0].time if self._heap else None

    def __len__(self) -> int:
        return len(self._heap)

    def __bool__(self) -> bool:
        return bool(self._heap)
