"""Evaluation metrics from Section V of the paper.

* **Visiting interval**: time between two consecutive visits to the same
  target; B-TCTP makes all of them equal to ``|P| / (n v)``.
* **Data Collection Delay Time (DCDT)**: the paper's Figure 7/9 quantity —
  how long a target waited for its k-th data collection.  We compute it per
  target as the k-th visiting interval and report the mean over targets for
  each visit index (Figure 7's x axis) or over everything (Figure 9's bars).
* **SD**: the standard deviation of a single target's visiting intervals
  (the paper's ``SD`` formula, with ``n - 1`` in the denominator), averaged
  over targets when a scalar is needed (Figures 8 and 10).
"""

from __future__ import annotations

import math
from typing import Iterable, Sequence

import numpy as np

from repro.sim.recorder import SimulationResult

__all__ = [
    "visiting_intervals",
    "per_target_intervals",
    "dcdt_series",
    "average_dcdt",
    "per_target_sd",
    "average_sd",
    "max_visiting_interval",
    "delivery_latencies",
    "interval_statistics",
]


def visiting_intervals(visit_times: Sequence[float], *, initial_time: float = 0.0,
                       include_first: bool = False) -> list[float]:
    """Consecutive differences of a target's sorted visit times.

    ``include_first`` additionally counts the wait from ``initial_time`` to the
    first visit (the paper's DCDT curves start at visit index 0, which is that
    initial wait).
    """
    times = sorted(visit_times)
    if not times:
        return []
    intervals = [b - a for a, b in zip(times[:-1], times[1:])]
    if include_first:
        intervals = [times[0] - initial_time] + intervals
    return intervals


def _interval_arrays(result: SimulationResult, *, include_first: bool = False,
                     targets: Iterable[str] | None = None) -> dict[str, np.ndarray]:
    """Per-target visiting-interval arrays, vectorised and cached per result.

    Intervals are consecutive differences (``np.diff``) of the per-target
    sorted visit-time arrays from
    :meth:`~repro.sim.recorder.SimulationResult.visit_times_by_target`, which
    is bit-identical to the scalar pairwise subtraction it replaces.  The
    default view (``targets=None``) is cached on the result so the standard
    metric set shares one pass over the visit log.
    """
    cache_key = (len(result.visits), bool(include_first))
    if targets is None:
        cached = result.__dict__.get("_interval_arrays_cache")
        if cached is not None and cached[0] == cache_key:
            return cached[1]
    by_target = result.visit_times_by_target()
    wanted = list(by_target) if targets is None else list(targets)
    out: dict[str, np.ndarray] = {}
    empty = np.empty(0, dtype=float)
    for t in wanted:
        times = by_target.get(t)
        if times is None or times.size == 0:
            out[t] = empty
            continue
        intervals = np.diff(times)
        if include_first:
            intervals = np.concatenate(([times[0] - 0.0], intervals))
        out[t] = intervals
    if targets is None:
        result.__dict__["_interval_arrays_cache"] = (cache_key, out)
    return out


def per_target_intervals(result: SimulationResult, *, include_first: bool = False,
                         targets: Iterable[str] | None = None) -> dict[str, list[float]]:
    """Visiting-interval list for every target that was visited."""
    arrays = _interval_arrays(result, include_first=include_first, targets=targets)
    return {t: iv.tolist() for t, iv in arrays.items()}


def dcdt_series(result: SimulationResult, *, num_points: int = 41,
                include_first: bool = True,
                targets: Iterable[str] | None = None) -> list[float]:
    """Figure-7 style series: mean delay of the k-th data collection, k = 0..num_points-1.

    For every target the k-th visiting interval is taken (NaN when the target
    has fewer than k intervals); the series value is the mean over targets of
    the available entries.  Trailing indices where no target has data are
    reported as ``nan``.
    """
    intervals = _interval_arrays(result, include_first=include_first, targets=targets)
    series: list[float] = []
    for k in range(num_points):
        values = [iv[k] for iv in intervals.values() if len(iv) > k]
        series.append(float(np.mean(values)) if values else float("nan"))
    return series


def average_dcdt(result: SimulationResult, *, include_first: bool = False,
                 targets: Iterable[str] | None = None) -> float:
    """Mean visiting interval over all targets and all visits (Figure 9's bar height)."""
    intervals = _interval_arrays(result, include_first=include_first, targets=targets)
    flat = _flatten(intervals)
    return float(np.mean(flat)) if flat.size else float("nan")


def per_target_sd(result: SimulationResult, *, targets: Iterable[str] | None = None) -> dict[str, float]:
    """The paper's SD of each target's visiting intervals (sample std, ``n - 1``).

    Targets with fewer than two intervals get ``nan`` (SD undefined).
    """
    out: dict[str, float] = {}
    for t, iv in _interval_arrays(result, include_first=False, targets=targets).items():
        if iv.size >= 2:
            out[t] = float(np.std(iv, ddof=1))
        else:
            out[t] = float("nan")
    return out


def average_sd(result: SimulationResult, *, targets: Iterable[str] | None = None) -> float:
    """Mean over targets of the per-target SD (Figures 8 and 10)."""
    sds = [v for v in per_target_sd(result, targets=targets).values() if not math.isnan(v)]
    return float(np.mean(sds)) if sds else float("nan")


def max_visiting_interval(result: SimulationResult, *, targets: Iterable[str] | None = None) -> float:
    """The maximal visiting interval over all targets — the paper's optimisation objective."""
    flat = _flatten(_interval_arrays(result, include_first=False, targets=targets))
    return float(np.max(flat)) if flat.size else float("nan")


def delivery_latencies(result: SimulationResult) -> list[float]:
    """Latency (generation midpoint -> sink delivery) of every delivered packet."""
    return [d.latency for d in result.deliveries]


def interval_statistics(result: SimulationResult, *, targets: Iterable[str] | None = None) -> dict:
    """One-stop summary of the interval metrics (used by reports and examples)."""
    intervals = _interval_arrays(result, include_first=False, targets=targets)
    flat = _flatten(intervals)
    if not flat.size:
        return {
            "mean_interval": float("nan"),
            "max_interval": float("nan"),
            "average_sd": float("nan"),
            "targets_visited": len(intervals),
            "total_intervals": 0,
        }
    return {
        "mean_interval": float(np.mean(flat)),
        "max_interval": float(np.max(flat)),
        "average_sd": average_sd(result, targets=targets),
        "targets_visited": len(intervals),
        "total_intervals": int(flat.size),
    }


def _flatten(intervals: "dict[str, np.ndarray]") -> np.ndarray:
    """All interval arrays concatenated in per-target order (may be empty)."""
    if not intervals:
        return np.empty(0, dtype=float)
    return np.concatenate(list(intervals.values()))
