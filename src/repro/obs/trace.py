"""Span export: Chrome Trace Event JSON and the JSONL span log.

The registry records spans as plain dicts (see :mod:`repro.obs.registry`);
this module turns them into the two artifact formats the CLI writes next
to campaign outputs:

* ``<out>.trace.json`` — the Chrome Trace Event format (the JSON object
  flavor: ``{"traceEvents": [...]}``), loadable in Perfetto
  (https://ui.perfetto.dev) and ``chrome://tracing``.  Each span becomes a
  complete event (``"ph": "X"``) with microsecond ``ts``/``dur``; one
  metadata event (``"ph": "M"``) per process names its track.
* ``<out>.spans.jsonl`` — one span dict per line, the replayable raw log.
  ``repro-patrol obs LOG.jsonl --trace OUT.json`` converts a saved log
  into a trace after the fact.

Both writers go through :func:`repro.store.io.atomic_write_text` like
every other artifact in the library.
"""

from __future__ import annotations

import json
from pathlib import Path
from typing import Iterable, Mapping

__all__ = [
    "chrome_trace",
    "validate_trace",
    "write_trace",
    "write_span_log",
    "read_span_log",
]

#: Span-dict keys every exporter relies on (shared with the schema check).
SPAN_REQUIRED_KEYS = ("name", "ts", "dur", "pid", "tid")


def chrome_trace(spans: "Iterable[Mapping]") -> dict:
    """Spans -> a Chrome Trace Event document (``{"traceEvents": [...]}``).

    Events are sorted by start timestamp; one ``process_name`` metadata
    event per distinct pid labels the tracks (the parent process and each
    pool worker get their own).
    """
    events = []
    pids = {}
    for span in sorted(spans, key=lambda s: (s.get("ts", 0.0), s.get("id", 0))):
        pid = span.get("pid", 0)
        pids.setdefault(pid, len(pids))
        event = {
            "name": span["name"],
            "cat": span.get("cat", "repro"),
            "ph": "X",
            "ts": span["ts"],
            "dur": span["dur"],
            "pid": pid,
            "tid": span.get("tid", 0),
        }
        args = dict(span.get("args") or {})
        if span.get("id") is not None:
            args.setdefault("span_id", span["id"])
        if span.get("parent") is not None:
            args.setdefault("parent_id", span["parent"])
        if args:
            event["args"] = args
        events.append(event)
    metadata = [
        {
            "name": "process_name", "ph": "M", "pid": pid, "tid": 0, "ts": 0,
            "args": {"name": "repro-patrol" if index == 0 else f"worker {pid}"},
        }
        for pid, index in sorted(pids.items(), key=lambda item: item[1])
    ]
    return {"traceEvents": metadata + events, "displayTimeUnit": "ms"}


def validate_trace(document: Mapping) -> list[str]:
    """Problems that would keep Perfetto from loading the document.

    Returns a list of human-readable complaints; empty means the document
    conforms to the Trace Event JSON-object format as this library emits
    it (used by the schema test and the CI obs-smoke job).
    """
    problems = []
    events = document.get("traceEvents")
    if not isinstance(events, list):
        return ["traceEvents is missing or not a list"]
    for index, event in enumerate(events):
        where = f"traceEvents[{index}]"
        if not isinstance(event, Mapping):
            problems.append(f"{where} is not an object")
            continue
        ph = event.get("ph")
        if ph not in ("X", "M"):
            problems.append(f"{where}: unexpected phase {ph!r}")
            continue
        if not isinstance(event.get("name"), str):
            problems.append(f"{where}: name must be a string")
        for key in ("pid", "tid", "ts") + (("dur",) if ph == "X" else ()):
            if not isinstance(event.get(key), (int, float)) or isinstance(event.get(key), bool):
                problems.append(f"{where}: {key} must be a number")
        if ph == "X" and isinstance(event.get("dur"), (int, float)) and event["dur"] < 0:
            problems.append(f"{where}: dur must be non-negative")
        args = event.get("args")
        if args is not None and not isinstance(args, Mapping):
            problems.append(f"{where}: args must be an object")
    return problems


def _atomic_write_text(path, text):
    # Lazy import: repro.obs must stay import-light — instrumented modules
    # (geometry.cache, the simulator) import it at load time, and pulling
    # the store package in here would close that cycle.
    from repro.store.io import atomic_write_text

    return atomic_write_text(path, text)


def write_trace(path: "str | Path", spans: "Iterable[Mapping]") -> Path:
    """Write the spans as a Chrome trace JSON file; returns the path."""
    document = chrome_trace(spans)
    return _atomic_write_text(path, json.dumps(document, sort_keys=True) + "\n")


def write_span_log(path: "str | Path", spans: "Iterable[Mapping]") -> Path:
    """Write the raw span dicts as JSONL (one per line); returns the path."""
    lines = "".join(
        json.dumps(dict(span), sort_keys=True) + "\n" for span in spans
    )
    return _atomic_write_text(path, lines)


def read_span_log(path: "str | Path") -> list[dict]:
    """Read a JSONL span log back into span dicts (blank lines skipped)."""
    spans = []
    for number, line in enumerate(Path(path).read_text().splitlines(), start=1):
        if not line.strip():
            continue
        try:
            span = json.loads(line)
        except json.JSONDecodeError as exc:
            raise ValueError(f"{path}:{number}: not valid JSON: {exc}") from None
        if not isinstance(span, dict):
            raise ValueError(f"{path}:{number}: span line must be a JSON object")
        missing = [key for key in SPAN_REQUIRED_KEYS if key not in span]
        if missing:
            raise ValueError(f"{path}:{number}: span missing keys {missing}")
        spans.append(span)
    return spans
