"""Unified observability: metric registry, spans, trace export, /metrics.

The library's single instrumentation substrate (see docs/OBSERVABILITY.md):

* :mod:`repro.obs.registry` — process-wide counters, histograms, and
  nestable spans; near-zero-cost no-ops while disabled (the default).
  Enable with ``REPRO_OBS=1``, :func:`configure`, or a campaign spec's
  ``sim.obs`` knob.
* :mod:`repro.obs.trace` — Chrome-trace (Perfetto-loadable) JSON export
  and the JSONL span log written next to campaign artifacts.
* :mod:`repro.obs.prometheus` — the text formatter behind the serve
  daemon's ``GET /metrics`` and the stdio ``metrics`` op.
* :mod:`repro.obs.adapters` — the unified stats document plus the
  legacy-shape views the old store/scheduler/cache stats surfaces now
  render through.

Recording is proven byte-invisible: records, fingerprints, and golden
files are identical with the registry on or off (asserted by the obs
differential tests), and the snapshot embedded in
``CampaignResult.metadata["obs"]`` stays outside every fingerprinted
payload.
"""

from repro.obs.adapters import (
    cache_stats_view,
    scheduler_stats_view,
    stats_document,
    store_stats_view,
)
from repro.obs.prometheus import prometheus_text
from repro.obs.registry import (
    Window,
    absorb,
    configure,
    drain,
    inc,
    obs_collected,
    obs_disabled,
    obs_enabled,
    observe,
    reset,
    snapshot,
    span,
    spans,
)
from repro.obs.trace import (
    chrome_trace,
    read_span_log,
    validate_trace,
    write_span_log,
    write_trace,
)

__all__ = [
    "configure",
    "obs_enabled",
    "obs_disabled",
    "obs_collected",
    "inc",
    "observe",
    "span",
    "snapshot",
    "spans",
    "reset",
    "drain",
    "absorb",
    "Window",
    "chrome_trace",
    "validate_trace",
    "write_trace",
    "write_span_log",
    "read_span_log",
    "prometheus_text",
    "stats_document",
    "store_stats_view",
    "scheduler_stats_view",
    "cache_stats_view",
]
