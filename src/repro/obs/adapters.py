"""The unified stats document and the legacy-shape adapter views.

Before this layer existed, three surfaces each had their own bespoke stats
plumbing: ``repro-patrol store stats --json`` (the store's dict), the serve
daemon's ``/stats`` (scheduler counters + store dict), and
:func:`repro.geometry.cache.cache_stats` (per-cache dicts).  They now all
read from one place: :func:`stats_document` assembles the registry snapshot
plus every subsystem's stats into a single document, and the thin views
below slice the *exact historical shapes* back out of it — shape
compatibility is asserted by tests, so existing dashboards and scripts
keep working unchanged.

Document layout::

    {
      "obs":       repro.obs.snapshot(),          # counters/histograms/spans
      "caches":    {cache_name: {size, maxsize, hits, misses, evictions}},
      "store":     ResultStore.stats() | None,    # when a store is given
      "scheduler": ServiceScheduler.stats(),      # when a scheduler is given
    }
"""

from __future__ import annotations

from repro.obs.registry import snapshot

__all__ = [
    "stats_document",
    "store_stats_view",
    "scheduler_stats_view",
    "cache_stats_view",
]


def stats_document(*, store=None, scheduler=None) -> dict:
    """Assemble the process's unified stats document (see module docstring)."""
    # Lazy import: geometry.cache mirrors its counters into the registry, so
    # importing it at module load would close an import cycle through the
    # obs package __init__.
    from repro.geometry.cache import cache_stats

    document = {"obs": snapshot(), "caches": cache_stats()}
    if store is not None:
        document["store"] = store.stats()
    if scheduler is not None:
        document["scheduler"] = scheduler.stats()
    return document


def store_stats_view(document: dict) -> dict:
    """The historical ``store stats --json`` shape out of the document."""
    store = document.get("store")
    if store is None:
        raise ValueError("stats document carries no store section")
    return store


def scheduler_stats_view(document: dict) -> dict:
    """The historical scheduler ``/stats`` counter shape out of the document."""
    scheduler = document.get("scheduler")
    if scheduler is None:
        raise ValueError("stats document carries no scheduler section")
    return scheduler


def cache_stats_view(document: dict) -> dict:
    """The historical :func:`cache_stats` per-cache shape out of the document."""
    return document.get("caches", {})
