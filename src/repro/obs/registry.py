"""Process-wide instrumentation registry: counters, histograms, spans.

One registry per process, default **off**.  Every instrumentation site in
the library goes through three verbs:

* :func:`inc` — bump a named counter (with optional labels);
* :func:`observe` — feed a value into a running histogram
  (count / sum / min / max — no buckets, so merging is exact);
* :func:`span` — open a nestable timed span (explicit parentage via a
  thread-local stack), recorded as a dict compatible with the Chrome
  Trace Event format (see :mod:`repro.obs.trace`).

When the registry is disabled (the default) all three collapse to
near-zero-cost no-ops: ``inc``/``observe`` return after one global-flag
check and ``span`` hands back one shared, pre-built no-op context
manager — no allocation, no clock read.  The switch mirrors the
geometry-cache / batchpath / kernel switches: ``REPRO_OBS`` environment
variable, :func:`configure`, and the :func:`obs_disabled` /
:func:`obs_collected` context managers.

Byte-invisibility contract
--------------------------
Nothing in this module may influence a simulation result: the registry
only *records*.  Timestamps come from :func:`time.perf_counter` deltas
against a process-local epoch and are kept strictly outside fingerprinted
payloads (``CampaignResult.metadata`` and sidecar span logs only).  The
differential tests in ``tests/test_obs.py`` assert records and
fingerprints are byte-identical with the registry on or off; the
determinism lint grants this package — and only this package — a
first-class wall-clock allowance (see :mod:`repro.analysis.determinism`).

Worker processes
----------------
``perf_counter`` epochs differ across processes, so pool workers never
ship raw spans upward.  Instead a worker calls :func:`drain` after each
cell (payload out, registry cleared) and the parent calls :func:`absorb`,
which merges counters/histograms exactly and rebases span timestamps
best-effort by aligning the worker's drain instant with the parent's
absorb instant.  Worker ``pid`` values are preserved so traces show one
track per process.
"""

from __future__ import annotations

import itertools
import os
import threading
import time
from contextlib import contextmanager

__all__ = [
    "configure",
    "obs_enabled",
    "obs_disabled",
    "obs_collected",
    "inc",
    "observe",
    "span",
    "snapshot",
    "spans",
    "reset",
    "drain",
    "absorb",
    "Window",
]

# One process-wide switch, default OFF: observability is opt-in.  The
# environment variable gives CI and the CLI an on-switch without code
# changes (case/whitespace-insensitive: "1", "true", "yes", "on" enable).
# Byte-invisible by proof: the obs differential tests assert records and
# fingerprints are identical with the switch on or off, so this env read
# can never change a result — exactly the justification the determinism
# lint suppression wants.
_ENABLED: bool = (
    os.environ.get("REPRO_OBS", "0").strip().lower()  # repro: allow[det-env-branch]
    in ("1", "true", "yes", "on")
)

_LOCK = threading.Lock()

# Spans are capped so a runaway campaign cannot exhaust memory; overflow is
# counted, never silent (the snapshot reports recorded vs dropped).
_MAX_SPANS = 200_000

# All span timestamps are microseconds relative to this process-local epoch,
# taken at import.  Relative timestamps make the trace origin stable and are
# what keeps wall-clock values out of any fingerprinted payload.
_EPOCH = time.perf_counter()

_counters: "dict[tuple[str, tuple], float]" = {}
_hists: "dict[tuple[str, tuple], list]" = {}  # [count, sum, min, max]
_spans: "list[dict]" = []
_spans_dropped = 0
_span_ids = itertools.count(1)

_STACK = threading.local()  # per-thread open-span stack (explicit parentage)


def _now_us() -> float:
    return (time.perf_counter() - _EPOCH) * 1e6


def configure(*, enabled: bool) -> None:
    """Turn the instrumentation registry on or off for this process."""
    global _ENABLED
    with _LOCK:
        _ENABLED = bool(enabled)


def obs_enabled() -> bool:
    """Whether the process-wide instrumentation switch is on."""
    return _ENABLED


@contextmanager
def obs_disabled():
    """Temporarily silence the registry (benchmark baselines, tests)."""
    previous = _ENABLED
    configure(enabled=False)
    try:
        yield
    finally:
        configure(enabled=previous)


# --------------------------------------------------------------------------- #
# Recording verbs
# --------------------------------------------------------------------------- #

def _labels_key(labels: dict) -> tuple:
    return tuple(sorted(labels.items()))


def inc(name: str, value: float = 1, **labels) -> None:
    """Add ``value`` to the counter ``name`` (no-op while disabled)."""
    if not _ENABLED:
        return
    key = (name, _labels_key(labels))
    with _LOCK:
        _counters[key] = _counters.get(key, 0) + value


def observe(name: str, value: float, **labels) -> None:
    """Feed ``value`` into the histogram ``name`` (no-op while disabled)."""
    if not _ENABLED:
        return
    key = (name, _labels_key(labels))
    with _LOCK:
        hist = _hists.get(key)
        if hist is None:
            _hists[key] = [1, value, value, value]
        else:
            hist[0] += 1
            hist[1] += value
            if value < hist[2]:
                hist[2] = value
            if value > hist[3]:
                hist[3] = value


class _NoopSpan:
    """Shared do-nothing span: the disabled path allocates nothing."""

    __slots__ = ()

    def __enter__(self):
        return self

    def __exit__(self, *exc):
        return False


_NOOP_SPAN = _NoopSpan()


class _Span:
    """One open span; closing it records the Trace-Event-shaped dict."""

    __slots__ = ("name", "cat", "args", "id", "parent", "_start")

    def __init__(self, name: str, cat: str, args: dict) -> None:
        self.name = name
        self.cat = cat
        self.args = args
        self.id = next(_span_ids)
        self.parent: "int | None" = None
        self._start = 0.0

    def __enter__(self):
        stack = getattr(_STACK, "open", None)
        if stack is None:
            stack = _STACK.open = []
        if stack:
            self.parent = stack[-1].id
        stack.append(self)
        self._start = _now_us()
        return self

    def __exit__(self, *exc):
        end = _now_us()
        stack = getattr(_STACK, "open", None)
        if stack and stack[-1] is self:
            stack.pop()
        record = {
            "name": self.name,
            "cat": self.cat,
            "id": self.id,
            "parent": self.parent,
            "ts": self._start,
            "dur": end - self._start,
            "pid": os.getpid(),
            "tid": threading.get_ident(),
        }
        if self.args:
            record["args"] = self.args
        global _spans_dropped
        with _LOCK:
            if len(_spans) < _MAX_SPANS:
                _spans.append(record)
            else:
                _spans_dropped += 1
        return False


def span(name: str, cat: str = "repro", **args):
    """A timed span context manager; the shared no-op while disabled.

    Parentage is explicit: a span opened while another span is open on the
    same thread records that span's id as its ``parent``.
    """
    if not _ENABLED:
        return _NOOP_SPAN
    return _Span(name, cat, args)


# --------------------------------------------------------------------------- #
# Reading the registry
# --------------------------------------------------------------------------- #

def _counter_rows(counters: dict) -> list[dict]:
    return [
        {"name": name, "labels": dict(labels), "value": value}
        for (name, labels), value in sorted(counters.items())
    ]


def _hist_rows(hists: dict) -> list[dict]:
    return [
        {
            "name": name, "labels": dict(labels),
            "count": h[0], "sum": h[1], "min": h[2], "max": h[3],
        }
        for (name, labels), h in sorted(hists.items())
    ]


def snapshot() -> dict:
    """The registry's full, deterministic-ordered document.

    ``counters`` and ``histograms`` are sorted by (name, labels); ``spans``
    reports only tallies — span *bodies* go to the trace/JSONL exporters,
    never into result metadata (they carry timestamps).
    """
    with _LOCK:
        counters = dict(_counters)
        hists = {k: list(v) for k, v in _hists.items()}
        recorded, dropped = len(_spans), _spans_dropped
    return {
        "enabled": _ENABLED,
        "counters": _counter_rows(counters),
        "histograms": _hist_rows(hists),
        "spans": {"recorded": recorded, "dropped": dropped},
    }


def spans() -> list[dict]:
    """A copy of the recorded span dicts (trace/JSONL export feedstock)."""
    with _LOCK:
        return [dict(s) for s in _spans]


def reset() -> None:
    """Clear every counter, histogram, and span (tests, fresh windows)."""
    global _spans_dropped
    with _LOCK:
        _counters.clear()
        _hists.clear()
        _spans.clear()
        _spans_dropped = 0


# --------------------------------------------------------------------------- #
# Cross-process merge (pool workers)
# --------------------------------------------------------------------------- #

def drain() -> dict:
    """Snapshot-and-clear for pool workers: the payload :func:`absorb` takes.

    ``now`` is the worker's current relative clock; the parent aligns it
    with its own absorb instant to rebase span timestamps (perf_counter
    epochs are per-process, so raw worker timestamps mean nothing upstream).
    """
    global _spans_dropped
    with _LOCK:
        payload = {
            "counters": [[name, list(labels), value]
                         for (name, labels), value in _counters.items()],
            "hists": [[name, list(labels), list(h)]
                      for (name, labels), h in _hists.items()],
            "spans": _spans[:],
            "dropped": _spans_dropped,
            "now": _now_us(),
        }
        _counters.clear()
        _hists.clear()
        _spans.clear()
        _spans_dropped = 0
    return payload


def absorb(payload: dict) -> None:
    """Merge a worker's :func:`drain` payload into this registry.

    Counters and histograms merge exactly.  Spans are rebased so the
    worker's drain instant lines up with the parent's absorb instant
    (best-effort alignment — good enough for trace timelines), re-keyed
    onto the parent's id sequence, and keep their worker ``pid`` so the
    trace shows one track per process.
    """
    global _spans_dropped
    offset = _now_us() - payload.get("now", 0.0)
    with _LOCK:
        for name, labels, value in payload.get("counters", ()):
            key = (name, tuple(tuple(pair) for pair in labels))
            _counters[key] = _counters.get(key, 0) + value
        for name, labels, h in payload.get("hists", ()):
            key = (name, tuple(tuple(pair) for pair in labels))
            mine = _hists.get(key)
            if mine is None:
                _hists[key] = list(h)
            else:
                mine[0] += h[0]
                mine[1] += h[1]
                mine[2] = min(mine[2], h[2])
                mine[3] = max(mine[3], h[3])
        # Two passes: spans arrive in closing order (children before their
        # parents), so every id must be remapped before parent links are
        # rewritten or inner spans would lose their parentage.
        worker_spans = payload.get("spans", ())
        remap = {s["id"]: next(_span_ids) for s in worker_spans if "id" in s}
        for worker_span in worker_spans:
            if len(_spans) >= _MAX_SPANS:
                _spans_dropped += 1
                continue
            rebased = dict(worker_span)
            if "id" in rebased:
                rebased["id"] = remap[rebased["id"]]
            parent = rebased.get("parent")
            if parent is not None:
                rebased["parent"] = remap.get(parent)
            rebased["ts"] = rebased["ts"] + offset
            _spans.append(rebased)
        _spans_dropped += payload.get("dropped", 0)


# --------------------------------------------------------------------------- #
# Collection windows
# --------------------------------------------------------------------------- #

class Window:
    """A delta view over one collection window (see :func:`obs_collected`).

    ``snapshot()`` reports only what happened *inside* the window: counter
    and histogram count/sum deltas against the entry baseline, and spans
    recorded since entry.  Histogram min/max are lifetime values (running
    extremes cannot be subtracted), which is documented behavior.
    """

    def __init__(self) -> None:
        with _LOCK:
            self._counters0 = dict(_counters)
            self._hists0 = {k: list(v) for k, v in _hists.items()}
            self._span_start = len(_spans)
            self._dropped0 = _spans_dropped

    def snapshot(self) -> dict:
        with _LOCK:
            counters = dict(_counters)
            hists = {k: list(v) for k, v in _hists.items()}
            recorded = len(_spans) - self._span_start
            dropped = _spans_dropped - self._dropped0
        delta_counters = {}
        for key, value in counters.items():
            delta = value - self._counters0.get(key, 0)
            if delta:
                delta_counters[key] = delta
        delta_hists = {}
        for key, h in hists.items():
            before = self._hists0.get(key)
            if before is None:
                delta_hists[key] = h
            elif h[0] > before[0]:
                delta_hists[key] = [h[0] - before[0], h[1] - before[1], h[2], h[3]]
        return {
            "enabled": True,
            "counters": _counter_rows(delta_counters),
            "histograms": _hist_rows(delta_hists),
            "spans": {"recorded": recorded, "dropped": dropped},
        }

    def spans(self) -> list[dict]:
        """The spans recorded since the window opened."""
        with _LOCK:
            return [dict(s) for s in _spans[self._span_start:]]


@contextmanager
def obs_collected(*, enabled: "bool | None" = None):
    """Open a collection window; optionally force the registry on within it.

    ``enabled=True`` switches a globally-off registry on for the window's
    duration (the per-campaign ``sim.obs`` spec knob rides on this), then
    restores the previous state.  ``enabled=None`` leaves the switch alone.
    Yields ``None`` when the registry ends up disabled — callers use the
    window's truthiness to decide whether to embed a snapshot.
    """
    previous = _ENABLED
    if enabled is not None and enabled != _ENABLED:
        configure(enabled=enabled)
    try:
        yield Window() if _ENABLED else None
    finally:
        if _ENABLED != previous:
            configure(enabled=previous)
