"""Prometheus text exposition of the unified stats document.

One formatter, two surfaces: the serve daemon's ``GET /metrics`` endpoint
and the stdio transport's ``metrics`` op both render exactly the output of
:func:`prometheus_text` over :func:`repro.obs.adapters.stats_document`, so
a scraper can point at either transport interchangeably.

The output follows the Prometheus text exposition format (version 0.0.4):
``# HELP``/``# TYPE`` headers, ``_total``-suffixed counters, plain gauges
for point-in-time values (queue depth, store entries, cache sizes), and
``_count``/``_sum``/``_min``/``_max`` series for the registry's running
histograms (min/max are emitted as gauges — they are running extremes,
not quantiles).
"""

from __future__ import annotations

import re
from typing import Mapping

__all__ = ["prometheus_text"]

_NAME_OK = re.compile(r"[a-zA-Z_:][a-zA-Z0-9_:]*$")
_NAME_BAD = re.compile(r"[^a-zA-Z0-9_:]")


def _metric_name(name: str) -> str:
    name = _NAME_BAD.sub("_", name)
    if not _NAME_OK.match(name):
        name = "_" + name
    return f"repro_{name}"


def _label_value(value) -> str:
    text = str(value)
    return text.replace("\\", r"\\").replace('"', r'\"').replace("\n", r"\n")


def _labels(labels: "Mapping | None") -> str:
    if not labels:
        return ""
    body = ",".join(
        f'{_NAME_BAD.sub("_", str(k))}="{_label_value(v)}"'
        for k, v in sorted(labels.items())
    )
    return "{" + body + "}"


def _number(value) -> str:
    if isinstance(value, bool):
        return "1" if value else "0"
    if isinstance(value, float) and value.is_integer():
        return str(int(value))
    return str(value)


class _Lines:
    """Accumulates samples grouped per metric with one HELP/TYPE header."""

    def __init__(self) -> None:
        self._out: list[str] = []
        self._seen: set[str] = set()

    def sample(self, name: str, kind: str, help_text: str,
               value, labels: "Mapping | None" = None) -> None:
        if value is None:
            return
        if name not in self._seen:
            self._seen.add(name)
            self._out.append(f"# HELP {name} {help_text}")
            self._out.append(f"# TYPE {name} {kind}")
        self._out.append(f"{name}{_labels(labels)} {_number(value)}")

    def text(self) -> str:
        return "\n".join(self._out) + ("\n" if self._out else "")


def prometheus_text(document: Mapping) -> str:
    """Render a :func:`~repro.obs.adapters.stats_document` as Prometheus text."""
    lines = _Lines()

    obs = document.get("obs") or {}
    lines.sample("repro_obs_enabled", "gauge",
                 "Whether the instrumentation registry is recording.",
                 obs.get("enabled", False))
    for counter in obs.get("counters", ()):
        lines.sample(_metric_name(counter["name"]) + "_total", "counter",
                     f"Registry counter {counter['name']}.",
                     counter["value"], counter.get("labels"))
    for hist in obs.get("histograms", ()):
        base = _metric_name(hist["name"])
        labels = hist.get("labels")
        lines.sample(base + "_count", "counter",
                     f"Observations of {hist['name']}.", hist["count"], labels)
        lines.sample(base + "_sum", "counter",
                     f"Sum of {hist['name']} observations.", hist["sum"], labels)
        lines.sample(base + "_min", "gauge",
                     f"Minimum observed {hist['name']}.", hist["min"], labels)
        lines.sample(base + "_max", "gauge",
                     f"Maximum observed {hist['name']}.", hist["max"], labels)
    span_tally = obs.get("spans") or {}
    lines.sample("repro_obs_spans_recorded", "gauge",
                 "Spans currently held by the registry.", span_tally.get("recorded"))
    lines.sample("repro_obs_spans_dropped_total", "counter",
                 "Spans dropped at the registry cap.", span_tally.get("dropped"))

    for cache_name, stats in sorted((document.get("caches") or {}).items()):
        labels = {"cache": cache_name}
        lines.sample("repro_cache_size", "gauge",
                     "Entries currently cached.", stats.get("size"), labels)
        lines.sample("repro_cache_maxsize", "gauge",
                     "Configured cache capacity.", stats.get("maxsize"), labels)
        lines.sample("repro_cache_hits_total", "counter",
                     "Cache lookups served from cache.", stats.get("hits"), labels)
        lines.sample("repro_cache_misses_total", "counter",
                     "Cache lookups that missed.", stats.get("misses"), labels)
        lines.sample("repro_cache_evictions_total", "counter",
                     "Entries evicted at capacity.", stats.get("evictions"), labels)

    store = document.get("store")
    if store:
        lines.sample("repro_store_entries", "gauge",
                     "Runs in the result store.", store.get("entries"))
        lines.sample("repro_store_payload_bytes", "gauge",
                     "Bytes of stored record payloads.", store.get("payload_bytes"))
        lines.sample("repro_store_hits_total", "counter",
                     "Store lookups served from disk.", store.get("hits"))
        lines.sample("repro_store_misses_total", "counter",
                     "Store lookups that missed.", store.get("misses"))
        for version, count in sorted((store.get("library_versions") or {}).items()):
            lines.sample("repro_store_version_entries", "gauge",
                         "Stored runs per library version.", count,
                         {"library_version": version})

    scheduler = document.get("scheduler")
    if scheduler:
        for key in ("requests", "cells", "coalesced", "store_hits",
                    "executed", "failed", "rejected"):
            lines.sample(f"repro_service_{key}_total", "counter",
                         f"Scheduler lifetime count of {key}.", scheduler.get(key))
        for key in ("pending", "inflight", "workers", "queue_limit"):
            lines.sample(f"repro_service_{key}", "gauge",
                         f"Scheduler current {key}.", scheduler.get(key))
        lines.sample("repro_service_accepting", "gauge",
                     "Whether the scheduler accepts new work.",
                     scheduler.get("accepting"))

    return lines.text()
