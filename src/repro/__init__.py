"""repro — reproduction of "Patrolling Mechanisms for Disconnected Targets in
Wireless Mobile Data Mules Networks" (Chang, Lin, Hsieh, Ho — ICPP 2011).

The package implements the paper's three patrolling algorithms (B-TCTP,
W-TCTP, RW-TCTP), the baselines they are compared against (Random, Sweep,
CHB), the wireless data-mule network substrate, a discrete-event patrolling
simulator, an experiment harness regenerating every figure of the paper's
evaluation section, a unified execution API (:mod:`repro.runner`) that turns
declarative run specs into (optionally parallel) campaigns of simulations,
and a pluggable scenario registry (:mod:`repro.scenarios`) whose family
catalog spans the paper's workloads plus corridor / hotspot / ring /
grid-jitter / mixed-density layouts.

Quickstart
----------
Describe a run as data, execute it, read the paper's metrics:

>>> from repro import RunSpec, ScenarioSpec, execute_run
>>> spec = RunSpec(strategy="b-tctp",
...                scenario=ScenarioSpec("uniform", {"num_targets": 15, "num_mules": 3}),
...                seed=1)
>>> record = execute_run(spec)
>>> round(record["average_sd"], 3)   # B-TCTP visits every target at a fixed cadence
0.0

Scale the same description to a strategy sweep with seeded replications,
fanned out over worker processes (records are identical serial or parallel):

>>> from repro import Campaign, CampaignSpec
>>> campaign = CampaignSpec(base=spec, grid={"strategy": ["chb", "b-tctp"]},
...                         replications=4)
>>> result = Campaign(campaign, max_workers=4).run()   # doctest: +SKIP
>>> result.group_mean("average_sd", by="strategy")     # doctest: +SKIP

The same specs round-trip through JSON and run from the command line::

    python -m repro run spec.json --workers 4
    python -m repro sweep --strategies b-tctp,sweep --replications 8 --workers 4
"""

from repro.core import (
    BTCTPPlanner,
    RWTCTPPlanner,
    WTCTPPlanner,
    PatrolPlan,
    plan_btctp,
    plan_rwtctp,
    plan_wtctp,
)
from repro.baselines import (
    CHBPlanner,
    RandomPlanner,
    SweepPlanner,
    StrategyInfo,
    get_strategy,
    available_strategies,
    canonical_strategy_name,
    strategy_params,
    validate_strategy_params,
)
from repro.network import Scenario, SimulationParameters, Target, Sink, RechargeStation, DataMule
from repro.planning import (
    PipelineSpec,
    PlanningPipeline,
    StageSpec,
    available_stage_backends,
    register_stage,
)
from repro.runner import (
    Campaign,
    CampaignResult,
    CampaignSpec,
    RunSpec,
    execute_run,
    load_spec,
)
from repro.scenarios import (
    ScenarioSpec,
    available_scenario_families,
    build_scenario,
    get_scenario,
    register_scenario,
    scenario_family_info,
    scenario_family_params,
)
from repro.sim import PatrolSimulator, SimulationConfig, SimulationResult
from repro.store import ResultStore, run_fingerprint
from repro.workloads import (
    ScenarioConfig,
    generate_scenario,
    uniform_scenario,
    clustered_scenario,
    figure1_scenario,
    single_vip_scenario,
    grid_scenario,
)

__version__ = "1.10.0"

__all__ = [
    "__version__",
    # core algorithms
    "BTCTPPlanner",
    "WTCTPPlanner",
    "RWTCTPPlanner",
    "PatrolPlan",
    "plan_btctp",
    "plan_wtctp",
    "plan_rwtctp",
    # baselines
    "RandomPlanner",
    "SweepPlanner",
    "CHBPlanner",
    "StrategyInfo",
    "get_strategy",
    "available_strategies",
    "canonical_strategy_name",
    "strategy_params",
    "validate_strategy_params",
    # composable planning pipeline
    "PipelineSpec",
    "StageSpec",
    "PlanningPipeline",
    "register_stage",
    "available_stage_backends",
    # network substrate
    "Scenario",
    "SimulationParameters",
    "Target",
    "Sink",
    "RechargeStation",
    "DataMule",
    # unified execution API
    "RunSpec",
    "CampaignSpec",
    "Campaign",
    "CampaignResult",
    "execute_run",
    "load_spec",
    # persistent result store
    "ResultStore",
    "run_fingerprint",
    # simulator
    "PatrolSimulator",
    "SimulationConfig",
    "SimulationResult",
    # scenario registry
    "ScenarioSpec",
    "available_scenario_families",
    "build_scenario",
    "get_scenario",
    "register_scenario",
    "scenario_family_info",
    "scenario_family_params",
    # workloads
    "ScenarioConfig",
    "generate_scenario",
    "uniform_scenario",
    "clustered_scenario",
    "figure1_scenario",
    "single_vip_scenario",
    "grid_scenario",
]
