"""repro — reproduction of "Patrolling Mechanisms for Disconnected Targets in
Wireless Mobile Data Mules Networks" (Chang, Lin, Hsieh, Ho — ICPP 2011).

The package implements the paper's three patrolling algorithms (B-TCTP,
W-TCTP, RW-TCTP), the baselines they are compared against (Random, Sweep,
CHB), the wireless data-mule network substrate, a discrete-event patrolling
simulator, and an experiment harness regenerating every figure of the paper's
evaluation section.

Quickstart
----------
>>> from repro import uniform_scenario, plan_btctp, PatrolSimulator, SimulationConfig
>>> from repro.sim.metrics import average_sd, average_dcdt
>>> scenario = uniform_scenario(num_targets=15, num_mules=3, seed=1)
>>> plan = plan_btctp(scenario)
>>> result = PatrolSimulator(scenario, plan, SimulationConfig(horizon=20_000)).run()
>>> round(average_sd(result), 3)   # B-TCTP visits every target at a fixed cadence
0.0
"""

from repro.core import (
    BTCTPPlanner,
    RWTCTPPlanner,
    WTCTPPlanner,
    PatrolPlan,
    plan_btctp,
    plan_rwtctp,
    plan_wtctp,
)
from repro.baselines import CHBPlanner, RandomPlanner, SweepPlanner, get_strategy, available_strategies
from repro.network import Scenario, SimulationParameters, Target, Sink, RechargeStation, DataMule
from repro.sim import PatrolSimulator, SimulationConfig, SimulationResult
from repro.workloads import (
    ScenarioConfig,
    generate_scenario,
    uniform_scenario,
    clustered_scenario,
    figure1_scenario,
    single_vip_scenario,
    grid_scenario,
)

__version__ = "1.0.0"

__all__ = [
    "__version__",
    # core algorithms
    "BTCTPPlanner",
    "WTCTPPlanner",
    "RWTCTPPlanner",
    "PatrolPlan",
    "plan_btctp",
    "plan_wtctp",
    "plan_rwtctp",
    # baselines
    "RandomPlanner",
    "SweepPlanner",
    "CHBPlanner",
    "get_strategy",
    "available_strategies",
    # network substrate
    "Scenario",
    "SimulationParameters",
    "Target",
    "Sink",
    "RechargeStation",
    "DataMule",
    # simulator
    "PatrolSimulator",
    "SimulationConfig",
    "SimulationResult",
    # workloads
    "ScenarioConfig",
    "generate_scenario",
    "uniform_scenario",
    "clustered_scenario",
    "figure1_scenario",
    "single_vip_scenario",
    "grid_scenario",
]
