"""EXT-A2 — ablation: Hamiltonian-circuit heuristic used in phase 1.

All the TCTP variants inherit their visiting interval directly from the length
of the phase-1 circuit (``DCDT = |P| / (n v)`` for B-TCTP), so a better ETSP
heuristic translates one-for-one into fresher data.  This ablation compares the
convex-hull insertion construction the paper uses against nearest-neighbour,
nearest-neighbour + 2-opt, and Christofides, over a sweep of target counts.
"""

from __future__ import annotations

from typing import Sequence

import numpy as np

from repro.experiments.common import (
    ExperimentSettings,
    experiment_campaign,
    group_mean,
    replicate_seeds,
    run_experiment_cells,
)
from repro.experiments.reporting import format_table, print_report
from repro.graphs.hamiltonian import build_hamiltonian_circuit

__all__ = ["run_ablation_tsp", "main"]

DEFAULT_TARGET_COUNTS: tuple[int, ...] = (10, 20, 40)
VARIANTS: tuple[tuple[str, str, bool], ...] = (
    # label, tsp_method, improve
    ("hull-insertion", "hull-insertion", False),
    ("hull+2opt", "hull-insertion", True),
    ("nearest-neighbor", "nearest-neighbor", False),
    ("nn+2opt", "nearest-neighbor", True),
    ("christofides", "christofides", False),
)


def _tour_lengths_only(
    settings: ExperimentSettings,
    target_counts: Sequence[int],
    variants: Sequence[tuple[str, str, bool]],
) -> dict[tuple[int, str], float]:
    """Mean circuit length per (target count, variant) without any simulation."""
    lengths: dict[tuple[int, str], list[float]] = {}
    for h in target_counts:
        for seed in replicate_seeds(settings):
            scenario = settings.scenario_spec(num_targets=h).build(seed)
            coords = scenario.patrol_points()
            for label, method, improve in variants:
                tour = build_hamiltonian_circuit(coords, method=method, improve=improve,
                                                 start=scenario.sink.id)
                lengths.setdefault((h, label), []).append(tour.length())
    return {key: float(np.nanmean(vals)) for key, vals in lengths.items()}


def run_ablation_tsp(
    settings: ExperimentSettings | None = None,
    *,
    target_counts: Sequence[int] = DEFAULT_TARGET_COUNTS,
    variants: Sequence[tuple[str, str, bool]] = VARIANTS,
    simulate: bool = True,
) -> dict:
    """Sweep the circuit heuristic; reports tour length and (optionally) simulated DCDT."""
    settings = settings or ExperimentSettings()

    if simulate:
        # The variants pair (tsp_method, improve_tour), so each variant is its
        # own campaign over the target-count axis; the cells of all variants
        # are batched through one (possibly parallel) execution.
        cells = []
        for label, method, improve in variants:
            campaign = experiment_campaign(
                settings,
                "b-tctp",
                grid={"num_targets": list(target_counts)},
                params={"tsp_method": method, "improve_tour": improve},
                metrics=("path_length",),
                track_energy=False,
                labels={"variant": label},
            )
            cells.extend(campaign.cells())
        records = run_experiment_cells(cells, settings)
        by = ("num_targets", "variant")
        mean_length = group_mean(records, "path_length", by=by)
        mean_dcdt = group_mean(records, "average_dcdt", by=by)
    else:
        mean_length = _tour_lengths_only(settings, target_counts, variants)
        mean_dcdt = {}

    rows: list[list] = []
    for h in target_counts:
        for label, _m, _i in variants:
            rows.append([
                h,
                label,
                mean_length[(h, label)],
                mean_dcdt.get((h, label), float("nan")),
            ])

    return {
        "experiment": "ablation-tsp",
        "target_counts": list(target_counts),
        "variants": [label for label, _m, _i in variants],
        "rows": rows,
        "settings": {"replications": settings.replications, "horizon": settings.horizon},
    }


def main(settings: ExperimentSettings | None = None) -> dict:
    """Run the ablation and print its table (returns the raw data)."""
    data = run_ablation_tsp(settings)
    headers = ["targets", "heuristic", "tour length (m)", "DCDT (s)"]
    print_report(
        format_table(headers, data["rows"],
                     title="EXT-A2 - Hamiltonian-circuit heuristic ablation")
    )
    return data


if __name__ == "__main__":  # pragma: no cover
    main()
