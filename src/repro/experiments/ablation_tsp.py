"""EXT-A2 — ablation: Hamiltonian-circuit heuristic used in phase 1.

All the TCTP variants inherit their visiting interval directly from the length
of the phase-1 circuit (``DCDT = |P| / (n v)`` for B-TCTP), so a better ETSP
heuristic translates one-for-one into fresher data.  This ablation compares the
convex-hull insertion construction the paper uses against nearest-neighbour,
nearest-neighbour + 2-opt, and Christofides, over a sweep of target counts.
"""

from __future__ import annotations

from typing import Sequence

import numpy as np

from repro.core.btctp import BTCTPPlanner
from repro.experiments.common import ExperimentSettings, replicate_seeds, run_strategy_on_scenario
from repro.experiments.reporting import format_table, print_report
from repro.graphs.hamiltonian import build_hamiltonian_circuit
from repro.sim.metrics import average_dcdt
from repro.workloads.generator import generate_scenario

__all__ = ["run_ablation_tsp", "main"]

DEFAULT_TARGET_COUNTS: tuple[int, ...] = (10, 20, 40)
VARIANTS: tuple[tuple[str, str, bool], ...] = (
    # label, tsp_method, improve
    ("hull-insertion", "hull-insertion", False),
    ("hull+2opt", "hull-insertion", True),
    ("nearest-neighbor", "nearest-neighbor", False),
    ("nn+2opt", "nearest-neighbor", True),
    ("christofides", "christofides", False),
)


def run_ablation_tsp(
    settings: ExperimentSettings | None = None,
    *,
    target_counts: Sequence[int] = DEFAULT_TARGET_COUNTS,
    variants: Sequence[tuple[str, str, bool]] = VARIANTS,
    simulate: bool = True,
) -> dict:
    """Sweep the circuit heuristic; reports tour length and (optionally) simulated DCDT."""
    settings = settings or ExperimentSettings()
    seeds = replicate_seeds(settings)

    rows: list[list] = []
    for h in target_counts:
        acc: dict[str, dict[str, list[float]]] = {
            label: {"length": [], "dcdt": []} for label, _m, _i in variants
        }
        for seed in seeds:
            scenario = generate_scenario(settings.scenario_config(num_targets=h), seed)
            coords = scenario.patrol_points()
            for label, method, improve in variants:
                tour = build_hamiltonian_circuit(coords, method=method, improve=improve,
                                                 start=scenario.sink.id)
                acc[label]["length"].append(tour.length())
                if simulate:
                    planner = BTCTPPlanner(tsp_method=method, improve_tour=improve)
                    result = run_strategy_on_scenario(
                        planner, scenario, horizon=settings.horizon, track_energy=False
                    )
                    acc[label]["dcdt"].append(average_dcdt(result))
        for label, _m, _i in variants:
            rows.append([
                h,
                label,
                float(np.nanmean(acc[label]["length"])),
                float(np.nanmean(acc[label]["dcdt"])) if simulate else float("nan"),
            ])

    return {
        "experiment": "ablation-tsp",
        "target_counts": list(target_counts),
        "variants": [label for label, _m, _i in variants],
        "rows": rows,
        "settings": {"replications": settings.replications, "horizon": settings.horizon},
    }


def main(settings: ExperimentSettings | None = None) -> dict:
    """Run the ablation and print its table (returns the raw data)."""
    data = run_ablation_tsp(settings)
    headers = ["targets", "heuristic", "tour length (m)", "DCDT (s)"]
    print_report(
        format_table(headers, data["rows"],
                     title="EXT-A2 - Hamiltonian-circuit heuristic ablation")
    )
    return data


if __name__ == "__main__":  # pragma: no cover
    main()
