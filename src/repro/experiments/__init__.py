"""Experiment harness regenerating every figure of the paper's evaluation (Section V).

Each module corresponds to one figure (or one extension experiment from
DESIGN.md) and exposes a ``run(...)`` function returning a plain dictionary of
series/rows plus a ``main()`` that prints the same data as an ASCII table.
Experiments average over several seeded replications (the paper uses 20).
"""

from repro.experiments.common import (
    ExperimentSettings,
    experiment_campaign,
    replicate_seeds,
    run_experiment_cells,
    run_strategy_on_scenario,
)
from repro.experiments.fig7_dcdt import run_fig7
from repro.experiments.fig8_sd import run_fig8
from repro.experiments.fig9_policy_dcdt import run_fig9
from repro.experiments.fig10_policy_sd import run_fig10
from repro.experiments.ext_energy import run_energy_experiment
from repro.experiments.ablation_init import run_ablation_init
from repro.experiments.ablation_tsp import run_ablation_tsp
from repro.experiments.ablation_mules import run_ablation_mules
from repro.experiments.reporting import format_table, format_series, print_report
from repro.experiments.results_io import save_result, load_result, export_grid_csv

__all__ = [
    "ExperimentSettings",
    "experiment_campaign",
    "replicate_seeds",
    "run_experiment_cells",
    "run_strategy_on_scenario",
    "run_fig7",
    "run_fig8",
    "run_fig9",
    "run_fig10",
    "run_energy_experiment",
    "run_ablation_init",
    "run_ablation_tsp",
    "run_ablation_mules",
    "format_table",
    "format_series",
    "print_report",
    "save_result",
    "load_result",
    "export_grid_csv",
]
