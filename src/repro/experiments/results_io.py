"""Persisting experiment results: JSON round-trip and CSV export.

Experiment runs return plain dictionaries (possibly with tuple keys for
parameter grids).  These helpers write them to disk with enough metadata to
know later what produced them, read them back with the tuple keys restored,
and flatten grid-style results into CSV for spreadsheet / plotting tools.
"""

from __future__ import annotations

import json
import time
from pathlib import Path
from typing import Any, Mapping

from repro.experiments.reporting import to_csv

__all__ = ["save_result", "load_result", "grid_to_rows", "export_grid_csv"]

_TUPLE_KEY_PREFIX = "__tuple__:"


def _encode_keys(obj: Any) -> Any:
    """Recursively convert tuple dictionary keys into tagged strings (JSON-safe)."""
    if isinstance(obj, Mapping):
        out = {}
        for key, value in obj.items():
            if isinstance(key, tuple):
                key = _TUPLE_KEY_PREFIX + json.dumps(list(key))
            out[str(key) if not isinstance(key, str) else key] = _encode_keys(value)
        return out
    if isinstance(obj, (list, tuple)):
        return [_encode_keys(v) for v in obj]
    return obj


def _decode_keys(obj: Any) -> Any:
    """Inverse of :func:`_encode_keys` (tuple keys restored, numeric strings left alone)."""
    if isinstance(obj, dict):
        out = {}
        for key, value in obj.items():
            if isinstance(key, str) and key.startswith(_TUPLE_KEY_PREFIX):
                key = tuple(json.loads(key[len(_TUPLE_KEY_PREFIX):]))
            out[key] = _decode_keys(value)
        return out
    if isinstance(obj, list):
        return [_decode_keys(v) for v in obj]
    return obj


def save_result(data: Mapping[str, Any], path: "str | Path", *,
                extra_metadata: Mapping[str, Any] | None = None) -> Path:
    """Write an experiment result dictionary to ``path`` as JSON.

    A ``_meta`` block with the library version and a wall-clock timestamp is
    added so saved results are self-describing.  Returns the path written.
    """
    from repro import __version__

    path = Path(path)
    path.parent.mkdir(parents=True, exist_ok=True)
    payload = dict(_encode_keys(dict(data)))
    payload["_meta"] = {
        "library_version": __version__,
        "saved_at_unix": time.time(),
        **(dict(extra_metadata) if extra_metadata else {}),
    }
    path.write_text(json.dumps(payload, indent=2, sort_keys=True))
    return path


def load_result(path: "str | Path") -> dict:
    """Read a result previously written by :func:`save_result` (tuple keys restored)."""
    payload = json.loads(Path(path).read_text())
    return _decode_keys(payload)


def grid_to_rows(grid: Mapping[str, Mapping[tuple, float]],
                 *, key_names: tuple[str, ...] = ("x", "y")) -> tuple[list[str], list[list]]:
    """Flatten ``{series: {(x, y): value}}`` grids into a header + row table.

    All series must be indexed by the same keys; rows are sorted by key.
    """
    if not grid:
        return list(key_names), []
    series_names = list(grid)
    all_keys = sorted({k for series in grid.values() for k in series})
    headers = list(key_names) + series_names
    rows: list[list] = []
    for key in all_keys:
        key_tuple = key if isinstance(key, tuple) else (key,)
        row = list(key_tuple)
        for name in series_names:
            row.append(grid[name].get(key, float("nan")))
        rows.append(row)
    return headers, rows


def export_grid_csv(grid: Mapping[str, Mapping[tuple, float]], path: "str | Path", *,
                    key_names: tuple[str, ...] = ("x", "y")) -> Path:
    """Write a grid-style result (Figures 8-10) to CSV; returns the path written."""
    headers, rows = grid_to_rows(grid, key_names=key_names)
    path = Path(path)
    path.parent.mkdir(parents=True, exist_ok=True)
    path.write_text(to_csv(headers, rows))
    return path
