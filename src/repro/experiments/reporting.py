"""ASCII reporting helpers: tables and series printed by the experiment CLI.

The paper's figures are bar charts / line plots; this library reports the same
numbers as plain-text tables (and optional CSV strings) so results can be
inspected in a terminal or diffed in CI without a plotting dependency.
"""

from __future__ import annotations

import io
import math
from typing import Iterable, Mapping, Sequence

__all__ = ["format_table", "format_series", "to_csv", "print_report"]


def _fmt(value, precision: int = 2) -> str:
    if value is None:
        return "-"
    if isinstance(value, float):
        if math.isnan(value):
            return "nan"
        return f"{value:.{precision}f}"
    return str(value)


def format_table(headers: Sequence[str], rows: Iterable[Sequence], *, precision: int = 2,
                 title: str | None = None) -> str:
    """Render rows as a fixed-width ASCII table."""
    str_rows = [[_fmt(c, precision) for c in row] for row in rows]
    widths = [len(h) for h in headers]
    for row in str_rows:
        for i, cell in enumerate(row):
            widths[i] = max(widths[i], len(cell))

    def line(cells: Sequence[str]) -> str:
        return " | ".join(c.rjust(w) for c, w in zip(cells, widths))

    out = io.StringIO()
    if title:
        out.write(title + "\n")
    out.write(line(list(headers)) + "\n")
    out.write("-+-".join("-" * w for w in widths) + "\n")
    for row in str_rows:
        out.write(line(row) + "\n")
    return out.getvalue()


def format_series(series: Mapping[str, Sequence[float]], *, x_label: str = "index",
                  x_values: Sequence | None = None, precision: int = 2,
                  title: str | None = None) -> str:
    """Render named series (e.g. one per strategy) side by side, one x value per row."""
    names = list(series)
    length = max((len(v) for v in series.values()), default=0)
    if x_values is None:
        x_values = list(range(length))
    rows = []
    for i in range(length):
        row = [x_values[i] if i < len(x_values) else i]
        for name in names:
            vals = series[name]
            row.append(vals[i] if i < len(vals) else None)
        rows.append(row)
    return format_table([x_label] + names, rows, precision=precision, title=title)


def to_csv(headers: Sequence[str], rows: Iterable[Sequence]) -> str:
    """Minimal CSV serialisation (no quoting needed for the numeric reports we emit)."""
    lines = [",".join(str(h) for h in headers)]
    for row in rows:
        lines.append(",".join(_fmt(c, 6) for c in row))
    return "\n".join(lines) + "\n"


def print_report(text: str) -> None:
    """Print an experiment report (kept as a function so tests can capture it)."""
    print(text, end="" if text.endswith("\n") else "\n")
