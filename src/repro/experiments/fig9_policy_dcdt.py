"""Figure 9 — average DCDT of W-TCTP's two break-edge policies over (#VIPs, weight).

The paper varies the number of VIPs and the VIP weight and reports the average
Data Collection Delay Time under the Shortest-Length and Balancing-Length
policies.  Expected shape: DCDT increases with both the VIP count and the VIP
weight for both policies, and the Shortest-Length policy (shorter total WPP)
stays at or below the Balancing-Length policy.
"""

from __future__ import annotations

from typing import Sequence

from repro.experiments.common import (
    ExperimentSettings,
    experiment_campaign,
    group_mean,
    run_experiment_cells,
)
from repro.experiments.reporting import format_table, print_report

__all__ = ["run_fig9", "main"]

DEFAULT_VIP_COUNTS: tuple[int, ...] = (1, 2, 3, 4)
DEFAULT_VIP_WEIGHTS: tuple[int, ...] = (2, 3, 4)
POLICIES: tuple[str, ...] = ("shortest", "balanced")


def run_fig9(
    settings: ExperimentSettings | None = None,
    *,
    vip_counts: Sequence[int] = DEFAULT_VIP_COUNTS,
    vip_weights: Sequence[int] = DEFAULT_VIP_WEIGHTS,
    policies: Sequence[str] = POLICIES,
    num_mules: int = 1,
) -> dict:
    """Run the Figure 9 sweep; returns rows of (num_vips, weight, DCDT per policy, WPP length per policy).

    ``num_mules`` defaults to 1: the break-edge policies shape the spacing of a
    VIP's visits along a single patrol walk, and the paper's Figure 9/10
    comparison is about that per-walk effect (see EXPERIMENTS.md for the
    multi-mule interference ablation).
    """
    settings = settings or ExperimentSettings()
    campaign = experiment_campaign(
        settings,
        "w-tctp",
        grid={
            "num_vips": list(vip_counts),
            "vip_weight": list(vip_weights),
            "policy": list(policies),
        },
        metrics=("wpp_length",),
        track_energy=False,
        num_mules=num_mules,
    )
    records = run_experiment_cells(campaign, settings)
    by = ("num_vips", "vip_weight", "policy")
    mean_dcdt = group_mean(records, "average_dcdt", by=by)
    mean_len = group_mean(records, "wpp_length", by=by)

    rows: list[list] = []
    grid: dict[str, dict[tuple[int, int], float]] = {p: {} for p in policies}
    lengths: dict[str, dict[tuple[int, int], float]] = {p: {} for p in policies}
    for num_vips in vip_counts:
        for weight in vip_weights:
            row: list = [num_vips, weight]
            for policy in policies:
                dcdt = mean_dcdt[(num_vips, weight, policy)]
                wpp_len = mean_len[(num_vips, weight, policy)]
                grid[policy][(num_vips, weight)] = dcdt
                lengths[policy][(num_vips, weight)] = wpp_len
                row.extend([dcdt, wpp_len])
            rows.append(row)

    return {
        "experiment": "fig9",
        "vip_counts": list(vip_counts),
        "vip_weights": list(vip_weights),
        "policies": list(policies),
        "dcdt": grid,
        "wpp_length": lengths,
        "rows": rows,
        "settings": {"replications": settings.replications, "horizon": settings.horizon},
    }


def main(settings: ExperimentSettings | None = None) -> dict:
    """Run Figure 9 and print the DCDT table (returns the raw data)."""
    data = run_fig9(settings)
    headers = ["#VIP", "weight"]
    for policy in data["policies"]:
        headers.extend([f"DCDT {policy}", f"|WPP| {policy}"])
    print_report(
        format_table(headers, data["rows"],
                     title="Figure 9 - average DCDT (s) per break-edge policy")
    )
    return data


if __name__ == "__main__":  # pragma: no cover
    main()
