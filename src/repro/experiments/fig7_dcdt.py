"""Figure 7 — Data Collection Delay Time per visit for Random, Sweep, CHB and TCTP.

The paper plots the DCDT of the targets over the first ~40 visits for the four
strategies on one scenario.  Expected shape (and what this reproduction
checks): TCTP's curve is flat (constant delay), CHB's and Sweep's oscillate
periodically, Random's fluctuates wildly and sits highest on average.
"""

from __future__ import annotations

import warnings
from typing import Sequence

import numpy as np

from repro.experiments.common import (
    ExperimentSettings,
    experiment_campaign,
    group_mean,
    group_records,
    run_experiment_cells,
)
from repro.experiments.reporting import format_series, print_report

__all__ = ["run_fig7", "main"]

DEFAULT_STRATEGIES: tuple[str, ...] = ("random", "sweep", "chb", "b-tctp")


def run_fig7(
    settings: ExperimentSettings | None = None,
    *,
    strategies: Sequence[str] = DEFAULT_STRATEGIES,
    num_points: int = 41,
) -> dict:
    """Run the Figure 7 experiment.

    Returns a dictionary with:

    * ``"visit_index"`` — the x axis (0 .. num_points-1);
    * ``"series"`` — strategy name -> per-visit-index mean DCDT (averaged over
      replications);
    * ``"average_dcdt"`` — strategy name -> scalar mean DCDT;
    * ``"dcdt_spread"`` — strategy name -> mean peak-to-peak spread of the
      series (the "vibration" the paper describes qualitatively).
    """
    settings = settings or ExperimentSettings()
    campaign = experiment_campaign(
        settings,
        strategies[0],
        grid={"strategy": list(strategies)},
        metrics=(("dcdt_series", {"num_points": num_points}),),
        track_energy=False,
    )
    records = run_experiment_cells(campaign, settings)
    by_strategy = group_records(records, "strategy")
    avg_dcdt = group_mean(records, "average_dcdt", by="strategy")

    series: dict[str, list[float]] = {}
    spread: dict[str, float] = {}
    for strat in strategies:
        arr = np.asarray([r["dcdt_series"] for r in by_strategy[strat]], dtype=float)
        with warnings.catch_warnings():
            # A visit index reached by no replication yields an all-NaN column;
            # keep it as NaN silently instead of warning about the empty mean.
            warnings.simplefilter("ignore", category=RuntimeWarning)
            mean_series = np.nanmean(arr, axis=0)
        series[strat] = [float(x) for x in mean_series]
        # The "vibration" statistic skips index 0: that entry is the initial wait
        # from t = 0 (deployment + location initialisation), not a steady-state
        # visiting interval, and it would dominate the spread for every strategy.
        finite = [x for x in series[strat][1:] if np.isfinite(x)]
        spread[strat] = float(max(finite) - min(finite)) if finite else float("nan")

    return {
        "experiment": "fig7",
        "visit_index": list(range(num_points)),
        "series": series,
        "average_dcdt": {s: avg_dcdt[s] for s in strategies},
        "dcdt_spread": spread,
        "settings": {
            "replications": settings.replications,
            "num_targets": settings.num_targets,
            "num_mules": settings.num_mules,
            "horizon": settings.horizon,
        },
    }


def main(settings: ExperimentSettings | None = None) -> dict:
    """Run Figure 7 and print the series table (returns the raw data)."""
    data = run_fig7(settings)
    print_report(
        format_series(
            data["series"],
            x_label="visit",
            x_values=data["visit_index"],
            title="Figure 7 - Data Collection Delay Time (s) per visit index",
        )
    )
    print_report(
        format_series(
            {"average DCDT": list(data["average_dcdt"].values()),
             "spread": list(data["dcdt_spread"].values())},
            x_label="strategy",
            x_values=list(data["average_dcdt"].keys()),
            title="Figure 7 - summary per strategy",
        )
    )
    return data


if __name__ == "__main__":  # pragma: no cover
    main()
