"""EXT-A1 — ablation: what does the location-initialisation step buy?

B-TCTP differs from the CHB baseline in exactly one mechanism: the equal-
arc-length start points and the initial relocation of the mules.  This
ablation runs B-TCTP with and without that step over a sweep of mule counts
and reports the SD of the visiting intervals — isolating the mechanism that
makes Figure 8's TCTP bars sit at zero.
"""

from __future__ import annotations

from typing import Sequence

import numpy as np

from repro.core.btctp import BTCTPPlanner
from repro.experiments.common import ExperimentSettings, replicate_seeds, run_strategy_on_scenario
from repro.experiments.reporting import format_table, print_report
from repro.sim.metrics import average_dcdt, average_sd
from repro.workloads.generator import generate_scenario

__all__ = ["run_ablation_init", "main"]

DEFAULT_MULE_COUNTS: tuple[int, ...] = (2, 4, 6, 8)


def run_ablation_init(
    settings: ExperimentSettings | None = None,
    *,
    mule_counts: Sequence[int] = DEFAULT_MULE_COUNTS,
) -> dict:
    """Sweep the number of mules with location initialisation on/off."""
    settings = settings or ExperimentSettings()
    seeds = replicate_seeds(settings)

    rows: list[list] = []
    for n in mule_counts:
        acc = {"with-init": {"sd": [], "dcdt": []}, "without-init": {"sd": [], "dcdt": []}}
        for seed in seeds:
            scenario = generate_scenario(settings.scenario_config(num_mules=n), seed)
            for label, planner in (
                ("with-init", BTCTPPlanner(location_initialization=True)),
                ("without-init", BTCTPPlanner(location_initialization=False)),
            ):
                result = run_strategy_on_scenario(
                    planner, scenario, horizon=settings.horizon, track_energy=False
                )
                acc[label]["sd"].append(average_sd(result))
                acc[label]["dcdt"].append(average_dcdt(result))
        rows.append([
            n,
            float(np.nanmean(acc["with-init"]["sd"])),
            float(np.nanmean(acc["without-init"]["sd"])),
            float(np.nanmean(acc["with-init"]["dcdt"])),
            float(np.nanmean(acc["without-init"]["dcdt"])),
        ])

    return {
        "experiment": "ablation-init",
        "mule_counts": list(mule_counts),
        "rows": rows,
        "settings": {"replications": settings.replications, "horizon": settings.horizon},
    }


def main(settings: ExperimentSettings | None = None) -> dict:
    """Run the ablation and print its table (returns the raw data)."""
    data = run_ablation_init(settings)
    headers = ["mules", "SD with init", "SD without", "DCDT with init", "DCDT without"]
    print_report(
        format_table(headers, data["rows"],
                     title="EXT-A1 - effect of the location-initialisation step")
    )
    return data


if __name__ == "__main__":  # pragma: no cover
    main()
