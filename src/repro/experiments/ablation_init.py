"""EXT-A1 — ablation: what does the location-initialisation step buy?

B-TCTP differs from the CHB baseline in exactly one mechanism: the equal-
arc-length start points and the initial relocation of the mules.  This
ablation runs B-TCTP with and without that step over a sweep of mule counts
and reports the SD of the visiting intervals — isolating the mechanism that
makes Figure 8's TCTP bars sit at zero.
"""

from __future__ import annotations

from typing import Sequence

from repro.experiments.common import (
    ExperimentSettings,
    experiment_campaign,
    group_mean,
    run_experiment_cells,
)
from repro.experiments.reporting import format_table, print_report

__all__ = ["run_ablation_init", "main"]

DEFAULT_MULE_COUNTS: tuple[int, ...] = (2, 4, 6, 8)


def run_ablation_init(
    settings: ExperimentSettings | None = None,
    *,
    mule_counts: Sequence[int] = DEFAULT_MULE_COUNTS,
) -> dict:
    """Sweep the number of mules with location initialisation on/off."""
    settings = settings or ExperimentSettings()
    campaign = experiment_campaign(
        settings,
        "b-tctp",
        grid={
            "num_mules": list(mule_counts),
            "location_initialization": [True, False],
        },
        track_energy=False,
    )
    records = run_experiment_cells(campaign, settings)
    by = ("num_mules", "location_initialization")
    mean_sd = group_mean(records, "average_sd", by=by)
    mean_dcdt = group_mean(records, "average_dcdt", by=by)

    rows: list[list] = [
        [
            n,
            mean_sd[(n, True)],
            mean_sd[(n, False)],
            mean_dcdt[(n, True)],
            mean_dcdt[(n, False)],
        ]
        for n in mule_counts
    ]

    return {
        "experiment": "ablation-init",
        "mule_counts": list(mule_counts),
        "rows": rows,
        "settings": {"replications": settings.replications, "horizon": settings.horizon},
    }


def main(settings: ExperimentSettings | None = None) -> dict:
    """Run the ablation and print its table (returns the raw data)."""
    data = run_ablation_init(settings)
    headers = ["mules", "SD with init", "SD without", "DCDT with init", "DCDT without"]
    print_report(
        format_table(headers, data["rows"],
                     title="EXT-A1 - effect of the location-initialisation step")
    )
    return data


if __name__ == "__main__":  # pragma: no cover
    main()
