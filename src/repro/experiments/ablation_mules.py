"""EXT-A3 — ablation: how the fleet size interacts with the break-edge policies.

Figure 10 compares the Shortest-Length and Balancing-Length policies with one
mule per walk.  With several mules the steady-state intervals of a VIP are the
circular gaps of ``{occurrence arc − mule offset}`` (see
:mod:`repro.analysis.theory`), so the balanced cycle spacing ``L / w`` can
coincide with the mule spacing ``L / n`` and produce *worse* interval
stability than the shortest policy.  This ablation sweeps the number of mules
for both policies, reporting the measured SD and the analytic prediction side
by side — quantifying where the Figure 10 ordering holds and where it inverts.
"""

from __future__ import annotations

from typing import Sequence

import numpy as np

from repro.analysis.theory import analyze_loop
from repro.core.wtctp import WTCTPPlanner
from repro.experiments.common import ExperimentSettings, replicate_seeds, run_strategy_on_scenario
from repro.experiments.reporting import format_table, print_report
from repro.sim.metrics import average_sd
from repro.workloads.generator import generate_scenario

__all__ = ["run_ablation_mules", "main"]

DEFAULT_MULE_COUNTS: tuple[int, ...] = (1, 2, 3, 4)
POLICIES: tuple[str, ...] = ("shortest", "balanced")


def _predicted_sd(plan, scenario, vip_ids) -> float:
    """Analytic average SD over the VIPs for a fixed-walk plan with equally spaced mules."""
    loop = plan.metadata["walk"]
    coords = scenario.patrol_points()
    analysis = analyze_loop(loop, coords, num_mules=scenario.num_mules,
                            velocity=scenario.params.mule_velocity)
    sds = [analysis.sd(v) for v in vip_ids if v in analysis.occurrences]
    return float(np.mean(sds)) if sds else float("nan")


def run_ablation_mules(
    settings: ExperimentSettings | None = None,
    *,
    mule_counts: Sequence[int] = DEFAULT_MULE_COUNTS,
    num_vips: int = 2,
    vip_weight: int = 2,
    policies: Sequence[str] = POLICIES,
) -> dict:
    """Sweep the fleet size for both policies; report measured and predicted VIP SD."""
    settings = settings or ExperimentSettings()
    seeds = replicate_seeds(settings)

    rows: list[list] = []
    detail: dict[int, dict[str, dict[str, float]]] = {}
    for n in mule_counts:
        acc = {p: {"measured": [], "predicted": []} for p in policies}
        for seed in seeds:
            scenario = generate_scenario(
                settings.scenario_config(num_mules=n, num_vips=num_vips, vip_weight=vip_weight),
                seed,
            )
            vip_ids = [t.id for t in scenario.targets if t.is_vip]
            for policy in policies:
                planner = WTCTPPlanner(policy=policy)
                plan = planner.plan(scenario.fresh_copy())
                result = run_strategy_on_scenario(
                    planner, scenario, horizon=settings.horizon, track_energy=False
                )
                acc[policy]["measured"].append(average_sd(result, targets=vip_ids))
                acc[policy]["predicted"].append(_predicted_sd(plan, scenario, vip_ids))
        detail[n] = {
            p: {k: float(np.nanmean(v)) for k, v in metrics.items()}
            for p, metrics in acc.items()
        }
        row = [n]
        for policy in policies:
            row.extend([detail[n][policy]["measured"], detail[n][policy]["predicted"]])
        rows.append(row)

    return {
        "experiment": "ablation-mules",
        "mule_counts": list(mule_counts),
        "num_vips": num_vips,
        "vip_weight": vip_weight,
        "policies": list(policies),
        "detail": detail,
        "rows": rows,
        "settings": {"replications": settings.replications, "horizon": settings.horizon},
    }


def main(settings: ExperimentSettings | None = None) -> dict:
    """Run the ablation and print its table (returns the raw data)."""
    data = run_ablation_mules(settings)
    headers = ["mules"]
    for policy in data["policies"]:
        headers.extend([f"SD {policy} (sim)", f"SD {policy} (theory)"])
    print_report(
        format_table(headers, data["rows"],
                     title="EXT-A3 - VIP interval SD vs fleet size, measured and predicted")
    )
    return data


if __name__ == "__main__":  # pragma: no cover
    main()
