"""EXT-A3 — ablation: how the fleet size interacts with the break-edge policies.

Figure 10 compares the Shortest-Length and Balancing-Length policies with one
mule per walk.  With several mules the steady-state intervals of a VIP are the
circular gaps of ``{occurrence arc − mule offset}`` (see
:mod:`repro.analysis.theory`), so the balanced cycle spacing ``L / w`` can
coincide with the mule spacing ``L / n`` and produce *worse* interval
stability than the shortest policy.  This ablation sweeps the number of mules
for both policies, reporting the measured SD and the analytic prediction side
by side — quantifying where the Figure 10 ordering holds and where it inverts.
"""

from __future__ import annotations

from typing import Sequence

from repro.experiments.common import (
    ExperimentSettings,
    experiment_campaign,
    group_mean,
    run_experiment_cells,
)
from repro.experiments.reporting import format_table, print_report

__all__ = ["run_ablation_mules", "main"]

DEFAULT_MULE_COUNTS: tuple[int, ...] = (1, 2, 3, 4)
POLICIES: tuple[str, ...] = ("shortest", "balanced")


def run_ablation_mules(
    settings: ExperimentSettings | None = None,
    *,
    mule_counts: Sequence[int] = DEFAULT_MULE_COUNTS,
    num_vips: int = 2,
    vip_weight: int = 2,
    policies: Sequence[str] = POLICIES,
) -> dict:
    """Sweep the fleet size for both policies; report measured and predicted VIP SD."""
    settings = settings or ExperimentSettings()
    campaign = experiment_campaign(
        settings,
        "w-tctp",
        grid={
            "num_mules": list(mule_counts),
            "policy": list(policies),
        },
        metrics=("vip_sd", "predicted_vip_sd"),
        track_energy=False,
        num_vips=num_vips,
        vip_weight=vip_weight,
    )
    records = run_experiment_cells(campaign, settings)
    by = ("num_mules", "policy")
    measured = group_mean(records, "vip_sd", by=by)
    predicted = group_mean(records, "predicted_vip_sd", by=by)

    rows: list[list] = []
    detail: dict[int, dict[str, dict[str, float]]] = {}
    for n in mule_counts:
        detail[n] = {
            p: {"measured": measured[(n, p)], "predicted": predicted[(n, p)]}
            for p in policies
        }
        row: list = [n]
        for policy in policies:
            row.extend([detail[n][policy]["measured"], detail[n][policy]["predicted"]])
        rows.append(row)

    return {
        "experiment": "ablation-mules",
        "mule_counts": list(mule_counts),
        "num_vips": num_vips,
        "vip_weight": vip_weight,
        "policies": list(policies),
        "detail": detail,
        "rows": rows,
        "settings": {"replications": settings.replications, "horizon": settings.horizon},
    }


def main(settings: ExperimentSettings | None = None) -> dict:
    """Run the ablation and print its table (returns the raw data)."""
    data = run_ablation_mules(settings)
    headers = ["mules"]
    for policy in data["policies"]:
        headers.extend([f"SD {policy} (sim)", f"SD {policy} (theory)"])
    print_report(
        format_table(headers, data["rows"],
                     title="EXT-A3 - VIP interval SD vs fleet size, measured and predicted")
    )
    return data


if __name__ == "__main__":  # pragma: no cover
    main()
