"""EXT-E1 — energy efficiency / mule lifetime with and without recharge scheduling.

Section V's introduction lists "energy efficiency of DM" among the studied
metrics but the paper shows no dedicated figure.  This extension experiment
quantifies the effect RW-TCTP is designed for: with a finite battery, a
W-TCTP mule dies after roughly ``r`` rounds (Equation 4), while an RW-TCTP
mule detours through the recharge station before exhaustion and keeps
patrolling for the whole horizon.
"""

from __future__ import annotations

from typing import Sequence

import numpy as np

from repro.core.rwtctp import RWTCTPPlanner
from repro.core.wtctp import WTCTPPlanner
from repro.experiments.common import ExperimentSettings, replicate_seeds, run_strategy_on_scenario
from repro.experiments.reporting import format_table, print_report
from repro.sim.metrics import average_dcdt
from repro.workloads.generator import generate_scenario

__all__ = ["run_energy_experiment", "main"]

DEFAULT_BATTERIES: tuple[float, ...] = (50_000.0, 100_000.0, 200_000.0)


def run_energy_experiment(
    settings: ExperimentSettings | None = None,
    *,
    battery_capacities: Sequence[float] = DEFAULT_BATTERIES,
    policy: str = "balanced",
) -> dict:
    """Compare W-TCTP (no recharge) against RW-TCTP for several battery capacities.

    Returns one row per battery capacity with, for each algorithm: fraction of
    surviving mules, total delivered data, number of recharges, and the mean
    DCDT while alive.
    """
    settings = settings or ExperimentSettings()
    seeds = replicate_seeds(settings)

    rows: list[list] = []
    detail: dict[float, dict[str, dict[str, float]]] = {}

    for capacity in battery_capacities:
        acc = {
            "W-TCTP": {"survival": [], "delivered": [], "recharges": [], "dcdt": []},
            "RW-TCTP": {"survival": [], "delivered": [], "recharges": [], "dcdt": []},
        }
        for seed in seeds:
            scenario = generate_scenario(
                settings.scenario_config(
                    mule_battery=capacity, with_recharge_station=True
                ),
                seed,
            )
            for name, planner in (
                ("W-TCTP", WTCTPPlanner(policy=policy)),
                ("RW-TCTP", RWTCTPPlanner(policy=policy)),
            ):
                result = run_strategy_on_scenario(
                    planner, scenario, horizon=settings.horizon, track_energy=True
                )
                num_mules = len(result.traces)
                acc[name]["survival"].append(len(result.surviving_mules()) / num_mules)
                acc[name]["delivered"].append(result.total_delivered_data())
                acc[name]["recharges"].append(sum(t.recharges for t in result.traces.values()))
                acc[name]["dcdt"].append(average_dcdt(result))

        detail[capacity] = {
            name: {metric: float(np.nanmean(vals)) for metric, vals in metrics.items()}
            for name, metrics in acc.items()
        }
        row = [capacity]
        for name in ("W-TCTP", "RW-TCTP"):
            d = detail[capacity][name]
            row.extend([d["survival"], d["delivered"], d["recharges"], d["dcdt"]])
        rows.append(row)

    return {
        "experiment": "ext-energy",
        "battery_capacities": list(battery_capacities),
        "detail": detail,
        "rows": rows,
        "settings": {"replications": settings.replications, "horizon": settings.horizon},
    }


def main(settings: ExperimentSettings | None = None) -> dict:
    """Run the energy experiment and print its table (returns the raw data)."""
    data = run_energy_experiment(settings)
    headers = ["battery (J)"]
    for name in ("W-TCTP", "RW-TCTP"):
        headers.extend([f"{name} surv", f"{name} data", f"{name} rechg", f"{name} DCDT"])
    print_report(
        format_table(headers, data["rows"],
                     title="EXT-E1 - mule survival and delivered data, with vs without recharge")
    )
    return data


if __name__ == "__main__":  # pragma: no cover
    main()
