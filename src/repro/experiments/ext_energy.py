"""EXT-E1 — energy efficiency / mule lifetime with and without recharge scheduling.

Section V's introduction lists "energy efficiency of DM" among the studied
metrics but the paper shows no dedicated figure.  This extension experiment
quantifies the effect RW-TCTP is designed for: with a finite battery, a
W-TCTP mule dies after roughly ``r`` rounds (Equation 4), while an RW-TCTP
mule detours through the recharge station before exhaustion and keeps
patrolling for the whole horizon.
"""

from __future__ import annotations

from typing import Sequence

from repro.experiments.common import (
    ExperimentSettings,
    experiment_campaign,
    group_mean,
    run_experiment_cells,
)
from repro.experiments.reporting import format_table, print_report

__all__ = ["run_energy_experiment", "main"]

DEFAULT_BATTERIES: tuple[float, ...] = (50_000.0, 100_000.0, 200_000.0)

_ALGORITHMS: tuple[tuple[str, str], ...] = (("W-TCTP", "w-tctp"), ("RW-TCTP", "rw-tctp"))
_METRIC_COLUMNS: tuple[tuple[str, str], ...] = (
    ("survival", "survival_fraction"),
    ("delivered", "delivered_data"),
    ("recharges", "total_recharges"),
    ("dcdt", "average_dcdt"),
)


def run_energy_experiment(
    settings: ExperimentSettings | None = None,
    *,
    battery_capacities: Sequence[float] = DEFAULT_BATTERIES,
    policy: str = "balanced",
) -> dict:
    """Compare W-TCTP (no recharge) against RW-TCTP for several battery capacities.

    Returns one row per battery capacity with, for each algorithm: fraction of
    surviving mules, total delivered data, number of recharges, and the mean
    DCDT while alive.
    """
    settings = settings or ExperimentSettings()
    campaign = experiment_campaign(
        settings,
        "w-tctp",
        grid={
            "mule_battery": list(battery_capacities),
            "strategy": [name for _label, name in _ALGORITHMS],
        },
        params={"policy": policy},
        metrics=("survival_fraction", "total_recharges"),
        track_energy=True,
        with_recharge_station=True,
    )
    records = run_experiment_cells(campaign, settings)
    means = {
        metric: group_mean(records, column, by=("mule_battery", "strategy"))
        for metric, column in _METRIC_COLUMNS
    }

    rows: list[list] = []
    detail: dict[float, dict[str, dict[str, float]]] = {}
    for capacity in battery_capacities:
        detail[capacity] = {
            label: {metric: means[metric][(capacity, name)] for metric, _c in _METRIC_COLUMNS}
            for label, name in _ALGORITHMS
        }
        row: list = [capacity]
        for label, _name in _ALGORITHMS:
            d = detail[capacity][label]
            row.extend([d["survival"], d["delivered"], d["recharges"], d["dcdt"]])
        rows.append(row)

    return {
        "experiment": "ext-energy",
        "battery_capacities": list(battery_capacities),
        "detail": detail,
        "rows": rows,
        "settings": {"replications": settings.replications, "horizon": settings.horizon},
    }


def main(settings: ExperimentSettings | None = None) -> dict:
    """Run the energy experiment and print its table (returns the raw data)."""
    data = run_energy_experiment(settings)
    headers = ["battery (J)"]
    for name in ("W-TCTP", "RW-TCTP"):
        headers.extend([f"{name} surv", f"{name} data", f"{name} rechg", f"{name} DCDT"])
    print_report(
        format_table(headers, data["rows"],
                     title="EXT-E1 - mule survival and delivered data, with vs without recharge")
    )
    return data


if __name__ == "__main__":  # pragma: no cover
    main()
