"""Figure 10 — average SD of W-TCTP's two break-edge policies over (#VIPs, weight).

Same sweep as Figure 9 but reporting the average per-target standard deviation
of the visiting intervals.  Expected shape: the SD grows sharply with the VIP
count/weight under the Shortest-Length policy (its cycles have very different
lengths) and only slightly under the Balancing-Length policy.
"""

from __future__ import annotations

from typing import Sequence

import numpy as np

from repro.core.wtctp import WTCTPPlanner
from repro.experiments.common import ExperimentSettings, replicate_seeds, run_strategy_on_scenario
from repro.experiments.reporting import format_table, print_report
from repro.sim.metrics import average_sd
from repro.workloads.generator import generate_scenario

__all__ = ["run_fig10", "main"]

DEFAULT_VIP_COUNTS: tuple[int, ...] = (1, 2, 3, 4)
DEFAULT_VIP_WEIGHTS: tuple[int, ...] = (2, 3, 4)
POLICIES: tuple[str, ...] = ("shortest", "balanced")


def run_fig10(
    settings: ExperimentSettings | None = None,
    *,
    vip_counts: Sequence[int] = DEFAULT_VIP_COUNTS,
    vip_weights: Sequence[int] = DEFAULT_VIP_WEIGHTS,
    policies: Sequence[str] = POLICIES,
    vip_only: bool = False,
    num_mules: int = 1,
) -> dict:
    """Run the Figure 10 sweep.

    ``vip_only`` restricts the SD to the VIP targets themselves (the paper's
    text discusses the VIPs' cycles); the default averages over all targets as
    the figure's axis label ("SD of target point") suggests.  ``num_mules``
    defaults to 1 for the same reason as in Figure 9 (per-walk policy effect).
    """
    settings = settings or ExperimentSettings()
    seeds = replicate_seeds(settings)

    rows: list[list] = []
    grid: dict[str, dict[tuple[int, int], float]] = {p: {} for p in policies}

    for num_vips in vip_counts:
        for weight in vip_weights:
            per_policy: dict[str, list[float]] = {p: [] for p in policies}
            for seed in seeds:
                scenario = generate_scenario(
                    settings.scenario_config(num_vips=num_vips, vip_weight=weight,
                                             num_mules=num_mules),
                    seed,
                )
                vip_ids = [t.id for t in scenario.targets if t.is_vip] or None
                for policy in policies:
                    planner = WTCTPPlanner(policy=policy)
                    result = run_strategy_on_scenario(
                        planner, scenario, horizon=settings.horizon, track_energy=False
                    )
                    targets = vip_ids if vip_only else None
                    per_policy[policy].append(average_sd(result, targets=targets))
            row = [num_vips, weight]
            for policy in policies:
                sd = float(np.nanmean(per_policy[policy]))
                grid[policy][(num_vips, weight)] = sd
                row.append(sd)
            rows.append(row)

    return {
        "experiment": "fig10",
        "vip_counts": list(vip_counts),
        "vip_weights": list(vip_weights),
        "policies": list(policies),
        "sd": grid,
        "rows": rows,
        "vip_only": vip_only,
        "settings": {"replications": settings.replications, "horizon": settings.horizon},
    }


def main(settings: ExperimentSettings | None = None) -> dict:
    """Run Figure 10 and print the SD table (returns the raw data)."""
    data = run_fig10(settings)
    headers = ["#VIP", "weight"] + [f"SD {p}" for p in data["policies"]]
    print_report(
        format_table(headers, data["rows"],
                     title="Figure 10 - average SD of visiting interval (s) per break-edge policy")
    )
    return data


if __name__ == "__main__":  # pragma: no cover
    main()
