"""Figure 10 — average SD of W-TCTP's two break-edge policies over (#VIPs, weight).

Same sweep as Figure 9 but reporting the average per-target standard deviation
of the visiting intervals.  Expected shape: the SD grows sharply with the VIP
count/weight under the Shortest-Length policy (its cycles have very different
lengths) and only slightly under the Balancing-Length policy.
"""

from __future__ import annotations

from typing import Sequence

from repro.experiments.common import (
    ExperimentSettings,
    experiment_campaign,
    group_mean,
    run_experiment_cells,
)
from repro.experiments.reporting import format_table, print_report

__all__ = ["run_fig10", "main"]

DEFAULT_VIP_COUNTS: tuple[int, ...] = (1, 2, 3, 4)
DEFAULT_VIP_WEIGHTS: tuple[int, ...] = (2, 3, 4)
POLICIES: tuple[str, ...] = ("shortest", "balanced")


def run_fig10(
    settings: ExperimentSettings | None = None,
    *,
    vip_counts: Sequence[int] = DEFAULT_VIP_COUNTS,
    vip_weights: Sequence[int] = DEFAULT_VIP_WEIGHTS,
    policies: Sequence[str] = POLICIES,
    vip_only: bool = False,
    num_mules: int = 1,
) -> dict:
    """Run the Figure 10 sweep.

    ``vip_only`` restricts the SD to the VIP targets themselves (the paper's
    text discusses the VIPs' cycles); the default averages over all targets as
    the figure's axis label ("SD of target point") suggests.  ``num_mules``
    defaults to 1 for the same reason as in Figure 9 (per-walk policy effect).
    """
    settings = settings or ExperimentSettings()
    campaign = experiment_campaign(
        settings,
        "w-tctp",
        grid={
            "num_vips": list(vip_counts),
            "vip_weight": list(vip_weights),
            "policy": list(policies),
        },
        metrics=("vip_sd_or_all",),
        track_energy=False,
        num_mules=num_mules,
    )
    records = run_experiment_cells(campaign, settings)
    sd_column = "vip_sd_or_all" if vip_only else "average_sd"
    mean_sd = group_mean(records, sd_column, by=("num_vips", "vip_weight", "policy"))

    rows: list[list] = []
    grid: dict[str, dict[tuple[int, int], float]] = {p: {} for p in policies}
    for num_vips in vip_counts:
        for weight in vip_weights:
            row: list = [num_vips, weight]
            for policy in policies:
                sd = mean_sd[(num_vips, weight, policy)]
                grid[policy][(num_vips, weight)] = sd
                row.append(sd)
            rows.append(row)

    return {
        "experiment": "fig10",
        "vip_counts": list(vip_counts),
        "vip_weights": list(vip_weights),
        "policies": list(policies),
        "sd": grid,
        "rows": rows,
        "vip_only": vip_only,
        "settings": {"replications": settings.replications, "horizon": settings.horizon},
    }


def main(settings: ExperimentSettings | None = None) -> dict:
    """Run Figure 10 and print the SD table (returns the raw data)."""
    data = run_fig10(settings)
    headers = ["#VIP", "weight"] + [f"SD {p}" for p in data["policies"]]
    print_report(
        format_table(headers, data["rows"],
                     title="Figure 10 - average SD of visiting interval (s) per break-edge policy")
    )
    return data


if __name__ == "__main__":  # pragma: no cover
    main()
