"""Shared plumbing for the figure-reproduction experiments.

Every experiment follows the same pattern: build a scenario from a seed, plan
with one or more strategies, simulate for a horizon long enough to observe
tens of visits per target, extract the paper's metrics and average over the
replications.  This module centralises that plumbing so the per-figure modules
only describe the parameter grids.
"""

from __future__ import annotations

from dataclasses import dataclass, field, replace
from typing import Callable, Iterable, Sequence

import numpy as np

from repro.baselines.base import PatrolStrategy, get_strategy
from repro.core.plan import PatrolPlan
from repro.network.scenario import Scenario
from repro.sim.engine import PatrolSimulator, SimulationConfig
from repro.sim.recorder import SimulationResult
from repro.workloads.generator import ScenarioConfig, generate_scenario

__all__ = [
    "ExperimentSettings",
    "replicate_seeds",
    "run_strategy_on_scenario",
    "simulate_plan",
    "averaged_metric",
]


@dataclass(frozen=True)
class ExperimentSettings:
    """Run-size knobs shared by all experiments.

    The defaults reproduce the paper's protocol (20 replications); the
    benchmark suite and the test suite use smaller values through the
    ``quick()`` constructor so they stay fast.
    """

    replications: int = 20
    horizon: float = 60_000.0
    base_seed: int = 2011      # the paper's publication year, for determinism with no magic
    num_targets: int = 20
    num_mules: int = 4
    mule_placement: str = "random"
    distribution: str = "uniform"

    @classmethod
    def quick(cls, **overrides) -> "ExperimentSettings":
        """Small settings for tests / smoke benchmarks (3 replications, short horizon)."""
        defaults = dict(replications=3, horizon=25_000.0, num_targets=12, num_mules=3)
        defaults.update(overrides)
        return cls(**defaults)

    def scenario_config(self, **overrides) -> ScenarioConfig:
        """Scenario config following these settings, with per-experiment overrides."""
        base = dict(
            num_targets=self.num_targets,
            num_mules=self.num_mules,
            distribution=self.distribution,
            mule_placement=self.mule_placement,
        )
        base.update(overrides)
        return ScenarioConfig(**base)


def replicate_seeds(settings: ExperimentSettings) -> list[int]:
    """Deterministic list of per-replication seeds."""
    return [settings.base_seed + 1000 * k for k in range(settings.replications)]


def simulate_plan(scenario: Scenario, plan: PatrolPlan, *, horizon: float,
                  track_energy: bool = True) -> SimulationResult:
    """Run one simulation of ``plan`` on a fresh copy of ``scenario``."""
    sim = PatrolSimulator(scenario.fresh_copy(), plan,
                          SimulationConfig(horizon=horizon, track_energy=track_energy))
    return sim.run()


def run_strategy_on_scenario(
    strategy: "str | PatrolStrategy",
    scenario: Scenario,
    *,
    horizon: float,
    track_energy: bool = True,
    **strategy_kwargs,
) -> SimulationResult:
    """Plan + simulate in one call; ``strategy`` may be a registry name or an instance."""
    planner = get_strategy(strategy, **strategy_kwargs) if isinstance(strategy, str) else strategy
    working = scenario.fresh_copy()
    plan = planner.plan(working)
    return simulate_plan(working, plan, horizon=horizon, track_energy=track_energy)


def averaged_metric(
    values: Iterable[float],
) -> float:
    """Mean of the finite values (experiments ignore NaNs from unvisited targets)."""
    arr = np.asarray([v for v in values if np.isfinite(v)], dtype=float)
    return float(arr.mean()) if arr.size else float("nan")
