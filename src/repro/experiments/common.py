"""Shared plumbing for the figure-reproduction experiments.

Every experiment follows the same pattern: describe a grid of run cells
(scenario config × strategy × replication seed), execute them through the
:mod:`repro.runner` campaign executor — serially or across worker processes,
per :attr:`ExperimentSettings.max_workers` — and reduce the tidy records to
the figure's series.  This module centralises the settings object and the
spec-building helpers so the per-figure modules only describe their parameter
grids and reductions.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Any, Iterable, Mapping, Sequence

import numpy as np

from repro.baselines.base import PatrolStrategy, get_strategy
from repro.core.plan import PatrolPlan
from repro.network.scenario import Scenario
from repro.runner.campaign import execute_many, execute_resumable, group_mean, group_records
from repro.runner.spec import CampaignSpec, RunSpec
from repro.store import resolve_store
from repro.scenarios import ScenarioSpec
from repro.sim.engine import PatrolSimulator, SimulationConfig
from repro.sim.recorder import SimulationResult
from repro.workloads.generator import ScenarioConfig

__all__ = [
    "ExperimentSettings",
    "replicate_seeds",
    "run_strategy_on_scenario",
    "simulate_plan",
    "averaged_metric",
    "experiment_campaign",
    "run_experiment_cells",
    "group_mean",
    "group_records",
]


@dataclass(frozen=True)
class ExperimentSettings:
    """Run-size knobs shared by all experiments.

    The defaults reproduce the paper's protocol (20 replications); the
    benchmark suite and the test suite use smaller values through the
    ``quick()`` constructor so they stay fast.  ``max_workers`` fans the
    independent replication cells out over that many worker processes
    (``None`` runs serially; results are identical either way).
    """

    replications: int = 20
    horizon: float = 60_000.0
    base_seed: int = 2011      # the paper's publication year, for determinism with no magic
    num_targets: int = 20
    num_mules: int = 4
    mule_placement: str = "random"
    distribution: str = "uniform"
    max_workers: int | None = None
    # Experiments are resumable by default: None uses the persistent result
    # store when one is configured (REPRO_STORE_DIR / repro.store.configure),
    # False opts out, True/path/ResultStore force one — the semantics of
    # repro.store.resolve_store.  Records are byte-identical either way.
    store: Any = None

    @classmethod
    def quick(cls, **overrides) -> "ExperimentSettings":
        """Small settings for tests / smoke benchmarks (3 replications, short horizon)."""
        defaults = dict(replications=3, horizon=25_000.0, num_targets=12, num_mules=3)
        defaults.update(overrides)
        return cls(**defaults)

    def scenario_config(self, **overrides) -> ScenarioConfig:
        """Legacy scenario config following these settings (see :meth:`scenario_spec`)."""
        base = dict(
            num_targets=self.num_targets,
            num_mules=self.num_mules,
            distribution=self.distribution,
            mule_placement=self.mule_placement,
        )
        base.update(overrides)
        return ScenarioConfig(**base)

    def scenario_spec(self, **overrides) -> ScenarioSpec:
        """Scenario spec following these settings, with per-experiment overrides.

        ``distribution`` (here or in ``overrides``) names the scenario family
        — any registered family works, not only the paper's ``uniform`` /
        ``clustered``; the remaining overrides are family parameters.
        """
        params = dict(
            num_targets=self.num_targets,
            num_mules=self.num_mules,
            mule_placement=self.mule_placement,
        )
        params.update(overrides)
        family = params.pop("distribution", self.distribution)
        return ScenarioSpec(family=family, params=params)

    def sim_config(self, *, track_energy: bool = True, **overrides) -> SimulationConfig:
        """Simulator config following these settings."""
        return SimulationConfig(horizon=self.horizon, track_energy=track_energy, **overrides)


def replicate_seeds(settings: ExperimentSettings) -> list[int]:
    """Deterministic list of per-replication seeds."""
    return [settings.base_seed + 1000 * k for k in range(settings.replications)]


def experiment_campaign(
    settings: ExperimentSettings,
    strategy: str,
    *,
    grid: Mapping[str, Sequence[Any]] | None = None,
    params: Mapping[str, Any] | None = None,
    metrics: Sequence = (),
    track_energy: bool = True,
    labels: Mapping[str, Any] | None = None,
    **scenario_overrides,
) -> CampaignSpec:
    """A campaign over ``settings``' replications with a per-experiment grid.

    The base cell follows the settings' scenario/simulator knobs (plus
    ``scenario_overrides``); ``grid`` adds the experiment's swept axes and
    ``labels`` tags every record (useful when composing the cells of several
    campaigns into one batch).
    """
    base = RunSpec(
        strategy=strategy,
        scenario=settings.scenario_spec(**scenario_overrides),
        params=dict(params or {}),
        sim=settings.sim_config(track_energy=track_energy),
        seed=settings.base_seed,
        metrics=tuple(metrics),
        labels=dict(labels or {}),
    )
    return CampaignSpec(base=base, grid=dict(grid or {}), replications=settings.replications)


def run_experiment_cells(
    cells: "Iterable[RunSpec] | CampaignSpec",
    settings: ExperimentSettings,
) -> list[dict]:
    """Execute expanded run cells with the settings' worker budget.

    When a result store is in play (``settings.store``; by default the
    configured ``REPRO_STORE_DIR`` store, if any), already-computed cells are
    served from it and only the misses simulate — re-running an experiment
    suite after touching one strategy re-executes only the affected cells.
    Pass ``ExperimentSettings(store=False)`` to opt out.
    """
    if isinstance(cells, CampaignSpec):
        cells = cells.cells()
    store = resolve_store(settings.store)
    if store is None:
        return execute_many(cells, max_workers=settings.max_workers)
    records, _, _ = execute_resumable(cells, store=store, max_workers=settings.max_workers)
    return records


def simulate_plan(scenario: Scenario, plan: PatrolPlan, *, horizon: float,
                  track_energy: bool = True) -> SimulationResult:
    """Run one simulation of ``plan`` on a fresh copy of ``scenario``."""
    sim = PatrolSimulator(scenario.fresh_copy(), plan,
                          SimulationConfig(horizon=horizon, track_energy=track_energy))
    return sim.run()


def run_strategy_on_scenario(
    strategy: "str | PatrolStrategy",
    scenario: Scenario,
    *,
    horizon: float,
    track_energy: bool = True,
    **strategy_kwargs,
) -> SimulationResult:
    """Plan + simulate in one call; ``strategy`` may be a registry name or an instance.

    This is the in-memory sibling of :func:`repro.runner.execute_run` for
    callers that already hold a :class:`Scenario` object (or a planner
    instance) rather than a declarative config.
    """
    planner = get_strategy(strategy, **strategy_kwargs) if isinstance(strategy, str) else strategy
    working = scenario.fresh_copy()
    plan = planner.plan(working)
    return simulate_plan(working, plan, horizon=horizon, track_energy=track_energy)


def averaged_metric(
    values: Iterable[float],
) -> float:
    """Mean of the finite values (experiments ignore NaNs from unvisited targets)."""
    arr = np.asarray([v for v in values if np.isfinite(v)], dtype=float)
    return float(arr.mean()) if arr.size else float("nan")
