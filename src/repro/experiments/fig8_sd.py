"""Figure 8 — SD of the visiting intervals: CHB vs TCTP over (#targets, #mules).

The paper shows a 3-D bar chart: for every combination of target count and
data-mule count, the average per-target standard deviation of visiting
intervals.  Expected shape: TCTP stays at (essentially) zero everywhere; CHB's
SD is positive and grows with the number of data mules.
"""

from __future__ import annotations

from typing import Sequence

from repro.experiments.common import (
    ExperimentSettings,
    experiment_campaign,
    group_mean,
    run_experiment_cells,
)
from repro.experiments.reporting import format_table, print_report

__all__ = ["run_fig8", "main"]

DEFAULT_TARGET_COUNTS: tuple[int, ...] = (10, 20, 30, 40)
DEFAULT_MULE_COUNTS: tuple[int, ...] = (2, 4, 6, 8)


def run_fig8(
    settings: ExperimentSettings | None = None,
    *,
    target_counts: Sequence[int] = DEFAULT_TARGET_COUNTS,
    mule_counts: Sequence[int] = DEFAULT_MULE_COUNTS,
    strategies: Sequence[str] = ("chb", "b-tctp"),
) -> dict:
    """Run the Figure 8 sweep.

    Returns ``{"grid": {strategy: {(h, n): mean SD}}, "rows": [...]}`` where
    ``rows`` is a flat table (one row per (h, n) pair) convenient for
    reporting.
    """
    settings = settings or ExperimentSettings()
    campaign = experiment_campaign(
        settings,
        strategies[0],
        grid={
            "num_targets": list(target_counts),
            "num_mules": list(mule_counts),
            "strategy": list(strategies),
        },
        track_energy=False,
    )
    records = run_experiment_cells(campaign, settings)
    mean_sd = group_mean(records, "average_sd", by=("num_targets", "num_mules", "strategy"))

    grid: dict[str, dict[tuple[int, int], float]] = {s: {} for s in strategies}
    rows: list[list] = []
    for h in target_counts:
        for n in mule_counts:
            row: list = [h, n]
            for strat in strategies:
                grid[strat][(h, n)] = mean_sd[(h, n, strat)]
                row.append(mean_sd[(h, n, strat)])
            rows.append(row)

    return {
        "experiment": "fig8",
        "target_counts": list(target_counts),
        "mule_counts": list(mule_counts),
        "strategies": list(strategies),
        "grid": grid,
        "rows": rows,
        "settings": {"replications": settings.replications, "horizon": settings.horizon},
    }


def main(settings: ExperimentSettings | None = None) -> dict:
    """Run Figure 8 and print the SD table (returns the raw data)."""
    data = run_fig8(settings)
    headers = ["targets", "mules"] + [f"SD {s}" for s in data["strategies"]]
    print_report(
        format_table(headers, data["rows"],
                     title="Figure 8 - SD of visiting interval (s), CHB vs TCTP")
    )
    return data


if __name__ == "__main__":  # pragma: no cover
    main()
