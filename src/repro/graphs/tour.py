"""Simple-cycle tour representation (the Hamiltonian circuit ``P``).

A :class:`Tour` stores an ordering of node identifiers plus their coordinates.
It is immutable from the outside (mutating operations return new tours), which
keeps the path-construction algorithms easy to reason about and lets tests
compare tours structurally.
"""

from __future__ import annotations

from typing import Hashable, Iterable, Mapping, Sequence

import numpy as np

from repro.geometry.cache import cached_polyline_length
from repro.geometry.point import Point, as_point, distance
from repro.geometry.polyline import Polyline

__all__ = ["Tour"]

NodeId = Hashable


class Tour:
    """A closed tour (simple cycle) over a set of nodes with 2-D coordinates.

    Parameters
    ----------
    order:
        Node identifiers in visiting order.  The tour is closed implicitly:
        the last node connects back to the first.  Each identifier must appear
        exactly once.
    coordinates:
        Mapping from node identifier to its ``Point`` (or ``(x, y)``).
    """

    def __init__(self, order: Sequence[NodeId], coordinates: Mapping[NodeId, Point]) -> None:
        order = list(order)
        if not order:
            raise ValueError("a tour needs at least one node")
        if len(set(order)) != len(order):
            raise ValueError("tour order contains duplicate nodes")
        missing = [node for node in order if node not in coordinates]
        if missing:
            raise ValueError(f"coordinates missing for nodes: {missing!r}")
        self._order: list[NodeId] = order
        self._coords: dict[NodeId, Point] = {node: as_point(coordinates[node]) for node in order}
        self._length: float | None = None  # lazily computed; tours are immutable

    # ------------------------------------------------------------------ #
    # Basic accessors
    # ------------------------------------------------------------------ #
    @property
    def order(self) -> tuple[NodeId, ...]:
        """Node identifiers in visiting order (without repeating the first)."""
        return tuple(self._order)

    @property
    def coordinates(self) -> dict[NodeId, Point]:
        """Copy of the node -> coordinate mapping."""
        return dict(self._coords)

    def __len__(self) -> int:
        return len(self._order)

    def __contains__(self, node: NodeId) -> bool:
        return node in self._coords

    def __iter__(self):
        return iter(self._order)

    def __eq__(self, other: object) -> bool:
        if not isinstance(other, Tour):
            return NotImplemented
        return self._order == other._order and self._coords == other._coords

    def __repr__(self) -> str:  # pragma: no cover - debugging helper
        return f"Tour(n={len(self)}, length={self.length():.1f})"

    def position_of(self, node: NodeId) -> int:
        """Index of ``node`` in the visiting order."""
        return self._order.index(node)

    def point(self, node: NodeId) -> Point:
        """Coordinate of ``node``."""
        return self._coords[node]

    def points_in_order(self) -> list[Point]:
        """Coordinates in visiting order."""
        return [self._coords[n] for n in self._order]

    # ------------------------------------------------------------------ #
    # Geometry
    # ------------------------------------------------------------------ #
    def edges(self) -> list[tuple[NodeId, NodeId]]:
        """All tour edges ``(g_i, g_{i+1})`` including the closing edge."""
        n = len(self._order)
        return [(self._order[i], self._order[(i + 1) % n]) for i in range(n)]

    def edge_length(self, a: NodeId, b: NodeId) -> float:
        """Euclidean length of the edge between nodes ``a`` and ``b``."""
        return distance(self._coords[a], self._coords[b])

    def length(self) -> float:
        """Total length of the closed tour (computed once per instance).

        Served through :func:`repro.geometry.cache.cached_polyline_length`,
        which computes via :class:`Polyline` — bit-identical to the direct
        construction — so tours with identical geometry share one value.
        """
        if self._length is None:
            pts = self.points_in_order()
            self._length = 0.0 if len(pts) < 2 else cached_polyline_length(pts, closed=True)
        return self._length

    def polyline(self) -> Polyline:
        """Closed :class:`Polyline` through the tour's coordinates."""
        return Polyline(self.points_in_order(), closed=True)

    def successor(self, node: NodeId) -> NodeId:
        """The node visited immediately after ``node``."""
        i = self.position_of(node)
        return self._order[(i + 1) % len(self._order)]

    def predecessor(self, node: NodeId) -> NodeId:
        """The node visited immediately before ``node``."""
        i = self.position_of(node)
        return self._order[(i - 1) % len(self._order)]

    # ------------------------------------------------------------------ #
    # Transformations (all return new tours)
    # ------------------------------------------------------------------ #
    def rotated_to(self, start: NodeId) -> "Tour":
        """Same cycle, re-expressed so that ``start`` is the first node."""
        i = self.position_of(start)
        new_order = self._order[i:] + self._order[:i]
        return Tour(new_order, self._coords)

    def reversed(self) -> "Tour":
        """The same cycle traversed in the opposite direction (start preserved)."""
        new_order = [self._order[0]] + list(reversed(self._order[1:]))
        return Tour(new_order, self._coords)

    def counterclockwise(self) -> "Tour":
        """Return this tour oriented counter-clockwise (positive signed area).

        The paper always walks patrolling cycles in the counter-clockwise
        direction; normalising the orientation makes the patrolling rule and
        the tests deterministic.
        """
        if self.signed_area() >= 0.0 or len(self) < 3:
            return self
        return self.reversed()

    def signed_area(self) -> float:
        """Signed area of the tour polygon (positive when counter-clockwise)."""
        pts = np.asarray([(p.x, p.y) for p in self.points_in_order()], dtype=float)
        if pts.shape[0] < 3:
            return 0.0
        x, y = pts[:, 0], pts[:, 1]
        return float(0.5 * np.sum(x * np.roll(y, -1) - np.roll(x, -1) * y))

    def with_node_inserted(self, node: NodeId, point: Point, position: int) -> "Tour":
        """New tour with ``node`` inserted before index ``position``."""
        if node in self._coords:
            raise ValueError(f"node {node!r} already present in tour")
        new_order = list(self._order)
        new_order.insert(position % (len(new_order) + 1), node)
        coords = dict(self._coords)
        coords[node] = as_point(point)
        return Tour(new_order, coords)

    def without_node(self, node: NodeId) -> "Tour":
        """New tour with ``node`` removed."""
        if node not in self._coords:
            raise KeyError(node)
        new_order = [n for n in self._order if n != node]
        coords = {n: p for n, p in self._coords.items() if n != node}
        return Tour(new_order, coords)

    # ------------------------------------------------------------------ #
    # Queries used by the TCTP algorithms
    # ------------------------------------------------------------------ #
    def insertion_cost(self, point: Point, position: int) -> float:
        """Extra length incurred by inserting ``point`` before index ``position``."""
        n = len(self._order)
        prev_node = self._order[(position - 1) % n]
        next_node = self._order[position % n]
        a = self._coords[prev_node]
        b = self._coords[next_node]
        p = as_point(point)
        return distance(a, p) + distance(p, b) - distance(a, b)

    def nearest_node(self, point: Point) -> NodeId:
        """Node whose coordinate is closest to ``point``."""
        p = as_point(point)
        return min(self._order, key=lambda n: distance(self._coords[n], p))

    def as_networkx(self):
        """Export the tour as a ``networkx.Graph`` cycle (for interop / debugging)."""
        import networkx as nx

        g = nx.Graph()
        for node in self._order:
            g.add_node(node, pos=self._coords[node].as_tuple())
        for a, b in self.edges():
            g.add_edge(a, b, weight=self.edge_length(a, b))
        return g

    @classmethod
    def from_points(cls, points: Iterable[Point], *, ids: Sequence[NodeId] | None = None) -> "Tour":
        """Build a tour that visits ``points`` in the given order.

        Node identifiers default to ``0..n-1``.
        """
        pts = [as_point(p) for p in points]
        if ids is None:
            ids = list(range(len(pts)))
        if len(ids) != len(pts):
            raise ValueError("ids and points must have the same length")
        return cls(list(ids), dict(zip(ids, pts)))
