"""Hamiltonian-circuit construction heuristics (phase 1 of every TCTP variant).

The paper builds its base patrolling path with the convex-hull concept of
reference [5]: start from the convex hull of the targets and repeatedly insert
the interior target whose insertion is cheapest.  That heuristic is what the
``CHB`` baseline of Section V is named after, and it is also the default
``Hamiltonian_CycleConstruct()`` used by B-TCTP / W-TCTP / RW-TCTP.

Alternative constructions (nearest-neighbour, Christofides via networkx) are
provided for the ablation experiment EXT-A2 and as drop-in replacements.
"""

from __future__ import annotations

from typing import Callable, Hashable, Mapping

import numpy as np

from repro.geometry.cache import ContentCache, cached_distance_matrix, points_fingerprint
from repro.geometry.hull import convex_hull_indices
from repro.geometry.point import Point, as_array, as_point, distance
from repro.graphs.tour import Tour

__all__ = [
    "convex_hull_insertion_tour",
    "nearest_neighbor_tour",
    "christofides_tour",
    "build_hamiltonian_circuit",
    "TOUR_BUILDERS",
]

NodeId = Hashable


def _prepare(coordinates: Mapping[NodeId, Point]) -> tuple[list[NodeId], np.ndarray]:
    nodes = list(coordinates)
    pts = [as_point(coordinates[n]) for n in nodes]
    return nodes, cached_distance_matrix(pts)


def _vector_kernels():
    """The vectorized planning kernels, or None when the switch is off.

    Imported lazily inside the dispatch branch: :mod:`repro.planning.kernels`
    only depends on numpy, but importing the ``repro.planning`` package at
    module load would knot the graphs <-> planning import order.
    """
    from repro.obs import registry as _obs
    from repro.planning import kernels

    vector = kernels.vector_enabled()
    _obs.inc("planning_kernel_dispatch", path="vector" if vector else "scalar")
    return kernels if vector else None


def convex_hull_insertion_tour(coordinates: Mapping[NodeId, Point]) -> Tour:
    """Convex-hull cheapest-insertion tour (the CHB construction of ref. [5]).

    1. Start with the convex hull of all targets (already a sub-tour).
    2. Repeatedly pick the (interior point, edge) pair whose insertion
       increases the tour length least, and insert it.

    Deterministic for a given input ordering, so every data mule builds the
    same circuit — a requirement of the distributed algorithms in the paper.
    """
    nodes = list(coordinates)
    if not nodes:
        raise ValueError("cannot build a tour over zero targets")
    pts = [as_point(coordinates[n]) for n in nodes]
    if len(nodes) <= 3:
        return Tour(nodes, dict(zip(nodes, pts))).counterclockwise()

    dmat = cached_distance_matrix(pts)
    hull = convex_hull_indices(pts)
    kernels = _vector_kernels()
    if kernels is not None:
        # One broadcast pass per insertion instead of the O(n^2) Python scan;
        # byte-identical winners (see repro.planning.kernels).
        tour_idx = kernels.cheapest_insertion_order(dmat, hull, len(nodes))
    else:
        tour_idx = list(hull)
        remaining = [i for i in range(len(nodes)) if i not in set(hull)]

        while remaining:
            best = None  # (cost, point_index, insert_position)
            m = len(tour_idx)
            for p in remaining:
                for pos in range(m):
                    a = tour_idx[pos]
                    b = tour_idx[(pos + 1) % m]
                    cost = dmat[a, p] + dmat[p, b] - dmat[a, b]
                    if best is None or cost < best[0] - 1e-12:
                        best = (cost, p, pos + 1)
            assert best is not None
            _, p, pos = best
            tour_idx.insert(pos, p)
            remaining.remove(p)

    order = [nodes[i] for i in tour_idx]
    return Tour(order, dict(zip(nodes, pts))).counterclockwise()


def nearest_neighbor_tour(
    coordinates: Mapping[NodeId, Point], *, start: NodeId | None = None
) -> Tour:
    """Greedy nearest-neighbour tour starting from ``start`` (default: first node)."""
    nodes = list(coordinates)
    if not nodes:
        raise ValueError("cannot build a tour over zero targets")
    pts = {n: as_point(coordinates[n]) for n in nodes}
    if start is None:
        start = nodes[0]
    if start not in pts:
        raise KeyError(start)
    kernels = _vector_kernels()
    if kernels is not None and len(nodes) > 1:
        # Masked-row selection with the same (distance, str(id)) tie key;
        # byte-identical picks (see repro.planning.kernels).
        order_idx = kernels.nearest_neighbor_order(
            as_array([pts[n] for n in nodes]),
            [str(n) for n in nodes],
            nodes.index(start),
        )
        return Tour([nodes[i] for i in order_idx], pts).counterclockwise()
    unvisited = set(nodes)
    unvisited.discard(start)
    order = [start]
    current = start
    while unvisited:
        nxt = min(unvisited, key=lambda n: (distance(pts[current], pts[n]), str(n)))
        order.append(nxt)
        unvisited.discard(nxt)
        current = nxt
    return Tour(order, pts).counterclockwise()


def christofides_tour(coordinates: Mapping[NodeId, Point]) -> Tour:
    """Christofides 1.5-approximation tour via ``networkx`` (ablation comparator)."""
    import networkx as nx

    nodes = list(coordinates)
    if not nodes:
        raise ValueError("cannot build a tour over zero targets")
    pts = {n: as_point(coordinates[n]) for n in nodes}
    if len(nodes) <= 3:
        return Tour(nodes, pts).counterclockwise()
    # Complete graph in one pass from the cached distance matrix instead of
    # an O(n^2) per-pair distance()+add_edge loop.  Zero-weight edges between
    # coincident points are added too: christofides needs a complete graph.
    dmat = cached_distance_matrix([pts[n] for n in nodes])
    iu, ju = np.triu_indices(len(nodes), k=1)
    g = nx.Graph()
    g.add_nodes_from(nodes)
    g.add_weighted_edges_from(
        (nodes[i], nodes[j], w)
        for i, j, w in zip(iu.tolist(), ju.tolist(), dmat[iu, ju].tolist())
    )
    cycle = nx.approximation.christofides(g, weight="weight")
    # networkx returns a closed walk with the start repeated at the end
    order = list(cycle[:-1])
    return Tour(order, pts).counterclockwise()


TOUR_BUILDERS: dict[str, Callable[[Mapping[NodeId, Point]], Tour]] = {
    "hull-insertion": convex_hull_insertion_tour,
    "nearest-neighbor": nearest_neighbor_tour,
    "christofides": christofides_tour,
}

# Finished circuits memoized by (node ids, coordinates content, method,
# improve, start).  Tours are immutable, so campaign cells that share a
# scenario — every strategy of a grid axis, every replication with a pinned
# scenario seed — reuse the constructed (and improved) circuit instead of
# re-running the O(n^2)/O(n^3) heuristics.  A hit returns the *same* Tour
# instance the miss path produced, so results are identical either way.
_TOUR_CACHE = ContentCache("hamiltonian_tour", maxsize=256)


def build_hamiltonian_circuit(
    coordinates: Mapping[NodeId, Point],
    *,
    method: str = "hull-insertion",
    improve: bool = False,
    start: NodeId | None = None,
) -> Tour:
    """Build the shared Hamiltonian circuit used by all patrolling algorithms.

    Parameters
    ----------
    coordinates:
        Node -> point mapping (targets plus the sink).
    method:
        One of ``"hull-insertion"`` (paper default), ``"nearest-neighbor"``,
        ``"christofides"``.
    improve:
        Apply a 2-opt improvement pass after construction.
    start:
        Rotate the resulting cycle so this node comes first (e.g. the sink).

    Notes
    -----
    Results are memoized by content (see :mod:`repro.geometry.cache`): two
    calls with equal node ids, coordinates and options share one immutable
    :class:`Tour` instance.  Disable via
    :func:`repro.geometry.cache.configure` to force reconstruction.
    """
    builder = TOUR_BUILDERS.get(method)
    if builder is None:
        raise ValueError(
            f"unknown tour construction method {method!r}; expected one of {sorted(TOUR_BUILDERS)}"
        )
    nodes = tuple(coordinates)
    # The builder object is part of the key so swapping a TOUR_BUILDERS entry
    # at runtime can never serve a circuit constructed by the old builder.
    key = (
        nodes,
        points_fingerprint([coordinates[n] for n in nodes]),
        method,
        builder,
        bool(improve),
        start,
    )
    return _TOUR_CACHE.get_or_compute(
        key, lambda: _build_circuit(coordinates, method, improve, start)
    )


def _build_circuit(
    coordinates: Mapping[NodeId, Point],
    method: str,
    improve: bool,
    start: NodeId | None,
) -> Tour:
    if method == "nearest-neighbor":
        tour = nearest_neighbor_tour(coordinates, start=start)
    else:
        tour = TOUR_BUILDERS[method](coordinates)
    if improve:
        from repro.graphs.improve import two_opt

        tour = two_opt(tour)
    if start is not None and start in tour:
        tour = tour.rotated_to(start)
    return tour.counterclockwise().rotated_to(start) if start is not None and start in tour else tour.counterclockwise()
