"""Tour and patrol-structure data types plus Hamiltonian-circuit heuristics.

The paper's algorithms all operate on two kinds of structures:

* a **Hamiltonian circuit** ``P`` visiting every target exactly once
  (:class:`repro.graphs.tour.Tour`), built with the convex-hull based
  heuristic of reference [5] (:mod:`repro.graphs.hamiltonian`), and
* a **weighted patrolling path** ``P̄`` / **weighted recharge path** ``P̃``
  in which a VIP of weight ``w`` is intersected by ``w`` cycles
  (:class:`repro.graphs.multitour.MultiTour`).
"""

from repro.graphs.tour import Tour
from repro.graphs.multitour import MultiTour, CycleInfo
from repro.graphs.hamiltonian import (
    convex_hull_insertion_tour,
    nearest_neighbor_tour,
    christofides_tour,
    build_hamiltonian_circuit,
)
from repro.graphs.improve import two_opt, or_opt, improve_tour
from repro.graphs.validation import (
    validate_tour,
    validate_weighted_patrolling_path,
    validate_weighted_recharge_path,
)

__all__ = [
    "Tour",
    "MultiTour",
    "CycleInfo",
    "convex_hull_insertion_tour",
    "nearest_neighbor_tour",
    "christofides_tour",
    "build_hamiltonian_circuit",
    "two_opt",
    "or_opt",
    "improve_tour",
    "validate_tour",
    "validate_weighted_patrolling_path",
    "validate_weighted_recharge_path",
]
