"""Weighted patrol structures (the WPP ``P̄`` and the WRP ``P̃``).

Definition 3 of the paper says a Weighted Patrolling Path is a closed walk in
which every target ``g_i`` is intersected by exactly ``w_i`` cycles, and the
walk itself is a single cycle.  Structurally this is an Eulerian multigraph in
which an NTP has degree 2 and a VIP of weight ``w`` has degree ``2w``.  The
walk a data mule actually follows is an Euler circuit of that multigraph; the
W-TCTP patrolling rule (minimal counter-clockwise included angle) picks a
specific, deterministic Euler circuit.

:class:`MultiTour` stores the multigraph (with parallel edges allowed, since
two cycles may share the chord between a VIP and a break point) together with
node coordinates, and provides edge surgery (``break_edge``), length queries,
Euler-circuit extraction, and decomposition into the per-VIP cycles needed by
the Balancing-Length policy and by the validation helpers.
"""

from __future__ import annotations

from collections import Counter
from typing import Hashable, Mapping, Sequence

from repro.geometry.point import Point, as_point, distance
from repro.graphs.tour import Tour

__all__ = ["MultiTour", "CycleInfo"]

NodeId = Hashable
Edge = tuple[NodeId, NodeId, int]  # (u, v, key)


class CycleInfo:
    """One cycle of a weighted patrol structure passing through a hub node."""

    __slots__ = ("hub", "nodes", "length")

    def __init__(self, hub: NodeId, nodes: tuple[NodeId, ...], length: float) -> None:
        self.hub = hub
        self.nodes = nodes
        self.length = length

    def __repr__(self) -> str:  # pragma: no cover - debugging helper
        return f"CycleInfo(hub={self.hub!r}, n={len(self.nodes)}, length={self.length:.1f})"


class MultiTour:
    """An undirected multigraph patrol structure with 2-D node coordinates."""

    def __init__(self, coordinates: Mapping[NodeId, Point]) -> None:
        self._coords: dict[NodeId, Point] = {n: as_point(p) for n, p in coordinates.items()}
        # adjacency: node -> list of (neighbor, key); parallel edges get distinct keys
        self._adj: dict[NodeId, list[tuple[NodeId, int]]] = {n: [] for n in self._coords}
        self._next_key = 0
        # Lazy total-length memo, invalidated by edge surgery.  The memo holds
        # the exact float the summation produced, so repeated length() queries
        # (the balancing policy evaluates candidate structures repeatedly) are
        # free and byte-identical to recomputation.
        self._length_memo: float | None = None

    # ------------------------------------------------------------------ #
    # Construction
    # ------------------------------------------------------------------ #
    @classmethod
    def from_tour(cls, tour: Tour) -> "MultiTour":
        """Lift a Hamiltonian circuit into a multigraph (every node degree 2)."""
        mt = cls(tour.coordinates)
        for a, b in tour.edges():
            mt.add_edge(a, b)
        return mt

    def copy(self) -> "MultiTour":
        """Deep copy (edges keep their keys)."""
        other = MultiTour(self._coords)
        other._adj = {n: list(neigh) for n, neigh in self._adj.items()}
        other._next_key = self._next_key
        other._length_memo = self._length_memo
        return other

    # ------------------------------------------------------------------ #
    # Node / coordinate access
    # ------------------------------------------------------------------ #
    @property
    def nodes(self) -> tuple[NodeId, ...]:
        return tuple(self._coords)

    def __contains__(self, node: NodeId) -> bool:
        return node in self._coords

    def point(self, node: NodeId) -> Point:
        return self._coords[node]

    @property
    def coordinates(self) -> dict[NodeId, Point]:
        return dict(self._coords)

    def add_node(self, node: NodeId, point: Point) -> None:
        """Add an isolated node (used when inserting the recharge station)."""
        if node in self._coords:
            raise ValueError(f"node {node!r} already present")
        self._coords[node] = as_point(point)
        self._adj[node] = []

    # ------------------------------------------------------------------ #
    # Edge surgery
    # ------------------------------------------------------------------ #
    def add_edge(self, u: NodeId, v: NodeId) -> int:
        """Add an (undirected) edge and return its key."""
        if u not in self._coords or v not in self._coords:
            raise KeyError(f"both endpoints must be nodes of the structure: {u!r}, {v!r}")
        if u == v:
            raise ValueError("self-loop edges are not allowed in a patrol structure")
        key = self._next_key
        self._next_key += 1
        self._adj[u].append((v, key))
        self._adj[v].append((u, key))
        self._length_memo = None
        return key

    def remove_edge(self, u: NodeId, v: NodeId, key: int | None = None) -> None:
        """Remove one edge between ``u`` and ``v`` (a specific parallel edge if ``key`` given)."""
        candidates = [k for (n, k) in self._adj[u] if n == v and (key is None or k == key)]
        if not candidates:
            raise KeyError(f"no edge between {u!r} and {v!r}" + ("" if key is None else f" with key {key}"))
        k = candidates[0]
        self._adj[u].remove((v, k))
        self._adj[v].remove((u, k))
        self._length_memo = None

    def has_edge(self, u: NodeId, v: NodeId) -> bool:
        return any(n == v for (n, _k) in self._adj.get(u, []))

    def break_edge(self, u: NodeId, v: NodeId, hub: NodeId, *, key: int | None = None) -> tuple[int, int]:
        """Perform the paper's cycle-construction surgery.

        Removes the break edge ``(u, v)`` and connects both break points to the
        VIP ``hub``, creating one additional cycle through ``hub``.  Returns
        the keys of the two new chord edges.
        """
        if hub in (u, v):
            raise ValueError("the break edge must not be incident to the hub VIP")
        self.remove_edge(u, v, key)
        return self.add_edge(u, hub), self.add_edge(v, hub)

    # ------------------------------------------------------------------ #
    # Structure queries
    # ------------------------------------------------------------------ #
    def degree(self, node: NodeId) -> int:
        return len(self._adj[node])

    def cycles_through(self, node: NodeId) -> int:
        """Number of cycles intersecting at ``node`` (``degree / 2``)."""
        return self.degree(node) // 2

    def neighbors(self, node: NodeId) -> list[tuple[NodeId, int]]:
        """Neighbours of ``node`` as ``(neighbor, edge_key)`` pairs (parallel edges repeated)."""
        return list(self._adj[node])

    def edges(self) -> list[Edge]:
        """All edges exactly once as ``(u, v, key)`` with an arbitrary but stable orientation."""
        seen: set[int] = set()
        out: list[Edge] = []
        for u, neigh in self._adj.items():
            for v, k in neigh:
                if k not in seen:
                    seen.add(k)
                    out.append((u, v, k))
        return out

    def num_edges(self) -> int:
        return sum(len(neigh) for neigh in self._adj.values()) // 2

    def edge_length(self, u: NodeId, v: NodeId) -> float:
        return distance(self._coords[u], self._coords[v])

    def length(self) -> float:
        """Total length of the patrol structure = length of one full traversal.

        Memoized until the next edge surgery; the cached value is the exact
        float the summation produced, so callers see identical results
        whether they hit the memo or force recomputation.
        """
        if self._length_memo is None:
            self._length_memo = sum(self.edge_length(u, v) for u, v, _k in self.edges())
        return self._length_memo

    def is_connected(self) -> bool:
        """True when every node with at least one edge is reachable from any other."""
        active = [n for n in self._coords if self._adj[n]]
        if not active:
            return False
        seen = {active[0]}
        stack = [active[0]]
        while stack:
            cur = stack.pop()
            for nxt, _k in self._adj[cur]:
                if nxt not in seen:
                    seen.add(nxt)
                    stack.append(nxt)
        return all(n in seen for n in active)

    def is_eulerian(self) -> bool:
        """True when a single closed walk can traverse every edge exactly once."""
        return self.is_connected() and all(self.degree(n) % 2 == 0 for n in self._coords if self._adj[n])

    # ------------------------------------------------------------------ #
    # Walk extraction
    # ------------------------------------------------------------------ #
    def euler_circuit(self, start: NodeId | None = None, *, require_connected: bool = True) -> list[NodeId]:
        """An Euler circuit (Hierholzer) as a node sequence, first node repeated at the end.

        This is the *fallback* traversal; the angle-based W-TCTP patrolling
        rule lives in :mod:`repro.core.patrol_rules` and produces a specific
        Euler circuit of the same multigraph.

        With ``require_connected=False`` only the even-degree condition is
        checked and the circuit covers the connected component containing
        ``start`` — used when splicing leftover sub-circuits into a walk.
        """
        if require_connected:
            if not self.is_eulerian():
                raise ValueError("patrol structure is not Eulerian; cannot extract a closed walk")
        else:
            if any(self.degree(n) % 2 for n in self._coords if self._adj[n]):
                raise ValueError("patrol structure has odd-degree nodes; no closed walk exists")
        if start is None:
            start = next(n for n in self._coords if self._adj[n])
        remaining: dict[NodeId, list[tuple[NodeId, int]]] = {
            n: list(neigh) for n, neigh in self._adj.items()
        }
        used: set[int] = set()

        def next_unused(node: NodeId) -> tuple[NodeId, int] | None:
            while remaining[node]:
                v, k = remaining[node][-1]
                if k in used:
                    remaining[node].pop()
                    continue
                return v, k
            return None

        stack: list[NodeId] = [start]
        circuit: list[NodeId] = []
        while stack:
            node = stack[-1]
            nxt = next_unused(node)
            if nxt is None:
                circuit.append(stack.pop())
            else:
                v, k = nxt
                used.add(k)
                stack.append(v)
        circuit.reverse()
        return circuit

    def walk_length(self, walk: Sequence[NodeId]) -> float:
        """Length of a node-sequence walk over this structure's coordinates."""
        return sum(
            distance(self._coords[a], self._coords[b]) for a, b in zip(walk[:-1], walk[1:])
        )

    # ------------------------------------------------------------------ #
    # Cycle decomposition around a hub (used by validation / balancing metrics)
    # ------------------------------------------------------------------ #
    def cycles_at(self, hub: NodeId, walk: Sequence[NodeId] | None = None) -> list[CycleInfo]:
        """Decompose a traversal into the cycles that intersect at ``hub``.

        The walk (an Euler circuit, computed if not supplied) is split at each
        occurrence of ``hub``; every maximal sub-walk between two consecutive
        occurrences, closed back through ``hub``, is one of the ``w_hub``
        cycles of Definition 2.
        """
        if walk is None:
            walk = self.euler_circuit(start=hub)
        walk = list(walk)
        if walk and walk[0] == walk[-1]:
            closed = walk[:-1]
        else:
            closed = walk
        if hub not in closed:
            return []
        # rotate so the walk starts at the hub
        first = closed.index(hub)
        rotated = closed[first:] + closed[:first]
        positions = [i for i, n in enumerate(rotated) if n == hub]
        cycles: list[CycleInfo] = []
        for idx, pos in enumerate(positions):
            end = positions[idx + 1] if idx + 1 < len(positions) else len(rotated)
            segment = rotated[pos:end] + [hub]
            length = self.walk_length(segment)
            cycles.append(CycleInfo(hub, tuple(segment), length))
        return cycles

    def weight_profile(self) -> dict[NodeId, int]:
        """Implied weight of every node (``degree / 2``); zero-degree nodes report 0."""
        return {n: self.degree(n) // 2 for n in self._coords}

    def visit_counts(self, walk: Sequence[NodeId]) -> Counter:
        """How many times each node appears in ``walk`` (closing duplicate removed)."""
        if len(walk) >= 2 and walk[0] == walk[-1]:
            walk = walk[:-1]
        return Counter(walk)

    def as_networkx(self):
        """Export as a ``networkx.MultiGraph`` with ``pos`` and ``weight`` attributes."""
        import networkx as nx

        g = nx.MultiGraph()
        for n, p in self._coords.items():
            g.add_node(n, pos=p.as_tuple())
        for u, v, k in self.edges():
            g.add_edge(u, v, key=k, weight=self.edge_length(u, v))
        return g
