"""Local-search tour improvement (2-opt and Or-opt).

The paper's heuristics stop at the convex-hull insertion circuit; these
improvement passes are provided for the EXT-A2 ablation (how much does a
better Hamiltonian circuit shrink the visiting interval?) and as optional
post-processing for users of the library.
"""

from __future__ import annotations

from typing import Hashable

import numpy as np

from repro.geometry.cache import cached_distance_matrix
from repro.graphs.tour import Tour

__all__ = ["two_opt", "or_opt", "improve_tour"]

NodeId = Hashable


def _tour_matrix(tour: Tour) -> tuple[list[NodeId], np.ndarray]:
    nodes = list(tour.order)
    dmat = cached_distance_matrix([tour.point(n) for n in nodes])
    return nodes, dmat


def _vector_kernels():
    """The vectorized planning kernels, or None when the switch is off.

    Imported lazily so module load order stays acyclic (see
    :func:`repro.graphs.hamiltonian._vector_kernels`).
    """
    from repro.obs import registry as _obs
    from repro.planning import kernels

    vector = kernels.vector_enabled()
    _obs.inc("planning_kernel_dispatch", path="vector" if vector else "scalar")
    return kernels if vector else None


def two_opt(tour: Tour, *, max_rounds: int = 50, tol: float = 1e-9) -> Tour:
    """Classic 2-opt: reverse tour segments while any reversal shortens the tour.

    Runs improvement rounds until no improving move exists or ``max_rounds``
    is reached; each round applies the first improving reversal of a
    row-major (i, j) scan.  By default the round is evaluated as one
    broadcast O(n^2) delta matrix (:func:`repro.planning.kernels.two_opt_order`,
    byte-identical move selection); with the vector switch off the original
    scalar scan runs, costing O(n^2) Python-level iterations per round.
    """
    n = len(tour)
    if n < 4:
        return tour
    nodes, dmat = _tour_matrix(tour)
    kernels = _vector_kernels()
    if kernels is not None:
        order = kernels.two_opt_order(
            list(range(n)), dmat, max_rounds=max_rounds, tol=tol
        )
        return Tour([nodes[i] for i in order], tour.coordinates).counterclockwise()
    order = list(range(n))

    improved = True
    rounds = 0
    while improved and rounds < max_rounds:
        improved = False
        rounds += 1
        for i in range(n - 1):
            a, b = order[i], order[i + 1]
            for j in range(i + 2, n):
                c = order[j]
                d = order[(j + 1) % n]
                if d == a:
                    continue
                delta = (dmat[a, c] + dmat[b, d]) - (dmat[a, b] + dmat[c, d])
                if delta < -tol:
                    order[i + 1 : j + 1] = reversed(order[i + 1 : j + 1])
                    improved = True
                    break
            if improved:
                break
    new_order = [nodes[i] for i in order]
    return Tour(new_order, tour.coordinates).counterclockwise()


def or_opt(tour: Tour, *, segment_lengths: tuple[int, ...] = (1, 2, 3), max_rounds: int = 30,
           tol: float = 1e-9) -> Tour:
    """Or-opt: relocate short chains of 1-3 consecutive nodes to a better position.

    Each round applies the first improving relocation of the (segment length,
    rotation start, insertion edge) scan.  By default the candidate rows of a
    round are evaluated as broadcast removal-gain/insertion-cost matrices
    (:func:`repro.planning.kernels.or_opt_order`, byte-identical move
    selection); with the vector switch off the original scalar scan runs.
    """
    n = len(tour)
    if n < 5:
        return tour
    nodes, dmat = _tour_matrix(tour)
    kernels = _vector_kernels()
    if kernels is not None:
        order = kernels.or_opt_order(
            list(range(n)), dmat,
            segment_lengths=tuple(segment_lengths), max_rounds=max_rounds, tol=tol,
        )
        return Tour([nodes[i] for i in order], tour.coordinates).counterclockwise()
    order = list(range(n))

    def try_round() -> bool:
        nonlocal order
        for seg_len in segment_lengths:
            for i in range(n):
                seg = [order[(i + k) % n] for k in range(seg_len)]
                prev_node = order[(i - 1) % n]
                next_node = order[(i + seg_len) % n]
                if prev_node in seg or next_node in seg:
                    continue
                removal_gain = (
                    dmat[prev_node, seg[0]] + dmat[seg[-1], next_node] - dmat[prev_node, next_node]
                )
                rest = [x for x in order if x not in seg]
                m = len(rest)
                for j in range(m):
                    a = rest[j]
                    b = rest[(j + 1) % m]
                    insertion_cost = dmat[a, seg[0]] + dmat[seg[-1], b] - dmat[a, b]
                    if insertion_cost < removal_gain - tol:
                        order = rest[: j + 1] + seg + rest[j + 1 :]
                        return True
        return False

    rounds = 0
    while rounds < max_rounds and try_round():
        rounds += 1
    new_order = [nodes[i] for i in order]
    return Tour(new_order, tour.coordinates).counterclockwise()


def improve_tour(tour: Tour, *, use_or_opt: bool = True) -> Tour:
    """2-opt followed (optionally) by Or-opt; never lengthens the tour."""
    before = tour.length()
    improved = two_opt(tour)
    if use_or_opt:
        improved = or_opt(improved)
    return improved if improved.length() <= before + 1e-9 else tour
