"""Structural validation of tours and weighted patrol structures.

These functions encode the paper's definitions as executable checks:

* a Hamiltonian circuit visits every target exactly once (Section 2.2-A);
* a Weighted Patrolling Path (Definition 3) intersects each target ``g_i``
  with exactly ``w_i`` cycles and is itself one closed walk;
* a Weighted Recharge Path (Definition 5) additionally contains the recharge
  station.

They are used defensively by the TCTP implementations and directly by the
property-based tests.
"""

from __future__ import annotations

from typing import Hashable, Mapping, Sequence

from repro.graphs.multitour import MultiTour
from repro.graphs.tour import Tour

__all__ = [
    "ValidationError",
    "validate_tour",
    "validate_weighted_patrolling_path",
    "validate_weighted_recharge_path",
    "validate_walk_visits",
]

NodeId = Hashable


class ValidationError(AssertionError):
    """Raised when a patrol structure violates one of the paper's definitions."""


def validate_tour(tour: Tour, expected_nodes: Sequence[NodeId] | None = None) -> None:
    """Check that ``tour`` is a Hamiltonian circuit over ``expected_nodes``.

    Raises :class:`ValidationError` on violation, returns ``None`` otherwise.
    """
    order = tour.order
    if len(set(order)) != len(order):
        raise ValidationError("tour visits some node more than once")
    if len(order) == 0:
        raise ValidationError("tour is empty")
    if expected_nodes is not None:
        expected = set(expected_nodes)
        got = set(order)
        if expected != got:
            missing = expected - got
            extra = got - expected
            raise ValidationError(
                f"tour node set mismatch: missing={sorted(map(str, missing))}, "
                f"extra={sorted(map(str, extra))}"
            )


def validate_weighted_patrolling_path(
    structure: MultiTour,
    weights: Mapping[NodeId, int],
    *,
    require_all_nodes: bool = True,
) -> None:
    """Check Definition 3: ``w_i`` cycles at each target and a single closed walk."""
    for node, w in weights.items():
        if w < 1:
            raise ValidationError(f"weight of {node!r} must be >= 1 (got {w})")
        if node not in structure or structure.degree(node) == 0:
            # A node that is absent (or present but unused) is only acceptable
            # when the caller explicitly allows partial structures.
            if require_all_nodes:
                raise ValidationError(f"target {node!r} missing from patrol structure")
            continue
        deg = structure.degree(node)
        if deg != 2 * w:
            raise ValidationError(
                f"target {node!r} has degree {deg}, expected {2 * w} for weight {w}"
            )
    if not structure.is_eulerian():
        raise ValidationError("patrol structure is not a single closed walk (not Eulerian/connected)")


def validate_weighted_recharge_path(
    structure: MultiTour,
    weights: Mapping[NodeId, int],
    recharge_station: NodeId,
    *,
    recharge_weight: int = 1,
) -> None:
    """Check Definition 5: a WPP that additionally passes through the recharge station."""
    if recharge_station not in structure:
        raise ValidationError("recharge station missing from the weighted recharge path")
    combined = dict(weights)
    combined[recharge_station] = recharge_weight
    validate_weighted_patrolling_path(structure, combined)


def validate_walk_visits(
    walk: Sequence[NodeId],
    weights: Mapping[NodeId, int],
    *,
    extra_allowed: Sequence[NodeId] = (),
) -> None:
    """Check that a traversal walk visits each target exactly ``w_i`` times per lap.

    ``walk`` is a closed node sequence (first node repeated at the end is
    accepted).  Nodes listed in ``extra_allowed`` (e.g. the recharge station)
    may appear even if absent from ``weights``.
    """
    seq = list(walk)
    if len(seq) >= 2 and seq[0] == seq[-1]:
        seq = seq[:-1]
    counts: dict[NodeId, int] = {}
    for node in seq:
        counts[node] = counts.get(node, 0) + 1
    allowed = set(weights) | set(extra_allowed)
    for node in counts:
        if node not in allowed:
            raise ValidationError(f"walk visits unknown node {node!r}")
    for node, w in weights.items():
        got = counts.get(node, 0)
        if got != w:
            raise ValidationError(f"target {node!r} visited {got} times per lap, expected {w}")
