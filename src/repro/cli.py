"""Command-line interface: simulate, run declarative specs, sweep, or regenerate figures.

Examples
--------
Run one strategy on a random scenario and print the interval metrics::

    python -m repro simulate --strategy b-tctp --targets 20 --mules 4 --seed 3

Pick any registered scenario family (see ``python -m repro scenarios``)::

    python -m repro simulate --scenario corridor:num_targets=24,gap_fraction=0.4
    python -m repro sweep --scenario ring:num_vips=2 --strategies b-tctp,w-tctp

Execute a declarative run/campaign spec authored as a JSON file::

    python -m repro run spec.json --workers 4 --json

Sweep several strategies over seeded replications, in parallel::

    python -m repro sweep --strategies b-tctp,sweep --replications 8 --workers 4 --json

Resume a sweep from the persistent result store, with progress on stderr::

    python -m repro sweep --strategies chb,b-tctp --store ~/.cache/repro-store --progress

Inspect / aggregate the store across past campaigns (see ``docs/STORE.md``)::

    python -m repro store stats
    python -m repro report --by strategy --metrics average_sd

List what is available (strategies, scenario families + parameters)::

    python -m repro strategies
    python -m repro scenarios --json

Run the static self-checking analyzers (registry contracts, determinism,
fingerprint coverage, spec-schema drift — see ``docs/ANALYSIS.md``)::

    python -m repro check --strict
    python -m repro check --rules
    python -m repro check src/repro/sim/engine.py

Regenerate the paper's figures (full protocol, 20 replications)::

    python -m repro fig7
    python -m repro fig8 --quick --workers 4   # small/quick variant, 4 processes
    python -m repro fig9
    python -m repro fig10

Extension experiments (energy lifetimes and the ablation studies)::

    python -m repro energy
    python -m repro ablation-init
    python -m repro ablation-tsp
    python -m repro ablation-mules

Every subcommand is documented with examples in ``docs/CLI.md``.
"""

from __future__ import annotations

import argparse
import dataclasses
import json
import sys
from typing import Callable, Sequence

from repro.baselines.base import (
    available_strategies,
    filter_strategy_kwargs,
    get_strategy,
    strategy_info,
    strategy_params,
)
from repro.experiments import ExperimentSettings
from repro.experiments import (
    ablation_init,
    ablation_mules,
    ablation_tsp,
    ext_energy,
    fig10_policy_sd,
    fig7_dcdt,
    fig8_sd,
    fig9_policy_dcdt,
)
from repro.experiments.reporting import format_table, print_report
from repro.runner import Campaign, CampaignResult, CampaignSpec, RunSpec, load_spec
from repro.scenarios import (
    ScenarioSpec,
    available_scenario_families,
    scenario_family_info,
    spec_from_scenario_config,
)
from repro.planning.spec import parse_param_value, split_stage_params
from repro.planning.stages import canonical_stage_backend
from repro.scenarios.registry import REQUIRED
from repro.sim.engine import PatrolSimulator, SimulationConfig
from repro.sim.metrics import average_dcdt, average_sd, interval_statistics, max_visiting_interval
from repro.store import MergeConflictError, ResultStore, default_store, parse_filter_expression
from repro.store.report import (
    entry_rows,
    export_records_csv,
    export_records_json,
    store_stats_payload,
    summarize_records,
)
from repro.workloads.generator import ScenarioConfig

__all__ = ["main", "build_parser"]


_FIGURE_RUNNERS: dict[str, Callable] = {
    "fig7": fig7_dcdt.main,
    "fig8": fig8_sd.main,
    "fig9": fig9_policy_dcdt.main,
    "fig10": fig10_policy_sd.main,
    "energy": ext_energy.main,
    "ablation-init": ablation_init.main,
    "ablation-tsp": ablation_tsp.main,
    "ablation-mules": ablation_mules.main,
}

# One accurate help line per figure/extension command (shown by --help and
# documented with examples in docs/CLI.md).
_FIGURE_HELP: dict[str, str] = {
    "fig7": "reproduce Figure 7: DCDT per visit index (Random/Sweep/CHB/B-TCTP)",
    "fig8": "reproduce Figure 8: average SD over the (#targets, #mules) grid",
    "fig9": "reproduce Figure 9: W-TCTP policy DCDT over (#VIPs, VIP weight)",
    "fig10": "reproduce Figure 10: W-TCTP policy SD over (#VIPs, VIP weight)",
    "energy": "extension: W-TCTP vs RW-TCTP battery lifetime and deliveries",
    "ablation-init": "ablation: what B-TCTP's location initialisation contributes",
    "ablation-tsp": "ablation: tour-construction heuristics (hull/NN/Christofides/2-opt)",
    "ablation-mules": "ablation: visiting-interval scaling with the number of mules",
}


def _add_scenario_arguments(parser: argparse.ArgumentParser) -> None:
    parser.add_argument("--scenario", default=None, metavar="FAMILY[:k=v,...]",
                        help="scenario family spec, e.g. 'ring:num_targets=24,num_vips=2' "
                             "(see the 'scenarios' command); overrides the legacy "
                             "--targets/--mules/--clustered flags")
    parser.add_argument("--targets", type=int, default=20)
    parser.add_argument("--mules", type=int, default=4)
    parser.add_argument("--vips", type=int, default=0)
    parser.add_argument("--vip-weight", type=int, default=2)
    parser.add_argument("--policy", default="balanced", choices=["shortest", "balanced"])
    parser.add_argument("--seed", type=int, default=0)
    parser.add_argument("--horizon", type=float, default=60_000.0)
    parser.add_argument("--battery", type=float, default=None)
    parser.add_argument("--recharge", action="store_true", help="place a recharge station")
    parser.add_argument("--clustered", action="store_true", help="use disconnected target clusters")


def _add_store_arguments(parser: argparse.ArgumentParser) -> None:
    """Resumable-execution flags shared by the run/sweep subcommands."""
    parser.add_argument("--store", nargs="?", const=True, default=None, metavar="DIR",
                        help="resume from / write back to a persistent result store; "
                             "with no DIR, uses $REPRO_STORE_DIR (or the user cache "
                             "directory)")
    parser.add_argument("--no-store", action="store_true",
                        help="never touch a result store, even when REPRO_STORE_DIR is set")
    parser.add_argument("--progress", action="store_true",
                        help="print done/total progress (and store hits/misses) to stderr")


def build_parser() -> argparse.ArgumentParser:
    """Construct the argument parser (exposed separately for testing)."""
    from repro import __version__

    parser = argparse.ArgumentParser(
        prog="repro-patrol",
        description="Reproduction of the ICPP 2011 data-mule patrolling paper "
                    "(B-TCTP / W-TCTP / RW-TCTP).",
    )
    parser.add_argument("--version", action="version",
                        version=f"%(prog)s {__version__}")
    sub = parser.add_subparsers(dest="command", required=True)

    sim = sub.add_parser("simulate", help="run one strategy on one generated scenario")
    sim.add_argument("--strategy", default="b-tctp", choices=available_strategies())
    sim.add_argument("--param", action="append", metavar="KEY=VALUE",
                     help="extra strategy parameter (repeatable), e.g. "
                          "--param tour=cluster-first with --strategy pipeline")
    _add_scenario_arguments(sim)
    sim.add_argument("--json", action="store_true", help="emit machine-readable JSON")

    run = sub.add_parser("run", help="execute a declarative RunSpec / CampaignSpec JSON file")
    run.add_argument("spec", help="path to the spec file (see repro.runner.load_spec)")
    run.add_argument("--workers", type=int, default=None,
                     help="fan campaign cells out over this many processes")
    run.add_argument("--json", action="store_true", help="emit the tidy records as JSON")
    run.add_argument("--out", default=None, help="also save records (+ spec) to this JSON file")
    run.add_argument("--csv", default=None, help="also export the scalar columns to this CSV file")
    _add_store_arguments(run)

    sweep = sub.add_parser(
        "sweep", help="cross strategies with seeded replications and run them as a campaign"
    )
    sweep.add_argument("--strategies", default="b-tctp",
                       help="comma-separated registry names, e.g. 'b-tctp,sweep,chb'")
    sweep.add_argument("--param", action="append", metavar="KEY=VALUE",
                       help="extra shared strategy parameter (repeatable); each "
                            "strategy keeps the subset it declares")
    sweep.add_argument("--replications", type=int, default=4)
    sweep.add_argument("--workers", type=int, default=None)
    _add_scenario_arguments(sweep)
    sweep.add_argument("--json", action="store_true", help="emit the tidy records as JSON")
    sweep.add_argument("--out", default=None, help="also save records (+ spec) to this JSON file")
    sweep.add_argument("--csv", default=None, help="also export the records to this CSV file")
    sweep.add_argument("--spec-out", default=None,
                       help="write the generated CampaignSpec to this JSON file and exit")
    _add_store_arguments(sweep)

    for name in _FIGURE_RUNNERS:
        p = sub.add_parser(name, help=_FIGURE_HELP[name])
        p.add_argument("--quick", action="store_true",
                       help="small replication count / short horizon (for smoke runs)")
        p.add_argument("--replications", type=int, default=None)
        p.add_argument("--horizon", type=float, default=None)
        p.add_argument("--workers", type=int, default=None,
                       help="fan replication cells out over this many processes")
        p.add_argument("--json", action="store_true", help="emit machine-readable JSON")

    lst = sub.add_parser(
        "strategies",
        help="list the registered strategies (aliases, parameters, pipeline composition)",
    )
    lst.add_argument("--json", action="store_true")

    fams = sub.add_parser(
        "scenarios", help="list the registered scenario families and their parameters"
    )
    fams.add_argument("--json", action="store_true")

    trans = sub.add_parser(
        "transports", help="list the registered serve-daemon transports and their options"
    )
    trans.add_argument("--json", action="store_true")

    serve = sub.add_parser(
        "serve",
        help="run the simulation service daemon: accept RunSpec/CampaignSpec "
             "over a transport, coalesce duplicate in-flight work, stream "
             "NDJSON results (see docs/SERVICE.md)",
    )
    serve.add_argument("--transport", default="http",
                       help="registered transport name (see the 'transports' "
                            "command); default: http")
    serve.add_argument("--host", default="127.0.0.1",
                       help="interface to bind (http transport); 0.0.0.0 exposes "
                            "the daemon beyond loopback")
    serve.add_argument("--port", type=int, default=8422,
                       help="TCP port (http transport); 0 picks an ephemeral port")
    serve.add_argument("--workers", type=int, default=2,
                       help="worker threads executing cells (default: 2)")
    serve.add_argument("--queue-limit", type=int, default=64,
                       help="max admitted-but-unfinished cells; a request whose "
                            "new cells do not fit is rejected with 429 + "
                            "Retry-After (default: 64)")
    serve.add_argument("--store", nargs="?", const=True, default=None, metavar="DIR",
                       help="serve cached records from / write results to this "
                            "result store; with no DIR, uses $REPRO_STORE_DIR "
                            "(or the user cache directory)")
    serve.add_argument("--no-store", action="store_true",
                       help="serve without a result store (in-flight coalescing "
                            "still deduplicates concurrent identical requests)")

    shard = sub.add_parser(
        "shard",
        help="split a campaign into disjoint resumable shards and run them "
             "(shard -> run anywhere -> store merge; see docs/SHARDING.md)",
    )
    shard.add_argument("action", choices=["create", "run"],
                       help="create: write a shard manifest from a campaign spec; "
                            "run: execute one shard of a manifest")
    shard.add_argument("target", metavar="FILE",
                       help="campaign spec JSON (create) or shard manifest JSON (run)")
    shard.add_argument("--num-shards", type=int, default=None, metavar="N",
                       help="create: how many disjoint shards to split into")
    shard.add_argument("--out", "-o", default=None, metavar="FILE",
                       help="create: where to write the manifest (default: stdout)")
    shard.add_argument("--index", type=int, default=None, metavar="I",
                       help="run: which shard of the manifest to execute")
    shard.add_argument("--workers", type=int, default=None,
                       help="run: execute the shard's cells over N worker processes")
    shard.add_argument("--json", action="store_true",
                       help="run: emit the shard's records as JSON")
    _add_store_arguments(shard)

    store = sub.add_parser(
        "store", help="inspect / maintain the persistent result store (see docs/STORE.md)"
    )
    store.add_argument("action", choices=["list", "stats", "gc", "clear", "export", "merge"],
                       help="list entries, show stats, sweep stale entries, drop "
                            "everything, export stored records to CSV/JSON, or "
                            "merge shard stores into this one")
    store.add_argument("--dir", default=None, metavar="DIR",
                       help="store directory (default: $REPRO_STORE_DIR)")
    store.add_argument("--strategy", default=None,
                       help="list/export: filter by strategy registry name")
    store.add_argument("--family", default=None, help="list/export: filter by scenario family")
    store.add_argument("--where", action="append", metavar="KEY=VALUE",
                       help="list/export: extra record/spec filter (repeatable): key=value, "
                            "key=lo..hi (inclusive range) or key=a|b|c (membership)")
    store.add_argument("--limit", type=int, default=None,
                       help="list/export: cap the number of entries")
    store.add_argument("--max-age-days", type=float, default=None,
                       help="gc: also remove entries older than this many days")
    store.add_argument("--keep-other-versions", action="store_true",
                       help="gc: keep entries written by other library versions")
    store.add_argument("--out", default=None, help="export: write records to this JSON file")
    store.add_argument("--csv", default=None, help="export: write records to this CSV file")
    store.add_argument("--from-dir", dest="from_dir", nargs="+", default=None, metavar="DIR",
                       help="merge: shard store directories to union into the "
                            "--dir store (duplicates are benign; conflicting "
                            "records for one fingerprint abort the merge)")
    store.add_argument("--json", action="store_true", help="emit machine-readable JSON")

    check = sub.add_parser(
        "check",
        help="run the static self-checking analyzers (registry contracts, "
             "determinism, fingerprint coverage, schema drift; see docs/ANALYSIS.md)",
    )
    check.add_argument("paths", nargs="*", metavar="PATH",
                       help="lint only these files/directories (determinism "
                            "rules only); default: the whole tree, all analyzers")
    check.add_argument("--strict", action="store_true",
                       help="exit nonzero when any finding survives "
                            "suppressions and the baseline (the CI gate)")
    check.add_argument("--only", default=None, metavar="RULES",
                       help="comma-separated rule ids to run (see --rules)")
    check.add_argument("--baseline", default=None, metavar="FILE",
                       help="baseline file of tolerated findings "
                            "(default: .repro-analysis-baseline.json when present)")
    check.add_argument("--write-baseline", action="store_true",
                       help="write the current findings to the baseline file and exit")
    check.add_argument("--write-golden", action="store_true",
                       help="re-record the golden spec schemas and exit")
    check.add_argument("--rules", action="store_true",
                       help="list the rule catalog and exit")
    check.add_argument("--json", action="store_true",
                       help="emit the machine-readable report (the CI artifact format)")

    report = sub.add_parser(
        "report",
        help="aggregate stored records across past campaigns (group means per strategy/...)",
    )
    report.add_argument("--dir", default=None, metavar="DIR",
                        help="store directory (default: $REPRO_STORE_DIR)")
    report.add_argument("--strategy", default=None, help="filter by strategy registry name")
    report.add_argument("--family", default=None, help="filter by scenario family")
    report.add_argument("--where", action="append", metavar="KEY=VALUE",
                        help="extra record/spec filter (repeatable): key=value, "
                             "key=lo..hi or key=a|b|c")
    report.add_argument("--metrics", default="average_dcdt,average_sd",
                        help="comma-separated record columns to average")
    report.add_argument("--by", default="strategy",
                        help="comma-separated grouping columns (default: strategy)")
    report.add_argument("--limit", type=int, default=None, help="cap the number of entries")
    report.add_argument("--csv", default=None, help="also write the summary table to this CSV file")
    report.add_argument("--json", action="store_true", help="emit machine-readable JSON")
    report.add_argument("--timing", action="append", metavar="CAMPAIGN_JSON",
                        help="instead of store aggregation: show the plan-time vs "
                             "sim-time wall-clock split of saved campaign artifacts "
                             "(repeatable; reads the metadata.timing block that "
                             "Campaign.run records)")
    report.add_argument("--dispatch", action="append", metavar="CAMPAIGN_JSON",
                        help="instead of store aggregation: show the per-reason "
                             "fastpath/batchpath dispatch outcomes of saved campaign "
                             "artifacts (repeatable; reads the metadata.obs block "
                             "recorded when observability is enabled)")

    obs = sub.add_parser(
        "obs",
        help="inspect observability artifacts: campaign metadata.obs summaries "
             "and span logs (see docs/OBSERVABILITY.md)",
    )
    obs.add_argument("artifact", metavar="FILE",
                     help="a campaign artifact JSON (from run/sweep --out with "
                          "observability on) or a .spans.jsonl span log")
    obs.add_argument("--trace", default=None, metavar="OUT.json",
                     help="span-log input only: also write a Chrome Trace Event "
                          "JSON file (load it at https://ui.perfetto.dev)")
    obs.add_argument("--json", action="store_true", help="emit machine-readable JSON")
    return parser


def _settings_from_args(args: argparse.Namespace) -> ExperimentSettings:
    settings = ExperimentSettings.quick() if args.quick else ExperimentSettings()
    overrides = {}
    if args.replications is not None:
        overrides["replications"] = args.replications
    if args.horizon is not None:
        overrides["horizon"] = args.horizon
    if args.workers is not None:
        overrides["max_workers"] = args.workers
    if overrides:
        settings = dataclasses.replace(settings, **overrides)
    return settings


def _strategy_needs_recharge(name: str, extra_params: "dict | None" = None) -> bool:
    """Whether the strategy's pipeline composition weaves in a recharge station.

    ``extra_params`` are explicit ``--param`` overrides: a ``pipeline``
    strategy invoked with ``--param augment=recharge`` needs a station even
    though its *default* composition does not.
    """
    augment_override = (extra_params or {}).get("augment")
    if augment_override is not None or "augment" in (extra_params or {}):
        try:
            from repro.planning.spec import StageSpec

            spec = StageSpec.coerce(augment_override)
            return canonical_stage_backend("augment", spec.name) == "recharge"
        except (ValueError, TypeError):
            return False  # malformed overrides get their own error downstream
    try:
        info = strategy_info(name)
    except ValueError:
        return False  # unknown names get their own, clearer error downstream
    if info.composition is not None:
        try:
            return canonical_stage_backend("augment", info.composition.augment.name) == "recharge"
        except ValueError:  # pragma: no cover - composition with custom backend
            return False
    return name.replace("_", "-").startswith("rw")


def _scenario_config_from_args(args: argparse.Namespace) -> ScenarioConfig:
    try:
        extra = _extra_strategy_params(args)
    except ValueError:
        extra = {}  # malformed --param entries surface from the main path
    needs_recharge = args.recharge or any(
        _strategy_needs_recharge(s, extra) for s in _strategies_from_args(args)
    )
    return ScenarioConfig(
        num_targets=args.targets,
        num_mules=args.mules,
        num_vips=args.vips,
        vip_weight=args.vip_weight,
        distribution="clustered" if args.clustered else "uniform",
        mule_battery=args.battery if args.battery is not None else (200_000.0 if needs_recharge else None),
        with_recharge_station=needs_recharge,
        mule_placement="random",
    )


def _parse_scenario_option(raw: str) -> ScenarioSpec:
    """Parse ``--scenario FAMILY[:key=val,...]`` into a validated spec."""
    family, _, rest = raw.partition(":")
    family = family.strip()
    if not family:
        raise ValueError(
            "--scenario needs a family name, e.g. 'ring' or 'ring:num_targets=24'"
        )
    params = {}
    for item in split_stage_params(rest):
        key, sep, value = item.partition("=")
        if not sep or not key.strip():
            raise ValueError(
                f"--scenario parameter {item!r} must look like key=value"
            )
        params[key.strip()] = parse_param_value(value.strip())
    return ScenarioSpec(family=family, params=params).validate()


def _extra_strategy_params(args: argparse.Namespace) -> dict:
    """Parse repeated ``--param KEY=VALUE`` flags into a params dict."""
    params: dict = {}
    for item in getattr(args, "param", None) or []:
        key, sep, value = item.partition("=")
        if not sep or not key.strip():
            raise ValueError(f"--param {item!r} must look like key=value")
        params[key.strip()] = parse_param_value(value.strip())
    return params


def _scenario_spec_from_args(args: argparse.Namespace) -> ScenarioSpec:
    """The scenario of a simulate/sweep invocation (``--scenario`` wins)."""
    if getattr(args, "scenario", None):
        return _parse_scenario_option(args.scenario)
    return spec_from_scenario_config(_scenario_config_from_args(args))


def _strategies_from_args(args: argparse.Namespace) -> list[str]:
    raw = getattr(args, "strategies", None)
    if raw is None:  # not the sweep command; an empty --strategies must NOT fall through
        raw = getattr(args, "strategy", "b-tctp")
    return [s.strip() for s in raw.split(",") if s.strip()]


def _strategy_kwargs(strategy: str, args: argparse.Namespace) -> dict:
    """CLI flags a strategy declares it accepts — no per-strategy special-casing."""
    return filter_strategy_kwargs(strategy, {"policy": args.policy, "seed": args.seed})


def _run_simulate(args: argparse.Namespace) -> int:
    try:
        kwargs = _strategy_kwargs(args.strategy, args)
        # Explicit --param entries are NOT filtered: a typo must surface.
        kwargs.update(_extra_strategy_params(args))
        planner = get_strategy(args.strategy, **kwargs)
        spec = _scenario_spec_from_args(args)
        scenario = spec.build(args.seed)
        # Plan-time failures (missing recharge station, incompatible stage
        # combinations, ...) are configuration errors, not bugs: clean exit 2.
        plan = planner.plan(scenario)
    except (ValueError, TypeError) as exc:
        print(f"error: {exc}", file=sys.stderr)
        return 2
    result = PatrolSimulator(scenario, plan, SimulationConfig(horizon=args.horizon)).run()

    stats = interval_statistics(result)
    payload = {
        "strategy": plan.strategy,
        "scenario": scenario.name,
        "num_targets": scenario.num_targets,
        "num_mules": scenario.num_mules,
        "average_dcdt": average_dcdt(result),
        "average_sd": average_sd(result),
        "max_visiting_interval": max_visiting_interval(result),
        "delivered_data": result.total_delivered_data(),
        "total_distance": result.total_distance(),
        "dead_mules": result.dead_mules(),
        **{f"interval_{k}": v for k, v in stats.items()},
    }
    if args.json:
        print(json.dumps(payload, indent=2, sort_keys=True))
    else:
        rows = [[k, v] for k, v in payload.items()]
        print_report(format_table(["metric", "value"], rows,
                                  title=f"Simulation of {plan.strategy} on {scenario.name}"))
    return 0


def _cli_store_arg(args: argparse.Namespace):
    """The ``store=`` value of a run/sweep invocation (``--no-store`` wins)."""
    if getattr(args, "no_store", False):
        return False
    return getattr(args, "store", None)


def _progress_callback(args: argparse.Namespace):
    """``progress(done, total)`` printer for ``--progress`` (stderr), else None."""
    if not getattr(args, "progress", False):
        return None

    def _print_progress(done: int, total: int) -> None:
        print(f"progress: {done}/{total}", file=sys.stderr)

    return _print_progress


def _report_store_counts(result: CampaignResult, args: argparse.Namespace) -> None:
    info = result.metadata.get("store")
    if info and getattr(args, "progress", False):
        print(f"store: {info['hits']} hits, {info['misses']} misses ({info['root']})",
              file=sys.stderr)
    _report_timing_counts(result, args)


def _report_timing_counts(result: CampaignResult, args: argparse.Namespace) -> None:
    """``--progress`` stderr line for the plan-time vs sim-time split."""
    info = result.metadata.get("timing")
    if info and getattr(args, "progress", False) and info.get("cells_timed"):
        print(
            f"timing: planning {info['planning_s']:.3f}s, "
            f"simulation {info['simulation_s']:.3f}s "
            f"({info['cells_timed']} cells timed)",
            file=sys.stderr,
        )


def _write_span_artifacts(result: CampaignResult, out: str) -> None:
    """``<out stem>.spans.jsonl`` + ``<out stem>.trace.json`` next to ``--out``.

    Only written when the campaign recorded an ``obs`` metadata block (the
    registry was on) and spans survived in the process registry — i.e. a
    plain run without ``REPRO_OBS=1`` / ``sim.obs`` writes nothing extra.
    """
    from pathlib import Path

    from repro import obs as _obs_pkg

    if not result.metadata.get("obs"):
        return
    spans = _obs_pkg.spans()
    if not spans:
        return
    stem = Path(out).with_suffix("")
    log_path = stem.with_suffix(".spans.jsonl")
    trace_path = stem.with_suffix(".trace.json")
    _obs_pkg.write_span_log(log_path, spans)
    _obs_pkg.write_trace(trace_path, spans)
    print(f"obs: wrote {len(spans)} spans to {log_path} and a Chrome trace "
          f"to {trace_path}", file=sys.stderr)


def _emit_campaign_result(result: CampaignResult, args: argparse.Namespace, title: str) -> None:
    if args.out:
        result.save_json(args.out)
        _write_span_artifacts(result, args.out)
    if args.csv:
        result.save_csv(args.csv)
    if args.json:
        print(result.to_json())
        return
    headers, rows = result.to_rows(scalar_only=True)
    print_report(format_table(headers, rows, title=title))
    summary = result.group_mean("average_dcdt", by="strategy")
    sd = result.group_mean("average_sd", by="strategy")
    print_report(format_table(
        ["strategy", "mean DCDT (s)", "mean SD (s)"],
        [[name, summary[name], sd[name]] for name in sorted(summary)],
        title="Summary over replications",
    ))


def _run_spec_file(args: argparse.Namespace) -> int:
    try:
        spec = load_spec(args.spec)
        if isinstance(spec, RunSpec):
            spec.validate()  # a typo'd param in a hand-written spec must surface
        campaign = Campaign(spec, max_workers=args.workers)
        campaign.cells()  # spec-shaped failures (bad axes/params) get the clean error
    except (FileNotFoundError, json.JSONDecodeError, ValueError, TypeError) as exc:
        print(f"error: {exc}", file=sys.stderr)
        return 2
    # Execution errors are bugs, not bad specs — let them traceback.
    result = campaign.run(progress=_progress_callback(args), store=_cli_store_arg(args))
    _report_store_counts(result, args)
    kind = "campaign" if isinstance(spec, CampaignSpec) else "run"
    _emit_campaign_result(result, args, title=f"Records of {kind} spec {args.spec}")
    return 0


def _run_sweep(args: argparse.Namespace) -> int:
    strategies = _strategies_from_args(args)
    if not strategies:
        print("error: --strategies must name at least one strategy", file=sys.stderr)
        return 2
    try:
        for strategy in strategies:
            strategy_params(strategy)  # fail fast on unknown names, before any simulation
    except ValueError as exc:
        print(f"error: {exc}", file=sys.stderr)
        return 2
    shared = {"policy": args.policy} if any(
        "policy" in strategy_params(s) for s in strategies
    ) else {}
    try:
        shared.update(_extra_strategy_params(args))
        base = RunSpec(
            strategy=strategies[0],
            scenario=_scenario_spec_from_args(args),
            params=shared,
            sim=SimulationConfig(horizon=args.horizon),
            seed=args.seed,
        )
        spec = CampaignSpec(
            base=base,
            grid={"strategy": strategies},
            replications=args.replications,
        )
        campaign = Campaign(spec, max_workers=args.workers)
        campaign.cells()  # typo'd scenario family/params fail before simulating
    except (ValueError, TypeError) as exc:
        print(f"error: {exc}", file=sys.stderr)
        return 2
    if args.spec_out:
        from pathlib import Path

        Path(args.spec_out).write_text(spec.to_json() + "\n")
        print(f"wrote campaign spec to {args.spec_out}")
        return 0
    result = campaign.run(progress=_progress_callback(args), store=_cli_store_arg(args))
    _report_store_counts(result, args)
    _emit_campaign_result(
        result, args,
        title=f"Sweep of {', '.join(strategies)} x {args.replications} replications",
    )
    return 0


def main(argv: Sequence[str] | None = None) -> int:
    """CLI entry point; returns a process exit code."""
    parser = build_parser()
    args = parser.parse_args(argv)

    if args.command == "simulate":
        return _run_simulate(args)
    if args.command == "run":
        return _run_spec_file(args)
    if args.command == "sweep":
        return _run_sweep(args)
    if args.command == "strategies":
        return _run_strategies_listing(args)
    if args.command == "scenarios":
        return _run_scenarios_listing(args)
    if args.command == "transports":
        return _run_transports_listing(args)
    if args.command == "serve":
        return _run_serve(args)
    if args.command == "shard":
        return _run_shard_command(args)
    if args.command == "store":
        return _run_store_command(args)
    if args.command == "report":
        return _run_report_command(args)
    if args.command == "obs":
        return _run_obs_command(args)
    if args.command == "check":
        return _run_check_command(args)
    if args.command in _FIGURE_RUNNERS:
        settings = _settings_from_args(args)
        data = _FIGURE_RUNNERS[args.command](settings)
        if getattr(args, "json", False):
            print(json.dumps(_jsonable(data), indent=2, sort_keys=True))
        return 0
    parser.error(f"unknown command {args.command!r}")  # pragma: no cover
    return 2  # pragma: no cover


def _run_strategies_listing(args: argparse.Namespace) -> int:
    """List the registered strategies: aliases, params, pipeline composition."""
    strategies = []
    for name in available_strategies(include_aliases=False):
        info = strategy_info(name)
        composition = info.composition
        strategies.append({
            "name": info.name,
            "aliases": list(info.aliases),
            "description": info.description,
            "params": sorted(info.params),
            "composition": composition.to_dict() if composition is not None else None,
        })
    if args.json:
        print(json.dumps({"strategies": strategies}, indent=2, default=str))
        return 0
    rows = []
    for entry in strategies:
        name = entry["name"] + (
            f" ({', '.join(entry['aliases'])})" if entry["aliases"] else ""
        )
        composition = entry["composition"]
        if composition is not None:
            stages = " | ".join(
                c if isinstance(c, str) else c["name"]
                for c in (composition[k] for k in ("tour", "augment", "order", "init"))
            )
        else:
            stages = "-"
        rows.append([name, entry["description"],
                     ", ".join(entry["params"]) or "(none)", stages])
    print_report(format_table(
        ["strategy (aliases)", "description", "parameters",
         "pipeline (tour | augment | order | init)"],
        rows, title="Registered strategies",
    ))
    return 0


def _run_scenarios_listing(args: argparse.Namespace) -> int:
    """List the registered scenario families (mirror of the strategy listing)."""
    families = []
    for name in available_scenario_families():
        info = scenario_family_info(name)
        families.append({
            "name": info.name,
            "aliases": list(info.aliases),
            "description": info.description,
            "params": [
                {
                    "name": p.name,
                    "kind": p.kind,
                    **({} if p.default is REQUIRED else {"default": p.default}),
                    "required": p.required,
                }
                for p in info.params.values()
            ],
        })
    if args.json:
        print(json.dumps({"families": families}, indent=2, default=str))
        return 0
    rows = []
    for fam in families:
        signature = ", ".join(
            p["name"] if p["required"] else f"{p['name']}={p['default']}"
            for p in fam["params"]
        )
        name = fam["name"] + (f" ({', '.join(fam['aliases'])})" if fam["aliases"] else "")
        rows.append([name, fam["description"], signature or "(none)"])
    print_report(format_table(
        ["family (aliases)", "description", "parameters"], rows,
        title="Registered scenario families",
    ))
    return 0


def _run_transports_listing(args: argparse.Namespace) -> int:
    """List the registered serve-daemon transports (mirror of 'scenarios')."""
    # Lazy import: only the service subcommands need the service package.
    from repro.service import all_transport_infos

    transports = []
    for name, info in sorted(all_transport_infos().items()):
        transports.append({
            "name": name,
            "aliases": list(info.aliases),
            "description": info.description,
            "options": [
                {
                    "name": p.name,
                    "kind": p.kind,
                    **({"default": p.default} if not p.required else {}),
                    "required": p.required,
                }
                for p in info.params.values()
            ],
        })
    if args.json:
        print(json.dumps({"transports": transports}, indent=2, default=str))
        return 0
    rows = []
    for entry in transports:
        signature = ", ".join(
            o["name"] if o["required"] else f"{o['name']}={o['default']}"
            for o in entry["options"]
        )
        name = entry["name"] + (
            f" ({', '.join(entry['aliases'])})" if entry["aliases"] else ""
        )
        rows.append([name, entry["description"], signature or "(none)"])
    print_report(format_table(
        ["transport (aliases)", "description", "options"], rows,
        title="Registered serve transports",
    ))
    return 0


def _run_serve(args: argparse.Namespace) -> int:
    """Run the simulation service daemon until interrupted."""
    from repro.service import ServiceScheduler, filter_transport_kwargs, get_transport

    try:
        scheduler = ServiceScheduler(
            store=_cli_store_arg(args),
            workers=args.workers,
            queue_limit=args.queue_limit,
        )
        # One shared flag set; each transport keeps the options it declares
        # (stdio takes neither --host nor --port).
        options = filter_transport_kwargs(
            args.transport, {"host": args.host, "port": args.port}
        )
        transport = get_transport(args.transport, scheduler, **options)
    except (ValueError, TypeError) as exc:
        print(f"error: {exc}", file=sys.stderr)
        return 2
    store = scheduler.store
    backing = "no result store (coalescing only)" if store is None \
        else f"result store at {store.root}"
    endpoint = getattr(transport, "url", f"transport {args.transport!r}")
    print(f"serving on {endpoint}: {args.workers} worker(s), "
          f"queue limit {args.queue_limit}, {backing}", file=sys.stderr)
    try:
        transport.serve_forever()
    except KeyboardInterrupt:  # pragma: no cover - interactive shutdown
        scheduler.shutdown(wait=True)
    return 0


def _run_shard_command(args: argparse.Namespace) -> int:
    """Split a campaign into shards (create) or execute one shard (run)."""
    from repro.runner.sharding import load_manifest, make_manifest, run_shard, write_manifest

    if args.action == "create":
        if args.num_shards is None:
            print("error: shard create needs --num-shards N", file=sys.stderr)
            return 2
        try:
            spec = load_spec(args.target)
            if args.out:
                write_manifest(spec, args.num_shards, args.out)
                manifest = load_manifest(args.out)
            else:
                manifest = make_manifest(spec, args.num_shards)
                print(json.dumps(manifest, indent=2, sort_keys=True))
        except (FileNotFoundError, json.JSONDecodeError, ValueError, TypeError) as exc:
            print(f"error: {exc}", file=sys.stderr)
            return 2
        sizes = [len(s["cells"]) for s in manifest["shards"]]
        where = args.out if args.out else "stdout"
        print(f"shard: split {manifest['num_cells']} cells into "
              f"{manifest['num_shards']} shards ({min(sizes)}-{max(sizes)} "
              f"cells each) -> {where}", file=sys.stderr if not args.out else sys.stdout)
        return 0

    # run
    if args.index is None:
        print("error: shard run needs --index I", file=sys.stderr)
        return 2
    try:
        manifest = load_manifest(args.target)
    except (FileNotFoundError, json.JSONDecodeError, ValueError, TypeError) as exc:
        print(f"error: {exc}", file=sys.stderr)
        return 2
    if not 0 <= args.index < manifest["num_shards"]:
        print(f"error: shard index {args.index} out of range: manifest has "
              f"{manifest['num_shards']} shards", file=sys.stderr)
        return 2
    result = run_shard(
        manifest, args.index,
        store=_cli_store_arg(args), max_workers=args.workers,
        progress=_progress_callback(args),
    )
    _report_store_counts(result, args)
    if args.json:
        print(result.to_json())
    else:
        shard_info = result.metadata["shard"]
        print(f"shard {shard_info['index']}/{shard_info['num_shards']}: "
              f"{len(result)} records")
    return 0


def _open_store(args: argparse.Namespace) -> "ResultStore | None":
    """The store a ``store``/``report`` invocation addresses (``--dir`` wins)."""
    if args.dir:
        return ResultStore(args.dir)
    store = default_store()
    if store is None:
        print("error: no result store configured: pass --dir DIR or set REPRO_STORE_DIR",
              file=sys.stderr)
    return store


def _parse_where(args: argparse.Namespace) -> dict:
    filters = {}
    for item in getattr(args, "where", None) or []:
        key, condition = parse_filter_expression(item)
        filters[key] = condition
    return filters


# Which store-command flags each action consumes; anything else given on the
# command line is a mistake that must not be silently ignored ("store gc
# --strategy chb" scoping a deletion that gc cannot scope).
_STORE_ACTION_FLAGS = {
    "list": ("strategy", "family", "where", "limit"),
    "stats": (),
    "gc": ("max_age_days", "keep_other_versions"),
    "clear": (),
    "export": ("strategy", "family", "where", "limit", "out", "csv"),
    "merge": ("from_dir",),
}
_STORE_FLAG_DEFAULTS = {
    "strategy": None, "family": None, "where": None, "limit": None,
    "max_age_days": None, "keep_other_versions": False, "out": None, "csv": None,
    "from_dir": None,
}


def _reject_unused_store_flags(args: argparse.Namespace) -> "str | None":
    """The first flag the chosen store action would silently ignore, if any."""
    allowed = _STORE_ACTION_FLAGS[args.action]
    for flag, default in _STORE_FLAG_DEFAULTS.items():
        if flag not in allowed and getattr(args, flag) != default:
            return "--" + flag.replace("_", "-")
    return None


def _run_store_command(args: argparse.Namespace) -> int:
    """Maintain the result store: list / stats / gc / clear / export."""
    unused = _reject_unused_store_flags(args)
    if unused is not None:
        print(f"error: {unused} does not apply to 'store {args.action}'", file=sys.stderr)
        return 2
    store = _open_store(args)
    if store is None:
        return 2

    if args.action == "stats":
        # The same document the serve daemon's /stats endpoint embeds — one
        # formatter, two surfaces (see repro.store.report.store_stats_payload).
        stats = store_stats_payload(store)
        if args.json:
            print(json.dumps(stats, indent=2, sort_keys=True))
        else:
            rows = [[k, stats[k]] for k in
                    ("root", "entries", "payload_bytes")]
            rows += [[f"entries @ {v}", n] for v, n in sorted(stats["library_versions"].items())]
            print_report(format_table(["stat", "value"], rows, title="Result store"))
        return 0

    if args.action == "list":
        try:
            filters = _parse_where(args)
        except ValueError as exc:
            print(f"error: {exc}", file=sys.stderr)
            return 2
        if filters:  # content filters need the payloads; plain listings do not
            entries = store.query(strategy=args.strategy, family=args.family,
                                  limit=args.limit, where=filters)
        else:
            entries = store.entries(strategy=args.strategy, family=args.family,
                                    limit=args.limit)
        if args.json:
            payload = [
                {"fingerprint": e.fingerprint, "strategy": e.strategy, "family": e.family,
                 "seed": e.seed, "created_at": e.created_at,
                 "library_version": e.library_version}
                for e in entries
            ]
            print(json.dumps({"entries": payload}, indent=2, sort_keys=True))
        else:
            headers, rows = entry_rows(entries)
            print_report(format_table(headers, rows,
                                      title=f"Stored runs ({len(entries)}) in {store.root}"))
        return 0

    if args.action == "gc":
        removed = store.gc(max_age_days=args.max_age_days,
                           keep_other_versions=args.keep_other_versions)
        print(f"gc: removed {removed} entries from {store.root}")
        return 0

    if args.action == "clear":
        removed = store.clear()
        print(f"clear: removed {removed} entries from {store.root}")
        return 0

    if args.action == "merge":
        if not args.from_dir:
            print("error: store merge needs --from-dir DIR [DIR ...]", file=sys.stderr)
            return 2
        totals = {"merged": 0, "duplicates": 0}
        for source in args.from_dir:
            try:
                counts = store.merge_from(source)
            except MergeConflictError as exc:
                print(f"error: {exc}", file=sys.stderr)
                return 1
            totals["merged"] += counts["merged"]
            totals["duplicates"] += counts["duplicates"]
            print(f"merge: {source}: {counts['merged']} merged, "
                  f"{counts['duplicates']} duplicates")
        if args.json:
            print(json.dumps({"root": str(store.root), **totals}, indent=2, sort_keys=True))
        else:
            print(f"merged {totals['merged']} entries "
                  f"({totals['duplicates']} duplicates) into {store.root}")
        return 0

    # export
    try:
        filters = _parse_where(args)
    except ValueError as exc:
        print(f"error: {exc}", file=sys.stderr)
        return 2
    if not args.out and not args.csv:
        print("error: store export needs --out FILE (JSON) and/or --csv FILE", file=sys.stderr)
        return 2
    entries = store.query(strategy=args.strategy, family=args.family,
                          limit=args.limit, where=filters)
    if args.out:
        export_records_json(entries, args.out)
        print(f"wrote {len(entries)} records to {args.out}")
    if args.csv:
        export_records_csv(entries, args.csv)
        print(f"wrote {len(entries)} records to {args.csv}")
    return 0


def _run_check_command(args: argparse.Namespace) -> int:
    """Run the static self-checking analyzers (see docs/ANALYSIS.md)."""
    # Lazy import: the analyzers pull in ast/inspect machinery no other
    # subcommand needs.
    from repro.analysis.check import render_json, render_text, run_check
    from repro.analysis.rules import RULES

    if args.rules:
        if args.json:
            print(json.dumps({"rules": [
                {"id": r.id, "analyzer": r.analyzer, "summary": r.summary}
                for r in RULES
            ]}, indent=2))
        else:
            rows = [[r.id, r.analyzer, r.summary] for r in RULES]
            print_report(format_table(["rule id", "analyzer", "summary"], rows,
                                      title="Analysis rule catalog"))
        return 0

    if args.write_golden:
        from repro.analysis.schema_drift import write_golden

        golden_file = write_golden()
        print(f"wrote golden spec schemas to {golden_file}")
        return 0

    only = None
    if args.only:
        only = [item.strip() for item in args.only.split(",") if item.strip()]
    try:
        # When re-recording the baseline, the old one (which may not even
        # exist yet) must not filter the findings being recorded.
        baseline = None if args.write_baseline else args.baseline
        report = run_check(paths=args.paths or None, only=only, baseline=baseline)
    except (ValueError, FileNotFoundError) as exc:
        print(f"error: {exc}", file=sys.stderr)
        return 2

    if args.write_baseline:
        from repro.analysis.findings import BASELINE_DEFAULT, write_baseline

        baseline_path = args.baseline or BASELINE_DEFAULT
        write_baseline(baseline_path, report.findings)
        print(f"wrote {len(report.findings)} finding(s) to {baseline_path}")
        return 0

    print(render_json(report) if args.json else render_text(report))
    if args.strict and not report.ok:
        return 1
    return 0


def _report_timing_split(paths: "list[str]", *, as_json: bool) -> int:
    """Plan-time vs sim-time split across saved campaign artifacts."""
    from pathlib import Path

    rows = []
    for path in paths:
        try:
            payload = json.loads(Path(path).read_text())
        except (OSError, json.JSONDecodeError) as exc:
            print(f"error: cannot read campaign artifact {path}: {exc}", file=sys.stderr)
            return 2
        metadata = payload.get("metadata", {}) or {}
        timing = metadata.get("timing") or {}
        planning = timing.get("planning_s")
        simulation = timing.get("simulation_s")
        timed = timing.get("cells_timed", 0)
        total = (planning or 0.0) + (simulation or 0.0)
        rows.append({
            "campaign": str(path),
            "cells": metadata.get("num_cells", len(payload.get("records", []))),
            "cells_timed": timed,
            "planning_s": planning,
            "simulation_s": simulation,
            "planning_share": (planning / total) if planning is not None and total else None,
        })
    if as_json:
        print(json.dumps({"campaigns": rows}, indent=2, sort_keys=True))
        return 0
    headers = ["campaign", "cells", "cells_timed", "planning_s", "simulation_s",
               "planning_share"]
    table = [
        [r["campaign"], r["cells"], r["cells_timed"],
         "" if r["planning_s"] is None else f"{r['planning_s']:.3f}",
         "" if r["simulation_s"] is None else f"{r['simulation_s']:.3f}",
         "" if r["planning_share"] is None else f"{r['planning_share']:.1%}"]
        for r in rows
    ]
    print_report(format_table(headers, table,
                              title=f"Plan vs sim wall-clock over {len(rows)} campaigns"))
    return 0


def _format_obs_labels(labels: "dict | None") -> str:
    return ",".join(f"{key}={value}" for key, value in sorted((labels or {}).items()))


def _dispatch_rows(path: str, obs_doc: dict) -> list[dict]:
    """Per-reason dispatch rows out of one artifact's ``metadata.obs`` block."""
    rows = []
    for counter in obs_doc.get("counters", []):
        if counter.get("name") not in ("sim_dispatch", "batch_dispatch"):
            continue
        labels = counter.get("labels") or {}
        rows.append({
            "campaign": str(path),
            "counter": counter["name"],
            "outcome": labels.get("outcome", ""),
            "reason": labels.get("reason", ""),
            "count": counter.get("value", 0),
        })
    rows.sort(key=lambda r: (r["counter"], r["outcome"], r["reason"]))
    return rows


def _report_dispatch_split(paths: "list[str]", *, as_json: bool) -> int:
    """Fastpath/batchpath dispatch outcomes across saved campaign artifacts.

    The ``run``/``sweep`` side of the story: with observability enabled
    (``REPRO_OBS=1`` or ``sim.obs``), ``Campaign.run`` embeds the registry
    snapshot in ``metadata.obs``; this renders its ``sim_dispatch`` /
    ``batch_dispatch`` counters — which cells took a vectorized path and,
    for the ones that fell back, the per-reason breakdown.
    """
    from pathlib import Path

    rows = []
    for path in paths:
        try:
            payload = json.loads(Path(path).read_text())
        except (OSError, json.JSONDecodeError) as exc:
            print(f"error: cannot read campaign artifact {path}: {exc}", file=sys.stderr)
            return 2
        obs_doc = (payload.get("metadata") or {}).get("obs")
        if not obs_doc:
            print(f"error: {path} has no metadata.obs block; re-run the campaign "
                  "with REPRO_OBS=1 (or sim.obs=true) to record dispatch counters",
                  file=sys.stderr)
            return 2
        rows.extend(_dispatch_rows(path, obs_doc))
    if as_json:
        print(json.dumps({"dispatch": rows}, indent=2, sort_keys=True))
        return 0
    if not rows:
        print("no dispatch counters recorded (the campaign ran no simulation cells)")
        return 0
    table = [[r["campaign"], r["counter"], r["outcome"], r["reason"], r["count"]]
             for r in rows]
    print_report(format_table(
        ["campaign", "counter", "outcome", "reason", "count"], table,
        title=f"Dispatch outcomes over {len(paths)} campaigns",
    ))
    return 0


def _obs_artifact_summary(path, payload: dict, *, as_json: bool) -> int:
    """Render the ``metadata.obs`` block of one campaign artifact."""
    obs_doc = (payload.get("metadata") or {}).get("obs")
    if not obs_doc:
        print(f"error: {path} has no metadata.obs block; re-run the campaign "
              "with REPRO_OBS=1 (or sim.obs=true) to record one", file=sys.stderr)
        return 2
    if as_json:
        print(json.dumps(obs_doc, indent=2, sort_keys=True))
        return 0
    counters = obs_doc.get("counters", [])
    if counters:
        print_report(format_table(
            ["counter", "labels", "value"],
            [[c["name"], _format_obs_labels(c.get("labels")), c.get("value", 0)]
             for c in counters],
            title=f"Counters of {path}",
        ))
    hists = obs_doc.get("histograms", [])
    if hists:
        print_report(format_table(
            ["histogram", "labels", "count", "sum", "min", "max"],
            [[h["name"], _format_obs_labels(h.get("labels")), h.get("count", 0),
              h.get("sum", 0), h.get("min", ""), h.get("max", "")]
             for h in hists],
            title="Histograms",
        ))
    dispatch = _dispatch_rows(path, obs_doc)
    if dispatch:
        print_report(format_table(
            ["counter", "outcome", "reason", "count"],
            [[r["counter"], r["outcome"], r["reason"], r["count"]] for r in dispatch],
            title="Dispatch outcomes",
        ))
    spans = obs_doc.get("spans") or {}
    print(f"spans: {spans.get('recorded', 0)} recorded, {spans.get('dropped', 0)} dropped")
    return 0


def _obs_span_log_summary(path, *, trace_out: "str | None", as_json: bool) -> int:
    """Summarise (and optionally convert) a ``.spans.jsonl`` span log."""
    from repro.obs import read_span_log, write_trace

    try:
        spans = read_span_log(path)
    except (OSError, ValueError) as exc:
        print(f"error: {exc}", file=sys.stderr)
        return 2
    if trace_out:
        write_trace(trace_out, spans)
        print(f"wrote Chrome trace to {trace_out} ({len(spans)} spans); "
              "load it at https://ui.perfetto.dev", file=sys.stderr)
    groups: "dict[tuple[str, str], list[float]]" = {}
    for span in spans:
        groups.setdefault((span.get("cat", "repro"), span["name"]), []).append(
            float(span.get("dur", 0.0))
        )
    rows = [
        {"cat": cat, "name": name, "count": len(durs),
         "total_ms": sum(durs) / 1000.0, "max_ms": max(durs) / 1000.0}
        for (cat, name), durs in sorted(groups.items())
    ]
    if as_json:
        print(json.dumps({"spans": len(spans), "groups": rows},
                         indent=2, sort_keys=True))
        return 0
    print_report(format_table(
        ["cat", "span", "count", "total_ms", "max_ms"],
        [[r["cat"], r["name"], r["count"], f"{r['total_ms']:.3f}",
          f"{r['max_ms']:.3f}"] for r in rows],
        title=f"{len(spans)} spans in {path}",
    ))
    return 0


def _run_obs_command(args: argparse.Namespace) -> int:
    """Inspect observability artifacts (campaign metadata.obs / span logs)."""
    from pathlib import Path

    path = Path(args.artifact)
    if path.suffix == ".jsonl":
        return _obs_span_log_summary(path, trace_out=args.trace, as_json=args.json)
    if args.trace:
        print("error: --trace needs a .spans.jsonl span log input (the "
              "<out>.spans.jsonl file written next to run/sweep --out)",
              file=sys.stderr)
        return 2
    try:
        payload = json.loads(path.read_text())
    except (OSError, json.JSONDecodeError) as exc:
        print(f"error: cannot read campaign artifact {path}: {exc}", file=sys.stderr)
        return 2
    return _obs_artifact_summary(path, payload, as_json=args.json)


def _run_report_command(args: argparse.Namespace) -> int:
    """Aggregate stored records (group means) without re-simulating anything."""
    if getattr(args, "timing", None):
        return _report_timing_split(args.timing, as_json=args.json)
    if getattr(args, "dispatch", None):
        return _report_dispatch_split(args.dispatch, as_json=args.json)
    store = _open_store(args)
    if store is None:
        return 2
    try:
        filters = _parse_where(args)
    except ValueError as exc:
        print(f"error: {exc}", file=sys.stderr)
        return 2
    entries = store.query(strategy=args.strategy, family=args.family,
                          limit=args.limit, where=filters)
    entries = [e for e in entries if e.record is not None]
    if not entries:
        print("no stored records match the filters", file=sys.stderr)
        return 1
    metrics = [m.strip() for m in args.metrics.split(",") if m.strip()]
    by_columns = [b.strip() for b in args.by.split(",") if b.strip()] or ["strategy"]
    by = by_columns[0] if len(by_columns) == 1 else tuple(by_columns)
    try:
        headers, rows = summarize_records(entries, metrics=metrics, by=by)
    except KeyError as exc:
        print(f"error: stored records have no column {exc.args[0]!r}", file=sys.stderr)
        return 2
    if args.csv:
        from repro.experiments.reporting import to_csv
        from repro.store.io import atomic_write_text

        atomic_write_text(args.csv, to_csv(headers, rows), newline="")
        print(f"wrote summary to {args.csv}")
    if args.json:
        groups = [dict(zip(headers, row)) for row in rows]
        print(json.dumps({"records": len(entries), "groups": _jsonable(groups)},
                         indent=2, sort_keys=True, default=str))
        return 0
    print_report(format_table(
        headers, rows,
        title=f"Report over {len(entries)} stored records in {store.root}",
    ))
    return 0


def _jsonable(obj):
    """Convert experiment dictionaries (which may use tuple keys) into JSON-safe data."""
    if isinstance(obj, dict):
        return {str(k): _jsonable(v) for k, v in obj.items()}
    if isinstance(obj, (list, tuple)):
        return [_jsonable(v) for v in obj]
    return obj


if __name__ == "__main__":  # pragma: no cover
    sys.exit(main())
