"""Command-line interface: run a single scenario or regenerate a paper figure.

Examples
--------
Run one strategy on a random scenario and print the interval metrics::

    python -m repro simulate --strategy b-tctp --targets 20 --mules 4 --seed 3

Regenerate the paper's figures (full protocol, 20 replications)::

    python -m repro fig7
    python -m repro fig8 --quick        # small/quick variant
    python -m repro fig9
    python -m repro fig10

Extension experiments from DESIGN.md::

    python -m repro energy
    python -m repro ablation-init
    python -m repro ablation-tsp
"""

from __future__ import annotations

import argparse
import json
import sys
from typing import Callable, Sequence

from repro.baselines.base import available_strategies, get_strategy
from repro.experiments import ExperimentSettings
from repro.experiments import (
    ablation_init,
    ablation_mules,
    ablation_tsp,
    ext_energy,
    fig10_policy_sd,
    fig7_dcdt,
    fig8_sd,
    fig9_policy_dcdt,
)
from repro.experiments.reporting import format_table, print_report
from repro.sim.engine import PatrolSimulator, SimulationConfig
from repro.sim.metrics import average_dcdt, average_sd, interval_statistics, max_visiting_interval
from repro.workloads.generator import ScenarioConfig, generate_scenario

__all__ = ["main", "build_parser"]


_FIGURE_RUNNERS: dict[str, Callable] = {
    "fig7": fig7_dcdt.main,
    "fig8": fig8_sd.main,
    "fig9": fig9_policy_dcdt.main,
    "fig10": fig10_policy_sd.main,
    "energy": ext_energy.main,
    "ablation-init": ablation_init.main,
    "ablation-tsp": ablation_tsp.main,
    "ablation-mules": ablation_mules.main,
}


def build_parser() -> argparse.ArgumentParser:
    """Construct the argument parser (exposed separately for testing)."""
    parser = argparse.ArgumentParser(
        prog="repro-patrol",
        description="Reproduction of the ICPP 2011 data-mule patrolling paper "
                    "(B-TCTP / W-TCTP / RW-TCTP).",
    )
    sub = parser.add_subparsers(dest="command", required=True)

    sim = sub.add_parser("simulate", help="run one strategy on one generated scenario")
    sim.add_argument("--strategy", default="b-tctp", choices=available_strategies())
    sim.add_argument("--targets", type=int, default=20)
    sim.add_argument("--mules", type=int, default=4)
    sim.add_argument("--vips", type=int, default=0)
    sim.add_argument("--vip-weight", type=int, default=2)
    sim.add_argument("--policy", default="balanced", choices=["shortest", "balanced"])
    sim.add_argument("--seed", type=int, default=0)
    sim.add_argument("--horizon", type=float, default=60_000.0)
    sim.add_argument("--battery", type=float, default=None)
    sim.add_argument("--recharge", action="store_true", help="place a recharge station")
    sim.add_argument("--clustered", action="store_true", help="use disconnected target clusters")
    sim.add_argument("--json", action="store_true", help="emit machine-readable JSON")

    for name, runner in _FIGURE_RUNNERS.items():
        p = sub.add_parser(name, help=f"reproduce {name} of the evaluation")
        p.add_argument("--quick", action="store_true",
                       help="small replication count / short horizon (for smoke runs)")
        p.add_argument("--replications", type=int, default=None)
        p.add_argument("--horizon", type=float, default=None)
        p.add_argument("--json", action="store_true", help="emit machine-readable JSON")

    lst = sub.add_parser("strategies", help="list the available strategies")
    lst.add_argument("--json", action="store_true")
    return parser


def _settings_from_args(args: argparse.Namespace) -> ExperimentSettings:
    settings = ExperimentSettings.quick() if args.quick else ExperimentSettings()
    overrides = {}
    if args.replications is not None:
        overrides["replications"] = args.replications
    if args.horizon is not None:
        overrides["horizon"] = args.horizon
    if overrides:
        settings = ExperimentSettings(**{**settings.__dict__, **overrides})
    return settings


def _run_simulate(args: argparse.Namespace) -> int:
    needs_recharge = args.recharge or args.strategy.replace("_", "-").startswith("rw")
    cfg = ScenarioConfig(
        num_targets=args.targets,
        num_mules=args.mules,
        num_vips=args.vips,
        vip_weight=args.vip_weight,
        distribution="clustered" if args.clustered else "uniform",
        mule_battery=args.battery if args.battery is not None else (200_000.0 if needs_recharge else None),
        with_recharge_station=needs_recharge,
        mule_placement="random",
    )
    scenario = generate_scenario(cfg, args.seed)
    kwargs = {}
    if args.strategy in ("w-tctp", "wtctp", "rw-tctp", "rwtctp"):
        kwargs["policy"] = args.policy
    if args.strategy == "random":
        kwargs["seed"] = args.seed
    planner = get_strategy(args.strategy, **kwargs)
    plan = planner.plan(scenario)
    result = PatrolSimulator(scenario, plan, SimulationConfig(horizon=args.horizon)).run()

    stats = interval_statistics(result)
    payload = {
        "strategy": plan.strategy,
        "scenario": scenario.name,
        "num_targets": scenario.num_targets,
        "num_mules": scenario.num_mules,
        "average_dcdt": average_dcdt(result),
        "average_sd": average_sd(result),
        "max_visiting_interval": max_visiting_interval(result),
        "delivered_data": result.total_delivered_data(),
        "total_distance": result.total_distance(),
        "dead_mules": result.dead_mules(),
        **{f"interval_{k}": v for k, v in stats.items()},
    }
    if args.json:
        print(json.dumps(payload, indent=2, sort_keys=True))
    else:
        rows = [[k, v] for k, v in payload.items()]
        print_report(format_table(["metric", "value"], rows,
                                  title=f"Simulation of {plan.strategy} on {scenario.name}"))
    return 0


def main(argv: Sequence[str] | None = None) -> int:
    """CLI entry point; returns a process exit code."""
    parser = build_parser()
    args = parser.parse_args(argv)

    if args.command == "simulate":
        return _run_simulate(args)
    if args.command == "strategies":
        names = available_strategies()
        if args.json:
            print(json.dumps(names))
        else:
            print("\n".join(names))
        return 0
    if args.command in _FIGURE_RUNNERS:
        settings = _settings_from_args(args)
        data = _FIGURE_RUNNERS[args.command](settings)
        if getattr(args, "json", False):
            print(json.dumps(_jsonable(data), indent=2, sort_keys=True))
        return 0
    parser.error(f"unknown command {args.command!r}")  # pragma: no cover
    return 2  # pragma: no cover


def _jsonable(obj):
    """Convert experiment dictionaries (which may use tuple keys) into JSON-safe data."""
    if isinstance(obj, dict):
        return {str(k): _jsonable(v) for k, v in obj.items()}
    if isinstance(obj, (list, tuple)):
        return [_jsonable(v) for v in obj]
    return obj


if __name__ == "__main__":  # pragma: no cover
    sys.exit(main())
