"""Persistent results store: content-addressed run cache, query and reports.

This package turns the campaign layer into an **incremental computation**:
every finished run cell is stored under a deterministic content address (the
:func:`run_fingerprint` of its spec plus a code-version salt), and a
resumable campaign (``Campaign.run(store=...)``) looks each cell up before
dispatch, executes only the misses and writes them back atomically — records
are byte-identical (under JSON serialisation) to a cold run, with hit/miss
counts surfaced in the result metadata.

* :class:`ResultStore` — SQLite index + JSON payloads under a root
  directory; ``get``/``put``/``query``/``stats``/``gc``/``clear``;
* :func:`run_fingerprint` / :func:`canonical_run_payload` — the content
  address and the canonical JSON it hashes;
* :func:`configure` / :func:`clear_store` / :func:`store_stats` — the
  module-level default store (``REPRO_STORE_DIR``), mirroring
  :mod:`repro.geometry.cache`;
* :func:`resolve_store` — how ``store=`` arguments normalise everywhere
  (``None`` = the default store when configured, ``False`` = opt out,
  ``True`` = force-create, path/:class:`ResultStore` = that store);
* :mod:`repro.store.query` / :mod:`repro.store.report` — filter stored runs
  by family/strategy/parameter ranges and aggregate/export them (the
  ``repro-patrol store`` / ``repro-patrol report`` subcommands).

See ``docs/STORE.md`` for the fingerprint definition, the cache layout, gc
semantics and the exact byte-identity guarantee.
"""

from repro.store.fingerprint import (
    canonical_run_json,
    canonical_run_payload,
    code_salt,
    run_fingerprint,
)
from repro.store.io import atomic_write_json, atomic_write_text
from repro.store.query import StoredRun, matches, parse_filter_expression
from repro.store.store import (
    MergeConflictError,
    ResultStore,
    clear_store,
    configure,
    default_root,
    default_store,
    resolve_store,
    store_enabled,
    store_stats,
)

__all__ = [
    "ResultStore",
    "MergeConflictError",
    "StoredRun",
    "run_fingerprint",
    "canonical_run_payload",
    "canonical_run_json",
    "code_salt",
    "configure",
    "default_root",
    "default_store",
    "resolve_store",
    "store_enabled",
    "clear_store",
    "store_stats",
    "matches",
    "parse_filter_expression",
    "atomic_write_text",
    "atomic_write_json",
]
