"""Atomic file writes shared by the result store and the export helpers.

A result store must never expose a half-written artifact: a campaign killed
mid-writeback, a full disk, or two processes racing on the same cache entry
must all leave either the previous file or the complete new one — never a
truncated JSON document.  The standard recipe is used everywhere: write to a
temporary file *in the destination directory* (so the final rename never
crosses a filesystem boundary) and publish it with :func:`os.replace`, which
is atomic on POSIX and Windows alike.
"""

from __future__ import annotations

import contextlib
import json
import os
import tempfile
from pathlib import Path
from typing import Any

__all__ = ["atomic_write_text", "atomic_write_json"]


def atomic_write_text(
    path: "str | Path",
    text: str,
    *,
    newline: "str | None" = None,
    encoding: str = "utf-8",
) -> Path:
    """Write ``text`` to ``path`` atomically (temp file + :func:`os.replace`).

    Parameters
    ----------
    path:
        Destination; parent directories are created as needed.
    newline:
        Passed through to :func:`open` — use ``""`` for CSV payloads so
        embedded line endings are written verbatim on every platform.
    encoding:
        Text encoding of the file (UTF-8 by default).

    Returns the destination path.  On any failure the temporary file is
    removed and the destination is left untouched.
    """
    path = Path(path)
    path.parent.mkdir(parents=True, exist_ok=True)
    fd, tmp_name = tempfile.mkstemp(
        dir=path.parent, prefix=f".{path.name}.", suffix=".tmp"
    )
    try:
        with os.fdopen(fd, "w", encoding=encoding, newline=newline) as fh:
            fh.write(text)
        os.replace(tmp_name, path)
    except BaseException:
        with contextlib.suppress(OSError):
            os.unlink(tmp_name)
        raise
    return path


def atomic_write_json(
    path: "str | Path",
    payload: Any,
    *,
    indent: "int | None" = None,
    sort_keys: bool = False,
    allow_nan: bool = True,
    default=None,
) -> Path:
    """Serialise ``payload`` and write it atomically; returns the path.

    ``allow_nan`` defaults to ``True`` (unlike the strict campaign exports):
    store payloads must round-trip ``NaN`` metric values bit for bit, and
    Python's :mod:`json` both emits and re-parses the ``NaN`` token natively.
    """
    text = json.dumps(
        payload, indent=indent, sort_keys=sort_keys, allow_nan=allow_nan, default=default
    )
    return atomic_write_text(path, text + "\n")
