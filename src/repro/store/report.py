"""Reporting over stored runs: aggregate past campaigns and export them.

The store accumulates tidy records across every campaign that ran against
it; this module reduces those records back into the same group-mean tables
the live experiments print — without re-simulating anything — and exports
filtered slices to CSV/JSON (atomically, like every other artifact writer).

Used by the ``repro-patrol report`` and ``repro-patrol store export``
subcommands; the functions take plain entry/record lists so they compose
with :meth:`repro.store.ResultStore.query` and with in-memory records alike.
"""

from __future__ import annotations

import json
from datetime import datetime
from pathlib import Path
from typing import Any, Iterable, Mapping, Sequence

from repro.store.io import atomic_write_text
from repro.store.query import StoredRun

__all__ = [
    "summarize_records",
    "export_records_json",
    "export_records_csv",
    "entry_rows",
    "store_stats_payload",
]


def store_stats_payload(store) -> dict:
    """The canonical machine-readable stats document of one store.

    The single formatter behind ``repro-patrol store stats --json`` **and**
    the serve daemon's ``/stats`` endpoint — both render exactly this dict,
    so dashboards and scripts can consume either source interchangeably.
    The shape is the ``store`` section of the unified stats document
    (:func:`repro.obs.adapters.stats_document`), which is
    :meth:`repro.store.ResultStore.stats` verbatim (root, entries, payload
    bytes, per-version entry counts, session hit/miss counters); any future
    field lands in both surfaces at once.
    """
    from repro.obs.adapters import stats_document, store_stats_view

    return store_stats_view(stats_document(store=store))


def _records(entries: "Iterable[StoredRun | Mapping[str, Any]]") -> list[dict]:
    out = []
    for entry in entries:
        record = entry.record if isinstance(entry, StoredRun) else entry
        if record is not None:
            out.append(dict(record))
    return out


def summarize_records(
    entries: "Iterable[StoredRun | Mapping[str, Any]]",
    *,
    metrics: Sequence[str] = ("average_dcdt", "average_sd"),
    by: "str | Sequence[str]" = "strategy",
) -> "tuple[list[str], list[list]]":
    """Group-mean table over stored records: header + rows.

    Groups the records by the ``by`` column(s) and reduces every requested
    metric with the experiments' NaN-aware mean; a trailing ``runs`` column
    counts the records behind each row.
    """
    # Lazy import: repro.runner.campaign imports repro.store for resumable
    # execution, so the aggregation helpers must not be pulled in at import
    # time from this side of the cycle.
    from repro.runner.campaign import group_mean, group_records

    # Reduce in content order, not insertion order: a merged shard store and
    # an unsharded store hold the same records under different created_at
    # timestamps, and float means are not associative — sorting by canonical
    # record content makes the table a pure function of the record *set*.
    records = sorted(
        _records(entries),
        key=lambda r: json.dumps(r, sort_keys=True, default=str),
    )
    columns = (by,) if isinstance(by, str) else tuple(by)
    keyed = group_records(records, by)
    means = {metric: group_mean(records, metric, by=by) for metric in metrics}
    headers = [*columns, *[f"mean {m}" for m in metrics], "runs"]
    rows = []
    for key in sorted(keyed, key=lambda k: tuple(str(v) for v in (k if isinstance(k, tuple) else (k,)))):
        key_cells = list(key) if isinstance(key, tuple) else [key]
        rows.append(
            key_cells + [means[m][key] for m in metrics] + [len(keyed[key])]
        )
    return headers, rows


def entry_rows(entries: Iterable[StoredRun]) -> "tuple[list[str], list[list]]":
    """Header + rows of an index listing (``repro-patrol store list``)."""
    headers = ["fingerprint", "strategy", "family", "seed", "created_at", "library_version"]
    rows = [
        [e.fingerprint[:12], e.strategy or "-", e.family or "-",
         "-" if e.seed is None else e.seed,
         datetime.fromtimestamp(e.created_at).isoformat(timespec="seconds"),
         e.library_version]
        for e in entries
    ]
    return headers, rows


def export_records_json(
    entries: "Iterable[StoredRun | Mapping[str, Any]]", path: "str | Path"
) -> Path:
    """Write the records (strict JSON, NaN as ``null``) atomically; returns the path."""
    from repro.runner.campaign import _json_sanitize

    payload = {"records": _json_sanitize(_records(entries))}
    text = json.dumps(payload, indent=2, sort_keys=True, allow_nan=False)
    return atomic_write_text(path, text + "\n")


def export_records_csv(
    entries: "Iterable[StoredRun | Mapping[str, Any]]", path: "str | Path"
) -> Path:
    """Write the scalar record columns as CSV atomically; returns the path."""
    from repro.experiments.reporting import to_csv
    from repro.runner.campaign import CampaignResult

    result = CampaignResult(records=_records(entries))
    headers, rows = result.to_rows(scalar_only=True)
    return atomic_write_text(path, to_csv(headers, rows), newline="")
