"""Deterministic run fingerprints: the content address of one simulation cell.

A fingerprint is a stable hash over the **canonical JSON** of everything that
determines a run's record: the scenario spec (canonical family name + sorted
parameters + optional pinned seed), the canonical strategy name and its
effective parameters, the full simulator config, the replication seed, the
requested extra metrics, and the record labels (labels are copied verbatim
into the record, so two cells differing only in labels produce different
records and must hash differently).  A **code-version salt** (the library
version) is mixed in, so upgrading the library never serves records computed
by older code — stale entries simply stop hitting and can be swept by
``ResultStore.gc()``.

Canonicalisation mirrors what execution actually does:

* the strategy name is hashed **as spelled**: records carry the spec's raw
  strategy string verbatim (``record["strategy"] = spec.strategy``), so the
  alias ``"btctp"`` and its registry name ``"b-tctp"`` produce different
  records and must hash differently.  Scenario family aliases, by contrast,
  *do* resolve to their registry names — no record field carries the raw
  family spelling (labels, which may, are hashed too);
* strategies that declare a ``seed`` parameter receive the replication seed,
  exactly as :func:`repro.runner.campaign.execute_run` injects it — a bare
  hand-written spec and its campaign-expanded twin share a fingerprint;
* dictionaries are key-sorted and the JSON is emitted with a fixed format,
  so insertion order never leaks into the hash.

The fingerprint deliberately does **not** include execution-mode knobs that
are proven byte-invisible (worker count, geometry-cache switch, the
``sim.obs`` observability switch — see ``FINGERPRINT_EXEMPT``): records are
identical either way, so they must share an address.
"""

from __future__ import annotations

import dataclasses
import hashlib
import json
from typing import Any

from repro.baselines.base import strategy_params

__all__ = [
    "canonical_run_payload",
    "canonical_run_json",
    "run_fingerprint",
    "code_salt",
    "FINGERPRINT_COVERAGE",
    "FINGERPRINT_EXEMPT",
]

# --------------------------------------------------------------------------- #
# Coverage declaration, checked statically by `repro-patrol check`
# --------------------------------------------------------------------------- #
# Every dataclass field of the spec types below MUST appear here (or in
# FINGERPRINT_EXEMPT with a reason): the fingerprint-coverage analyzer
# (repro.analysis.fingerprint_coverage) fails the build otherwise.  This is
# what makes schema growth safe for the content-addressed store — a field
# added to a spec without a decision about its hashing can never silently
# serve stale cache hits.
#
# Mechanisms:
#   "hashed"     — canonical_run_payload() reads the field directly (the
#                  analyzer also verifies that read exists in this module's
#                  AST);
#   "asdict"     — the whole dataclass is hashed via dataclasses.asdict();
#   "via-params" — the value round-trips inside an already-hashed mapping
#                  (pipeline stage specs travel in spec.params).
FINGERPRINT_COVERAGE: dict[str, dict[str, str]] = {
    "RunSpec": {
        "strategy": "hashed",
        "scenario": "hashed",
        "params": "hashed",
        "sim": "hashed",
        "seed": "hashed",
        "metrics": "hashed",
        "labels": "hashed",
    },
    "ScenarioSpec": {
        "family": "hashed",
        "params": "hashed",
        "seed": "hashed",
    },
    "SimulationConfig": {"*": "asdict"},
    "PipelineSpec": {"*": "via-params"},
}

#: ``(class name, field name) -> reason`` for fields deliberately excluded
#: from the fingerprint.  Exemptions are reserved for knobs *proven*
#: byte-invisible (records identical either way); the coverage analyzer
#: rejects a field that is both exempt and explicitly declared, and
#: :func:`canonical_run_payload` pops exempt SimulationConfig fields out of
#: the hashed payload so old and new specs keep their addresses.
FINGERPRINT_EXEMPT: dict[tuple[str, str], str] = {
    ("SimulationConfig", "obs"): (
        "observability switch: recording is proven byte-invisible (the obs "
        "differential tests assert records and fingerprints are identical "
        "with the registry on or off), so obs-on and obs-off runs must "
        "share a content address"
    ),
}

#: Exempt SimulationConfig field names (what the payload builder strips).
_SIM_EXEMPT_FIELDS = frozenset(
    field for cls, field in FINGERPRINT_EXEMPT if cls == "SimulationConfig"
)


def code_salt() -> str:
    """The code-version salt mixed into every fingerprint (the library version)."""
    from repro import __version__  # lazy: repro/__init__ imports the runner stack

    return f"repro-patrol/{__version__}"


def _jsonable(value: Any) -> Any:
    """Canonical JSON-safe twin of a spec value (tuples become lists)."""
    if dataclasses.is_dataclass(value) and not isinstance(value, type):
        return _jsonable(dataclasses.asdict(value))
    if isinstance(value, dict):
        return {str(k): _jsonable(v) for k, v in value.items()}
    if isinstance(value, (list, tuple)):
        return [_jsonable(v) for v in value]
    if hasattr(value, "item") and not isinstance(value, (str, bytes)):
        try:
            return value.item()  # numpy scalars hash as their Python twins
        except (AttributeError, ValueError):  # pragma: no cover - exotic .item()
            return repr(value)
    if value is None or isinstance(value, (bool, int, float, str)):
        return value
    return repr(value)


def canonical_run_payload(spec) -> dict:
    """The canonical, JSON-safe description of one run cell.

    Parameters
    ----------
    spec : repro.runner.RunSpec
        The cell to canonicalise (duck-typed to avoid an import cycle).

    Returns
    -------
    dict
        ``{strategy, scenario, params, sim, seed, metrics, labels}`` with
        the family registry name resolved (the strategy keeps its raw
        spelling — records carry it verbatim), the seed injected for
        seed-declaring strategies, and every mapping key-sorted by the JSON
        emitter.
    """
    params = dict(spec.params)
    if "seed" in strategy_params(spec.strategy) and "seed" not in params:
        params["seed"] = spec.seed
    scenario = spec.scenario
    scenario_payload: dict[str, Any] = {
        "family": scenario.canonical_family(),
        "params": _jsonable(dict(scenario.params)),
    }
    if scenario.seed is not None:
        scenario_payload["seed"] = scenario.seed
    sim_payload = dataclasses.asdict(spec.sim)
    for field in _SIM_EXEMPT_FIELDS:  # proven byte-invisible; see FINGERPRINT_EXEMPT
        sim_payload.pop(field, None)
    return {
        "strategy": str(spec.strategy),
        "scenario": scenario_payload,
        "params": _jsonable(params),
        "sim": _jsonable(sim_payload),
        "seed": spec.seed,
        "metrics": [_jsonable(list(m) if isinstance(m, tuple) else m) for m in spec.metrics],
        "labels": _jsonable(dict(spec.labels)),
    }


def canonical_run_json(spec) -> str:
    """The canonical JSON text the fingerprint hashes (key-sorted, compact)."""
    return json.dumps(
        canonical_run_payload(spec), sort_keys=True, separators=(",", ":"), allow_nan=True
    )


def run_fingerprint(spec, *, salt: "str | None" = None) -> str:
    """Content address of ``spec``: blake2b over its canonical JSON + salt.

    Two specs share a fingerprint exactly when execution would produce
    byte-identical records; ``salt`` defaults to :func:`code_salt` so records
    never survive a library version change unnoticed.

    >>> from repro.runner import RunSpec
    >>> a = run_fingerprint(RunSpec(strategy="b-tctp", seed=1))
    >>> b = run_fingerprint(RunSpec(strategy="b-tctp", seed=2))  # different seed
    >>> c = run_fingerprint(RunSpec(strategy="btctp", seed=1))   # alias spelling:
    >>> a == b, a == c       # different records (record["strategy"] differs)
    (False, False)
    """
    digest = hashlib.blake2b(digest_size=20)
    digest.update(canonical_run_json(spec).encode())
    digest.update(b"\x1f")
    digest.update((salt if salt is not None else code_salt()).encode())
    return digest.hexdigest()
