"""The persistent result store: SQLite index + JSON record payloads on disk.

Layout (under a configurable root directory)::

    <root>/index.sqlite              fingerprint -> metadata index
    <root>/records/<ff>/<fp>.json    one payload per run (sharded by prefix)

Each payload file holds the canonical run payload it was computed from, the
record itself, and provenance (library version, creation time).  Records are
stored with ``NaN`` preserved and dictionary insertion order intact, so a
warm lookup returns the record **byte-identical under JSON serialisation**
to what a cold execution produces (tuples come back as lists — their JSON
canonical form; see ``docs/STORE.md``).

Writes are crash-safe: the payload is published with an atomic rename
(:mod:`repro.store.io`) *before* the index row is inserted, and lookups
self-heal — an index row whose payload file is missing or unreadable counts
as a miss and is dropped.  ``gc()`` sweeps orphaned payloads from interrupted
writes along with entries from other library versions (whose fingerprints,
salted by version, can never hit again).

The store is also safe under **concurrent writers** — the ``serve`` daemon's
worker threads all share one instance: the sqlite connection is opened with
``check_same_thread=False`` and every statement runs under the store's own
lock; the index uses WAL journaling (readers never block the writer), and
commits retry with backoff when another *process* holds the write lock.
Two writers racing on the same fingerprint are benign: the payload rename is
atomic and the index insert is ``INSERT OR REPLACE``, so the duplicate put
is an idempotent no-op race, not corruption.

The module-level :func:`configure` / :func:`clear_store` / :func:`store_stats`
API mirrors :mod:`repro.geometry.cache`: set ``REPRO_STORE_DIR`` (or call
``configure(root=...)``) and every campaign and experiment becomes resumable
by default; pass ``store=False`` to opt a single run out.
"""

from __future__ import annotations

import json
import os
import sqlite3
import threading
import time
from pathlib import Path
from typing import Any, Mapping

from repro.store.fingerprint import canonical_run_payload, code_salt, run_fingerprint
from repro.store.io import atomic_write_json, atomic_write_text
from repro.store.query import StoredRun, matches

__all__ = [
    "ResultStore",
    "MergeConflictError",
    "configure",
    "default_root",
    "default_store",
    "resolve_store",
    "store_enabled",
    "clear_store",
    "store_stats",
]

_SCHEMA = """
CREATE TABLE IF NOT EXISTS runs (
    fingerprint     TEXT PRIMARY KEY,
    strategy        TEXT NOT NULL DEFAULT '',
    family          TEXT NOT NULL DEFAULT '',
    seed            INTEGER,
    created_at      REAL NOT NULL,
    library_version TEXT NOT NULL,
    payload         TEXT NOT NULL
);
CREATE INDEX IF NOT EXISTS idx_runs_strategy ON runs (strategy);
CREATE INDEX IF NOT EXISTS idx_runs_family ON runs (family);
CREATE INDEX IF NOT EXISTS idx_runs_created ON runs (created_at);
"""

# Cross-process write contention: how long sqlite itself blocks on a held
# write lock (timeout=) and how the store retries around the residue.  The
# in-process threads of one store never contend — they serialise on the
# store's own lock — so these only matter for multi-process campaigns
# sharing one root.
_SQLITE_TIMEOUT_S = 5.0
_LOCK_RETRIES = 5
_LOCK_RETRY_BASE_S = 0.05


class MergeConflictError(ValueError):
    """Two stores hold *different* records under the same fingerprint.

    Fingerprints are content addresses salted by library version, so shards
    of one campaign can only collide on a fingerprint when they computed the
    same cell — and then the records must agree.  A mismatch means the shards
    were produced by diverging code or corrupted payloads; merging would
    silently pick one side, so the merge refuses instead.
    """

    def __init__(self, fingerprint: str, source: "str | Path") -> None:
        self.fingerprint = fingerprint
        self.source = str(source)
        super().__init__(
            f"merge conflict on fingerprint {fingerprint}: the record in "
            f"{self.source} differs from the one already stored"
        )


def _np_safe(obj: Any) -> Any:
    """JSON ``default`` hook: numpy scalars/arrays serialise as their Python twins."""
    item = getattr(obj, "item", None)
    if callable(item) and getattr(obj, "shape", None) == ():
        return item()
    tolist = getattr(obj, "tolist", None)
    if callable(tolist):
        return tolist()
    raise TypeError(f"object of type {type(obj).__name__} is not JSON serialisable")


class ResultStore:
    """Content-addressed store of finished run records.

    Parameters
    ----------
    root:
        Directory holding the index and payloads (created on first write).
        ``None`` uses the configured default (``configure(root=...)``, else
        the ``REPRO_STORE_DIR`` environment variable) and raises
        :class:`ValueError` when neither is set.

    Examples
    --------
    >>> import tempfile
    >>> from repro.runner import RunSpec
    >>> from repro.store import ResultStore, run_fingerprint
    >>> store = ResultStore(tempfile.mkdtemp())
    >>> spec = RunSpec(strategy="b-tctp", seed=1)
    >>> fp = run_fingerprint(spec)
    >>> store.get(fp) is None
    True
    >>> _ = store.put(fp, {"average_sd": 0.0}, spec)
    >>> store.get(fp)
    {'average_sd': 0.0}
    """

    def __init__(self, root: "str | Path | None" = None) -> None:
        if root is None:
            root = default_root()
            if root is None:
                raise ValueError(
                    "no store root configured: pass ResultStore(root=...), call "
                    "repro.store.configure(root=...), or set REPRO_STORE_DIR"
                )
        self.root = Path(root)
        self.hits = 0
        self.misses = 0
        self._conn: "sqlite3.Connection | None" = None
        # Reentrant: locked sections call _connection() / _drop(), which
        # take the lock again.  One lock serialises every index statement
        # and the hit/miss counters across the daemon's worker threads.
        self._lock = threading.RLock()

    # -- plumbing --------------------------------------------------------- #

    @property
    def index_path(self) -> Path:
        return self.root / "index.sqlite"

    @property
    def records_dir(self) -> Path:
        return self.root / "records"

    def _connection(self) -> sqlite3.Connection:
        """The store's sqlite connection, opened (and schema-initialised) once.

        Resumable execution performs one lookup per cell and one insert per
        miss on this hot path, so the connection is cached on the instance
        rather than reopened per operation.  Writes use ``with
        self._connection() as conn`` — a transaction scope (the ``with``
        commits, it does not close).

        One connection is shared across threads (``check_same_thread=False``)
        because every statement already runs under the store lock; WAL
        journaling keeps concurrent *processes* on the same root from
        blocking readers during a commit.
        """
        with self._lock:
            if self._conn is None:
                self.root.mkdir(parents=True, exist_ok=True)
                conn = sqlite3.connect(
                    self.index_path, timeout=_SQLITE_TIMEOUT_S, check_same_thread=False
                )
                conn.executescript(_SCHEMA)
                try:
                    conn.execute("PRAGMA journal_mode=WAL")
                except sqlite3.OperationalError:  # pragma: no cover - e.g. network fs
                    pass  # the rollback journal still works, with coarser locking
                self._conn = conn
            return self._conn

    def _retry_locked(self, operation):
        """Run ``operation`` retrying on SQLITE_BUSY/LOCKED with backoff.

        WAL allows readers alongside one writer, but two *processes*
        committing at once can still collide after sqlite's own ``timeout``
        expires; a short exponential backoff absorbs the residue instead of
        surfacing a spurious ``database is locked`` to the campaign.
        """
        for attempt in range(_LOCK_RETRIES):
            try:
                return operation()
            except sqlite3.OperationalError as exc:
                message = str(exc).lower()
                if "locked" not in message and "busy" not in message:
                    raise
                if attempt == _LOCK_RETRIES - 1:
                    raise
                time.sleep(_LOCK_RETRY_BASE_S * (2 ** attempt))

    def _index_exists(self) -> bool:
        return self._conn is not None or self.index_path.exists()

    def _payload_path(self, fingerprint: str) -> Path:
        return self.records_dir / fingerprint[:2] / f"{fingerprint}.json"

    def fingerprint(self, spec) -> str:
        """Content address of ``spec`` (see :func:`repro.store.run_fingerprint`)."""
        return run_fingerprint(spec)

    # -- read ------------------------------------------------------------- #

    def contains(self, fingerprint: str) -> bool:
        if not self._index_exists():
            return False
        with self._lock:
            row = self._connection().execute(
                "SELECT 1 FROM runs WHERE fingerprint = ?", (fingerprint,)
            ).fetchone()
        return row is not None

    def __contains__(self, fingerprint: str) -> bool:
        return self.contains(fingerprint)

    def get(self, fingerprint: str) -> "dict | None":
        """The stored record for ``fingerprint``, or ``None`` on a miss.

        An index row whose payload file is missing or unreadable self-heals:
        the row is dropped and the lookup counts as a miss.
        """
        entry = self.get_entry(fingerprint)
        return None if entry is None else entry.record

    def get_entry(self, fingerprint: str) -> "StoredRun | None":
        """Like :meth:`get` but returning the full :class:`StoredRun` entry."""
        with self._lock:
            if not self._index_exists():
                self.misses += 1
                return None
            row = self._connection().execute(
                "SELECT strategy, family, seed, created_at, library_version, payload "
                "FROM runs WHERE fingerprint = ?",
                (fingerprint,),
            ).fetchone()
            if row is None:
                self.misses += 1
                return None
            entry = self._load_entry(fingerprint, row)
            if entry is None:
                self._drop(fingerprint)
                self.misses += 1
                return None
            self.hits += 1
            return entry

    def _load_entry(self, fingerprint: str, row: tuple) -> "StoredRun | None":
        strategy, family, seed, created_at, version, payload_name = row
        path = self.root / payload_name
        try:
            payload = json.loads(path.read_text())
        except (OSError, json.JSONDecodeError):
            return None
        return StoredRun(
            fingerprint=fingerprint,
            strategy=strategy,
            family=family,
            seed=seed,
            created_at=created_at,
            library_version=version,
            path=path,
            spec=payload.get("spec"),
            record=payload.get("record"),
        )

    # -- write ------------------------------------------------------------ #

    def put(self, fingerprint: str, record: Mapping[str, Any], spec=None) -> StoredRun:
        """Store one record under ``fingerprint`` (atomic; idempotent).

        ``spec`` may be a :class:`~repro.runner.RunSpec` (canonicalised here)
        or an already-canonical payload dict; it powers :meth:`query` filters
        and the index columns, and may be omitted for anonymous records.

        Two writers racing on the same fingerprint (daemon workers, or two
        campaign processes sharing a root) are a benign no-op race: both
        publish equal record content via an atomic rename and the index
        insert is ``INSERT OR REPLACE`` — last writer wins, nothing is ever
        left torn.
        """
        payload_spec: "dict | None"
        if spec is None or isinstance(spec, Mapping):
            payload_spec = dict(spec) if spec is not None else None
        else:
            payload_spec = canonical_run_payload(spec)
        created_at = time.time()
        version = code_salt()
        payload = {
            "fingerprint": fingerprint,
            "library_version": version,
            "created_at": created_at,
            "spec": payload_spec,
            "record": dict(record),
        }
        path = self._payload_path(fingerprint)
        # Publish the payload before the index row: a crash in between leaves
        # an orphan file (swept by gc()), never a dangling index entry.
        atomic_write_json(path, payload, default=_np_safe)
        scenario = (payload_spec or {}).get("scenario", {})
        # The index column holds the *canonical* strategy name so queries
        # match every alias spelling; the payload (and record) keep the raw
        # spelling the fingerprint hashed.
        strategy = _canonical_strategy((payload_spec or {}).get("strategy", ""))

        def _insert() -> None:
            with self._connection() as conn:
                conn.execute(
                    "INSERT OR REPLACE INTO runs "
                    "(fingerprint, strategy, family, seed, created_at, library_version, payload) "
                    "VALUES (?, ?, ?, ?, ?, ?, ?)",
                    (
                        fingerprint,
                        strategy,
                        scenario.get("family", ""),
                        (payload_spec or {}).get("seed"),
                        created_at,
                        version,
                        str(path.relative_to(self.root)),
                    ),
                )

        with self._lock:
            self._retry_locked(_insert)
        return StoredRun(
            fingerprint=fingerprint,
            strategy=strategy,
            family=scenario.get("family", ""),
            seed=(payload_spec or {}).get("seed"),
            created_at=created_at,
            library_version=version,
            path=path,
            spec=payload_spec,
            record=dict(record),
        )

    def _drop(self, fingerprint: str) -> None:
        def _delete() -> None:
            with self._connection() as conn:
                conn.execute("DELETE FROM runs WHERE fingerprint = ?", (fingerprint,))

        with self._lock:
            self._retry_locked(_delete)
        path = self._payload_path(fingerprint)
        if path.exists():
            path.unlink()

    # -- enumeration / query ---------------------------------------------- #

    def _rows(
        self,
        *,
        strategy: "str | None" = None,
        family: "str | None" = None,
        limit: "int | None" = None,
    ) -> list[tuple]:
        if not self._index_exists():
            return []
        clauses, args = [], []
        if strategy is not None:
            clauses.append("strategy = ?")
            args.append(_canonical_strategy(strategy))
        if family is not None:
            clauses.append("family = ?")
            args.append(_canonical_family(family))
        sql = (
            "SELECT fingerprint, strategy, family, seed, created_at, "
            "library_version, payload FROM runs"
        )
        if clauses:
            sql += " WHERE " + " AND ".join(clauses)
        sql += " ORDER BY created_at DESC, fingerprint"
        if limit is not None:
            sql += " LIMIT ?"
            args.append(int(limit))
        with self._lock:
            return self._connection().execute(sql, args).fetchall()

    def entries(
        self,
        *,
        strategy: "str | None" = None,
        family: "str | None" = None,
        limit: "int | None" = None,
    ) -> list[StoredRun]:
        """Index-only listing (no payloads loaded), newest first."""
        return [
            StoredRun(
                fingerprint=fp, strategy=s, family=f, seed=seed,
                created_at=created, library_version=version,
                path=self.root / payload,
            )
            for fp, s, f, seed, created, version, payload in self._rows(
                strategy=strategy, family=family, limit=limit
            )
        ]

    def query(
        self,
        *,
        strategy: "str | None" = None,
        family: "str | None" = None,
        limit: "int | None" = None,
        where: "Mapping[str, Any] | None" = None,
        **params: Any,
    ) -> list[StoredRun]:
        """Stored runs matching the filters, newest first, payloads loaded.

        ``strategy`` / ``family`` filter on the index (aliases resolve to
        registry names); every other keyword — or the ``where`` mapping, for
        keys that are not valid Python identifiers — filters on record
        columns, scenario/strategy parameters and simulator fields with the
        scalar/range/membership semantics of :mod:`repro.store.query`.

        >>> store.query(strategy="b-tctp", num_targets=(10, 30))  # doctest: +SKIP
        """
        filters = {**(dict(where) if where else {}), **params}
        out: list[StoredRun] = []
        for row in self._rows(strategy=strategy, family=family):
            entry = self._load_entry(row[0], row[1:])
            if entry is None or not matches(entry, filters):
                continue
            out.append(entry)
            if limit is not None and len(out) >= limit:
                break
        return out

    def records(self, **kwargs: Any) -> list[dict]:
        """The record dicts of :meth:`query` (same filters)."""
        return [e.record for e in self.query(**kwargs) if e.record is not None]

    # -- maintenance ------------------------------------------------------ #

    def __len__(self) -> int:
        if not self._index_exists():
            return 0
        with self._lock:
            return self._connection().execute("SELECT COUNT(*) FROM runs").fetchone()[0]

    def stats(self) -> dict:
        """Size and provenance summary: entries, payload bytes, versions, hits/misses."""
        versions: dict[str, int] = {}
        entries = 0
        if self._index_exists():
            with self._lock:
                rows = self._connection().execute(
                    "SELECT library_version, COUNT(*) FROM runs GROUP BY library_version"
                ).fetchall()
            for version, count in rows:
                versions[version] = count
                entries += count
        payload_bytes = sum(
            f.stat().st_size for f in self.records_dir.glob("*/*.json")
        ) if self.records_dir.exists() else 0
        return {
            "root": str(self.root),
            "entries": entries,
            "payload_bytes": payload_bytes,
            "library_versions": versions,
            "hits": self.hits,
            "misses": self.misses,
        }

    def clear(self) -> int:
        """Drop every entry (and payload file); returns the number removed."""
        removed = len(self)
        if self._index_exists():
            def _delete_all() -> None:
                with self._connection() as conn:
                    conn.execute("DELETE FROM runs")

            with self._lock:
                self._retry_locked(_delete_all)
        if self.records_dir.exists():
            for path in self.records_dir.glob("*/*.json"):
                path.unlink()
            for shard in self.records_dir.iterdir():
                if shard.is_dir() and not any(shard.iterdir()):
                    shard.rmdir()
        self.hits = 0
        self.misses = 0
        return removed

    def gc(
        self,
        *,
        max_age_days: "float | None" = None,
        keep_other_versions: bool = False,
    ) -> int:
        """Sweep unusable entries; returns the number removed.

        Removes (a) entries written by a different library version — their
        fingerprints carry an old code salt, so they can never hit again —
        unless ``keep_other_versions`` is set; (b) entries older than
        ``max_age_days``, when given; and (c) orphaned payload files left by
        interrupted writes (files with no index row).
        """
        removed = 0
        if self._index_exists():
            clauses, args = [], []
            if not keep_other_versions:
                clauses.append("library_version != ?")
                args.append(code_salt())
            if max_age_days is not None:
                clauses.append("created_at < ?")
                args.append(time.time() - max_age_days * 86_400.0)
            if clauses:
                sql = "SELECT fingerprint, payload FROM runs WHERE " + " OR ".join(clauses)

                def _sweep() -> list[tuple]:
                    rows = self._connection().execute(sql, args).fetchall()
                    with self._connection() as conn:
                        conn.executemany(
                            "DELETE FROM runs WHERE fingerprint = ?",
                            [(fp,) for fp, _ in rows],
                        )
                    return rows

                with self._lock:
                    doomed = self._retry_locked(_sweep)
                for _, payload_name in doomed:
                    path = self.root / payload_name
                    if path.exists():
                        path.unlink()
                removed += len(doomed)
        removed += self._sweep_orphans()
        return removed

    def merge_from(self, source: "ResultStore | str | Path") -> dict:
        """Union ``source``'s entries into this store; returns the counts.

        The shard-merge primitive behind ``repro-patrol store merge``: every
        readable entry of ``source`` is copied over **verbatim** — payload
        bytes, creation time, library version and index columns all preserved
        — so a merged store is byte-identical to one that executed every
        shard itself, and merging is idempotent.  Entries whose fingerprint
        this store already holds are *duplicate-benign*: when the two records
        agree (canonical JSON comparison) the copy is skipped, and when they
        differ the merge raises :class:`MergeConflictError` **before**
        touching anything else — conflicting shards are a provenance problem
        to investigate, not to paper over.  Dangling source rows (index entry
        whose payload file is unreadable) are skipped, exactly as lookups
        treat them.

        Returns ``{"merged": copied, "duplicates": skipped}``.
        """
        if not isinstance(source, ResultStore):
            source = ResultStore(source)
        pending: list[tuple] = []
        duplicates = 0
        for row in source._rows():
            fingerprint = row[0]
            src = source._load_entry(fingerprint, row[1:])
            if src is None:
                continue
            mine = None
            if self.contains(fingerprint):
                with self._lock:
                    mine_row = self._connection().execute(
                        "SELECT strategy, family, seed, created_at, "
                        "library_version, payload FROM runs WHERE fingerprint = ?",
                        (fingerprint,),
                    ).fetchone()
                mine = self._load_entry(fingerprint, mine_row) if mine_row else None
            if mine is not None:
                mine_json = json.dumps(mine.record, sort_keys=True, default=_np_safe)
                src_json = json.dumps(src.record, sort_keys=True, default=_np_safe)
                if mine_json != src_json:
                    raise MergeConflictError(fingerprint, source.root)
                duplicates += 1
                continue
            pending.append(row)

        # The whole source is vetted before the first byte lands, so a
        # conflict anywhere aborts the merge with this store untouched.
        for fingerprint, strategy, family, seed, created_at, version, payload_name in pending:
            src_path = source.root / payload_name
            dest_path = self._payload_path(fingerprint)
            atomic_write_text(dest_path, src_path.read_text())

            def _insert() -> None:
                with self._connection() as conn:
                    conn.execute(
                        "INSERT OR REPLACE INTO runs "
                        "(fingerprint, strategy, family, seed, created_at, "
                        "library_version, payload) VALUES (?, ?, ?, ?, ?, ?, ?)",
                        (fingerprint, strategy, family, seed, created_at,
                         version, str(dest_path.relative_to(self.root))),
                    )

            with self._lock:
                self._retry_locked(_insert)
        return {"merged": len(pending), "duplicates": duplicates}

    def _sweep_orphans(self) -> int:
        if not self.records_dir.exists():
            return 0
        indexed = {payload for _, _, _, _, _, _, payload in self._rows()}
        swept = 0
        for path in self.records_dir.glob("*/*"):
            if not path.is_file():
                continue
            rel = str(path.relative_to(self.root))
            if rel not in indexed:
                path.unlink()
                swept += 1
        return swept


def _canonical_strategy(name: str) -> str:
    from repro.baselines.base import canonical_strategy_name

    try:
        return canonical_strategy_name(name)
    except ValueError:
        return name  # query for an unregistered name simply matches nothing


def _canonical_family(name: str) -> str:
    from repro.scenarios.registry import canonical_scenario_family

    try:
        return canonical_scenario_family(name)
    except ValueError:
        return name


# --------------------------------------------------------------------------- #
# Default store: configure / clear / stats (mirrors repro.geometry.cache)
# --------------------------------------------------------------------------- #

_CONFIGURED_ROOT: "Path | None" = None
_ENABLED: bool = True


def configure(*, root: "str | Path | None" = None, enabled: "bool | None" = None) -> None:
    """Set the default store root and/or the implicit-resume switch.

    ``root`` (when given) becomes the default store directory, taking
    precedence over ``REPRO_STORE_DIR``.  ``enabled=False`` stops campaigns
    and experiments from resuming *implicitly* (``store=None``); explicitly
    passing a store or ``store=True`` still works.  ``None`` leaves either
    setting unchanged.
    """
    global _CONFIGURED_ROOT, _ENABLED
    if root is not None:
        _CONFIGURED_ROOT = Path(root)
    if enabled is not None:
        _ENABLED = bool(enabled)


def default_root() -> "Path | None":
    """The configured default store directory, or ``None`` when unset.

    Resolution order: ``configure(root=...)``, then a non-empty
    ``REPRO_STORE_DIR`` environment variable (read at call time).
    """
    if _CONFIGURED_ROOT is not None:
        return _CONFIGURED_ROOT
    env = os.environ.get("REPRO_STORE_DIR", "").strip()
    return Path(env) if env else None


def _fallback_root() -> Path:
    cache_home = os.environ.get("XDG_CACHE_HOME", "").strip()
    base = Path(cache_home) if cache_home else Path.home() / ".cache"
    return base / "repro-patrol" / "store"


def default_store(*, create: bool = False) -> "ResultStore | None":
    """The default :class:`ResultStore`, or ``None`` when no root is configured.

    ``create=True`` falls back to the user cache directory
    (``$XDG_CACHE_HOME/repro-patrol/store``) instead of returning ``None`` —
    the behaviour behind ``store=True`` / the CLI's bare ``--store``.
    """
    root = default_root()
    if root is None:
        if not create:
            return None
        root = _fallback_root()
    return ResultStore(root)


def store_enabled() -> bool:
    """Whether implicit resume (``store=None``) is active and a root is configured."""
    return _ENABLED and default_root() is not None


def resolve_store(store: Any) -> "ResultStore | None":
    """Normalise a ``store=`` argument into a :class:`ResultStore` or ``None``.

    * ``None`` — the default store when one is configured **and** enabled
      (set ``REPRO_STORE_DIR`` to make every campaign resumable), else no
      store;
    * ``False`` — explicitly no store (the opt-out);
    * ``True`` — the default store, created under the user cache directory
      when no root is configured;
    * a path or :class:`ResultStore` — that store.
    """
    if store is None:
        return default_store() if _ENABLED else None
    if store is False:
        return None
    if store is True:
        return default_store(create=True)
    if isinstance(store, ResultStore):
        return store
    if isinstance(store, (str, Path)):
        return ResultStore(store)
    raise TypeError(
        f"store must be None, a bool, a path or a ResultStore, got {type(store).__name__}"
    )


def clear_store() -> int:
    """Clear the default store (no-op returning 0 when none is configured)."""
    store = default_store()
    return store.clear() if store is not None else 0


def store_stats() -> "dict | None":
    """Stats of the default store, or ``None`` when none is configured."""
    store = default_store()
    return store.stats() if store is not None else None
