"""Query layer over stored runs: filter past campaigns by spec and record content.

A :class:`StoredRun` is one indexed cache entry — fingerprint, index
metadata, the canonical run payload it was computed from, and (when loaded)
the record itself.  :func:`matches` evaluates the keyword filters accepted by
:meth:`repro.store.ResultStore.query` against one entry:

* a **scalar** filter value means equality (``num_targets=20``);
* a **tuple** ``(lo, hi)`` means an inclusive range, with ``None`` for an
  open end (``num_targets=(10, 30)``, ``horizon=(None, 30_000)``);
* a **list/set** means membership (``strategy=["chb", "b-tctp"]``);
* a **callable** is a predicate over the looked-up value.

Filter keys are resolved against the entry in this order: the record itself
(metrics, labels, identification columns), then the canonical spec payload's
scenario parameters, strategy parameters, simulator fields, and finally its
top-level fields (``strategy``, ``seed``, ...).  An entry whose key resolves
nowhere does not match — filtering on ``gap_fraction`` naturally restricts
the result to corridor-family runs.
"""

from __future__ import annotations

from dataclasses import dataclass
from pathlib import Path
from typing import Any, Mapping

__all__ = ["StoredRun", "lookup", "matches"]

_MISSING = object()


@dataclass(frozen=True)
class StoredRun:
    """One indexed entry of a :class:`~repro.store.ResultStore`.

    ``spec`` is the canonical run payload (see
    :func:`repro.store.canonical_run_payload`); ``record`` is the tidy result
    record, or ``None`` when the entry was listed without loading payloads.
    """

    fingerprint: str
    strategy: str
    family: str
    seed: "int | None"
    created_at: float
    library_version: str
    path: Path
    spec: "dict | None" = None
    record: "dict | None" = None


def lookup(entry: StoredRun, key: str) -> Any:
    """Resolve a filter key against one entry (see the module docstring).

    Returns the module-private ``_MISSING`` sentinel when the key resolves
    nowhere; callers should treat that as "does not match".
    """
    if entry.record is not None and key in entry.record:
        return entry.record[key]
    spec = entry.spec or {}
    for scope in (spec.get("scenario", {}).get("params"), spec.get("params"),
                  spec.get("sim")):
        if isinstance(scope, Mapping) and key in scope:
            return scope[key]
    if key == "family":
        return entry.family
    if key in spec:
        return spec[key]
    if key == "fingerprint":
        return entry.fingerprint
    return _MISSING


def _condition_holds(value: Any, condition: Any) -> bool:
    if callable(condition):
        return bool(condition(value))
    if isinstance(condition, tuple):
        if len(condition) != 2:
            raise ValueError(
                f"range filter must be a (lo, hi) pair, got {condition!r}"
            )
        lo, hi = condition
        try:
            if lo is not None and value < lo:
                return False
            if hi is not None and value > hi:
                return False
        except TypeError:
            return False  # e.g. a range filter against a string-valued column
        return True
    if isinstance(condition, (list, set, frozenset)):
        return value in condition
    return value == condition


def matches(entry: StoredRun, filters: Mapping[str, Any]) -> bool:
    """Whether ``entry`` satisfies every keyword filter."""
    for key, condition in filters.items():
        value = lookup(entry, key)
        if value is _MISSING or not _condition_holds(value, condition):
            return False
    return True


def parse_filter_expression(text: str) -> "tuple[str, Any]":
    """Parse one CLI ``--where`` expression into a ``(key, condition)`` pair.

    Grammar: ``key=value`` (equality), ``key=lo..hi`` (inclusive range, either
    end may be empty), ``key=a|b|c`` (membership).  Values parse as int, then
    float, then stay strings.
    """
    key, sep, raw = text.partition("=")
    key = key.strip()
    if not sep or not key:
        raise ValueError(f"filter {text!r} must look like key=value, key=lo..hi or key=a|b|c")
    raw = raw.strip()
    if ".." in raw:
        lo_text, _, hi_text = raw.partition("..")
        lo = _parse_scalar(lo_text) if lo_text.strip() else None
        hi = _parse_scalar(hi_text) if hi_text.strip() else None
        return key, (lo, hi)
    if "|" in raw:
        return key, [_parse_scalar(item) for item in raw.split("|") if item.strip()]
    return key, _parse_scalar(raw)


def _parse_scalar(text: str) -> Any:
    text = text.strip()
    lowered = text.lower()
    if lowered in ("true", "false"):
        return lowered == "true"
    if lowered in ("none", "null"):
        return None
    for convert in (int, float):
        try:
            return convert(text)
        except ValueError:
            continue
    return text
