"""Common strategy interface and the strategy registry.

Every planner in the library — the three TCTP variants and the three
baselines — satisfies the small :class:`PatrolStrategy` protocol: a ``name``
and a ``plan(scenario)`` method returning a
:class:`~repro.core.plan.PatrolPlan`.  The registry lets experiments, the
CLI and the :mod:`repro.runner` campaign executor refer to strategies by
name.

Each registration carries a :class:`StrategyInfo` record declaring the
keyword parameters the factory accepts and the aliases it answers to, so
callers can validate or filter parameter dictionaries *before* instantiating
a planner — declarative run specs rely on this to share one parameter set
across strategies that accept different subsets of it.
"""

from __future__ import annotations

import inspect
from dataclasses import dataclass, fields as dataclass_fields, is_dataclass
from typing import Any, Callable, Mapping, Protocol, runtime_checkable

from repro.core.plan import PatrolPlan
from repro.network.scenario import Scenario

__all__ = [
    "PatrolStrategy",
    "StrategyInfo",
    "register_strategy",
    "get_strategy",
    "available_strategies",
    "canonical_strategy_name",
    "strategy_info",
    "strategy_params",
    "filter_strategy_kwargs",
]


@runtime_checkable
class PatrolStrategy(Protocol):
    """Anything that can turn a scenario into a patrol plan."""

    name: str

    def plan(self, scenario: Scenario) -> PatrolPlan:  # pragma: no cover - protocol signature
        ...


@dataclass(frozen=True)
class StrategyInfo:
    """Registry record: how to build a strategy and which kwargs it accepts.

    ``strict`` is ``False`` only for factories whose signature takes
    ``**kwargs`` and that declared no explicit parameter set — for those,
    :func:`get_strategy` forwards keyword arguments unvalidated (the
    pre-declaration behaviour) and :func:`filter_strategy_kwargs` keeps
    everything.
    """

    name: str
    factory: Callable[..., PatrolStrategy]
    params: frozenset[str]
    aliases: tuple[str, ...] = ()
    description: str = ""
    strict: bool = True


_REGISTRY: dict[str, StrategyInfo] = {}      # canonical name -> info
_ALIASES: dict[str, str] = {}                # every accepted key -> canonical name
_defaults_loaded = False                     # guards the lazy built-in registration


def _declared_params(factory: Callable[..., PatrolStrategy]) -> tuple[frozenset[str], bool]:
    """Derive ``(params, strict)`` from the factory when none were declared.

    Dataclasses declare their fields (minus ``name``); other callables are
    inspected for named keyword parameters.  A ``**kwargs`` in the signature
    (or an uninspectable factory) makes the declaration non-strict so
    arbitrary keyword arguments keep flowing through, as they did before
    parameter declarations existed.
    """
    if is_dataclass(factory):
        return frozenset(f.name for f in dataclass_fields(factory) if f.name != "name"), True
    try:
        signature = inspect.signature(factory)
    except (TypeError, ValueError):
        return frozenset(), False
    names = set()
    strict = True
    for param in signature.parameters.values():
        if param.kind is inspect.Parameter.VAR_KEYWORD:
            strict = False
        elif param.kind in (inspect.Parameter.POSITIONAL_OR_KEYWORD,
                            inspect.Parameter.KEYWORD_ONLY) and param.name != "name":
            names.add(param.name)
    return frozenset(names), strict


def register_strategy(
    name: str,
    factory: Callable[..., PatrolStrategy],
    *,
    params: "frozenset[str] | tuple[str, ...] | None" = None,
    aliases: tuple[str, ...] = (),
    description: str = "",
) -> None:
    """Register a strategy factory under ``name`` (case-insensitive).

    ``params`` declares the keyword arguments the factory accepts; when it is
    omitted and the factory is a dataclass, the declaration is derived from
    its fields.  ``aliases`` are alternative names resolving to the same
    factory.
    """
    _ensure_defaults()  # custom registrations must never shadow the built-ins
    key = name.lower()
    if key in _ALIASES:
        raise ValueError(f"strategy {name!r} is already registered")
    for alias in aliases:
        if alias.lower() in _ALIASES:
            raise ValueError(f"strategy alias {alias!r} is already registered")
    if params is not None:
        declared, strict = frozenset(params), True
    else:
        declared, strict = _declared_params(factory)
    info = StrategyInfo(
        name=key,
        factory=factory,
        params=declared,
        aliases=tuple(a.lower() for a in aliases),
        description=description,
        strict=strict,
    )
    _REGISTRY[key] = info
    _ALIASES[key] = key
    for alias in info.aliases:
        _ALIASES[alias] = key


def available_strategies(*, include_aliases: bool = True) -> list[str]:
    """Names of all registered strategies (aliases included by default)."""
    _ensure_defaults()
    return sorted(_ALIASES) if include_aliases else sorted(_REGISTRY)


def canonical_strategy_name(name: str) -> str:
    """Resolve an alias (``"btctp"``) to its canonical registry name (``"b-tctp"``)."""
    _ensure_defaults()
    try:
        return _ALIASES[name.lower()]
    except KeyError as exc:
        raise ValueError(
            f"unknown strategy {name!r}; available: "
            f"{', '.join(available_strategies(include_aliases=False))}"
        ) from exc


def strategy_info(name: str) -> StrategyInfo:
    """The :class:`StrategyInfo` record for ``name`` (alias-tolerant)."""
    return _REGISTRY[canonical_strategy_name(name)]


def strategy_params(name: str) -> frozenset[str]:
    """The keyword parameters declared by strategy ``name``."""
    return strategy_info(name).params


def filter_strategy_kwargs(name: str, kwargs: Mapping[str, Any]) -> dict[str, Any]:
    """Subset of ``kwargs`` that strategy ``name`` declares it accepts.

    This is the campaign-layer convenience: one shared parameter set (say
    ``{"policy": "shortest", "seed": 7}``) can be fanned out across strategies
    that each take only part of it.
    """
    info = strategy_info(name)
    if not info.strict:
        return dict(kwargs)
    return {k: v for k, v in kwargs.items() if k in info.params}


def get_strategy(name: str, **kwargs) -> PatrolStrategy:
    """Instantiate a registered strategy by name.

    Parameters
    ----------
    name : str
        Registry name or alias (``"b-tctp"``, ``"btctp"``, ``"sweep"`` ...;
        see :func:`available_strategies`).
    **kwargs
        Keyword parameters declared by the strategy, validated against its
        registry entry and forwarded to the factory — e.g.
        ``get_strategy("w-tctp", policy="shortest")`` or
        ``get_strategy("random", seed=7)``.

    Returns
    -------
    PatrolStrategy
        A planner object exposing ``plan(scenario) -> PatrolPlan``.

    Raises
    ------
    ValueError
        If ``name`` is unknown, or a keyword is not declared by the strategy
        (for strict registrations).

    See Also
    --------
    repro.scenarios.get_scenario : the scenario-side twin.
    """
    info = strategy_info(name)
    unknown = sorted(set(kwargs) - info.params) if info.strict else []
    if unknown:
        accepted = ", ".join(sorted(info.params)) or "(none)"
        raise ValueError(
            f"strategy {info.name!r} does not accept parameter(s) "
            f"{', '.join(repr(p) for p in unknown)}; accepted: {accepted}"
        )
    return info.factory(**kwargs)


def _ensure_defaults() -> None:
    """Populate the registry lazily (avoids import cycles at module load)."""
    global _defaults_loaded
    if _defaults_loaded:
        return
    _defaults_loaded = True
    from repro.baselines.chb import CHBPlanner
    from repro.baselines.random_patrol import RandomPlanner
    from repro.baselines.sweep import SweepPlanner
    from repro.core.btctp import BTCTPPlanner
    from repro.core.rwtctp import RWTCTPPlanner
    from repro.core.wtctp import WTCTPPlanner

    # One alias table instead of per-alias factory lambdas: the dataclass
    # constructors *are* the factories, and parameter declarations are derived
    # from their fields.
    defaults: tuple[tuple[str, Callable[..., PatrolStrategy], tuple[str, ...], str], ...] = (
        ("random", RandomPlanner, (),
         "uncoordinated baseline: every mule wanders to a random target"),
        ("sweep", SweepPlanner, (),
         "one angular target group per mule, each patrolled independently"),
        ("chb", CHBPlanner, (),
         "shared convex-hull circuit, no location initialisation"),
        ("b-tctp", BTCTPPlanner, ("btctp", "tctp"),
         "basic TCTP: shared circuit + equally spaced start points"),
        ("w-tctp", WTCTPPlanner, ("wtctp",),
         "weighted TCTP: VIP-aware weighted patrolling path"),
        ("rw-tctp", RWTCTPPlanner, ("rwtctp",),
         "recharge-aware weighted TCTP (needs a recharge station)"),
    )
    for name, factory, aliases, description in defaults:
        register_strategy(name, factory, aliases=aliases, description=description)
