"""Common strategy interface and the strategy registry.

Every planner in the library — the three TCTP variants and the three
baselines — satisfies the small :class:`PatrolStrategy` protocol: a ``name``
and a ``plan(scenario)`` method returning a
:class:`~repro.core.plan.PatrolPlan`.  The registry lets experiments, the
CLI and the :mod:`repro.runner` campaign executor refer to strategies by
name.

Each registration carries a :class:`StrategyInfo` record declaring the
keyword parameters the factory accepts and the aliases it answers to, so
callers can validate or filter parameter dictionaries *before* instantiating
a planner — declarative run specs rely on this to share one parameter set
across strategies that accept different subsets of it.
"""

from __future__ import annotations

import inspect
from dataclasses import dataclass, fields as dataclass_fields, is_dataclass
from typing import Any, Callable, Mapping, Protocol, runtime_checkable

from repro.core.plan import PatrolPlan
from repro.network.scenario import Scenario

__all__ = [
    "PatrolStrategy",
    "StrategyInfo",
    "register_strategy",
    "get_strategy",
    "available_strategies",
    "canonical_strategy_name",
    "strategy_info",
    "strategy_params",
    "filter_strategy_kwargs",
    "validate_strategy_params",
    "all_strategy_infos",
    "strategy_alias_table",
    "derived_strategy_params",
]


@runtime_checkable
class PatrolStrategy(Protocol):
    """Anything that can turn a scenario into a patrol plan."""

    name: str

    def plan(self, scenario: Scenario) -> PatrolPlan:  # pragma: no cover - protocol signature
        ...


@dataclass(frozen=True)
class StrategyInfo:
    """Registry record: how to build a strategy and which kwargs it accepts.

    ``strict`` is ``False`` only for factories whose signature takes
    ``**kwargs`` and that declared no explicit parameter set — for those,
    :func:`get_strategy` forwards keyword arguments unvalidated (the
    pre-declaration behaviour) and :func:`filter_strategy_kwargs` keeps
    everything.

    ``validator`` (optional) receives a parameter dict and raises
    :class:`ValueError` on out-of-range or malformed values *without building
    anything* — campaigns run it on every cell before simulation starts,
    symmetric to :class:`repro.scenarios.registry.ScenarioInfo.validator`.
    ``composition`` (optional) is the strategy's default planning-pipeline
    composition (:class:`repro.planning.PipelineSpec`), shown by the
    ``repro-patrol strategies`` listing.
    """

    name: str
    factory: Callable[..., PatrolStrategy]
    params: frozenset[str]
    aliases: tuple[str, ...] = ()
    description: str = ""
    strict: bool = True
    validator: "Callable[[dict], None] | None" = None
    composition: "object | None" = None


_REGISTRY: dict[str, StrategyInfo] = {}      # canonical name -> info
_ALIASES: dict[str, str] = {}                # every accepted key -> canonical name
_defaults_loaded = False                     # guards the lazy built-in registration


def _declared_params(factory: Callable[..., PatrolStrategy]) -> tuple[frozenset[str], bool]:
    """Derive ``(params, strict)`` from the factory when none were declared.

    Dataclasses declare their fields (minus ``name``); other callables are
    inspected for named keyword parameters.  A ``**kwargs`` in the signature
    (or an uninspectable factory) makes the declaration non-strict so
    arbitrary keyword arguments keep flowing through, as they did before
    parameter declarations existed.
    """
    if is_dataclass(factory):
        return frozenset(f.name for f in dataclass_fields(factory) if f.name != "name"), True
    try:
        signature = inspect.signature(factory)
    except (TypeError, ValueError):
        return frozenset(), False
    names = set()
    strict = True
    for param in signature.parameters.values():
        if param.kind is inspect.Parameter.VAR_KEYWORD:
            strict = False
        elif param.kind in (inspect.Parameter.POSITIONAL_OR_KEYWORD,
                            inspect.Parameter.KEYWORD_ONLY) and param.name != "name":
            names.add(param.name)
    return frozenset(names), strict


def register_strategy(
    name: str,
    factory: Callable[..., PatrolStrategy],
    *,
    params: "frozenset[str] | tuple[str, ...] | None" = None,
    aliases: tuple[str, ...] = (),
    description: str = "",
    validator: "Callable[[dict], None] | None" = None,
    composition: "object | None" = None,
) -> None:
    """Register a strategy factory under ``name`` (case-insensitive).

    ``params`` declares the keyword arguments the factory accepts; when it is
    omitted and the factory is a dataclass, the declaration is derived from
    its fields (other callables are signature-inspected).  ``aliases`` are
    alternative names resolving to the same factory.  ``validator`` checks
    parameter values cheaply before any simulation (see
    :func:`validate_strategy_params`); ``composition`` is the strategy's
    default :class:`~repro.planning.PipelineSpec`, for listings.
    """
    _ensure_defaults()  # custom registrations must never shadow the built-ins
    key = name.lower()
    if key in _ALIASES:
        raise ValueError(f"strategy {name!r} is already registered")
    for alias in aliases:
        if alias.lower() in _ALIASES:
            raise ValueError(f"strategy alias {alias!r} is already registered")
    if params is not None:
        declared, strict = frozenset(params), True
    else:
        declared, strict = _declared_params(factory)
    info = StrategyInfo(
        name=key,
        factory=factory,
        params=declared,
        aliases=tuple(a.lower() for a in aliases),
        description=description,
        strict=strict,
        validator=validator,
        composition=composition,
    )
    _REGISTRY[key] = info
    _ALIASES[key] = key
    for alias in info.aliases:
        _ALIASES[alias] = key


def available_strategies(*, include_aliases: bool = True) -> list[str]:
    """Names of all registered strategies (aliases included by default)."""
    _ensure_defaults()
    return sorted(_ALIASES) if include_aliases else sorted(_REGISTRY)


def _did_you_mean(name: str, options) -> str:
    from repro.planning.stages import did_you_mean

    return did_you_mean(name, options)


def canonical_strategy_name(name: str) -> str:
    """Resolve an alias (``"btctp"``) to its canonical registry name (``"b-tctp"``)."""
    _ensure_defaults()
    try:
        return _ALIASES[name.lower()]
    except KeyError as exc:
        raise ValueError(
            f"unknown strategy {name!r}; available: "
            f"{', '.join(available_strategies(include_aliases=False))}"
            f"{_did_you_mean(name, _ALIASES)}"
        ) from exc


def strategy_info(name: str) -> StrategyInfo:
    """The :class:`StrategyInfo` record for ``name`` (alias-tolerant)."""
    return _REGISTRY[canonical_strategy_name(name)]


def strategy_params(name: str) -> frozenset[str]:
    """The keyword parameters declared by strategy ``name``."""
    return strategy_info(name).params


def filter_strategy_kwargs(name: str, kwargs: Mapping[str, Any]) -> dict[str, Any]:
    """Subset of ``kwargs`` that strategy ``name`` declares it accepts.

    This is the campaign-layer convenience: one shared parameter set (say
    ``{"policy": "shortest", "seed": 7}``) can be fanned out across strategies
    that each take only part of it.

    Raises
    ------
    ValueError
        If ``name`` is not a registered strategy — the error names the
        offending strategy, lists the registered ones and suggests a close
        match, so a typo in a sweep reads unambiguously.
    """
    info = strategy_info(name)  # raises the named, suggesting error on typos
    if not info.strict:
        return dict(kwargs)
    return {k: v for k, v in kwargs.items() if k in info.params}


def validate_strategy_params(name: str, params: Mapping[str, Any]) -> None:
    """Raise :class:`ValueError` on an unknown strategy, undeclared or bad params.

    Runs the declared-parameter check and the strategy's registered
    ``validator`` (value/range checks) without instantiating a planner —
    cheap enough for every cell of a campaign, symmetric to
    :func:`repro.scenarios.registry.validate_scenario_params`.
    """
    info = strategy_info(name)  # raises on unknown strategy
    if info.strict:
        unknown = sorted(set(params) - info.params)
        if unknown:
            accepted = ", ".join(sorted(info.params)) or "(none)"
            raise ValueError(
                f"strategy {info.name!r} does not accept parameter(s) "
                f"{', '.join(repr(p) for p in unknown)}; accepted: {accepted}"
                f"{_did_you_mean(unknown[0], info.params)}"
            )
    if info.validator is not None:
        try:
            info.validator(dict(params))
        except TypeError as exc:
            # e.g. a non-string stage spec: surface it as the same clean
            # pre-run rejection as any other bad parameter value.
            raise ValueError(
                f"invalid parameter value for strategy {info.name!r}: {exc}"
            ) from exc


def all_strategy_infos() -> dict[str, StrategyInfo]:
    """Snapshot of the whole registry: canonical name -> :class:`StrategyInfo`.

    The introspection hook for :mod:`repro.analysis.registry_contract`; the
    returned dict is a copy, so analyzers can never mutate the registry.
    """
    _ensure_defaults()
    return dict(_REGISTRY)


def strategy_alias_table() -> dict[str, str]:
    """Every accepted strategy key (canonical names included) -> canonical name."""
    _ensure_defaults()
    return dict(_ALIASES)


def derived_strategy_params(factory: Callable[..., PatrolStrategy]) -> tuple[frozenset[str], bool]:
    """Re-derive ``(params, strict)`` from a factory, as registration would.

    Exposed so the registry-contract checker can compare an explicitly
    declared parameter set against what the factory signature actually
    accepts — the two drifting apart is exactly the bug the checker exists
    to catch.
    """
    return _declared_params(factory)


def get_strategy(name: str, **kwargs) -> PatrolStrategy:
    """Instantiate a registered strategy by name.

    Parameters
    ----------
    name : str
        Registry name or alias (``"b-tctp"``, ``"btctp"``, ``"sweep"`` ...;
        see :func:`available_strategies`).
    **kwargs
        Keyword parameters declared by the strategy, validated against its
        registry entry and forwarded to the factory — e.g.
        ``get_strategy("w-tctp", policy="shortest")`` or
        ``get_strategy("random", seed=7)``.

    Returns
    -------
    PatrolStrategy
        A planner object exposing ``plan(scenario) -> PatrolPlan``.

    Raises
    ------
    ValueError
        If ``name`` is unknown, or a keyword is not declared by the strategy
        (for strict registrations).

    See Also
    --------
    repro.scenarios.get_scenario : the scenario-side twin.
    """
    info = strategy_info(name)
    unknown = sorted(set(kwargs) - info.params) if info.strict else []
    if unknown:
        accepted = ", ".join(sorted(info.params)) or "(none)"
        raise ValueError(
            f"strategy {info.name!r} does not accept parameter(s) "
            f"{', '.join(repr(p) for p in unknown)}; accepted: {accepted}"
            f"{_did_you_mean(unknown[0], info.params)}"
        )
    if info.validator is not None:
        # The same cheap value/range validation campaigns run per cell: an
        # out-of-range parameter fails here, before any planning starts,
        # instead of crashing deep inside a stage backend.
        try:
            info.validator(dict(kwargs))
        except TypeError as exc:
            raise ValueError(
                f"invalid parameter value for strategy {info.name!r}: {exc}"
            ) from exc
    return info.factory(**kwargs)


def _ensure_defaults() -> None:
    """Populate the registry lazily (avoids import cycles at module load)."""
    global _defaults_loaded
    if _defaults_loaded:
        return
    _defaults_loaded = True
    from repro.baselines.chb import CHBPlanner
    from repro.baselines.random_patrol import RandomPlanner
    from repro.baselines.sweep import SweepPlanner
    from repro.core.btctp import BTCTPPlanner
    from repro.core.rwtctp import RWTCTPPlanner
    from repro.core.wtctp import WTCTPPlanner
    from repro.planning import compositions

    # One alias table instead of per-alias factory lambdas: the dataclass
    # constructors *are* the factories, and parameter declarations are derived
    # from their fields.  Each entry carries its default pipeline composition
    # (for the CLI listing) and a pre-run parameter validator derived from it.
    defaults: tuple[tuple[str, Callable[..., PatrolStrategy], tuple[str, ...], str], ...] = (
        ("random", RandomPlanner, (),
         "uncoordinated baseline: every mule wanders to a random target"),
        ("sweep", SweepPlanner, (),
         "one angular target group per mule, each patrolled independently"),
        ("chb", CHBPlanner, (),
         "shared convex-hull circuit, no location initialisation"),
        ("b-tctp", BTCTPPlanner, ("btctp", "tctp"),
         "basic TCTP: shared circuit + equally spaced start points"),
        ("w-tctp", WTCTPPlanner, ("wtctp",),
         "weighted TCTP: VIP-aware weighted patrolling path"),
        ("rw-tctp", RWTCTPPlanner, ("rwtctp",),
         "recharge-aware weighted TCTP (needs a recharge station)"),
    )
    for name, factory, aliases, description in defaults:
        builder = compositions.LEGACY_PIPELINES[name]
        register_strategy(
            name, factory, aliases=aliases, description=description,
            validator=compositions.composition_validator(builder),
            composition=builder().spec,
        )
    compositions.register_builtin_compositions()
