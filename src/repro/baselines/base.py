"""Common strategy interface and the strategy registry.

Every planner in the library — the three TCTP variants and the three
baselines — satisfies the small :class:`PatrolStrategy` protocol: a ``name``
and a ``plan(scenario)`` method returning a
:class:`~repro.core.plan.PatrolPlan`.  The registry lets experiments and the
CLI refer to strategies by name.
"""

from __future__ import annotations

from typing import Callable, Protocol, runtime_checkable

import numpy as np

from repro.core.plan import PatrolPlan
from repro.network.scenario import Scenario

__all__ = ["PatrolStrategy", "register_strategy", "get_strategy", "available_strategies"]


@runtime_checkable
class PatrolStrategy(Protocol):
    """Anything that can turn a scenario into a patrol plan."""

    name: str

    def plan(self, scenario: Scenario) -> PatrolPlan:  # pragma: no cover - protocol signature
        ...


_REGISTRY: dict[str, Callable[..., PatrolStrategy]] = {}


def register_strategy(name: str, factory: Callable[..., PatrolStrategy]) -> None:
    """Register a strategy factory under ``name`` (case-insensitive)."""
    key = name.lower()
    if key in _REGISTRY:
        raise ValueError(f"strategy {name!r} is already registered")
    _REGISTRY[key] = factory


def available_strategies() -> list[str]:
    """Names of all registered strategies."""
    _ensure_defaults()
    return sorted(_REGISTRY)


def get_strategy(name: str, **kwargs) -> PatrolStrategy:
    """Instantiate a registered strategy by name.

    Keyword arguments are forwarded to the factory, e.g.
    ``get_strategy("w-tctp", policy="shortest")`` or
    ``get_strategy("random", seed=7)``.
    """
    _ensure_defaults()
    try:
        factory = _REGISTRY[name.lower()]
    except KeyError as exc:
        raise ValueError(
            f"unknown strategy {name!r}; available: {', '.join(available_strategies())}"
        ) from exc
    return factory(**kwargs)


def _ensure_defaults() -> None:
    """Populate the registry lazily (avoids import cycles at module load)."""
    if _REGISTRY:
        return
    from repro.baselines.chb import CHBPlanner
    from repro.baselines.random_patrol import RandomPlanner
    from repro.baselines.sweep import SweepPlanner
    from repro.core.btctp import BTCTPPlanner
    from repro.core.rwtctp import RWTCTPPlanner
    from repro.core.wtctp import WTCTPPlanner

    _REGISTRY.update(
        {
            "random": lambda **kw: RandomPlanner(**kw),
            "sweep": lambda **kw: SweepPlanner(**kw),
            "chb": lambda **kw: CHBPlanner(**kw),
            "b-tctp": lambda **kw: BTCTPPlanner(**kw),
            "btctp": lambda **kw: BTCTPPlanner(**kw),
            "tctp": lambda **kw: BTCTPPlanner(**kw),
            "w-tctp": lambda **kw: WTCTPPlanner(**kw),
            "wtctp": lambda **kw: WTCTPPlanner(**kw),
            "rw-tctp": lambda **kw: RWTCTPPlanner(**kw),
            "rwtctp": lambda **kw: RWTCTPPlanner(**kw),
        }
    )
