"""The Random baseline: every mule wanders to a uniformly random next target.

"The Random approach randomly selects the non-visited target as its next
destination" (Section V).  Each mule draws independently from its own seeded
stream, so a run is reproducible but the mules are uncoordinated — which is
exactly why the Data Collection Delay Time fluctuates wildly in Figure 7.
"""

from __future__ import annotations

from dataclasses import dataclass

from repro.core.plan import PatrolPlan
from repro.network.scenario import Scenario

__all__ = ["RandomPlanner"]


@dataclass
class RandomPlanner:
    """Planner for the Random baseline.

    ``plan`` runs the stage composition
    ``pool | none | stochastic | depot-start`` through the composable
    planning pipeline (:mod:`repro.planning`): the candidate pool replaces a
    constructed circuit, and the stochastic order backend draws each next
    waypoint online from a seeded per-mule stream.

    Parameters
    ----------
    seed:
        Base seed; mule ``i`` uses sub-stream ``i`` of this seed so adding a
        mule does not perturb the others' trajectories.
    include_sink:
        Whether the sink is part of the random destination pool (it is, per
        Section 2.1 — mules must still return data to the sink occasionally).
    avoid_repeat:
        Do not pick the target the mule is currently standing on.
    """

    seed: int | None = 0
    include_sink: bool = True
    avoid_repeat: bool = True
    name: str = "Random"

    def pipeline(self):
        """The stage composition this planner executes (a :class:`PlanningPipeline`)."""
        from repro.planning.compositions import random_pipeline

        return random_pipeline(
            seed=self.seed,
            include_sink=self.include_sink,
            avoid_repeat=self.avoid_repeat,
            name=self.name,
        )

    def plan(self, scenario: Scenario) -> PatrolPlan:
        return self.pipeline().plan(scenario)
