"""The Random baseline: every mule wanders to a uniformly random next target.

"The Random approach randomly selects the non-visited target as its next
destination" (Section V).  Each mule draws independently from its own seeded
stream, so a run is reproducible but the mules are uncoordinated — which is
exactly why the Data Collection Delay Time fluctuates wildly in Figure 7.
"""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np

from repro.core.plan import PatrolPlan, StochasticRoute
from repro.network.scenario import Scenario

__all__ = ["RandomPlanner"]


@dataclass
class RandomPlanner:
    """Planner for the Random baseline.

    Parameters
    ----------
    seed:
        Base seed; mule ``i`` uses sub-stream ``i`` of this seed so adding a
        mule does not perturb the others' trajectories.
    include_sink:
        Whether the sink is part of the random destination pool (it is, per
        Section 2.1 — mules must still return data to the sink occasionally).
    avoid_repeat:
        Do not pick the target the mule is currently standing on.
    """

    seed: int | None = 0
    include_sink: bool = True
    avoid_repeat: bool = True
    name: str = "Random"

    def plan(self, scenario: Scenario) -> PatrolPlan:
        coords = scenario.patrol_points()
        candidates = [t.id for t in scenario.targets]
        if self.include_sink:
            candidates.append(scenario.sink.id)

        seed_seq = np.random.SeedSequence(self.seed)
        children = seed_seq.spawn(len(scenario.mules))

        routes = {}
        for child, mule in zip(children, scenario.mules):
            routes[mule.id] = StochasticRoute(
                mule.id,
                candidates,
                coords,
                rng=np.random.default_rng(child),
                avoid_repeat=self.avoid_repeat,
            )
        metadata = {"seed": self.seed, "candidates": len(candidates)}
        return PatrolPlan(strategy=self.name, routes=routes, metadata=metadata)
