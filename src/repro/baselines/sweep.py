"""The Sweep baseline (reference [4]: "Sweep Coverage with Mobile Sensors").

"The Sweep approach initially divides the DMs into several groups and then
each DM individually patrols the targets of one group" (Section V).  We
partition the targets into one group per data mule by sweeping an angular
sector around the field centre (a deterministic stand-in for CSWEEP's
partitioning), build a convex-hull-insertion cycle per group (always including
the sink so collected data can be delivered), and let each mule patrol its own
group's cycle.  Because the groups' cycles have very different lengths, the
visiting intervals oscillate — the behaviour Figure 7 shows for Sweep.
"""

from __future__ import annotations

import math
from dataclasses import dataclass

from repro.core.plan import PatrolPlan
from repro.geometry.point import Point
from repro.network.scenario import Scenario
from repro.network.targets import Target

__all__ = ["SweepPlanner", "partition_targets_by_angle", "partition_targets_balanced"]


def partition_targets_by_angle(targets: list[Target], num_groups: int, center: Point) -> list[list[Target]]:
    """Split targets into contiguous angular sectors around ``center``.

    Targets are sorted by their polar angle and chopped into ``num_groups``
    consecutive runs of (as near as possible) equal cardinality, which mimics a
    sweep-line partition of the field.
    """
    if num_groups <= 0:
        raise ValueError("num_groups must be positive")
    ordered = sorted(
        targets,
        key=lambda t: (math.atan2(t.position.y - center.y, t.position.x - center.x), t.id),
    )
    groups: list[list[Target]] = [[] for _ in range(num_groups)]
    n = len(ordered)
    for i, t in enumerate(ordered):
        # proportional assignment keeps group sizes within one of each other
        g = min(i * num_groups // max(n, 1), num_groups - 1)
        groups[g].append(t)
    return groups


def partition_targets_balanced(targets: list[Target], num_groups: int, center: Point) -> list[list[Target]]:
    """Angular partition followed by rebalancing of empty groups.

    Guarantees every group is non-empty whenever there are at least as many
    targets as groups (a mule with nothing to patrol would sit idle forever).
    """
    groups = partition_targets_by_angle(targets, num_groups, center)
    if len(targets) < num_groups:
        return groups
    # Move targets from the largest groups into empty ones.
    for group in groups:
        while not group:
            donor = max(range(len(groups)), key=lambda j: len(groups[j]))
            if len(groups[donor]) <= 1:
                break
            group.append(groups[donor].pop())
    return groups


@dataclass
class SweepPlanner:
    """Planner for the Sweep baseline (one target group per data mule).

    ``plan`` runs the stage composition
    ``sweep-sector | none | as-built | depot-start`` through the composable
    planning pipeline (:mod:`repro.planning`): one angular-sector circuit per
    mule, each patrolled independently from wherever the mule was deployed.
    """

    include_sink_in_groups: bool = True
    tsp_method: str = "hull-insertion"
    name: str = "Sweep"

    def pipeline(self):
        """The stage composition this planner executes (a :class:`PlanningPipeline`)."""
        from repro.planning.compositions import sweep_pipeline

        return sweep_pipeline(
            include_sink_in_groups=self.include_sink_in_groups,
            tsp_method=self.tsp_method,
            name=self.name,
        )

    def plan(self, scenario: Scenario) -> PatrolPlan:
        return self.pipeline().plan(scenario)
