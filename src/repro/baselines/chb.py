"""The CHB baseline (reference [5]: convex-hull based data gathering).

"The CHB approach constructs an efficient Hamiltonian Circuit and then all DMs
visit each target along the constructed Hamiltonian Circuit.  However, the CHB
approach does not consider the situations of the scenario with different
weighted targets and the recharge problem." (Section V)

The construction is identical to B-TCTP's phase 1 — the same convex-hull
insertion circuit — but there is **no location initialisation**: each mule
simply enters the circuit at its nearest node and follows it.  Mules therefore
stay bunched the way they were deployed, consecutive gaps along the circuit
differ, and the per-target visiting intervals oscillate periodically — the
behaviour Figures 7 and 8 attribute to CHB.
"""

from __future__ import annotations

from dataclasses import dataclass

from repro.core.plan import PatrolPlan
from repro.network.scenario import Scenario

__all__ = ["CHBPlanner"]


@dataclass
class CHBPlanner:
    """Planner for the CHB baseline (shared circuit, no initialisation, no weights).

    ``plan`` runs the stage composition
    ``hamiltonian | none | as-built | depot-start`` through the composable
    planning pipeline (:mod:`repro.planning`) — B-TCTP's circuit without the
    location-initialisation phase.
    """

    tsp_method: str = "hull-insertion"
    improve_tour: bool = False
    name: str = "CHB"

    def pipeline(self):
        """The stage composition this planner executes (a :class:`PlanningPipeline`)."""
        from repro.planning.compositions import chb_pipeline

        return chb_pipeline(
            tsp_method=self.tsp_method, improve_tour=self.improve_tour, name=self.name
        )

    def plan(self, scenario: Scenario) -> PatrolPlan:
        return self.pipeline().plan(scenario)
