"""The CHB baseline (reference [5]: convex-hull based data gathering).

"The CHB approach constructs an efficient Hamiltonian Circuit and then all DMs
visit each target along the constructed Hamiltonian Circuit.  However, the CHB
approach does not consider the situations of the scenario with different
weighted targets and the recharge problem." (Section V)

The construction is identical to B-TCTP's phase 1 — the same convex-hull
insertion circuit — but there is **no location initialisation**: each mule
simply enters the circuit at its nearest node and follows it.  Mules therefore
stay bunched the way they were deployed, consecutive gaps along the circuit
differ, and the per-target visiting intervals oscillate periodically — the
behaviour Figures 7 and 8 attribute to CHB.
"""

from __future__ import annotations

from dataclasses import dataclass

from repro.core.plan import LoopRoute, PatrolPlan
from repro.graphs.hamiltonian import build_hamiltonian_circuit
from repro.graphs.validation import validate_tour
from repro.network.scenario import Scenario

__all__ = ["CHBPlanner"]


@dataclass
class CHBPlanner:
    """Planner for the CHB baseline (shared circuit, no initialisation, no weights)."""

    tsp_method: str = "hull-insertion"
    improve_tour: bool = False
    name: str = "CHB"

    def plan(self, scenario: Scenario) -> PatrolPlan:
        coords = scenario.patrol_points()
        tour = build_hamiltonian_circuit(
            coords, method=self.tsp_method, improve=self.improve_tour, start=scenario.sink.id
        )
        validate_tour(tour, expected_nodes=list(coords))
        loop = list(tour.order)

        routes = {}
        for mule in scenario.mules:
            nearest = tour.nearest_node(mule.position)
            routes[mule.id] = LoopRoute(
                mule.id, loop, tour.coordinates, entry_index=loop.index(nearest), start=None
            )
        metadata = {"path_length": tour.length(), "tour": loop}
        return PatrolPlan(strategy=self.name, routes=routes, metadata=metadata)
