"""Baseline patrolling strategies the paper compares against (Section V).

* **Random** — every data mule repeatedly picks a uniformly random next
  target (reference behaviour used in [4]'s comparisons).
* **Sweep** — the DMs are divided into groups and each DM patrols only the
  targets of its own group (reference [4], "Sweep Coverage with Mobile
  Sensors").
* **CHB** — all DMs follow the same convex-hull-based Hamiltonian circuit
  from wherever they start (reference [5]); no location initialisation, no
  weights, no recharge handling.
"""

from repro.baselines.base import (
    PatrolStrategy,
    StrategyInfo,
    get_strategy,
    available_strategies,
    canonical_strategy_name,
    strategy_info,
    strategy_params,
    filter_strategy_kwargs,
    validate_strategy_params,
)
from repro.baselines.random_patrol import RandomPlanner
from repro.baselines.sweep import SweepPlanner
from repro.baselines.chb import CHBPlanner

__all__ = [
    "PatrolStrategy",
    "StrategyInfo",
    "get_strategy",
    "available_strategies",
    "canonical_strategy_name",
    "strategy_info",
    "strategy_params",
    "filter_strategy_kwargs",
    "validate_strategy_params",
    "RandomPlanner",
    "SweepPlanner",
    "CHBPlanner",
]
