"""Campaign execution: fan independent run cells out over worker processes.

Every cell of a campaign — one ``(RunSpec, seed)`` pair — is an independent
work unit: it builds its scenario from the scenario spec + seed, plans,
simulates and reduces to one tidy record (a flat dict of cell coordinates and
metric values).  Cells therefore parallelise embarrassingly; the executor
uses a :class:`concurrent.futures.ProcessPoolExecutor` when ``max_workers``
asks for one, falls back to a serial loop otherwise, and preserves the
deterministic cell order either way — a campaign's records are **identical**
serial or parallel, byte for byte.

Cells that share a scenario description — every strategy of a grid axis runs
against the same ``(family, params, seed)`` triple, and a pinned scenario
seed shares one layout across all replications — do not regenerate it: a
content-keyed prototype cache (see :mod:`repro.geometry.cache`) stores the
generated scenario once and hands each cell a
:meth:`~repro.network.scenario.Scenario.fresh_copy`.  Reuse is purely
memoizing: records are byte-identical with the cache on or off.
"""

from __future__ import annotations

import json
import multiprocessing
import threading
import time
import warnings
from concurrent.futures import ProcessPoolExecutor
from contextlib import contextmanager
from dataclasses import dataclass, field
from pathlib import Path
from typing import Any, Callable, Iterable, Mapping, Sequence

import numpy as np

from repro.baselines.base import get_strategy, strategy_params
from repro.geometry.cache import ContentCache, cache_enabled, configure as _configure_caches
from repro.network.scenario import Scenario
from repro.obs import registry as _obs
from repro.runner.record_metrics import compute_metric, metric_name
from repro.runner.spec import CampaignSpec, RunSpec
from repro.sim.engine import PatrolSimulator
from repro.sim.metrics import average_dcdt, average_sd, max_visiting_interval
from repro.store import resolve_store, run_fingerprint
from repro.store.io import atomic_write_text

__all__ = [
    "execute_run",
    "execute_cell",
    "execute_many",
    "execute_resumable",
    "Campaign",
    "CampaignResult",
    "group_records",
    "group_mean",
]


# --------------------------------------------------------------------------- #
# Scenario reuse across cells
# --------------------------------------------------------------------------- #

# Generated scenarios memoized by (canonical family, declared params, the
# seed that actually drives generation).  The cache stores pristine
# prototypes; consumers always receive a fresh_copy(), so simulation never
# mutates a cached object.  Worker processes each hold their own cache.
_SCENARIO_CACHE = ContentCache("scenario_prototype", maxsize=64)


def _scenario_cache_key(spec: RunSpec) -> tuple:
    scenario = spec.scenario
    effective_seed = scenario.seed if scenario.seed is not None else spec.seed
    params = json.dumps(
        {k: v for k, v in sorted(scenario.params.items())}, sort_keys=True, default=repr
    )
    return (scenario.canonical_family(), params, effective_seed)


def build_cell_scenario(spec: RunSpec) -> Scenario:
    """The cell's scenario, reusing a cached prototype when the content matches.

    Two cells share a prototype exactly when they would generate identical
    scenarios: same canonical family, same declared parameters, and the same
    effective generation seed (the spec's pinned scenario seed, else the
    replication seed).  Each call returns an independent
    :meth:`~repro.network.scenario.Scenario.fresh_copy` of the prototype, so
    mule state never leaks between cells.  With caching disabled (see
    :func:`repro.geometry.cache.configure`) every cell regenerates from
    scratch; either way the scenario content is identical.
    """
    prototype = _SCENARIO_CACHE.get_or_compute(
        _scenario_cache_key(spec), lambda: spec.scenario.build(spec.seed)
    )
    return prototype.fresh_copy()


# --------------------------------------------------------------------------- #
# Planning vs simulation wall-clock split
# --------------------------------------------------------------------------- #

# Per-cell (planning_s, simulation_s) wall-clock pairs, collected only while
# a Campaign.run is active in this process (so long-lived services never
# accumulate unbounded state).  The split goes into CampaignResult metadata
# — mirroring the store hit/miss counters — NEVER into record dicts: records
# stay byte-identical across timed and untimed execution.
_TIMING_LOCK = threading.Lock()
_TIMING_ACTIVE = False
_TIMING_CELLS: list[tuple[float, float]] = []


@contextmanager
def _collect_timings():
    """Scope the per-cell wall-clock collector; yields the collected pairs.

    Cells dispatched through :func:`execute_run` in this process are timed
    directly; pool-worker cells are timed in the worker and merged here by
    the parent's result loop (see :func:`_execute_run_traced`).  Batched
    tensor cells (one stacked pass, no per-cell planning) and store hits
    (no execution at all) contribute nothing — ``cells_timed`` in the
    resulting metadata says how much of the campaign the split covers.
    """
    global _TIMING_ACTIVE
    collected: list[tuple[float, float]] = []
    with _TIMING_LOCK:
        _TIMING_ACTIVE = True
        _TIMING_CELLS.clear()
    try:
        yield collected
    finally:
        with _TIMING_LOCK:
            _TIMING_ACTIVE = False
            collected.extend(_TIMING_CELLS)
            _TIMING_CELLS.clear()


def _timing_metadata(pairs: "list[tuple[float, float]]") -> dict[str, Any]:
    """The metadata block summarizing collected (planning, simulation) pairs."""
    return {
        "cells_timed": len(pairs),
        "planning_s": sum(p for p, _s in pairs),
        "simulation_s": sum(s for _p, s in pairs),
    }


# --------------------------------------------------------------------------- #
# Single-cell execution (module-level so it pickles into worker processes)
# --------------------------------------------------------------------------- #

def execute_run(spec: RunSpec) -> dict:
    """Execute one run spec end to end and reduce it to a tidy record.

    Parameters
    ----------
    spec : RunSpec
        The fully specified run: scenario spec, strategy name + parameters,
        simulator config and replication seed.

    Returns
    -------
    dict
        A flat, JSON-safe record carrying the cell's identification
        (strategy, seed, scenario size, labels), the standard metrics of the
        paper's evaluation (``average_dcdt``, ``average_sd``,
        ``max_visiting_interval``, ``delivered_data``, ``total_distance``,
        ``num_dead_mules``), and any extra metrics the spec requested.

    Notes
    -----
    Strategies that declare a ``seed`` parameter receive ``spec.seed`` unless
    the spec sets one explicitly, exactly as campaign expansion does — the
    same spec produces the same record through either path.  Unlike campaign
    expansion, explicitly given params are *not* filtered: an undeclared
    strategy or scenario parameter raises, so a typo in a hand-written spec
    surfaces.

    The scenario is served through the prototype cache (see
    :func:`build_cell_scenario`); records are byte-identical with caching on
    or off.
    """
    record, pair = _execute_run_timed(spec)
    if _TIMING_ACTIVE:
        with _TIMING_LOCK:
            _TIMING_CELLS.append(pair)
    return record


def _execute_run_timed(spec: RunSpec) -> "tuple[dict, tuple[float, float]]":
    """One cell end to end; returns ``(record, (planning_s, simulation_s))``.

    The timed core of :func:`execute_run`: callers decide what to do with
    the wall-clock pair (the in-process wrapper feeds the campaign timing
    accumulator; pool workers return it alongside the record so the parent
    can merge it — see :func:`_execute_run_traced`).  With the obs registry
    enabled, the cell and its scenario-build / plan / simulate stages are
    wrapped in spans; neither timing nor spans ever touch the record.
    """
    with _obs.span("cell", cat="campaign", strategy=spec.strategy, seed=spec.seed):
        with _obs.span("scenario-build", cat="campaign"):
            scenario = build_cell_scenario(spec)
        params = dict(spec.params)
        if "seed" in strategy_params(spec.strategy) and "seed" not in params:
            params["seed"] = spec.seed
        planner = get_strategy(spec.strategy, **params)
        plan_start = time.perf_counter()
        with _obs.span("plan", cat="campaign", strategy=spec.strategy):
            plan = planner.plan(scenario)
        plan_elapsed = time.perf_counter() - plan_start
        sim_start = time.perf_counter()
        with _obs.span("simulate", cat="campaign"):
            result = PatrolSimulator(scenario, plan, spec.sim).run()
        sim_elapsed = time.perf_counter() - sim_start

        record: dict[str, Any] = {
            "strategy": spec.strategy,
            "seed": spec.seed,
            "num_targets": scenario.num_targets,
            "num_mules": scenario.num_mules,
            "horizon": spec.sim.horizon,
        }
        record.update(spec.labels)
        record["planner"] = plan.strategy
        record["average_dcdt"] = average_dcdt(result)
        record["average_sd"] = average_sd(result)
        record["max_visiting_interval"] = max_visiting_interval(result)
        record["delivered_data"] = result.total_delivered_data()
        record["total_distance"] = result.total_distance()
        record["num_dead_mules"] = len(result.dead_mules())
        for entry in spec.metrics:
            record[metric_name(entry)] = compute_metric(entry, scenario, plan, result)
    return record, (plan_elapsed, sim_elapsed)


def _execute_run_traced(spec: RunSpec) -> "tuple[dict, tuple[float, float], dict | None]":
    """Pool-worker cell execution: record + wall-clock pair + obs payload.

    Workers cannot reach the parent's timing accumulator or registry, so
    both travel back with the record: the parent merges the pair into the
    campaign timing (closing PR 9's serial-only gap) and absorbs the
    drained registry payload (counters add up exactly; span timestamps are
    rebased — see :func:`repro.obs.registry.absorb`).
    """
    record, pair = _execute_run_timed(spec)
    payload = _obs.drain() if _obs.obs_enabled() else None
    return record, pair, payload


def execute_cell(spec: RunSpec, *, store=None) -> "tuple[dict, str]":
    """Execute one cell against an optional store; returns ``(record, source)``.

    The store-aware single-cell primitive behind the service scheduler
    (:mod:`repro.service`): the spec's fingerprint is looked up first,
    a miss executes, and the fresh record is written back **immediately** —
    so concurrent callers and interrupted daemons never lose a finished
    cell.  ``source`` is ``"store"`` for a hit and ``"executed"`` for a
    fresh run.

    ``store`` must be an already-resolved :class:`~repro.store.ResultStore`
    or ``None`` (no :func:`~repro.store.resolve_store` defaulting here — the
    caller has already decided whether persistence is on).

    The spec is executed exactly as given: campaign expansion (replication
    labels, strategy-default filtering) must happen *before* this call —
    via ``Campaign(spec).cells()`` — for records and fingerprints to match
    campaign execution byte for byte.
    """
    if store is None:
        return execute_run(spec), "executed"
    fingerprint = run_fingerprint(spec)
    record = store.get(fingerprint)
    if record is not None:
        _obs.inc("store_lookup", outcome="hit")
        return record, "store"
    _obs.inc("store_lookup", outcome="miss")
    record = execute_run(spec)
    with _obs.span("store-write", cat="store", fingerprint=fingerprint):
        store.put(fingerprint, record, spec)
    return record, "executed"


def _init_worker_state(cache_on: bool, obs_on: bool) -> None:
    """Pool-worker initializer: mirror the parent's global switches."""
    _configure_caches(enabled=cache_on)
    _obs.configure(enabled=obs_on)


def execute_many(
    specs: Iterable[RunSpec],
    *,
    max_workers: int | None = None,
    progress: Callable[[int, int], None] | None = None,
    on_record: Callable[[int, dict], None] | None = None,
    cancel: Callable[[], bool] | None = None,
) -> list[dict]:
    """Execute run specs, optionally across processes; results keep spec order.

    ``max_workers`` of ``None``/``0``/``1`` runs serially in-process.  Worker
    processes are only worth their startup cost for non-trivial cell counts,
    and the output is identical either way.  ``progress(done, total)`` is
    called after each completed cell (serial mode only calls it in order).
    ``on_record(index, record)`` streams each finished record (in spec order,
    before ``progress``) — the resumable executor uses it to write results
    back to the store as they complete, so a killed campaign keeps its
    finished cells.  ``cancel()`` is polled between cells: once it returns
    true, no further cell starts and the records completed so far are
    returned (cells are atomic — the one in flight finishes; the service
    scheduler leans on this for graceful shutdown).

    Workers use the ``fork`` start method where the platform offers it, so
    strategies/metrics registered at runtime stay visible in the pool.  On
    spawn-only platforms (Windows), custom registrations must happen at
    import time of a module the workers also import.

    The serial path first hands the whole spec list to the batched fast path
    (:mod:`repro.sim.batchpath`), which evaluates every batch-eligible cell
    in one stacked tensor pass and leaves the rest to the ordinary per-cell
    :func:`execute_run`; records are byte-identical either way, and the
    callbacks still fire per cell in spec order.
    """
    specs = list(specs)
    if cancel is not None and cancel():
        return []
    if max_workers is not None and max_workers > 1 and len(specs) > 1:
        try:
            mp_context = multiprocessing.get_context("fork")
        except ValueError:  # pragma: no cover - spawn-only platforms
            mp_context = None
        try:
            # Workers inherit the parent's cache and obs switches explicitly:
            # spawn-started processes re-import with the defaults, and even
            # forked ones would miss a configure() call made after the pool
            # was created — the initializer makes the state deterministic.
            pool = ProcessPoolExecutor(
                max_workers=max_workers,
                mp_context=mp_context,
                initializer=_init_worker_state,
                initargs=(cache_enabled(), _obs.obs_enabled()),
            )
        except OSError as exc:  # platforms without process support
            # Only pool *construction* falls back to serial — an error raised
            # by a cell is a real failure and must propagate, not trigger a
            # silent from-scratch serial rerun.
            warnings.warn(f"parallel execution unavailable ({exc!r}); running serially",
                          RuntimeWarning, stacklevel=2)
        else:
            with pool:
                chunksize = max(1, len(specs) // (max_workers * 4))
                records = []
                # Timing and obs payloads travel back with each record (a
                # worker cannot reach this process's accumulators); the
                # plain mapper stays on the wire when neither is collecting,
                # so the common path ships records and nothing else.
                traced = _TIMING_ACTIVE or _obs.obs_enabled()
                mapper = _execute_run_traced if traced else execute_run
                for item in pool.map(mapper, specs, chunksize=chunksize):
                    if traced:
                        record, pair, payload = item
                        if _TIMING_ACTIVE:
                            with _TIMING_LOCK:
                                _TIMING_CELLS.append(pair)
                        if payload is not None:
                            _obs.absorb(payload)
                    else:
                        record = item
                    records.append(record)
                    if on_record is not None:
                        on_record(len(records) - 1, record)
                    if progress is not None:
                        progress(len(records), len(specs))
                    if cancel is not None and cancel():
                        pool.shutdown(wait=False, cancel_futures=True)
                        break
                return records
    # Imported lazily: batchpath pulls in campaign helpers, and eager
    # circular imports would tie module load order in knots.
    from repro.sim.batchpath import batch_execute_records

    pre = batch_execute_records(specs)
    records = []
    for index, spec in enumerate(specs):
        record = pre[index]
        records.append(record if record is not None else execute_run(spec))
        if on_record is not None:
            on_record(len(records) - 1, records[-1])
        if progress is not None:
            progress(len(records), len(specs))
        if cancel is not None and cancel():
            break
    return records


def execute_resumable(
    specs: Iterable[RunSpec],
    *,
    store,
    max_workers: int | None = None,
    progress: Callable[[int, int], None] | None = None,
    on_record: Callable[[int, dict], None] | None = None,
    cancel: Callable[[], bool] | None = None,
) -> "tuple[list[dict], int, int]":
    """Execute run specs against a result store; returns ``(records, hits, misses)``.

    Every spec's :func:`~repro.store.run_fingerprint` is looked up first;
    only the misses are executed (in parallel, exactly as
    :func:`execute_many` would) and each finished record is written back to
    the store **as it completes**, so an interrupted campaign resumes from
    its last finished cell.  Records keep spec order and are byte-identical
    (under JSON serialisation) to a cold, store-less run — stored hits are
    the JSON round-trip of what the miss path computed.

    ``progress(done, total)`` counts hits as immediately done: a fully warm
    campaign reports ``(total, total)`` once without executing anything.
    ``on_record(index, record)`` observes every record — the hits first (in
    spec order), then each executed miss as it completes, after its store
    write-back.  ``cancel()`` is polled between executed cells (see
    :func:`execute_many`); a cancelled call leaves ``None`` placeholders in
    the returned records for the cells that never ran, while ``misses``
    still counts every cell that *needed* execution.
    """
    specs = list(specs)
    fingerprints = [run_fingerprint(spec) for spec in specs]
    records: "list[dict | None]" = []
    miss_indices: list[int] = []
    for index, fingerprint in enumerate(fingerprints):
        record = store.get(fingerprint)
        records.append(record)
        if record is None:
            miss_indices.append(index)
    hits = len(specs) - len(miss_indices)
    if hits:
        _obs.inc("store_lookup", hits, outcome="hit")
    if miss_indices:
        _obs.inc("store_lookup", len(miss_indices), outcome="miss")
    if progress is not None and hits:
        progress(hits, len(specs))
    if on_record is not None:
        for index, record in enumerate(records):
            if record is not None:
                on_record(index, record)

    def _write_back(subset_index: int, record: dict) -> None:
        index = miss_indices[subset_index]
        with _obs.span("store-write", cat="store", fingerprint=fingerprints[index]):
            store.put(fingerprints[index], record, specs[index])
        if on_record is not None:
            on_record(index, record)

    fresh = execute_many(
        [specs[i] for i in miss_indices],
        max_workers=max_workers,
        progress=(
            None if progress is None
            else lambda done, _total: progress(hits + done, len(specs))
        ),
        on_record=_write_back,
        cancel=cancel,
    )
    for index, record in zip(miss_indices, fresh):
        records[index] = record
    return records, hits, len(miss_indices)


def _json_sanitize(obj: Any) -> Any:
    """Make a record value strict-JSON-safe: no NaN tokens, no numpy types.

    Python's ``json`` would happily emit the non-standard ``NaN`` token
    (which jq / ``JSON.parse`` reject), and several metrics return NaN by
    design — e.g. ``vip_sd`` on a scenario without VIPs — so non-finite
    floats become ``None``.  Custom metric extractors may also return numpy
    scalars or arrays (possibly nested inside lists/dicts): scalars are
    unwrapped to their Python twins and arrays become (nested) lists, with
    the same NaN handling applied element-wise.
    """
    if isinstance(obj, np.ndarray):
        obj = obj.tolist()
    if isinstance(obj, np.generic):
        obj = obj.item()
    if isinstance(obj, float) and not np.isfinite(obj):
        return None
    if isinstance(obj, dict):
        return {k: _json_sanitize(v) for k, v in obj.items()}
    if isinstance(obj, (list, tuple)):
        return [_json_sanitize(v) for v in obj]
    return obj


# --------------------------------------------------------------------------- #
# Record aggregation helpers
# --------------------------------------------------------------------------- #

def group_records(
    records: Iterable[Mapping[str, Any]],
    by: "str | Sequence[str]",
) -> "dict[Any, list[dict]]":
    """Group records by one column (scalar keys) or several (tuple keys)."""
    single = isinstance(by, str)
    columns = (by,) if single else tuple(by)
    groups: dict[Any, list[dict]] = {}
    for record in records:
        key = record[columns[0]] if single else tuple(record[c] for c in columns)
        groups.setdefault(key, []).append(dict(record))
    return groups


def group_mean(
    records: Iterable[Mapping[str, Any]],
    value: str,
    *,
    by: "str | Sequence[str]",
) -> "dict[Any, float]":
    """Group-by NaN-aware mean of one record column (the experiments' reducer)."""
    out: dict[Any, float] = {}
    for key, group in group_records(records, by).items():
        values = np.asarray([g[value] for g in group], dtype=float)
        with warnings.catch_warnings():
            warnings.simplefilter("ignore", category=RuntimeWarning)
            out[key] = float(np.nanmean(values))
    return out


# --------------------------------------------------------------------------- #
# Campaign + CampaignResult
# --------------------------------------------------------------------------- #

@dataclass
class CampaignResult:
    """Tidy per-run records of a finished campaign, with export helpers."""

    records: list[dict]
    spec: CampaignSpec | None = None
    metadata: dict = field(default_factory=dict)

    def __len__(self) -> int:
        return len(self.records)

    def __iter__(self):
        return iter(self.records)

    def columns(self) -> list[str]:
        """Union of record keys, ordered by first appearance."""
        seen: dict[str, None] = {}
        for record in self.records:
            for key in record:
                seen.setdefault(key)
        return list(seen)

    def values(self, column: str) -> list:
        """One column across all records (missing entries become NaN)."""
        return [record.get(column, float("nan")) for record in self.records]

    def group_mean(self, value: str, *, by: "str | Sequence[str]") -> "dict[Any, float]":
        """Group-by NaN-aware mean of one metric column."""
        return group_mean(self.records, value, by=by)

    def to_rows(self, *, scalar_only: bool = False) -> tuple[list[str], list[list]]:
        """Header + row table of the records (``scalar_only`` drops list/dict columns)."""
        columns = self.columns()
        if scalar_only:
            columns = [
                c for c in columns
                if not any(isinstance(r.get(c), (list, tuple, dict)) for r in self.records)
            ]
        rows = [[record.get(c, "") for c in columns] for record in self.records]
        return columns, rows

    def _payload(self) -> dict[str, Any]:
        payload: dict[str, Any] = {"records": _json_sanitize(self.records)}
        if self.spec is not None:
            payload["spec"] = self.spec.to_dict()
        if self.metadata:
            payload["metadata"] = self.metadata
        return payload

    def to_json(self, *, indent: int | None = 2) -> str:
        """Strict-JSON payload of the records (+ spec); NaN metrics become null."""
        return json.dumps(self._payload(), indent=indent, sort_keys=True, allow_nan=False)

    def save_json(self, path: "str | Path") -> Path:
        """Write the payload with the same ``_meta`` stamp as ``results_io.save_result``,
        so archived record files are traceable to the library version that made them.

        The write is atomic (temp file + ``os.replace``): a killed run leaves
        either the previous artifact or the complete new one, never a
        truncated JSON document.
        """
        from repro import __version__

        payload = self._payload()
        payload["_meta"] = {"library_version": __version__, "saved_at_unix": time.time()}
        text = json.dumps(payload, indent=2, sort_keys=True, allow_nan=False)
        return atomic_write_text(path, text + "\n")

    def save_csv(self, path: "str | Path") -> Path:
        """Export the scalar columns as CSV, atomically (see :meth:`save_json`)."""
        from repro.experiments.reporting import to_csv

        headers, rows = self.to_rows(scalar_only=True)
        # newline="" writes the CSV's own line endings verbatim on every
        # platform instead of translating them to os.linesep.
        return atomic_write_text(path, to_csv(headers, rows), newline="")


class Campaign:
    """Executor for a campaign (or single run) spec.

    Parameters
    ----------
    spec : CampaignSpec or RunSpec
        What to execute; a bare :class:`RunSpec` becomes a one-cell campaign.
    max_workers : int, optional
        ``None`` (or 1) runs serially in-process; any larger value fans the
        cells out over that many worker processes.  Records come back in
        deterministic cell order either way, with identical contents.

    Notes
    -----
    Cells that share a scenario description reuse one generated prototype
    (each receiving a fresh copy), and cells whose scenarios share geometry
    reuse memoized tours — see :mod:`repro.geometry.cache` and
    ``docs/PERFORMANCE.md``.  Both optimisations are byte-invisible in the
    records.

    Examples
    --------
    >>> from repro.runner import Campaign, CampaignSpec, RunSpec
    >>> spec = CampaignSpec(base=RunSpec(strategy="b-tctp"),
    ...                     grid={"strategy": ["chb", "b-tctp"]}, replications=4)
    >>> result = Campaign(spec, max_workers=4).run()    # doctest: +SKIP
    >>> result.group_mean("average_sd", by="strategy")  # doctest: +SKIP
    """

    def __init__(
        self,
        spec: "CampaignSpec | RunSpec",
        *,
        max_workers: int | None = None,
    ) -> None:
        self.spec = spec if isinstance(spec, CampaignSpec) else CampaignSpec(base=spec)
        self.max_workers = max_workers
        self._cells: "list[RunSpec] | None" = None

    def cells(self) -> list[RunSpec]:
        """The expanded, ordered run cells of this campaign (expanded once).

        The spec is immutable, so callers that validate via ``cells()`` and
        then ``run()`` do not pay for (or re-validate) a second expansion.
        """
        if self._cells is None:
            self._cells = self.spec.cells()
        return self._cells

    def run(
        self,
        *,
        progress: Callable[[int, int], None] | None = None,
        store=None,
        on_record: Callable[[int, dict], None] | None = None,
        cancel: Callable[[], bool] | None = None,
    ) -> CampaignResult:
        """Execute every cell and return the tidy records.

        Parameters
        ----------
        progress:
            Optional ``progress(done, total)`` callback, invoked after each
            completed cell (store hits count as immediately done).
        store:
            Resume from / write back to a persistent result store (see
            :func:`repro.store.resolve_store`): ``None`` uses the default
            store when one is configured (``REPRO_STORE_DIR``), ``False``
            opts out, ``True`` forces one, and a path or
            :class:`~repro.store.ResultStore` names one explicitly.  Cells
            whose fingerprints are already stored are served from the store
            — byte-identical under JSON serialisation to executing them —
            and the result metadata gains a ``"store"`` block with the
            hit/miss counts.
        on_record:
            Optional ``on_record(index, record)`` observer streaming each
            record as it becomes available (``index`` is the cell's position
            in :meth:`cells`); with a store, it fires after the record's
            write-back.
        cancel:
            Optional ``cancel()`` poll: once it returns true, no further
            cell starts; the result keeps the records completed so far (in
            cell order) and its metadata gains ``"cancelled": True``.

        Notes
        -----
        The result metadata always gains a ``"timing"`` block
        (``cells_timed`` / ``planning_s`` / ``simulation_s``): the plan-time
        vs sim-time wall-clock split over the cells that ran through
        per-cell dispatch, in this process or in a pool worker (workers
        return their pair alongside the record).  Batched tensor cells and
        store hits are not timed per cell, so ``cells_timed`` may be less
        than ``num_cells``.  Timing lives in metadata only — records stay
        byte-identical whether or not they were timed.

        With the obs registry enabled — process-wide (``REPRO_OBS=1`` /
        :func:`repro.obs.configure`) or per-campaign via any cell's
        ``sim.obs`` knob — the metadata additionally gains an ``"obs"``
        block: the registry's snapshot *for this campaign only* (counter
        and histogram deltas plus span tallies; see
        :func:`repro.obs.registry.obs_collected`).  Span bodies never land
        in metadata — they carry timestamps and go to the trace/JSONL
        exporters instead.
        """
        cells = self.cells()
        metadata: dict[str, Any] = {"num_cells": len(cells), "max_workers": self.max_workers}
        resolved = resolve_store(store)
        obs_on = _obs.obs_enabled() or any(cell.sim.obs for cell in cells)
        with _obs.obs_collected(enabled=obs_on or None) as window, \
                _collect_timings() as timed_cells:
            with _obs.span("campaign", cat="campaign", cells=len(cells)):
                if resolved is None:
                    records = execute_many(cells, max_workers=self.max_workers,
                                           progress=progress,
                                           on_record=on_record, cancel=cancel)
                else:
                    records, hits, misses = execute_resumable(
                        cells, store=resolved, max_workers=self.max_workers,
                        progress=progress, on_record=on_record, cancel=cancel,
                    )
                    metadata["store"] = {
                        "root": str(resolved.root), "hits": hits, "misses": misses
                    }
            if window is not None:
                metadata["obs"] = window.snapshot()
        metadata["timing"] = _timing_metadata(timed_cells)
        completed = [r for r in records if r is not None]
        if len(completed) < len(cells):
            metadata["cancelled"] = True
        return CampaignResult(records=completed, spec=self.spec, metadata=metadata)
