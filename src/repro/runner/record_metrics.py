"""Named metric extractors evaluated on finished runs.

Run specs stay declarative (and JSON-serialisable) by referring to extra
metrics *by name*; the executor looks the names up here and calls
``fn(scenario, plan, result, **params)`` after the simulation finishes.
The built-in extractors cover everything the paper's figure experiments
need beyond the standard record columns; downstream code can add more with
:func:`register_metric`.
"""

from __future__ import annotations

from typing import Any, Callable

import numpy as np

from repro.core.plan import PatrolPlan
from repro.network.scenario import Scenario
from repro.sim.metrics import average_sd, dcdt_series, interval_statistics
from repro.sim.recorder import SimulationResult

__all__ = ["register_metric", "available_metrics", "compute_metric", "metric_name"]

MetricFn = Callable[..., Any]

_METRICS: dict[str, MetricFn] = {}


def register_metric(name: str, fn: MetricFn | None = None):
    """Register ``fn`` as the extractor behind ``name`` (usable as a decorator)."""
    if fn is None:
        def decorator(f: MetricFn) -> MetricFn:
            register_metric(name, f)
            return f
        return decorator
    if name in _METRICS:
        raise ValueError(f"metric {name!r} is already registered")
    _METRICS[name] = fn
    return fn


def available_metrics() -> list[str]:
    """Names of all registered metric extractors."""
    return sorted(_METRICS)


def metric_name(entry: "str | tuple[str, dict]") -> str:
    """The record-column name of a metric entry (``"name"`` or ``(name, params)``)."""
    return entry if isinstance(entry, str) else entry[0]


def compute_metric(
    entry: "str | tuple[str, dict]",
    scenario: Scenario,
    plan: PatrolPlan,
    result: SimulationResult,
) -> Any:
    """Evaluate one metric entry on a finished run."""
    if isinstance(entry, str):
        name, params = entry, {}
    else:
        name, params = entry
    try:
        fn = _METRICS[name]
    except KeyError as exc:
        raise ValueError(
            f"unknown metric {name!r}; available: {', '.join(available_metrics())}"
        ) from exc
    return fn(scenario, plan, result, **params)


# --------------------------------------------------------------------------- #
# Built-in extractors
# --------------------------------------------------------------------------- #

@register_metric("dcdt_series")
def _dcdt_series(scenario, plan, result, *, num_points: int = 41):
    """Per-visit-index mean DCDT series (Figure 7's curves)."""
    return dcdt_series(result, num_points=num_points)


@register_metric("vip_sd")
def _vip_sd(scenario, plan, result):
    """Average visiting-interval SD restricted to the VIP targets (NaN if none)."""
    vip_ids = [t.id for t in scenario.targets if t.is_vip]
    if not vip_ids:
        return float("nan")
    return average_sd(result, targets=vip_ids)


@register_metric("vip_sd_or_all")
def _vip_sd_or_all(scenario, plan, result):
    """VIP-restricted interval SD, falling back to all targets when no VIPs exist.

    This is Figure 10's ``vip_only`` semantics: a scenario without VIPs is
    scored on all targets rather than reported as NaN.
    """
    vip_ids = [t.id for t in scenario.targets if t.is_vip]
    return average_sd(result, targets=vip_ids or None)


@register_metric("predicted_vip_sd")
def _predicted_vip_sd(scenario, plan, result):
    """Analytic VIP interval SD for a fixed-walk plan with equally spaced mules."""
    from repro.analysis.theory import analyze_loop

    walk = plan.metadata.get("walk")
    vip_ids = [t.id for t in scenario.targets if t.is_vip]
    if walk is None or not vip_ids:
        return float("nan")
    analysis = analyze_loop(walk, scenario.patrol_points(), num_mules=scenario.num_mules,
                            velocity=scenario.params.mule_velocity)
    sds = [analysis.sd(v) for v in vip_ids if v in analysis.occurrences]
    return float(np.mean(sds)) if sds else float("nan")


@register_metric("wpp_length")
def _wpp_length(scenario, plan, result):
    """Length of the weighted patrolling path (W-TCTP / RW-TCTP plans)."""
    return plan.metadata.get("wpp_length", float("nan"))


@register_metric("path_length")
def _path_length(scenario, plan, result):
    """Length of the phase-1 Hamiltonian circuit (B-TCTP / CHB plans)."""
    return plan.metadata.get("path_length", float("nan"))


@register_metric("expected_visiting_interval")
def _expected_interval(scenario, plan, result):
    """The closed-form ``|P| / (n v)`` interval, when the plan reports one."""
    return plan.metadata.get("expected_visiting_interval", float("nan"))


@register_metric("survival_fraction")
def _survival_fraction(scenario, plan, result):
    """Fraction of mules still alive at the end of the horizon."""
    return len(result.surviving_mules()) / max(len(result.traces), 1)


@register_metric("total_recharges")
def _total_recharges(scenario, plan, result):
    """Total recharge events across the fleet."""
    return sum(trace.recharges for trace in result.traces.values())


@register_metric("interval_stats")
def _interval_stats(scenario, plan, result):
    """The full interval-statistics dictionary (nested; JSON-safe)."""
    return interval_statistics(result)
