"""Campaign sharding: split one campaign into N disjoint, resumable slices.

A mega-campaign outgrows one machine long before it outgrows the result
store, so the missing piece is a way to split the *work* while keeping the
*records* content-addressed and mergeable.  The unit of splitting is the
cell index: :meth:`~repro.runner.spec.CampaignSpec.cells` expansion is
deterministic, so "cells 0, 3, 6, ... of this spec" names the same work on
every machine that holds the spec — no cell payloads need to travel, only a
small JSON manifest.

The workflow (see ``docs/SHARDING.md``)::

    repro-patrol shard create campaign.json --num-shards 3 -o manifest.json
    # copy manifest.json to three machines, then on machine i:
    repro-patrol shard run manifest.json --index i --store ./shard-i
    # collect the shard stores anywhere and union them:
    repro-patrol store merge --store ./merged --from-dir ./shard-0 ./shard-1 ./shard-2
    repro-patrol report --store ./merged ...

Each shard runs through :func:`~repro.runner.campaign.execute_resumable`,
so a killed shard resumes from its last finished cell, and re-running a
finished shard is a no-op.  Because records are content-addressed by run
fingerprint, the merged store is byte-identical to one produced by running
the unsharded campaign — the shard/merge golden tests and CI's
``shard-smoke`` job assert exactly that.

Cells are assigned round-robin (cell ``i`` to shard ``i % N``): grid
expansion orders replications innermost, so round-robin spreads every
(strategy, scenario) combination evenly across shards instead of handing
one shard all the expensive cells of a single strategy.
"""

from __future__ import annotations

import json
from pathlib import Path
from typing import Any, Mapping

from repro.runner.campaign import CampaignResult, execute_many, execute_resumable
from repro.runner.spec import CampaignSpec, RunSpec
from repro.store import resolve_store
from repro.store.io import atomic_write_json

__all__ = [
    "MANIFEST_FORMAT",
    "make_manifest",
    "write_manifest",
    "load_manifest",
    "manifest_campaign",
    "shard_cells",
    "run_shard",
]

MANIFEST_FORMAT = "repro-shard-manifest/1"


def make_manifest(spec: "CampaignSpec | RunSpec", num_shards: int) -> dict:
    """Split ``spec`` into ``num_shards`` disjoint shards; returns the manifest.

    The manifest embeds the full campaign spec (so a shard runner needs no
    other file) plus one explicit cell-index list per shard.  Explicit lists
    — rather than "shard i takes ``i % N``" by convention — make the
    manifest self-describing and let :func:`load_manifest` verify
    disjointness and completeness against the embedded spec, so a manifest
    edited by hand cannot silently drop or double-run cells.
    """
    if isinstance(spec, RunSpec):
        spec = CampaignSpec(base=spec)
    if num_shards < 1:
        raise ValueError("num_shards must be >= 1")
    num_cells = len(spec.cells())
    if num_shards > num_cells:
        raise ValueError(
            f"cannot split {num_cells} cells into {num_shards} shards: "
            "at least one shard would be empty"
        )
    shards = [
        {
            "index": index,
            "cells": list(range(index, num_cells, num_shards)),
        }
        for index in range(num_shards)
    ]
    return {
        "format": MANIFEST_FORMAT,
        "campaign": spec.to_dict(),
        "num_shards": num_shards,
        "num_cells": num_cells,
        "shards": shards,
    }


def write_manifest(
    spec: "CampaignSpec | RunSpec", num_shards: int, path: "str | Path"
) -> Path:
    """Write :func:`make_manifest`'s output to ``path`` atomically."""
    return atomic_write_json(
        path, make_manifest(spec, num_shards), indent=2, sort_keys=True,
        allow_nan=False,
    )


def load_manifest(source: "str | Path | Mapping[str, Any]") -> dict:
    """Load and validate a shard manifest (path or already-parsed mapping).

    Validation is structural *and* semantic: the format tag must match, the
    embedded campaign must expand to exactly the manifest's ``num_cells``,
    and the shard cell lists must partition ``range(num_cells)`` — every
    cell exactly once, no index out of range.  A manifest that fails any of
    these describes different work than its spec, and running it would
    silently corrupt the merged campaign.
    """
    if isinstance(source, Mapping):
        data: dict = dict(source)
    else:
        data = json.loads(Path(source).read_text())
    if not isinstance(data, dict) or data.get("format") != MANIFEST_FORMAT:
        raise ValueError(
            f"not a shard manifest: expected format {MANIFEST_FORMAT!r}, "
            f"got {data.get('format')!r}" if isinstance(data, dict)
            else "not a shard manifest: top level is not a JSON object"
        )
    for key in ("campaign", "num_shards", "num_cells", "shards"):
        if key not in data:
            raise ValueError(f"shard manifest is missing the {key!r} key")
    spec = CampaignSpec.from_dict(data["campaign"])
    num_cells = len(spec.cells())
    if num_cells != data["num_cells"]:
        raise ValueError(
            f"shard manifest claims {data['num_cells']} cells but its campaign "
            f"expands to {num_cells} — the spec and the shard lists disagree"
        )
    shards = data["shards"]
    if len(shards) != data["num_shards"]:
        raise ValueError(
            f"shard manifest claims {data['num_shards']} shards "
            f"but lists {len(shards)}"
        )
    seen: set[int] = set()
    total = 0
    for position, shard in enumerate(shards):
        if shard.get("index") != position:
            raise ValueError(
                f"shard at position {position} carries index {shard.get('index')!r}"
            )
        cells = shard.get("cells", [])
        for cell in cells:
            if not isinstance(cell, int) or not 0 <= cell < num_cells:
                raise ValueError(
                    f"shard {position} lists cell {cell!r}, outside 0..{num_cells - 1}"
                )
        total += len(cells)
        seen.update(cells)
    if len(seen) != total:
        raise ValueError("shard manifest assigns at least one cell to two shards")
    if len(seen) != num_cells:
        missing = sorted(set(range(num_cells)) - seen)[:5]
        raise ValueError(
            f"shard manifest covers {len(seen)} of {num_cells} cells "
            f"(first missing: {missing})"
        )
    return data


def manifest_campaign(manifest: Mapping[str, Any]) -> CampaignSpec:
    """The campaign spec embedded in a (validated) manifest."""
    return CampaignSpec.from_dict(manifest["campaign"])


def shard_cells(manifest: Mapping[str, Any], shard_index: int) -> list[RunSpec]:
    """The fully expanded run cells of one shard, in campaign cell order."""
    shards = manifest["shards"]
    if not 0 <= shard_index < len(shards):
        raise ValueError(
            f"shard index {shard_index} out of range: manifest has {len(shards)} shards"
        )
    cells = manifest_campaign(manifest).cells()
    return [cells[i] for i in shards[shard_index]["cells"]]


def run_shard(
    manifest: Mapping[str, Any],
    shard_index: int,
    *,
    store: Any = None,
    max_workers: "int | None" = None,
    progress=None,
) -> CampaignResult:
    """Execute one shard of a manifest, resumably when a store is given.

    With a store (the normal multi-machine flow), every finished cell is
    written back as it completes and already-stored cells are skipped —
    interrupting and re-running a shard never loses or recomputes work.
    Without one, the shard simply executes in-process and returns its
    records (useful for smoke tests).  The result's metadata records the
    shard coordinates so a merged report can trace provenance.
    """
    cells = shard_cells(manifest, shard_index)
    metadata: dict[str, Any] = {
        "num_cells": len(cells),
        "max_workers": max_workers,
        "shard": {"index": shard_index, "num_shards": manifest["num_shards"]},
    }
    resolved = resolve_store(store)
    if resolved is None:
        records = execute_many(cells, max_workers=max_workers, progress=progress)
    else:
        records, hits, misses = execute_resumable(
            cells, store=resolved, max_workers=max_workers, progress=progress
        )
        metadata["store"] = {"root": str(resolved.root), "hits": hits, "misses": misses}
    completed = [r for r in records if r is not None]
    return CampaignResult(records=completed, spec=None, metadata=metadata)
