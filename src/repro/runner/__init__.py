"""Unified execution API: declarative run specs and parallel campaigns.

This package is the one way to run anything in the library:

* :class:`RunSpec` — one simulation run (scenario spec + strategy +
  simulator config + seed) as plain, JSON-round-trippable data;
* :class:`CampaignSpec` — a parameter grid × replications over a base spec;
* :class:`Campaign` — executes a spec's cells serially or over a process
  pool (``max_workers``), returning a :class:`CampaignResult` of tidy
  per-run records with identical content either way;
* :func:`execute_run` — run one spec in-process and get its record;
* :func:`load_spec` — read a ``RunSpec`` / ``CampaignSpec`` JSON file, the
  format behind ``python -m repro run spec.json``;
* :func:`execute_resumable` / ``Campaign.run(store=...)`` — incremental
  execution against the persistent result store (:mod:`repro.store`): cells
  whose content fingerprints are already stored are served from disk, only
  the misses execute;
* :func:`make_manifest` / :func:`run_shard` (:mod:`repro.runner.sharding`)
  — split one campaign into N disjoint, individually resumable shards for
  multi-machine execution, merged back with ``repro-patrol store merge``.

The CLI (``python -m repro run`` / ``sweep``), every figure experiment in
:mod:`repro.experiments`, and the benchmark harness are all built on top of
this module.
"""

from repro.runner.spec import RunSpec, CampaignSpec, load_spec, spec_from_dict
from repro.runner.campaign import (
    Campaign,
    CampaignResult,
    execute_run,
    execute_many,
    execute_resumable,
    group_records,
    group_mean,
)
from repro.runner.record_metrics import (
    available_metrics,
    compute_metric,
    register_metric,
)
from repro.runner.sharding import (
    load_manifest,
    make_manifest,
    run_shard,
    shard_cells,
    write_manifest,
)

__all__ = [
    "RunSpec",
    "CampaignSpec",
    "load_spec",
    "spec_from_dict",
    "Campaign",
    "CampaignResult",
    "execute_run",
    "execute_many",
    "execute_resumable",
    "group_records",
    "group_mean",
    "available_metrics",
    "compute_metric",
    "register_metric",
    "make_manifest",
    "write_manifest",
    "load_manifest",
    "shard_cells",
    "run_shard",
]
