"""Declarative run specifications: one simulation cell, or a whole campaign.

A :class:`RunSpec` is everything needed to reproduce one simulation run —
scenario spec, strategy name + parameters, simulator config and the
replication seed — as plain data.  A :class:`CampaignSpec` is a parameter
grid over a base :class:`RunSpec` crossed with a replication count.  Both
round-trip losslessly through JSON, so arbitrary workloads can be authored as
data files and executed with ``python -m repro run spec.json`` or through
:class:`repro.runner.Campaign` — no code changes required.

Scenarios are described by :class:`repro.scenarios.ScenarioSpec` — a
registered family name plus its declared parameters.  Legacy
:class:`~repro.workloads.generator.ScenarioConfig` objects and legacy JSON
scenario dicts (bare config fields, no ``"family"`` key) are converted
transparently and generate byte-identical scenarios.

Grid axes are addressed by name:

* ``"strategy"`` — the strategy registry name;
* ``"scenario.family"`` — the scenario family registry name
  (``"distribution"`` is accepted as a legacy spelling);
* ``"scenario.<param>"`` / ``"sim.<field>"`` / ``"params.<name>"`` — an
  explicit scope;
* a bare name (``"num_targets"``, ``"horizon"``, ``"policy"``) — resolved to
  the scenario spec if it is a parameter declared by one of the campaign's
  scenario families, else to the simulator config if it is a
  :class:`SimulationConfig` field, else to the strategy parameters.

When a campaign fans one parameter set out over several strategies (or
scenario families), each cell keeps only the parameters its strategy
(family) declares — see :func:`repro.baselines.base.filter_strategy_kwargs`
and :func:`repro.scenarios.filter_scenario_kwargs` — and strategies that
declare a ``seed`` parameter (the Random baseline) receive the cell's
replication seed automatically.
"""

from __future__ import annotations

import dataclasses
import itertools
import json
from dataclasses import dataclass, field, replace
from pathlib import Path
from typing import Any, Mapping, Sequence

from repro.baselines.base import (
    canonical_strategy_name,
    filter_strategy_kwargs,
    strategy_info,
    strategy_params,
    validate_strategy_params,
)
from repro.network.scenario import SimulationParameters
from repro.planning.stages import STAGE_KINDS
from repro.runner.record_metrics import available_metrics, metric_name
from repro.scenarios.registry import scenario_family_params
from repro.scenarios.spec import ScenarioSpec, spec_from_scenario_config
from repro.sim.engine import SimulationConfig
from repro.workloads.generator import ScenarioConfig

__all__ = ["RunSpec", "CampaignSpec", "load_spec", "spec_from_dict"]

_SCENARIO_FIELDS = frozenset(f.name for f in dataclasses.fields(ScenarioConfig))
_SIM_FIELDS = frozenset(f.name for f in dataclasses.fields(SimulationConfig))
_PARAMS_FIELDS = frozenset(f.name for f in dataclasses.fields(SimulationParameters))

# Axis names that set the scenario family; "distribution" is the legacy
# ScenarioConfig spelling kept for backwards compatibility.
_FAMILY_AXES = ("family", "distribution")


# --------------------------------------------------------------------------- #
# (de)serialisation helpers
# --------------------------------------------------------------------------- #

def _check_keys(data: Mapping[str, Any], allowed: frozenset[str], what: str) -> None:
    unknown = sorted(set(data) - set(allowed))
    if unknown:
        raise ValueError(
            f"unknown {what} field(s): {', '.join(unknown)}; "
            f"allowed: {', '.join(sorted(allowed))}"
        )


def _scenario_to_dict(spec: ScenarioSpec) -> dict:
    data = spec.to_dict()
    if data == {"family": "uniform"}:  # default scenario: keep the JSON lean
        return {}
    return data


def _scenario_from_dict(data: Mapping[str, Any]) -> ScenarioSpec:
    """Parse a scenario spec dict; legacy config dicts (no ``family``) still load."""
    if "family" in data:
        return ScenarioSpec.from_dict(data)
    payload = dict(data)
    _check_keys(payload, _SCENARIO_FIELDS, "scenario")
    params = payload.pop("params", None)
    if params is not None and not isinstance(params, SimulationParameters):
        _check_keys(params, _PARAMS_FIELDS, "scenario.params")
        payload["params"] = SimulationParameters(**params)
    elif params is not None:
        payload["params"] = params
    for key in ("sink_position", "recharge_position"):
        if payload.get(key) is not None:
            payload[key] = tuple(payload[key])
    return spec_from_scenario_config(ScenarioConfig(**payload))


def _sim_to_dict(cfg: SimulationConfig) -> dict:
    data = dataclasses.asdict(cfg)
    default = SimulationConfig()
    for f in dataclasses.fields(SimulationConfig):
        if data.get(f.name) == getattr(default, f.name):
            data.pop(f.name)
    return data


def _sim_from_dict(data: Mapping[str, Any]) -> SimulationConfig:
    _check_keys(data, _SIM_FIELDS, "sim")
    return SimulationConfig(**data)


def _normalize_metric(entry: Any) -> "str | tuple[str, dict]":
    """Metric entries are ``"name"`` or ``("name", {params})`` (lists from JSON)."""
    if isinstance(entry, str):
        return entry
    name, params = entry
    return (str(name), dict(params))


# --------------------------------------------------------------------------- #
# RunSpec
# --------------------------------------------------------------------------- #

@dataclass(frozen=True)
class RunSpec:
    """One fully specified simulation run, as data.

    Attributes
    ----------
    strategy:
        Registry name (aliases accepted, e.g. ``"btctp"``).
    scenario:
        The scenario spec (family + declared params); a legacy
        :class:`ScenarioConfig` is converted on construction.
    params:
        Keyword parameters for the strategy factory.
    sim:
        Simulator config (horizon, energy tracking, ...).
    seed:
        Seed for scenario generation (unless the scenario spec pins its own)
        and, for strategies that declare a ``seed`` parameter, the strategy
        itself.
    metrics:
        Extra metric extractors to evaluate on the finished run, by name
        (see :mod:`repro.runner.record_metrics`); entries may also be
        ``(name, {param: value})`` pairs.
    labels:
        Free-form key/value cell coordinates copied into the result record
        (campaigns use this for the grid axes and the replication index).
    """

    strategy: str
    scenario: ScenarioSpec = field(default_factory=ScenarioSpec)
    params: Mapping[str, Any] = field(default_factory=dict)
    sim: SimulationConfig = field(default_factory=SimulationConfig)
    seed: int = 0
    metrics: tuple = ()
    labels: Mapping[str, Any] = field(default_factory=dict)

    def __post_init__(self) -> None:
        if isinstance(self.scenario, ScenarioConfig):  # legacy configs keep working
            object.__setattr__(self, "scenario", spec_from_scenario_config(self.scenario))
        object.__setattr__(self, "params", dict(self.params))
        object.__setattr__(self, "labels", dict(self.labels))
        object.__setattr__(
            self, "metrics", tuple(_normalize_metric(m) for m in self.metrics)
        )

    # -- serialisation --------------------------------------------------- #
    def to_dict(self) -> dict:
        data: dict[str, Any] = {"kind": "run", "strategy": self.strategy, "seed": self.seed}
        scenario = _scenario_to_dict(self.scenario)
        if scenario:
            data["scenario"] = scenario
        if self.params:
            data["params"] = dict(self.params)
        sim = _sim_to_dict(self.sim)
        if sim:
            data["sim"] = sim
        if self.metrics:
            data["metrics"] = [list(m) if isinstance(m, tuple) else m for m in self.metrics]
        if self.labels:
            data["labels"] = dict(self.labels)
        return data

    @classmethod
    def from_dict(cls, data: Mapping[str, Any]) -> "RunSpec":
        payload = dict(data)
        payload.pop("kind", None)
        _check_keys(payload, frozenset(f.name for f in dataclasses.fields(cls)), "run spec")
        if "scenario" in payload and not isinstance(
            payload["scenario"], (ScenarioSpec, ScenarioConfig)
        ):
            payload["scenario"] = _scenario_from_dict(payload["scenario"])
        if "sim" in payload and not isinstance(payload["sim"], SimulationConfig):
            payload["sim"] = _sim_from_dict(payload["sim"])
        if "metrics" in payload:
            payload["metrics"] = tuple(_normalize_metric(m) for m in payload["metrics"])
        return cls(**payload)

    def to_json(self, *, indent: int | None = 2) -> str:
        return json.dumps(self.to_dict(), indent=indent, sort_keys=True)

    @classmethod
    def from_json(cls, text: str) -> "RunSpec":
        return cls.from_dict(json.loads(text))

    # -- derived --------------------------------------------------------- #
    def canonical_strategy(self) -> str:
        return canonical_strategy_name(self.strategy)

    def validate(self) -> "RunSpec":
        """Raise :class:`ValueError` on an unknown strategy/family or undeclared params.

        Use this on hand-written single-run specs, where a typo'd parameter
        should surface instead of being filtered away by campaign expansion.
        """
        # Unknown strategy, undeclared params, out-of-range values (via the
        # strategy's registered validator) — all before any simulation.
        validate_strategy_params(self.strategy, self.params)
        self.scenario.validate()  # unknown family / undeclared or out-of-range params
        self.validate_metrics()
        return self

    def validate_metrics(self) -> "RunSpec":
        """Reject unknown metric names *before* any simulation work is spent."""
        known = set(available_metrics())
        unknown = sorted(set(metric_name(m) for m in self.metrics) - known)
        if unknown:
            raise ValueError(
                f"unknown metric(s) {', '.join(repr(m) for m in unknown)}; "
                f"available: {', '.join(sorted(known))}"
            )
        return self

    def with_strategy_defaults(self) -> "RunSpec":
        """Filter params to the strategy's declared set and inject the seed.

        Campaigns call this on every expanded cell so a shared parameter set
        works across strategies with different signatures; the Random
        baseline (the only default strategy declaring ``seed``) receives the
        cell's replication seed unless one was given explicitly.
        """
        params = filter_strategy_kwargs(self.strategy, self.params)
        if "seed" in strategy_params(self.strategy) and "seed" not in params:
            params["seed"] = self.seed
        return replace(self, params=params)


# --------------------------------------------------------------------------- #
# CampaignSpec
# --------------------------------------------------------------------------- #

def _apply_axis(
    spec: RunSpec, axis: str, value: Any, scenario_params: frozenset[str]
) -> RunSpec:
    """Set one grid-axis value on a run spec (see the module docstring).

    ``scenario_params`` is the set of parameter names that resolve to the
    scenario scope for *bare* axis names — the union over every family the
    campaign sweeps.
    """
    if axis == "strategy":
        return replace(spec, strategy=str(value))
    if axis == "seed":
        return replace(spec, seed=int(value))
    scope, _, name = axis.partition(".")
    if not name:
        scope, name = "", axis
    if name in _FAMILY_AXES and scope in ("", "scenario"):
        return replace(spec, scenario=replace(spec.scenario, family=str(value)))
    if scope == "scenario" and name == "seed":
        return replace(spec, scenario=replace(spec.scenario, seed=value))
    if scope == "scenario" or (not scope and name in scenario_params):
        return replace(spec, scenario=spec.scenario.with_params(**{name: value}))
    if scope == "sim" or (not scope and name in _SIM_FIELDS):
        return replace(spec, sim=replace(spec.sim, **{name: value}))
    if scope == "plan":
        # "plan.tour" / "plan.order" / ...: a planning-pipeline stage axis.
        # Stage axes are strategy parameters of the same name (the 'pipeline'
        # strategy declares all four), so they sweep like any other param.
        if name not in STAGE_KINDS:
            raise ValueError(
                f"unknown grid axis {axis!r}: 'plan.' axes must name a pipeline "
                f"stage ({', '.join(STAGE_KINDS)})"
            )
        return replace(spec, params={**spec.params, name: value})
    if scope in ("", "params"):
        return replace(spec, params={**spec.params, name: value})
    raise ValueError(
        f"unknown grid axis {axis!r}: use 'strategy', 'seed', 'scenario.family', a "
        "scenario/sim field name, a 'plan.<stage>' axis, or an explicit "
        "'scenario.'/'sim.'/'params.' prefix"
    )


@dataclass(frozen=True)
class CampaignSpec:
    """A parameter grid over a base run spec, crossed with replications.

    ``grid`` maps axis names to value lists; cells are the cartesian product
    of the axes (in declaration order), each repeated ``replications`` times
    with seeds ``base.seed + k * seed_stride`` — the same seed schedule as
    :func:`repro.experiments.common.replicate_seeds`.
    """

    base: RunSpec
    grid: Mapping[str, Sequence[Any]] = field(default_factory=dict)
    replications: int = 1
    seed_stride: int = 1000

    def __post_init__(self) -> None:
        object.__setattr__(self, "grid", {k: list(v) for k, v in dict(self.grid).items()})
        if self.replications < 1:
            raise ValueError("replications must be >= 1")

    # -- serialisation --------------------------------------------------- #
    def to_dict(self) -> dict:
        data: dict[str, Any] = {"kind": "campaign", "base": self.base.to_dict()}
        data["base"].pop("kind", None)
        if self.grid:
            data["grid"] = {k: list(v) for k, v in self.grid.items()}
        if self.replications != 1:
            data["replications"] = self.replications
        if self.seed_stride != 1000:
            data["seed_stride"] = self.seed_stride
        return data

    @classmethod
    def from_dict(cls, data: Mapping[str, Any]) -> "CampaignSpec":
        payload = dict(data)
        payload.pop("kind", None)
        _check_keys(payload, frozenset(f.name for f in dataclasses.fields(cls)), "campaign spec")
        base = payload.get("base", {})
        if not isinstance(base, RunSpec):
            payload["base"] = RunSpec.from_dict(base)
        return cls(**payload)

    def to_json(self, *, indent: int | None = 2) -> str:
        return json.dumps(self.to_dict(), indent=indent, sort_keys=True)

    @classmethod
    def from_json(cls, text: str) -> "CampaignSpec":
        return cls.from_dict(json.loads(text))

    # -- expansion ------------------------------------------------------- #
    def seeds(self, *, base_seed: int | None = None) -> list[int]:
        """The per-replication seed schedule (starting at the base spec's seed)."""
        first = self.base.seed if base_seed is None else base_seed
        return [first + k * self.seed_stride for k in range(self.replications)]

    def _campaign_strategies(self) -> list[str]:
        """Every strategy any cell of this campaign can run."""
        return [str(s) for s in self.grid.get("strategy", [self.base.strategy])]

    def _campaign_scenario_families(self) -> list[str]:
        """Every scenario family any cell of this campaign can use."""
        for axis in ("scenario.family", "scenario.distribution", "family", "distribution"):
            if axis in self.grid:
                return [str(f) for f in self.grid[axis]]
        return [self.base.scenario.family]

    def _campaign_scenario_params(self) -> frozenset[str]:
        """Union of the parameters declared by the campaign's scenario families.

        Raises the registry's clean :class:`ValueError` when a family (from
        the base spec or a family axis) does not exist — a typo'd family is
        rejected before any simulation runs.
        """
        names: set[str] = set()
        for family in self._campaign_scenario_families():
            names |= scenario_family_params(family)
        return frozenset(names)

    def _validate_axes(self, scenario_params: frozenset[str]) -> None:
        """Reject axis names that would silently sweep nothing.

        A bare or ``params.``-scoped name that is not a parameter declared by
        at least one of the campaign's strategies would be filtered out of
        every cell — N identical runs labelled as a sweep.  Catch the typo
        here.  The same applies to ``scenario.``-scoped names and the
        campaign's scenario families.  (``sim.`` axes fail naturally at
        expansion if the field does not exist; non-strict strategies accept
        anything.)
        """
        strategies = self._campaign_strategies()
        strict = all(strategy_info(s).strict for s in strategies)
        for axis in self.grid:
            scope, _, name = axis.partition(".")
            if not name:
                scope, name = "", axis
            if scope and scope not in ("scenario", "sim", "params", "plan"):
                raise ValueError(
                    f"unknown grid axis {axis!r}: use 'strategy', 'seed', "
                    "'scenario.family', a scenario/sim field name, a 'plan.<stage>' "
                    "axis, or an explicit 'scenario.'/'sim.'/'params.' prefix"
                )
            if scope == "scenario":
                if name in _FAMILY_AXES or name == "seed" or name in scenario_params:
                    continue
                families = self._campaign_scenario_families()
                raise ValueError(
                    f"grid axis {axis!r} names a parameter declared by none of the "
                    f"campaign's scenario families ({', '.join(repr(f) for f in families)})"
                )
            if scope == "plan" and name not in STAGE_KINDS:
                raise ValueError(
                    f"unknown grid axis {axis!r}: 'plan.' axes must name a pipeline "
                    f"stage ({', '.join(STAGE_KINDS)})"
                )
            if scope == "sim" or (not scope and name in ("strategy", "seed")):
                continue
            if not scope and (name in _FAMILY_AXES or name in scenario_params
                              or name in _SIM_FIELDS):
                continue
            if not strict or any(name in strategy_params(s) for s in strategies):
                continue
            if scope == "plan":
                raise ValueError(
                    f"grid axis {axis!r} sweeps a pipeline stage, but none of "
                    f"{', '.join(repr(s) for s in strategies)} declares a {name!r} "
                    "parameter — use the 'pipeline' strategy for stage sweeps"
                )
            if scope == "params":
                raise ValueError(
                    f"grid axis {axis!r} names a parameter declared by none of "
                    f"{', '.join(repr(s) for s in strategies)} — the sweep would "
                    "run identical cells"
                )
            raise ValueError(
                f"grid axis {axis!r} matches no scenario/sim field and no parameter "
                f"declared by {', '.join(repr(s) for s in strategies)}; use an explicit "
                "'scenario.' or 'sim.' prefix for a shadowed field name"
            )

    def _validate_base_params(self) -> None:
        """A base param no campaign strategy accepts is a typo, not a no-op.

        Shared params are *filtered* per cell so multi-strategy sweeps work,
        but a key that every strategy in the campaign would drop can only be
        a mistake (``"polcy"``) — reject it like :meth:`RunSpec.validate`
        does for single runs.  Skipped when a non-strict (``**kwargs``)
        strategy is in play, since such a strategy accepts anything.
        """
        strategies = self._campaign_strategies()
        if not all(strategy_info(s).strict for s in strategies):
            return
        grid_params = {axis.partition(".")[2] or axis for axis in self.grid}
        for key in self.base.params:
            if key in grid_params or key == "seed":
                continue
            if not any(key in strategy_params(s) for s in strategies):
                raise ValueError(
                    f"base param {key!r} is not accepted by any campaign strategy "
                    f"({', '.join(repr(s) for s in strategies)})"
                )

    def _validate_base_scenario_params(self, scenario_params: frozenset[str]) -> None:
        """A base scenario param no campaign family accepts is a typo.

        Scenario params are *filtered* per cell so ``scenario.family`` sweeps
        work, but a key that every family in the campaign would drop can only
        be a mistake (``"num_tragets"``) — reject it before simulating.
        """
        for key in self.base.scenario.params:
            if key in scenario_params:
                continue
            families = self._campaign_scenario_families()
            raise ValueError(
                f"base scenario param {key!r} is not accepted by any campaign "
                f"scenario family ({', '.join(repr(f) for f in families)})"
            )

    def cells(self) -> list[RunSpec]:
        """Expand the grid into the ordered list of fully specified run cells.

        Ordering is deterministic — axes vary slowest-first in declaration
        order, replications innermost — so results line up regardless of how
        the cells are executed.  A ``"seed"`` axis shifts the whole
        replication seed schedule of its cells (it is not recorded as a
        label: the record's ``seed`` column already carries the true value).

        Every cell's scenario spec is restricted to its family's declared
        parameters and validated here — an unknown family, a typo'd parameter
        or an out-of-range value surfaces before any simulation starts.
        """
        scenario_params = self._campaign_scenario_params()  # raises on unknown family
        self._validate_axes(scenario_params)
        self._validate_base_params()
        self._validate_base_scenario_params(scenario_params)
        self.base.validate_metrics()
        axes = list(self.grid.items())
        cells: list[RunSpec] = []
        for combo in itertools.product(*(values for _, values in axes)):
            spec = self.base
            labels = dict(self.base.labels)
            for (axis, _), value in zip(axes, combo):
                spec = _apply_axis(spec, axis, value, scenario_params)
                if axis != "seed":
                    labels[axis] = value
            spec = replace(spec, scenario=spec.scenario.restricted_to_family().validate())
            # Strategy-side pre-run validation, symmetric to the scenario
            # validation above: a typo'd stage name or out-of-range strategy
            # param in any cell fails here, before any simulation runs.  The
            # validator sees the params the cells will actually carry (the
            # strategy's declared subset of the shared parameter set).
            validate_strategy_params(
                spec.strategy, filter_strategy_kwargs(spec.strategy, spec.params)
            )
            for k, seed in enumerate(self.seeds(base_seed=spec.seed)):
                cell = replace(spec, seed=seed, labels={**labels, "replication": k})
                cells.append(cell.with_strategy_defaults())
        return cells


# --------------------------------------------------------------------------- #
# Loading
# --------------------------------------------------------------------------- #

def spec_from_dict(data: Mapping[str, Any]) -> "RunSpec | CampaignSpec":
    """Build a :class:`RunSpec` or :class:`CampaignSpec` from a plain dict.

    The ``"kind"`` field ("run" / "campaign") decides; without it, the
    presence of campaign-only fields (``base``, ``grid``, ``replications``)
    does.
    """
    kind = data.get("kind")
    if kind == "campaign" or (
        kind is None and ({"base", "grid", "replications"} & set(data))
    ):
        return CampaignSpec.from_dict(data)
    if kind in (None, "run"):
        return RunSpec.from_dict(data)
    raise ValueError(f"unknown spec kind {kind!r}; expected 'run' or 'campaign'")


def load_spec(path: "str | Path") -> "RunSpec | CampaignSpec":
    """Load a run or campaign spec from a JSON file."""
    return spec_from_dict(json.loads(Path(path).read_text()))
