"""Wireless mobile data-mule network substrate.

Models the entities the paper assumes: targets (normal and VIP), the sink,
the recharge station, the rectangular deployment field with disconnected
clusters, the data mules themselves, and the data-generation / collection
model that turns "visits" into delivered sensor data.
"""

from repro.network.targets import Target, Sink, RechargeStation, TargetKind, make_targets
from repro.network.mules import DataMule, MuleState
from repro.network.field import Field, Cluster
from repro.network.datamodel import DataBuffer, DataPacket, DataCollectionModel
from repro.network.scenario import Scenario, SimulationParameters

__all__ = [
    "Target",
    "Sink",
    "RechargeStation",
    "TargetKind",
    "make_targets",
    "DataMule",
    "MuleState",
    "Field",
    "Cluster",
    "DataBuffer",
    "DataPacket",
    "DataCollectionModel",
    "Scenario",
    "SimulationParameters",
]
