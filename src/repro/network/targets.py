"""Targets, the sink, and the recharge station.

The paper's terminology (Definition 1): a target with weight 1 is a Normal
Target Point (NTP); a target with weight greater than 1 is a Very Important
Point (VIP).  The sink node is itself treated as a target that must be visited
(Section 2.1), and RW-TCTP treats the recharge station as an extra NTP
(Section IV).
"""

from __future__ import annotations

import enum
from dataclasses import dataclass, field
from typing import Mapping, Sequence

from repro.geometry.point import Point, as_point

__all__ = ["TargetKind", "Target", "Sink", "RechargeStation", "make_targets"]


class TargetKind(str, enum.Enum):
    """Classification of patrol destinations."""

    NTP = "ntp"
    VIP = "vip"
    SINK = "sink"
    RECHARGE = "recharge"


@dataclass(frozen=True)
class Target:
    """A sensing target that data mules must visit periodically.

    Attributes
    ----------
    id:
        Unique identifier (hashable; the library uses strings like ``"g3"``).
    position:
        Location in the field, metres.
    weight:
        Required number of visits per complete traversal of the patrol
        structure.  ``1`` marks an NTP, ``> 1`` a VIP.
    data_rate:
        Sensor data generated per second (bits/s) — used by the data-delivery
        extension metrics, not by the core path construction.
    """

    id: str
    position: Point
    weight: int = 1
    data_rate: float = 1.0

    def __post_init__(self) -> None:
        object.__setattr__(self, "position", as_point(self.position))
        if self.weight < 1:
            raise ValueError(f"target {self.id!r}: weight must be >= 1, got {self.weight}")
        if self.data_rate < 0:
            raise ValueError(f"target {self.id!r}: data_rate must be non-negative")

    @property
    def kind(self) -> TargetKind:
        return TargetKind.VIP if self.weight > 1 else TargetKind.NTP

    @property
    def is_vip(self) -> bool:
        return self.weight > 1

    def reweighted(self, weight: int) -> "Target":
        """Copy of this target with a different weight."""
        return Target(self.id, self.position, weight, self.data_rate)


@dataclass(frozen=True)
class Sink:
    """The sink node to which collected data is ultimately delivered.

    Section 2.1: "The sink node is also treated as a target point, which
    should be visited by DMs" — so the sink participates in path construction
    exactly like an NTP, but it is also the data-delivery endpoint.
    """

    id: str
    position: Point

    def __post_init__(self) -> None:
        object.__setattr__(self, "position", as_point(self.position))

    @property
    def kind(self) -> TargetKind:
        return TargetKind.SINK

    def as_target(self, *, weight: int = 1) -> Target:
        """View of the sink as a patrol target (used during path construction)."""
        return Target(self.id, self.position, weight=weight, data_rate=0.0)


@dataclass(frozen=True)
class RechargeStation:
    """The energy recharge station visited by RW-TCTP.

    Attributes
    ----------
    recharge_rate:
        Joules restored per second while a mule is docked.  ``float("inf")``
        models the paper's implicit instantaneous recharge.
    """

    id: str
    position: Point
    recharge_rate: float = float("inf")

    def __post_init__(self) -> None:
        object.__setattr__(self, "position", as_point(self.position))
        if self.recharge_rate <= 0:
            raise ValueError("recharge_rate must be positive")

    @property
    def kind(self) -> TargetKind:
        return TargetKind.RECHARGE

    def as_target(self) -> Target:
        """RW-TCTP treats the recharge station as an NTP of the recharge path."""
        return Target(self.id, self.position, weight=1, data_rate=0.0)


def make_targets(
    positions: Sequence[Point | tuple[float, float]],
    *,
    weights: Mapping[int, int] | Sequence[int] | None = None,
    prefix: str = "g",
    data_rate: float | Sequence[float] = 1.0,
) -> list[Target]:
    """Create a list of targets ``g1..gh`` from raw positions.

    ``weights`` may be a full per-index sequence or a sparse ``{index: weight}``
    mapping (0-based indices); unspecified targets get weight 1.  ``data_rate``
    is one shared rate or a full per-target sequence (heterogeneous sensors).
    """
    targets: list[Target] = []
    n = len(positions)
    if weights is None:
        weight_of = {i: 1 for i in range(n)}
    elif isinstance(weights, Mapping):
        weight_of = {i: int(weights.get(i, 1)) for i in range(n)}
    else:
        if len(weights) != n:
            raise ValueError("weights sequence must match the number of positions")
        weight_of = {i: int(w) for i, w in enumerate(weights)}
    if isinstance(data_rate, (int, float)):
        rate_of = [float(data_rate)] * n
    else:
        if len(data_rate) != n:
            raise ValueError("data_rate sequence must match the number of positions")
        rate_of = [float(r) for r in data_rate]
    for i, pos in enumerate(positions):
        targets.append(
            Target(f"{prefix}{i + 1}", as_point(pos), weight=weight_of[i], data_rate=rate_of[i])
        )
    return targets
