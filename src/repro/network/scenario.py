"""Scenario: everything a patrolling algorithm and the simulator need to run.

A scenario bundles the field, the targets (with weights), the sink, the
optional recharge station, the data mules with their initial positions and
batteries, and the physical simulation parameters from Section 5.1.
"""

from __future__ import annotations

from dataclasses import dataclass, field as dc_field

from repro.energy.model import EnergyModel
from repro.geometry.point import Point
from repro.network.field import Field
from repro.network.mules import DataMule
from repro.network.targets import RechargeStation, Sink, Target

__all__ = ["SimulationParameters", "Scenario"]


@dataclass(frozen=True)
class SimulationParameters:
    """Physical constants of the simulation model (Section 5.1 of the paper)."""

    mule_velocity: float = 2.0            # m/s
    sensing_range: float = 10.0           # m
    communication_range: float = 20.0     # m
    move_cost_per_meter: float = 8.267    # J/m
    collect_cost: float = 0.075           # J per collection
    collection_time: float = 0.0          # s spent stationary per collection (0 = instantaneous)

    def __post_init__(self) -> None:
        if self.mule_velocity <= 0:
            raise ValueError("mule velocity must be positive")
        if min(self.sensing_range, self.communication_range) < 0:
            raise ValueError("ranges must be non-negative")
        if self.collection_time < 0:
            raise ValueError("collection_time must be non-negative")

    @property
    def energy_model(self) -> EnergyModel:
        return EnergyModel(self.move_cost_per_meter, self.collect_cost)


@dataclass
class Scenario:
    """A complete patrolling problem instance.

    Attributes
    ----------
    targets:
        The sensing targets ``g_1 .. g_h`` (the sink is **not** in this list).
    sink:
        The sink node; per Section 2.1 it is also patrolled like a target.
    mules:
        The data mules with their initial (deployment) positions.
    recharge_station:
        Optional; required only by RW-TCTP and the energy experiments.
    field:
        The monitoring region.
    params:
        Physical constants.
    name:
        Free-form label used in experiment reports.
    """

    targets: list[Target]
    sink: Sink
    mules: list[DataMule]
    recharge_station: RechargeStation | None = None
    field: Field = dc_field(default_factory=Field)
    params: SimulationParameters = dc_field(default_factory=SimulationParameters)
    name: str = "scenario"

    def __post_init__(self) -> None:
        ids = [t.id for t in self.targets] + [self.sink.id] + [m.id for m in self.mules]
        if self.recharge_station is not None:
            ids.append(self.recharge_station.id)
        if len(set(ids)) != len(ids):
            raise ValueError("scenario entity identifiers must be unique")
        if not self.targets:
            raise ValueError("a scenario needs at least one target")
        if not self.mules:
            raise ValueError("a scenario needs at least one data mule")

    # ------------------------------------------------------------------ #
    # Convenience accessors used by the algorithms
    # ------------------------------------------------------------------ #
    @property
    def num_targets(self) -> int:
        """``h`` — the number of targets excluding the sink."""
        return len(self.targets)

    @property
    def num_mules(self) -> int:
        """``n`` — the number of data mules."""
        return len(self.mules)

    def target_by_id(self, target_id: str) -> Target:
        for t in self.targets:
            if t.id == target_id:
                return t
        raise KeyError(target_id)

    def patrol_points(self, *, include_recharge: bool = False) -> dict[str, Point]:
        """Node -> coordinate mapping over which patrol paths are constructed.

        Includes the sink (treated as a target per Section 2.1) and, when
        requested, the recharge station (for the WRP of Section IV).
        """
        coords: dict[str, Point] = {t.id: t.position for t in self.targets}
        coords[self.sink.id] = self.sink.position
        if include_recharge:
            if self.recharge_station is None:
                raise ValueError("scenario has no recharge station")
            coords[self.recharge_station.id] = self.recharge_station.position
        return coords

    def weights(self, *, include_sink: bool = True, sink_weight: int = 1) -> dict[str, int]:
        """Node -> weight mapping (the sink defaults to weight 1, i.e. an NTP)."""
        w = {t.id: t.weight for t in self.targets}
        if include_sink:
            w[self.sink.id] = sink_weight
        return w

    def data_rates(self) -> dict[str, float]:
        """Per-target data generation rates (the sink generates no data)."""
        return {t.id: t.data_rate for t in self.targets}

    def vips(self) -> list[Target]:
        """Targets with weight > 1, in descending weight order (W-TCTP priority order)."""
        return sorted((t for t in self.targets if t.is_vip), key=lambda t: (-t.weight, t.id))

    def position_of(self, node_id: str) -> Point:
        """Coordinate of any named entity (target, sink, recharge station, mule)."""
        for t in self.targets:
            if t.id == node_id:
                return t.position
        if node_id == self.sink.id:
            return self.sink.position
        if self.recharge_station is not None and node_id == self.recharge_station.id:
            return self.recharge_station.position
        for m in self.mules:
            if m.id == node_id:
                return m.position
        raise KeyError(node_id)

    def with_mule_count(self, n: int) -> "Scenario":
        """Copy of the scenario truncated / padded to ``n`` mules.

        Padding duplicates the deployment position pattern of the existing
        mules (used by parameter sweeps over the number of mules).
        """
        if n <= 0:
            raise ValueError("need at least one mule")
        mules = [self._clone_mule(m, m.id) for m in self.mules[:n]]
        i = 0
        while len(mules) < n:
            template = self.mules[i % len(self.mules)]
            new_id = f"m{len(mules) + 1}"
            mules.append(self._clone_mule(template, new_id))
            i += 1
        # Re-number identifiers so they stay unique and ordered.
        for k, m in enumerate(mules, start=1):
            m.id = f"m{k}"
        return Scenario(
            targets=list(self.targets),
            sink=self.sink,
            mules=mules,
            recharge_station=self.recharge_station,
            field=self.field,
            params=self.params,
            name=self.name,
        )

    @staticmethod
    def _clone_mule(mule: DataMule, new_id: str) -> DataMule:
        return DataMule(
            id=new_id,
            position=mule.position,
            velocity=mule.velocity,
            sensing_range=mule.sensing_range,
            communication_range=mule.communication_range,
            battery=mule.battery.copy() if mule.battery is not None else None,
        )

    def fresh_copy(self) -> "Scenario":
        """Deep-enough copy for running another simulation from the initial state."""
        return Scenario(
            targets=list(self.targets),
            sink=self.sink,
            mules=[self._clone_mule(m, m.id) for m in self.mules],
            recharge_station=self.recharge_station,
            field=self.field,
            params=self.params,
            name=self.name,
        )
