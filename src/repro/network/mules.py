"""Data mules: mobile agents that patrol targets and carry data to the sink.

A :class:`DataMule` bundles identity, kinematics (position, velocity), radio
ranges, the battery (see :mod:`repro.energy`) and the on-board data buffer.
The simulator mutates mule state; the path-construction algorithms only read
initial positions and energy levels.
"""

from __future__ import annotations

import enum
from dataclasses import dataclass, field

from repro.energy.battery import Battery
from repro.geometry.point import Point, as_point, distance
from repro.network.datamodel import DataBuffer

__all__ = ["MuleState", "DataMule"]


class MuleState(str, enum.Enum):
    """Lifecycle state of a data mule during simulation."""

    IDLE = "idle"
    MOVING = "moving"
    COLLECTING = "collecting"
    RECHARGING = "recharging"
    DEAD = "dead"


@dataclass
class DataMule:
    """A mobile data mule.

    Attributes
    ----------
    id:
        Unique identifier (``"m1"``, ``"m2"``, ...).
    position:
        Current location (initially the deployment position).
    velocity:
        Moving speed in m/s; the paper uses 2 m/s for every mule and assumes
        all speeds identical.
    sensing_range / communication_range:
        Radio parameters from the simulation model (10 m and 20 m).  A visit
        "counts" when the mule reaches the target point; the ranges feed the
        data-collection model and the extension metrics.
    battery:
        Energy store; ``None`` means energy is not modelled (B-TCTP/W-TCTP
        experiments).
    """

    id: str
    position: Point
    velocity: float = 2.0
    sensing_range: float = 10.0
    communication_range: float = 20.0
    battery: Battery | None = None
    buffer: DataBuffer = field(default_factory=DataBuffer)
    state: MuleState = MuleState.IDLE

    def __post_init__(self) -> None:
        self.position = as_point(self.position)
        if self.velocity <= 0:
            raise ValueError(f"mule {self.id!r}: velocity must be positive")
        if self.sensing_range < 0 or self.communication_range < 0:
            raise ValueError(f"mule {self.id!r}: ranges must be non-negative")

    # ------------------------------------------------------------------ #
    @property
    def remaining_energy(self) -> float:
        """Remaining battery energy in joules (infinite when no battery is attached)."""
        return self.battery.remaining if self.battery is not None else float("inf")

    @property
    def alive(self) -> bool:
        return self.state is not MuleState.DEAD

    def travel_time(self, destination: Point | tuple[float, float]) -> float:
        """Time to reach ``destination`` in a straight line at the mule's velocity."""
        return distance(self.position, destination) / self.velocity

    def can_reach(self, destination: Point | tuple[float, float], move_cost_per_meter: float) -> bool:
        """Whether the remaining energy suffices to drive to ``destination``."""
        if self.battery is None:
            return True
        return self.battery.remaining >= distance(self.position, destination) * move_cost_per_meter

    def move_to(self, destination: Point | tuple[float, float], move_cost_per_meter: float = 0.0) -> float:
        """Teleport the mule to ``destination``, charging the energy for the straight-line move.

        Returns the travel time.  The simulator calls this when an arrival
        event fires; intermediate positions are interpolated analytically when
        needed (see :meth:`position_after`).
        """
        dest = as_point(destination)
        dist = distance(self.position, dest)
        if self.battery is not None and move_cost_per_meter > 0.0:
            self.battery.drain(dist * move_cost_per_meter)
            if self.battery.depleted:
                self.state = MuleState.DEAD
        self.position = dest
        return dist / self.velocity

    def position_after(self, destination: Point | tuple[float, float], elapsed: float) -> Point:
        """Interpolated position ``elapsed`` seconds into a move towards ``destination``."""
        dest = as_point(destination)
        travelled = min(self.velocity * max(elapsed, 0.0), distance(self.position, dest))
        return self.position.towards(dest, travelled)

    def collect(self, energy_cost: float = 0.0) -> None:
        """Account for the energy spent collecting one target's data."""
        if self.battery is not None and energy_cost > 0.0:
            self.battery.drain(energy_cost)
            if self.battery.depleted:
                self.state = MuleState.DEAD

    def recharge_full(self) -> None:
        """Instantaneously refill the battery (docked at the recharge station)."""
        if self.battery is not None:
            self.battery.refill()
        if self.state is MuleState.DEAD and self.battery is not None and not self.battery.depleted:
            self.state = MuleState.IDLE
