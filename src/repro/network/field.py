"""The deployment field: an 800 m x 800 m region with disconnected target areas.

The paper's premise is that targets sit in several disconnected areas of an
outdoor region, so static sensors cannot provide connectivity.  ``Field``
captures the rectangular monitoring region; ``Cluster`` describes one of the
disconnected areas (used by the clustered workload generator and by the
connectivity diagnostics that demonstrate the areas really are disconnected
at the given communication range).
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Sequence

import numpy as np

from repro.geometry.point import Point, as_array, as_point, distance

__all__ = ["Field", "Cluster", "connected_components_by_range"]


@dataclass(frozen=True)
class Field:
    """Axis-aligned rectangular monitoring region (metres)."""

    width: float = 800.0
    height: float = 800.0
    origin: Point = Point(0.0, 0.0)

    def __post_init__(self) -> None:
        if self.width <= 0 or self.height <= 0:
            raise ValueError("field dimensions must be positive")
        object.__setattr__(self, "origin", as_point(self.origin))

    @property
    def area(self) -> float:
        return self.width * self.height

    @property
    def center(self) -> Point:
        return Point(self.origin.x + self.width / 2.0, self.origin.y + self.height / 2.0)

    def contains(self, point: Point | tuple[float, float], *, eps: float = 1e-9) -> bool:
        p = as_point(point)
        return (
            self.origin.x - eps <= p.x <= self.origin.x + self.width + eps
            and self.origin.y - eps <= p.y <= self.origin.y + self.height + eps
        )

    def clamp(self, point: Point | tuple[float, float]) -> Point:
        """Project ``point`` onto the field rectangle."""
        p = as_point(point)
        x = min(max(p.x, self.origin.x), self.origin.x + self.width)
        y = min(max(p.y, self.origin.y), self.origin.y + self.height)
        return Point(x, y)

    def sample_uniform(self, rng: np.random.Generator, n: int) -> list[Point]:
        """``n`` points uniformly distributed over the field."""
        xs = rng.uniform(self.origin.x, self.origin.x + self.width, size=n)
        ys = rng.uniform(self.origin.y, self.origin.y + self.height, size=n)
        return [Point(float(x), float(y)) for x, y in zip(xs, ys)]


@dataclass(frozen=True)
class Cluster:
    """One disconnected target area: a disc of given radius inside the field."""

    center: Point
    radius: float

    def __post_init__(self) -> None:
        object.__setattr__(self, "center", as_point(self.center))
        if self.radius <= 0:
            raise ValueError("cluster radius must be positive")

    def contains(self, point: Point | tuple[float, float]) -> bool:
        return distance(self.center, point) <= self.radius + 1e-9

    def sample(self, rng: np.random.Generator, n: int, field: Field | None = None) -> list[Point]:
        """``n`` points uniformly distributed in the disc (clamped to ``field`` if given)."""
        pts: list[Point] = []
        while len(pts) < n:
            # rejection sampling inside the disc keeps the distribution uniform
            batch = max(n - len(pts), 1) * 2
            xs = rng.uniform(-self.radius, self.radius, size=batch)
            ys = rng.uniform(-self.radius, self.radius, size=batch)
            for dx, dy in zip(xs, ys):
                if dx * dx + dy * dy <= self.radius * self.radius:
                    p = Point(self.center.x + float(dx), self.center.y + float(dy))
                    if field is not None:
                        p = field.clamp(p)
                    pts.append(p)
                    if len(pts) == n:
                        break
        return pts

    def separation(self, other: "Cluster") -> float:
        """Gap between the two cluster boundaries (negative when overlapping)."""
        return distance(self.center, other.center) - self.radius - other.radius


def connected_components_by_range(
    points: Sequence[Point | tuple[float, float]], communication_range: float
) -> list[list[int]]:
    """Group point indices into components connected at ``communication_range``.

    Two points belong to the same component when a chain of hops, each no
    longer than the communication range, links them.  The paper's motivating
    scenario is precisely the case where this yields more than one component,
    so mules (not multi-hop radio) must provide connectivity.
    """
    arr = as_array(points)
    n = arr.shape[0]
    if n == 0:
        return []
    diff = arr[:, None, :] - arr[None, :, :]
    dist = np.sqrt((diff ** 2).sum(axis=-1))
    adjacency = dist <= communication_range + 1e-9

    seen = np.zeros(n, dtype=bool)
    components: list[list[int]] = []
    for start in range(n):
        if seen[start]:
            continue
        stack = [start]
        seen[start] = True
        comp = []
        while stack:
            cur = stack.pop()
            comp.append(cur)
            neighbors = np.flatnonzero(adjacency[cur] & ~seen)
            for nb in neighbors:
                seen[nb] = True
                stack.append(int(nb))
        components.append(sorted(comp))
    return components
