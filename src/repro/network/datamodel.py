"""Data generation, on-board buffering and delivery accounting.

The paper's metric of interest is the visiting interval / Data Collection
Delay Time; to make the "data mule" substrate concrete (and to support the
energy-efficiency extension experiment) this module models the actual data:
targets accumulate sensor readings between visits, a visiting mule picks up
the backlog, and the backlog is delivered when the mule next reaches the sink.
Delivery latency statistics come out of this model for free.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Iterable

__all__ = ["DataPacket", "DataBuffer", "DataCollectionModel"]


@dataclass(frozen=True)
class DataPacket:
    """A batch of sensor data picked up at a target.

    Attributes
    ----------
    target_id:
        The target the data was generated at.
    generated_from / generated_to:
        Time window over which the data in the batch accumulated.
    collected_at:
        Simulation time the mule picked the batch up.
    size:
        Amount of data (bits), ``data_rate * (generated_to - generated_from)``.
    """

    target_id: str
    generated_from: float
    generated_to: float
    collected_at: float
    size: float

    @property
    def mean_generation_time(self) -> float:
        """Midpoint of the generation window (used for latency accounting)."""
        return 0.5 * (self.generated_from + self.generated_to)

    def delivery_latency(self, delivered_at: float) -> float:
        """Latency from mean generation time to delivery at the sink."""
        return delivered_at - self.mean_generation_time


@dataclass
class DataBuffer:
    """The on-board buffer of a data mule (unbounded, FIFO)."""

    packets: list[DataPacket] = field(default_factory=list)

    def add(self, packet: DataPacket) -> None:
        self.packets.append(packet)

    def extend(self, packets: Iterable[DataPacket]) -> None:
        self.packets.extend(packets)

    def flush(self) -> list[DataPacket]:
        """Remove and return everything in the buffer (delivery at the sink)."""
        out = self.packets
        self.packets = []
        return out

    @property
    def total_size(self) -> float:
        return sum(p.size for p in self.packets)

    def __len__(self) -> int:
        return len(self.packets)


class DataCollectionModel:
    """Tracks per-target backlog and produces packets on each visit.

    Every target accumulates data at its ``data_rate`` from the moment of its
    previous collection (initially time 0).  When a mule visits, the backlog
    is turned into a :class:`DataPacket` and the accumulation window restarts.
    """

    def __init__(self, data_rates: dict[str, float]) -> None:
        self._rates = dict(data_rates)
        self._last_collected: dict[str, float] = {t: 0.0 for t in self._rates}

    @property
    def target_ids(self) -> tuple[str, ...]:
        return tuple(self._rates)

    def backlog(self, target_id: str, now: float) -> float:
        """Un-collected data (bits) waiting at ``target_id`` at time ``now``."""
        last = self._last_collected[target_id]
        return max(now - last, 0.0) * self._rates[target_id]

    def collect(self, target_id: str, now: float) -> DataPacket:
        """Collect the backlog at ``target_id`` and return the resulting packet."""
        if target_id not in self._rates:
            raise KeyError(f"unknown target {target_id!r}")
        last = self._last_collected[target_id]
        if now < last:
            raise ValueError("collection time moves backwards")
        packet = DataPacket(
            target_id=target_id,
            generated_from=last,
            generated_to=now,
            collected_at=now,
            size=max(now - last, 0.0) * self._rates[target_id],
        )
        self._last_collected[target_id] = now
        return packet

    def last_collection_time(self, target_id: str) -> float:
        return self._last_collected[target_id]
