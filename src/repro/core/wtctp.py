"""W-TCTP: Weighted TCTP (Section III).

Phase 1 — weighted patrolling path (WPP) construction: starting from the
Hamiltonian circuit of B-TCTP, each VIP ``g_i`` (weight ``w_i > 1``) triggers
``w_i - 1`` cycle-construction steps that break an edge of the current path and
reconnect the break points to the VIP.  VIPs are processed in descending
weight (priority ``p_i = w_i``); break edges are chosen by either the
Shortest-Length or the Balancing-Length policy.

Phase 2 — patrolling strategy: the traversal order through each VIP is fixed
by the counter-clockwise minimal-included-angle rule
(:mod:`repro.core.patrol_rules`), so every mule follows the identical closed
walk in which a VIP of weight ``w`` appears ``w`` times per lap.  Location
initialisation then spaces the mules equally along that walk, exactly as in
B-TCTP.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Mapping

from repro.core.patrol_rules import build_patrol_walk
from repro.core.plan import PatrolPlan
from repro.core.policies import BreakEdgePolicy, get_policy
from repro.graphs.hamiltonian import build_hamiltonian_circuit
from repro.graphs.multitour import MultiTour
from repro.graphs.tour import Tour
from repro.graphs.validation import validate_walk_visits, validate_weighted_patrolling_path
from repro.network.scenario import Scenario

__all__ = [
    "build_wpp_structure",
    "build_weighted_patrolling_path",
    "WTCTPPlanner",
    "plan_wtctp",
]


def build_wpp_structure(
    tour: Tour,
    weights: Mapping[str, int],
    policy: "str | BreakEdgePolicy" = "balanced",
) -> tuple[MultiTour, dict[str, int]]:
    """Phase 1 only: the WPP multigraph plus the resolved per-node weights.

    This is the cycle-construction half of
    :func:`build_weighted_patrolling_path` — the augment stage of the
    composable planning pipeline; traversal-order extraction (the patrolling
    rule) is a separate stage.

    Returns
    -------
    (structure, full_weights):
        The WPP as a :class:`MultiTour` (VIP ``g_i`` has degree ``2 w_i``) and
        the weight of every tour node (absent nodes defaulted to 1).
    """
    policy_obj = get_policy(policy)
    full_weights = {n: int(weights.get(n, 1)) for n in tour.order}
    for node, w in full_weights.items():
        if w < 1:
            raise ValueError(f"weight of {node!r} must be >= 1, got {w}")

    structure = MultiTour.from_tour(tour)
    # Descending weight = descending priority (Section 3.1-B); deterministic
    # tie-break on the identifier so all mules build the same WPP.
    vips = sorted(
        (n for n, w in full_weights.items() if w > 1),
        key=lambda n: (-full_weights[n], str(n)),
    )
    for vip in vips:
        policy_obj.apply(structure, vip, full_weights[vip])

    validate_weighted_patrolling_path(structure, full_weights)
    return structure, full_weights


def build_weighted_patrolling_path(
    tour: Tour,
    weights: Mapping[str, int],
    policy: "str | BreakEdgePolicy" = "balanced",
) -> tuple[MultiTour, list[str]]:
    """Construct the WPP multigraph and its traversal walk from a Hamiltonian circuit.

    Parameters
    ----------
    tour:
        The phase-1 Hamiltonian circuit (every target exactly once).
    weights:
        Node -> weight; nodes absent from the mapping default to weight 1.
        Weights below 1 are rejected.
    policy:
        Break-edge policy name or instance (``"shortest"`` / ``"balanced"``).

    Returns
    -------
    (structure, walk):
        The WPP as a :class:`MultiTour` (VIP ``g_i`` has degree ``2 w_i``) and
        the closed traversal walk chosen by the patrolling rule (first node
        repeated at the end).
    """
    structure, full_weights = build_wpp_structure(tour, weights, policy)
    start = tour.order[0]
    walk = build_patrol_walk(structure, start)
    validate_walk_visits(walk, full_weights)
    return structure, walk


@dataclass
class WTCTPPlanner:
    """Planner object form of W-TCTP.

    ``plan`` runs the declarative stage composition
    ``hamiltonian | wpp | ccw-angle | equal-spacing`` through the composable
    planning pipeline (:mod:`repro.planning`); the output is byte-identical
    to the historical fused implementation.

    Parameters
    ----------
    policy:
        ``"shortest"`` (Exp. 1) or ``"balanced"`` (Exp. 2) break-edge policy.
    tsp_method, improve_tour:
        Passed through to the phase-1 Hamiltonian-circuit construction.
    location_initialization:
        Space the mules equally along the WPP before patrolling (paper default).
    """

    policy: str = "balanced"
    tsp_method: str = "hull-insertion"
    improve_tour: bool = False
    location_initialization: bool = True
    name: str = field(default="W-TCTP")

    def build_structures(self, scenario: Scenario) -> tuple[Tour, MultiTour, list[str]]:
        """Phase 1: Hamiltonian circuit, WPP multigraph and traversal walk."""
        coords = scenario.patrol_points()
        tour = build_hamiltonian_circuit(
            coords, method=self.tsp_method, improve=self.improve_tour, start=scenario.sink.id
        )
        weights = scenario.weights()
        structure, walk = build_weighted_patrolling_path(tour, weights, self.policy)
        return tour, structure, walk

    def pipeline(self):
        """The stage composition this planner executes (a :class:`PlanningPipeline`)."""
        from repro.planning.compositions import wtctp_pipeline

        return wtctp_pipeline(
            policy=self.policy,
            tsp_method=self.tsp_method,
            improve_tour=self.improve_tour,
            location_initialization=self.location_initialization,
            name=self.name,
        )

    def plan(self, scenario: Scenario) -> PatrolPlan:
        return self.pipeline().plan(scenario)


def plan_wtctp(
    scenario: Scenario,
    *,
    policy: str = "balanced",
    tsp_method: str = "hull-insertion",
    improve_tour: bool = False,
    location_initialization: bool = True,
) -> PatrolPlan:
    """Functional wrapper around :class:`WTCTPPlanner` (see its docstring)."""
    planner = WTCTPPlanner(
        policy=policy,
        tsp_method=tsp_method,
        improve_tour=improve_tour,
        location_initialization=location_initialization,
    )
    return planner.plan(scenario)
