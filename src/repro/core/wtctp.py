"""W-TCTP: Weighted TCTP (Section III).

Phase 1 — weighted patrolling path (WPP) construction: starting from the
Hamiltonian circuit of B-TCTP, each VIP ``g_i`` (weight ``w_i > 1``) triggers
``w_i - 1`` cycle-construction steps that break an edge of the current path and
reconnect the break points to the VIP.  VIPs are processed in descending
weight (priority ``p_i = w_i``); break edges are chosen by either the
Shortest-Length or the Balancing-Length policy.

Phase 2 — patrolling strategy: the traversal order through each VIP is fixed
by the counter-clockwise minimal-included-angle rule
(:mod:`repro.core.patrol_rules`), so every mule follows the identical closed
walk in which a VIP of weight ``w`` appears ``w`` times per lap.  Location
initialisation then spaces the mules equally along that walk, exactly as in
B-TCTP.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Mapping

from repro.core.patrol_rules import build_patrol_walk
from repro.core.plan import LoopRoute, PatrolPlan
from repro.core.policies import BreakEdgePolicy, get_policy
from repro.core.start_points import assign_mules_to_start_points, compute_start_points
from repro.geometry.point import Point
from repro.graphs.hamiltonian import build_hamiltonian_circuit
from repro.graphs.multitour import MultiTour
from repro.graphs.tour import Tour
from repro.graphs.validation import validate_walk_visits, validate_weighted_patrolling_path
from repro.network.scenario import Scenario

__all__ = ["build_weighted_patrolling_path", "WTCTPPlanner", "plan_wtctp"]


def build_weighted_patrolling_path(
    tour: Tour,
    weights: Mapping[str, int],
    policy: "str | BreakEdgePolicy" = "balanced",
) -> tuple[MultiTour, list[str]]:
    """Construct the WPP multigraph and its traversal walk from a Hamiltonian circuit.

    Parameters
    ----------
    tour:
        The phase-1 Hamiltonian circuit (every target exactly once).
    weights:
        Node -> weight; nodes absent from the mapping default to weight 1.
        Weights below 1 are rejected.
    policy:
        Break-edge policy name or instance (``"shortest"`` / ``"balanced"``).

    Returns
    -------
    (structure, walk):
        The WPP as a :class:`MultiTour` (VIP ``g_i`` has degree ``2 w_i``) and
        the closed traversal walk chosen by the patrolling rule (first node
        repeated at the end).
    """
    policy_obj = get_policy(policy)
    full_weights = {n: int(weights.get(n, 1)) for n in tour.order}
    for node, w in full_weights.items():
        if w < 1:
            raise ValueError(f"weight of {node!r} must be >= 1, got {w}")

    structure = MultiTour.from_tour(tour)
    # Descending weight = descending priority (Section 3.1-B); deterministic
    # tie-break on the identifier so all mules build the same WPP.
    vips = sorted(
        (n for n, w in full_weights.items() if w > 1),
        key=lambda n: (-full_weights[n], str(n)),
    )
    for vip in vips:
        policy_obj.apply(structure, vip, full_weights[vip])

    validate_weighted_patrolling_path(structure, full_weights)

    start = tour.order[0]
    walk = build_patrol_walk(structure, start)
    validate_walk_visits(walk, full_weights)
    return structure, walk


@dataclass
class WTCTPPlanner:
    """Planner object form of W-TCTP.

    Parameters
    ----------
    policy:
        ``"shortest"`` (Exp. 1) or ``"balanced"`` (Exp. 2) break-edge policy.
    tsp_method / improve_tour:
        Passed through to the phase-1 Hamiltonian-circuit construction.
    location_initialization:
        Space the mules equally along the WPP before patrolling (paper default).
    """

    policy: str = "balanced"
    tsp_method: str = "hull-insertion"
    improve_tour: bool = False
    location_initialization: bool = True
    name: str = field(default="W-TCTP")

    def build_structures(self, scenario: Scenario) -> tuple[Tour, MultiTour, list[str]]:
        """Phase 1: Hamiltonian circuit, WPP multigraph and traversal walk."""
        coords = scenario.patrol_points()
        tour = build_hamiltonian_circuit(
            coords, method=self.tsp_method, improve=self.improve_tour, start=scenario.sink.id
        )
        weights = scenario.weights()
        structure, walk = build_weighted_patrolling_path(tour, weights, self.policy)
        return tour, structure, walk

    def plan(self, scenario: Scenario) -> PatrolPlan:
        tour, structure, walk = self.build_structures(scenario)
        loop = list(walk[:-1]) if len(walk) > 1 and walk[0] == walk[-1] else list(walk)
        coords: dict[str, Point] = structure.coordinates

        metadata: dict = {
            "hamiltonian_length": tour.length(),
            "wpp_length": structure.length(),
            "walk": loop,
            "policy": get_policy(self.policy).name,
            "vip_cycles": {
                vip.id: [c.length for c in structure.cycles_at(vip.id, walk)]
                for vip in scenario.vips()
            },
        }

        routes: dict[str, LoopRoute] = {}
        if self.location_initialization:
            start_points = compute_start_points(loop, coords, scenario.num_mules)
            assignment = assign_mules_to_start_points(
                start_points,
                {m.id: m.position for m in scenario.mules},
                {m.id: m.remaining_energy for m in scenario.mules},
            )
            for mule in scenario.mules:
                sp = assignment.start_point_for(mule.id)
                routes[mule.id] = LoopRoute(
                    mule.id, loop, coords, entry_index=sp.entry_index, start=sp.position
                )
        else:
            for mule in scenario.mules:
                # Without initialisation the mule enters the walk at its nearest waypoint.
                nearest = min(
                    range(len(loop)),
                    key=lambda i: mule.position.distance_to(coords[loop[i]]),
                )
                routes[mule.id] = LoopRoute(mule.id, loop, coords, entry_index=nearest, start=None)

        return PatrolPlan(strategy=f"{self.name}[{get_policy(self.policy).name}]",
                          routes=routes, metadata=metadata)


def plan_wtctp(
    scenario: Scenario,
    *,
    policy: str = "balanced",
    tsp_method: str = "hull-insertion",
    improve_tour: bool = False,
    location_initialization: bool = True,
) -> PatrolPlan:
    """Functional wrapper around :class:`WTCTPPlanner` (see its docstring)."""
    planner = WTCTPPlanner(
        policy=policy,
        tsp_method=tsp_method,
        improve_tour=improve_tour,
        location_initialization=location_initialization,
    )
    return planner.plan(scenario)
