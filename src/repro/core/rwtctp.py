"""RW-TCTP: W-TCTP with recharge (Section IV).

Each mule constructs two structures:

* the **weighted patrolling path** (WPP ``P̄``), exactly as in W-TCTP, and
* the **weighted recharge path** (WRP ``P̃``), obtained from the WPP by
  breaking the edge that minimises Exp. (3)
  ``|g_y R| + |g_{y+1} R| - |g_y g_{y+1}|`` and connecting both break points
  to the recharge station ``R``.

Equation (4) then gives the number of rounds a full battery supports,

    r = M_Energy / ( |P̄| · c_m + h · c_s ),

and the schedule is: patrol the WPP for ``r - 1`` laps, then take the WRP lap
(which passes through ``R``) to recharge, and repeat.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Mapping

from repro.core.patrol_rules import build_patrol_walk
from repro.core.plan import PatrolPlan
from repro.core.wtctp import build_weighted_patrolling_path
from repro.energy.model import EnergyModel, patrolling_rounds
from repro.geometry.point import Point, distance
from repro.graphs.hamiltonian import build_hamiltonian_circuit
from repro.graphs.multitour import MultiTour
from repro.graphs.validation import validate_walk_visits, validate_weighted_recharge_path
from repro.network.scenario import Scenario

__all__ = [
    "insert_recharge_station",
    "build_weighted_recharge_path",
    "compute_patrol_rounds",
    "RWTCTPPlanner",
    "plan_rwtctp",
]


def insert_recharge_station(
    wpp: MultiTour,
    weights: Mapping[str, int],
    recharge_id: str,
    recharge_position: Point,
) -> MultiTour:
    """Structure surgery only: weave the recharge station into a WPP.

    The break edge is the one minimising Exp. (3); both break points are
    connected to the recharge station, which therefore joins the structure as
    a weight-1 node (Definition 5).  This is the augment-stage half of
    :func:`build_weighted_recharge_path`; walk extraction (the patrolling
    rule) is a separate pipeline stage.
    """
    wrp = wpp.copy()
    wrp.add_node(recharge_id, recharge_position)

    candidates = [(u, v, k) for (u, v, k) in wrp.edges() if recharge_id not in (u, v)]
    if not candidates:
        raise ValueError("weighted patrolling path has no edge to break for the recharge station")

    def added_length(edge: tuple[str, str, int]) -> float:
        u, v, _k = edge
        return (
            distance(wrp.point(u), recharge_position)
            + distance(wrp.point(v), recharge_position)
            - distance(wrp.point(u), wrp.point(v))
        )

    u, v, key = min(candidates, key=lambda e: (added_length(e), str(e[0]), str(e[1])))
    wrp.break_edge(u, v, recharge_id, key=key)

    validate_weighted_recharge_path(wrp, weights, recharge_id)
    return wrp


def build_weighted_recharge_path(
    wpp: MultiTour,
    weights: Mapping[str, int],
    recharge_id: str,
    recharge_position: Point,
    *,
    walk_start: str,
) -> tuple[MultiTour, list[str]]:
    """Insert the recharge station into a WPP, producing the WRP and its walk."""
    wrp = insert_recharge_station(wpp, weights, recharge_id, recharge_position)
    walk = build_patrol_walk(wrp, walk_start)
    combined = dict(weights)
    combined[recharge_id] = 1
    validate_walk_visits(walk, combined)
    return wrp, walk


def compute_patrol_rounds(scenario: Scenario, wpp_length: float) -> int:
    """Equation (4) with the scenario's energy model and mule battery capacity."""
    model: EnergyModel = scenario.params.energy_model
    capacities = [
        m.battery.capacity for m in scenario.mules if m.battery is not None
    ]
    if not capacities:
        raise ValueError("RW-TCTP requires mules with batteries (finite M_Energy)")
    m_energy = min(capacities)  # plan for the weakest mule so nobody dies
    r = patrolling_rounds(m_energy, wpp_length, scenario.num_targets, model)
    return max(r, 1)


@dataclass
class RWTCTPPlanner:
    """Planner object form of RW-TCTP.

    Parameters
    ----------
    policy:
        Break-edge policy used for the underlying WPP construction.
    tsp_method, improve_tour:
        Passed through to the phase-1 Hamiltonian-circuit construction.
    location_initialization:
        Space the mules equally along the WRP before patrolling (paper default).
    treat_targets_as_vips:
        Section IV opens with "treat the recharge station as a NTP and all the
        targets are treated as VIPs"; in the evaluation the target weights of
        the scenario are used as-is.  When this flag is set, every target of
        weight 1 is promoted to ``vip_weight`` before building the WPP.
    vip_weight:
        Promotion weight used when ``treat_targets_as_vips`` is enabled.
    """

    policy: str = "balanced"
    tsp_method: str = "hull-insertion"
    improve_tour: bool = False
    location_initialization: bool = True
    treat_targets_as_vips: bool = False
    vip_weight: int = 2
    name: str = "RW-TCTP"

    # ------------------------------------------------------------------ #
    def build_structures(self, scenario: Scenario) -> dict:
        """Phase 1: Hamiltonian circuit, WPP, WRP and both traversal walks."""
        if scenario.recharge_station is None:
            raise ValueError("RW-TCTP requires a scenario with a recharge station")
        coords = scenario.patrol_points()
        tour = build_hamiltonian_circuit(
            coords, method=self.tsp_method, improve=self.improve_tour, start=scenario.sink.id
        )
        weights = scenario.weights()
        if self.treat_targets_as_vips:
            weights = {
                n: (max(w, self.vip_weight) if n != scenario.sink.id else w)
                for n, w in weights.items()
            }
        wpp, wpp_walk = build_weighted_patrolling_path(tour, weights, self.policy)
        wrp, wrp_walk = build_weighted_recharge_path(
            wpp,
            weights,
            scenario.recharge_station.id,
            scenario.recharge_station.position,
            walk_start=scenario.sink.id,
        )
        return {
            "tour": tour,
            "weights": weights,
            "wpp": wpp,
            "wpp_walk": wpp_walk,
            "wrp": wrp,
            "wrp_walk": wrp_walk,
        }

    def compute_rounds(self, scenario: Scenario, wpp_length: float) -> int:
        """Equation (4) with the scenario's energy model and mule battery capacity."""
        return compute_patrol_rounds(scenario, wpp_length)

    def pipeline(self):
        """The stage composition this planner executes (a :class:`PlanningPipeline`)."""
        from repro.planning.compositions import rwtctp_pipeline

        return rwtctp_pipeline(
            policy=self.policy,
            tsp_method=self.tsp_method,
            improve_tour=self.improve_tour,
            location_initialization=self.location_initialization,
            treat_targets_as_vips=self.treat_targets_as_vips,
            vip_weight=self.vip_weight,
            name=self.name,
        )

    def plan(self, scenario: Scenario) -> PatrolPlan:
        return self.pipeline().plan(scenario)


def plan_rwtctp(
    scenario: Scenario,
    *,
    policy: str = "balanced",
    tsp_method: str = "hull-insertion",
    improve_tour: bool = False,
    location_initialization: bool = True,
    treat_targets_as_vips: bool = False,
    vip_weight: int = 2,
) -> PatrolPlan:
    """Functional wrapper around :class:`RWTCTPPlanner` (see its docstring)."""
    planner = RWTCTPPlanner(
        policy=policy,
        tsp_method=tsp_method,
        improve_tour=improve_tour,
        location_initialization=location_initialization,
        treat_targets_as_vips=treat_targets_as_vips,
        vip_weight=vip_weight,
    )
    return planner.plan(scenario)
