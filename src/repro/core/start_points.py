"""B-TCTP start points and location initialisation (Section 2.2-B).

"Each DM will treat the most north target point as the first start point to
partition the path P into n equal-length segments ... The end points of each
partitioned segment are called start points.  After calculating all start
points, each DM performs the location initialization task.  Each of them
moves to the closest start point.  If there are more than one DMs staying at
the same start point, the DM with higher remaining energy will move to next
start point along the constructed path P."

The same procedure is reused by W-TCTP and RW-TCTP on the weighted walk, so
it is implemented once here over an arbitrary closed node walk.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Mapping, Sequence

from repro.geometry.point import Point, as_point, distance, northmost_index
from repro.geometry.polyline import Polyline

__all__ = ["StartPoint", "StartPointAssignment", "compute_start_points", "assign_mules_to_start_points"]


@dataclass(frozen=True)
class StartPoint:
    """One of the ``n`` equally spaced start points on the patrolling path."""

    index: int
    position: Point
    arc_length: float       # arc length from the walk's reference vertex
    entry_index: int        # index (into the walk) of the first node reached after this point

    def __repr__(self) -> str:  # pragma: no cover - debugging helper
        return f"StartPoint(index={self.index}, s={self.arc_length:.1f})"


@dataclass(frozen=True)
class StartPointAssignment:
    """Result of the location-initialisation task."""

    start_points: tuple[StartPoint, ...]
    # mule id -> start point index
    assignment: dict[str, int]

    def start_point_for(self, mule_id: str) -> StartPoint:
        return self.start_points[self.assignment[mule_id]]


def compute_start_points(
    walk: Sequence[str],
    coordinates: Mapping[str, Point],
    num_mules: int,
) -> tuple[StartPoint, ...]:
    """Partition the closed ``walk`` into ``num_mules`` equal-length segments.

    The reference (first) start point is placed at the most-north node of the
    walk, exactly as in the paper.  Each start point records the index of the
    walk node that follows it so a mule knows which waypoint to head to after
    reaching its start position.
    """
    if num_mules <= 0:
        raise ValueError("num_mules must be positive")
    walk = list(walk)
    if not walk:
        raise ValueError("walk must be non-empty")
    pts = [as_point(coordinates[n]) for n in walk]
    poly = Polyline(pts, closed=True)
    total = poly.length

    # Reference start point: the most-north *node occurrence* of the walk.
    north = northmost_index(pts)
    offset = poly.arc_length_of_vertex(north)

    # Cumulative arc length of each walk vertex, for entry-index lookup.
    cumulative = [poly.arc_length_of_vertex(i) for i in range(len(walk))]

    step = total / num_mules if total > 0 else 0.0
    start_points: list[StartPoint] = []
    for k in range(num_mules):
        s = (offset + k * step) % total if total > 0 else 0.0
        position = poly.point_at(s)
        entry = _entry_index_after(s, cumulative, total)
        start_points.append(StartPoint(index=k, position=position, arc_length=s, entry_index=entry))
    return tuple(start_points)


def _entry_index_after(s: float, cumulative: Sequence[float], total: float, *, eps: float = 1e-9) -> int:
    """Index of the first walk vertex at arc length >= ``s`` (wrapping around)."""
    n = len(cumulative)
    if total <= 0:
        return 0
    for i, c in enumerate(cumulative):
        if c >= s - eps:
            return i
    return 0  # wrapped past the last vertex: the next node is the walk head


def assign_mules_to_start_points(
    start_points: Sequence[StartPoint],
    mule_positions: Mapping[str, Point],
    remaining_energy: Mapping[str, float] | None = None,
) -> StartPointAssignment:
    """Assign each mule to a distinct start point following the paper's tie rule.

    Every mule first claims its closest start point.  Whenever several mules
    claim the same start point, the mule with the *highest remaining energy*
    keeps moving to the next start point along the path (counter-clockwise),
    repeatedly, until every start point holds exactly one mule.

    The procedure terminates because the number of mules equals the number of
    start points and each displacement strictly advances a mule along the
    cyclic sequence of start points.
    """
    start_points = list(start_points)
    n = len(start_points)
    mule_ids = list(mule_positions)
    if len(mule_ids) != n:
        raise ValueError(
            f"number of mules ({len(mule_ids)}) must equal number of start points ({n})"
        )
    if remaining_energy is None:
        remaining_energy = {m: float("inf") for m in mule_ids}

    # Initial claim: closest start point (ties broken deterministically by index).
    claim: dict[str, int] = {}
    for mule_id in mule_ids:
        pos = as_point(mule_positions[mule_id])
        claim[mule_id] = min(
            range(n), key=lambda k: (distance(pos, start_points[k].position), k)
        )

    # Conflict resolution: at an over-claimed start point the highest-energy
    # mule advances to the next start point along the path.
    max_iterations = n * n + n
    for _ in range(max_iterations):
        occupancy: dict[int, list[str]] = {}
        for mule_id, k in claim.items():
            occupancy.setdefault(k, []).append(mule_id)
        conflict = next((k for k, mules in occupancy.items() if len(mules) > 1), None)
        if conflict is None:
            break
        contenders = occupancy[conflict]
        # Highest remaining energy moves on; deterministic tie-break on id.
        mover = max(contenders, key=lambda m: (remaining_energy.get(m, 0.0), m))
        claim[mover] = (claim[mover] + 1) % n
    else:  # pragma: no cover - defensive: the loop above always converges
        raise RuntimeError("location initialisation failed to converge")

    return StartPointAssignment(start_points=tuple(start_points), assignment=claim)
