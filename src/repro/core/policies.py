"""Break-edge selection policies for W-TCTP cycle construction (Section 3.1-A).

To make a VIP ``g_k`` of weight ``w`` be visited ``w`` times per traversal,
W-TCTP performs ``w - 1`` rounds of *cycle construction*: pick a break edge
``(g_y, g_{y+1})`` of the current patrol structure, remove it, and connect
both break points to the VIP.  Two policies choose the break edges:

* **Shortest-Length Policy** (Exp. 1): pick the edge minimising the added
  length ``|g_y g_k| + |g_{y+1} g_k| - |g_y g_{y+1}|`` — the total WPP stays
  as short as possible but the resulting cycles can be very unbalanced.
* **Balancing-Length Policy** (Exp. 2): pick break edges so the ``w`` cycle
  lengths are as close as possible to ``L_avg = |P̄| / w`` — the visiting
  intervals of the VIP become similar at the cost of a longer WPP.
"""

from __future__ import annotations

import abc
from typing import Hashable, Sequence

from repro.geometry.point import distance
from repro.graphs.multitour import MultiTour

__all__ = [
    "BreakEdgePolicy",
    "ShortestLengthPolicy",
    "BalancingLengthPolicy",
    "get_policy",
    "POLICIES",
]

NodeId = Hashable


class BreakEdgePolicy(abc.ABC):
    """Strategy object selecting break edges for one VIP."""

    name: str = "abstract"

    @abc.abstractmethod
    def apply(self, structure: MultiTour, vip: NodeId, weight: int) -> None:
        """Mutate ``structure`` so that ``weight`` cycles intersect at ``vip``."""

    # ------------------------------------------------------------------ #
    @staticmethod
    def candidate_edges(structure: MultiTour, vip: NodeId) -> list[tuple[NodeId, NodeId, int]]:
        """Edges eligible as break edges: every current edge not incident to the VIP."""
        return [(u, v, k) for (u, v, k) in structure.edges() if vip not in (u, v)]

    @staticmethod
    def added_length(structure: MultiTour, vip: NodeId, u: NodeId, v: NodeId) -> float:
        """Length increase of replacing edge ``(u, v)`` with chords ``(u, vip)`` and ``(v, vip)``."""
        pu, pv, pk = structure.point(u), structure.point(v), structure.point(vip)
        return distance(pu, pk) + distance(pv, pk) - distance(pu, pv)

    def __repr__(self) -> str:  # pragma: no cover - debugging helper
        return f"{type(self).__name__}()"


class ShortestLengthPolicy(BreakEdgePolicy):
    """Exp. (1): repeatedly break the edge whose replacement adds the least length."""

    name = "shortest"

    def apply(self, structure: MultiTour, vip: NodeId, weight: int) -> None:
        if weight < 1:
            raise ValueError("weight must be >= 1")
        for _ in range(weight - 1):
            candidates = self.candidate_edges(structure, vip)
            if not candidates:
                raise ValueError(
                    f"no break edge available for VIP {vip!r}; "
                    "the structure is too small for the requested weight"
                )
            u, v, key = min(
                candidates,
                key=lambda e: (self.added_length(structure, vip, e[0], e[1]), str(e[0]), str(e[1])),
            )
            structure.break_edge(u, v, vip, key=key)


class BalancingLengthPolicy(BreakEdgePolicy):
    """Exp. (2): choose break edges so the cycle lengths approach ``|P̄| / w``.

    Implementation: walk the current structure as a closed circuit starting at
    the VIP and place the ``w - 1`` break edges at the circuit positions whose
    cumulative arc length is closest to the ideal equal-partition marks
    ``k * L / w`` — this directly targets Exp. (2)'s objective of making every
    cycle length approach ``L_avg``.  A local refinement pass then tries
    moving each chosen break edge to a neighbouring edge whenever that lowers
    the imbalance ``sum_f | len(C_f) - L_avg |``.
    """

    name = "balanced"

    def __init__(self, *, refine: bool = True, refine_window: int = 3) -> None:
        self.refine = refine
        self.refine_window = max(int(refine_window), 0)

    def apply(self, structure: MultiTour, vip: NodeId, weight: int) -> None:
        if weight < 1:
            raise ValueError("weight must be >= 1")
        if weight == 1:
            return
        walk = structure.euler_circuit(start=vip)  # closed: walk[0] == walk[-1] == vip
        edges = list(zip(walk[:-1], walk[1:]))
        # Cumulative length up to the *start* of each walk edge.
        cumulative = [0.0]
        for a, b in edges:
            cumulative.append(cumulative[-1] + structure.edge_length(a, b))
        total = cumulative[-1]
        if total <= 0:
            raise ValueError("cannot balance a zero-length structure")

        eligible = [i for i, (a, b) in enumerate(edges) if vip not in (a, b)]
        if len(eligible) < weight - 1:
            raise ValueError(
                f"not enough eligible break edges for VIP {vip!r} with weight {weight}"
            )

        chosen = self._initial_selection(edges, cumulative, eligible, total, weight)
        if self.refine:
            chosen = self._refine(structure, vip, edges, cumulative, eligible, chosen, total, weight)

        for i in sorted(chosen):
            a, b = edges[i]
            structure.break_edge(a, b, vip)

    # ------------------------------------------------------------------ #
    def _initial_selection(
        self,
        edges: Sequence[tuple[NodeId, NodeId]],
        cumulative: Sequence[float],
        eligible: Sequence[int],
        total: float,
        weight: int,
    ) -> list[int]:
        """Greedy: for each ideal mark pick the nearest still-unused eligible edge."""
        l_avg = total / weight
        chosen: list[int] = []
        used: set[int] = set()
        for k in range(1, weight):
            mark = k * l_avg
            # midpoint of each edge is its representative position on the circuit
            best = min(
                (i for i in eligible if i not in used),
                key=lambda i: abs(0.5 * (cumulative[i] + cumulative[i + 1]) - mark),
            )
            chosen.append(best)
            used.add(best)
        return chosen

    def _imbalance(
        self,
        structure: MultiTour,
        vip: NodeId,
        edges: Sequence[tuple[NodeId, NodeId]],
        cumulative: Sequence[float],
        chosen: Sequence[int],
        total: float,
        weight: int,
    ) -> float:
        """Exp. (2) objective for a given choice of break-edge positions."""
        l_avg = (self._structure_length_after(structure, vip, edges, chosen, total)) / weight
        cycle_lengths = self._cycle_lengths(structure, vip, edges, cumulative, chosen, total)
        return sum(abs(c - l_avg) for c in cycle_lengths)

    def _structure_length_after(
        self,
        structure: MultiTour,
        vip: NodeId,
        edges: Sequence[tuple[NodeId, NodeId]],
        chosen: Sequence[int],
        total: float,
    ) -> float:
        length = total
        for i in chosen:
            a, b = edges[i]
            length += self.added_length(structure, vip, a, b)
        return length

    def _cycle_lengths(
        self,
        structure: MultiTour,
        vip: NodeId,
        edges: Sequence[tuple[NodeId, NodeId]],
        cumulative: Sequence[float],
        chosen: Sequence[int],
        total: float,
    ) -> list[float]:
        """Lengths of the cycles produced by breaking the chosen edges.

        Break positions split the VIP-rooted circuit into ``w`` arcs; each
        cycle consists of one arc plus the chord(s) reconnecting its endpoints
        to the VIP.
        """
        pk = structure.point(vip)
        ordered = sorted(chosen)
        lengths: list[float] = []
        # Arc boundaries: start of circuit, each break, end of circuit.
        prev_pos = 0.0
        prev_chord = 0.0  # chord from VIP to the arc's first node (0 for the true start)
        for i in ordered:
            a, b = edges[i]
            arc = cumulative[i] - prev_pos
            chord_end = distance(structure.point(a), pk)
            lengths.append(prev_chord + arc + chord_end)
            prev_pos = cumulative[i + 1]
            prev_chord = distance(structure.point(b), pk)
        lengths.append(prev_chord + (total - prev_pos))
        return lengths

    def _refine(
        self,
        structure: MultiTour,
        vip: NodeId,
        edges: Sequence[tuple[NodeId, NodeId]],
        cumulative: Sequence[float],
        eligible: Sequence[int],
        chosen: list[int],
        total: float,
        weight: int,
    ) -> list[int]:
        eligible_sorted = sorted(eligible)
        pos_of = {i: p for p, i in enumerate(eligible_sorted)}
        best = list(chosen)
        best_score = self._imbalance(structure, vip, edges, cumulative, best, total, weight)
        improved = True
        while improved:
            improved = False
            for slot in range(len(best)):
                base = best[slot]
                base_pos = pos_of[base]
                for delta in range(-self.refine_window, self.refine_window + 1):
                    if delta == 0:
                        continue
                    p = base_pos + delta
                    if not 0 <= p < len(eligible_sorted):
                        continue
                    candidate_edge = eligible_sorted[p]
                    if candidate_edge in best:
                        continue
                    trial = list(best)
                    trial[slot] = candidate_edge
                    score = self._imbalance(structure, vip, edges, cumulative, trial, total, weight)
                    if score < best_score - 1e-9:
                        best, best_score = trial, score
                        improved = True
        return best


POLICIES: dict[str, type[BreakEdgePolicy]] = {
    ShortestLengthPolicy.name: ShortestLengthPolicy,
    BalancingLengthPolicy.name: BalancingLengthPolicy,
    # common aliases
    "shortest-length": ShortestLengthPolicy,
    "balancing": BalancingLengthPolicy,
    "balancing-length": BalancingLengthPolicy,
    "balance": BalancingLengthPolicy,
}


def get_policy(policy: "str | BreakEdgePolicy") -> BreakEdgePolicy:
    """Resolve a policy name (``"shortest"`` / ``"balanced"``) or pass an instance through."""
    if isinstance(policy, BreakEdgePolicy):
        return policy
    try:
        return POLICIES[policy.lower()]()
    except KeyError as exc:
        raise ValueError(
            f"unknown break-edge policy {policy!r}; expected one of {sorted(set(POLICIES))}"
        ) from exc
