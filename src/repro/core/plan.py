"""Patrol plans: the output of every planning algorithm, the input of the simulator.

A :class:`PatrolPlan` assigns each data mule a :class:`MuleRoute`.  Routes come
in three flavours:

* :class:`LoopRoute` — a fixed closed walk repeated forever (B-TCTP, W-TCTP,
  CHB, Sweep).  Optionally carries a geometric *start position* produced by
  the location-initialisation step.
* :class:`AlternatingLoopRoute` — RW-TCTP's schedule: ``r - 1`` laps of the
  weighted patrolling path followed by one lap of the weighted recharge path.
* :class:`StochasticRoute` — the Random baseline: the next waypoint is drawn
  online from a seeded random generator.

The simulator only relies on the small :class:`MuleRoute` interface
(``start_position`` + an infinite ``waypoints()`` iterator), so new strategies
can be added without touching the engine.
"""

from __future__ import annotations

import abc
import itertools
from dataclasses import dataclass, field
from typing import Iterator, Mapping, Sequence

import numpy as np

from repro.geometry.point import Point, as_point, distance

__all__ = ["MuleRoute", "LoopRoute", "AlternatingLoopRoute", "StochasticRoute", "PatrolPlan"]


class MuleRoute(abc.ABC):
    """Route followed by a single data mule."""

    def __init__(self, mule_id: str, coordinates: Mapping[str, Point]) -> None:
        self.mule_id = mule_id
        self.coordinates = {n: as_point(p) for n, p in coordinates.items()}

    @abc.abstractmethod
    def waypoints(self) -> Iterator[str]:
        """Infinite iterator over the node identifiers the mule should visit, in order."""

    def start_position(self) -> Point | None:
        """Geometric point the mule moves to before patrolling (location initialisation).

        ``None`` means the mule starts patrolling straight from its deployment
        position (no initialisation phase).
        """
        return None

    def point_of(self, node_id: str) -> Point:
        return self.coordinates[node_id]

    def lap_length(self) -> float | None:
        """Length of one repeating lap, when the route has a well-defined lap."""
        return None

    def describe(self) -> dict:
        """Human-readable summary used by experiment reports."""
        return {"mule": self.mule_id, "kind": type(self).__name__}


class LoopRoute(MuleRoute):
    """A fixed closed walk, repeated indefinitely.

    Parameters
    ----------
    loop:
        Node identifiers of one lap (the closing edge back to ``loop[0]`` is
        implicit).  Nodes may repeat within a lap: a VIP of weight ``w``
        appears ``w`` times in a W-TCTP walk.
    entry_index:
        Index into ``loop`` of the first waypoint the mule heads to.
    start:
        Optional geometric start position on the loop (from the
        location-initialisation step); the mule drives there first, then to
        ``loop[entry_index]``.
    """

    def __init__(
        self,
        mule_id: str,
        loop: Sequence[str],
        coordinates: Mapping[str, Point],
        *,
        entry_index: int = 0,
        start: Point | None = None,
    ) -> None:
        super().__init__(mule_id, coordinates)
        loop = list(loop)
        if not loop:
            raise ValueError("a loop route needs at least one waypoint")
        missing = [n for n in loop if n not in self.coordinates]
        if missing:
            raise ValueError(f"loop references nodes without coordinates: {missing}")
        self.loop = loop
        self.entry_index = int(entry_index) % len(loop)
        self._start = as_point(start) if start is not None else None

    def waypoints(self) -> Iterator[str]:
        n = len(self.loop)
        idx = self.entry_index
        while True:
            yield self.loop[idx]
            idx = (idx + 1) % n

    def start_position(self) -> Point | None:
        return self._start

    def lap_length(self) -> float:
        pts = [self.coordinates[n] for n in self.loop]
        return sum(
            distance(pts[i], pts[(i + 1) % len(pts)]) for i in range(len(pts))
        )

    def describe(self) -> dict:
        d = super().describe()
        d.update(
            lap_nodes=len(self.loop),
            lap_length=round(self.lap_length(), 3),
            entry=self.loop[self.entry_index],
            has_start_position=self._start is not None,
        )
        return d


class AlternatingLoopRoute(MuleRoute):
    """RW-TCTP schedule: ``patrol_rounds - 1`` laps of the WPP, then one lap of the WRP.

    Parameters
    ----------
    patrol_loop / recharge_loop:
        One lap of the weighted patrolling path and of the weighted recharge
        path respectively.
    patrol_rounds:
        The ``r`` of Equation (4).  ``r <= 1`` means every lap follows the
        recharge path.
    """

    def __init__(
        self,
        mule_id: str,
        patrol_loop: Sequence[str],
        recharge_loop: Sequence[str],
        coordinates: Mapping[str, Point],
        *,
        patrol_rounds: int,
        entry_index: int = 0,
        start: Point | None = None,
    ) -> None:
        super().__init__(mule_id, coordinates)
        if not patrol_loop or not recharge_loop:
            raise ValueError("both loops must be non-empty")
        for n in itertools.chain(patrol_loop, recharge_loop):
            if n not in self.coordinates:
                raise ValueError(f"loop references node without coordinates: {n!r}")
        self.patrol_loop = list(patrol_loop)
        self.recharge_loop = list(recharge_loop)
        self.patrol_rounds = max(int(patrol_rounds), 1)
        self.entry_index = int(entry_index) % len(self.patrol_loop)
        self._start = as_point(start) if start is not None else None

    def waypoints(self) -> Iterator[str]:
        # First lap starts at entry_index to honour the location initialisation;
        # subsequent laps start from the loop head, matching a mule that keeps
        # cycling the same closed walk.
        first = True
        lap = 0
        while True:
            lap += 1
            use_recharge = (lap % self.patrol_rounds) == 0
            loop = self.recharge_loop if use_recharge else self.patrol_loop
            if first and not use_recharge:
                order = loop[self.entry_index:] + loop[: self.entry_index]
            else:
                order = loop
            first = False
            yield from order

    def start_position(self) -> Point | None:
        return self._start

    def lap_length(self) -> float:
        pts = [self.coordinates[n] for n in self.patrol_loop]
        return sum(distance(pts[i], pts[(i + 1) % len(pts)]) for i in range(len(pts)))

    def recharge_lap_length(self) -> float:
        pts = [self.coordinates[n] for n in self.recharge_loop]
        return sum(distance(pts[i], pts[(i + 1) % len(pts)]) for i in range(len(pts)))

    def describe(self) -> dict:
        d = super().describe()
        d.update(
            patrol_rounds=self.patrol_rounds,
            patrol_lap_length=round(self.lap_length(), 3),
            recharge_lap_length=round(self.recharge_lap_length(), 3),
        )
        return d


class StochasticRoute(MuleRoute):
    """Online random waypoint selection (the Random baseline of Section V).

    Each step the mule picks a uniformly random node different from the one it
    is currently at.  The route is seeded so experiments are reproducible.
    """

    def __init__(
        self,
        mule_id: str,
        candidates: Sequence[str],
        coordinates: Mapping[str, Point],
        *,
        rng: np.random.Generator | None = None,
        seed: int | None = None,
        avoid_repeat: bool = True,
    ) -> None:
        super().__init__(mule_id, coordinates)
        candidates = list(candidates)
        if not candidates:
            raise ValueError("need at least one candidate waypoint")
        missing = [n for n in candidates if n not in self.coordinates]
        if missing:
            raise ValueError(f"candidates without coordinates: {missing}")
        self.candidates = candidates
        self.avoid_repeat = avoid_repeat
        if rng is None:
            rng = np.random.default_rng(seed)
        self._rng = rng

    def waypoints(self) -> Iterator[str]:
        last: str | None = None
        while True:
            choices = self.candidates
            if self.avoid_repeat and last is not None and len(choices) > 1:
                choices = [c for c in choices if c != last]
            nxt = choices[int(self._rng.integers(len(choices)))]
            last = nxt
            yield nxt

    def describe(self) -> dict:
        d = super().describe()
        d.update(candidates=len(self.candidates), avoid_repeat=self.avoid_repeat)
        return d


@dataclass
class PatrolPlan:
    """Per-mule routes plus planning metadata produced by a strategy."""

    strategy: str
    routes: dict[str, MuleRoute]
    metadata: dict = field(default_factory=dict)

    def __post_init__(self) -> None:
        if not self.routes:
            raise ValueError("a patrol plan needs at least one route")
        for mule_id, route in self.routes.items():
            if route.mule_id != mule_id:
                raise ValueError(
                    f"route keyed {mule_id!r} belongs to mule {route.mule_id!r}"
                )

    @property
    def mule_ids(self) -> tuple[str, ...]:
        return tuple(self.routes)

    def route_for(self, mule_id: str) -> MuleRoute:
        return self.routes[mule_id]

    def total_lap_length(self) -> float | None:
        """Lap length shared by the routes, when all routes agree (TCTP variants)."""
        lengths = {round(r.lap_length(), 6) for r in self.routes.values() if r.lap_length() is not None}
        if len(lengths) == 1:
            return float(next(iter(lengths)))
        return None

    def describe(self) -> dict:
        return {
            "strategy": self.strategy,
            "routes": [r.describe() for r in self.routes.values()],
            **self.metadata,
        }
