"""The paper's contribution: the B-TCTP, W-TCTP and RW-TCTP patrolling algorithms.

* :mod:`repro.core.btctp` — Section II: shared Hamiltonian circuit, equal-length
  segmentation and location initialisation.
* :mod:`repro.core.wtctp` — Section III: Weighted Patrolling Path construction
  with the Shortest-Length / Balancing-Length break-edge policies and the
  counter-clockwise-angle patrolling rule.
* :mod:`repro.core.rwtctp` — Section IV: Weighted Recharge Path and the
  energy-aware round schedule.
"""

from repro.core.plan import LoopRoute, AlternatingLoopRoute, StochasticRoute, MuleRoute, PatrolPlan
from repro.core.start_points import compute_start_points, assign_mules_to_start_points, StartPointAssignment
from repro.core.policies import (
    BreakEdgePolicy,
    ShortestLengthPolicy,
    BalancingLengthPolicy,
    get_policy,
)
from repro.core.patrol_rules import angle_walk, build_patrol_walk
from repro.core.btctp import BTCTPPlanner, plan_btctp
from repro.core.wtctp import WTCTPPlanner, plan_wtctp, build_weighted_patrolling_path
from repro.core.rwtctp import RWTCTPPlanner, plan_rwtctp, build_weighted_recharge_path

__all__ = [
    "MuleRoute",
    "LoopRoute",
    "AlternatingLoopRoute",
    "StochasticRoute",
    "PatrolPlan",
    "compute_start_points",
    "assign_mules_to_start_points",
    "StartPointAssignment",
    "BreakEdgePolicy",
    "ShortestLengthPolicy",
    "BalancingLengthPolicy",
    "get_policy",
    "angle_walk",
    "build_patrol_walk",
    "BTCTPPlanner",
    "plan_btctp",
    "WTCTPPlanner",
    "plan_wtctp",
    "build_weighted_patrolling_path",
    "RWTCTPPlanner",
    "plan_rwtctp",
    "build_weighted_recharge_path",
]
