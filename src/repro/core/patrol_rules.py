"""The W-TCTP patrolling rule (Section 3.2): deterministic traversal of a WPP.

At a VIP several cycles meet, so a data mule arriving there has a choice of
outgoing edges.  The paper's rule makes every mule take the same choice:

    "When a DM arrives at a VIP ``g_i`` from target ``g_j``, it selects a
    target ``g_k`` ... which has minimal included angle with the former route
    ``g_j`` to ``g_i`` in the counterclockwise direction, as its next visiting
    target."

Applied at every node (an NTP has only one remaining edge, so the rule is
trivial there), this yields one specific Euler circuit of the WPP multigraph.
The angle rule can occasionally paint itself into a corner on adversarial
geometries (it is a greedy edge pairing); :func:`build_patrol_walk` therefore
falls back to splicing in the remaining edges Hierholzer-style, preserving the
angle-chosen prefix, so the returned walk is always a complete traversal.
"""

from __future__ import annotations

import math
from typing import Hashable, Sequence

from repro.geometry.angles import included_angle
from repro.graphs.multitour import MultiTour

__all__ = ["angle_walk", "build_patrol_walk", "next_edge_by_angle"]

NodeId = Hashable


def next_edge_by_angle(
    structure: MultiTour,
    current: NodeId,
    previous: NodeId | None,
    available: Sequence[tuple[NodeId, int]],
) -> tuple[NodeId, int]:
    """Pick the outgoing edge with minimal CCW included angle w.r.t. the incoming edge.

    ``available`` is a list of ``(neighbor, edge_key)`` pairs still untraversed.
    When there is no previous node (the very first step) the edge with the
    smallest heading measured from the positive x axis is taken, which is an
    arbitrary but deterministic convention shared by every mule.
    """
    if not available:
        raise ValueError("no available edges to choose from")
    cur_pt = structure.point(current)

    def sort_key(item: tuple[NodeId, int]) -> tuple[float, str, int]:
        neighbor, key = item
        nb_pt = structure.point(neighbor)
        if previous is None:
            angle = math.atan2(nb_pt.y - cur_pt.y, nb_pt.x - cur_pt.x) % (2.0 * math.pi)
        else:
            prev_pt = structure.point(previous)
            if prev_pt == cur_pt or nb_pt == cur_pt:
                angle = 2.0 * math.pi  # degenerate geometry: rank last
            else:
                angle = included_angle(cur_pt, prev_pt, nb_pt)
                if angle <= 1e-12:
                    # A zero angle would mean going straight back along the
                    # incoming direction; treat it as a full turn so genuine
                    # alternatives win, mirroring "minimal angle in the CCW
                    # direction" (the rotation is strictly positive).
                    angle = 2.0 * math.pi
        return (angle, str(neighbor), key)

    return min(available, key=sort_key)


def angle_walk(structure: MultiTour, start: NodeId, *, strict: bool = False) -> list[NodeId]:
    """Traverse the structure with the CCW-angle rule; returns a closed node walk.

    The returned list starts and ends at ``start`` and uses every edge exactly
    once when the greedy rule succeeds.  With ``strict=True`` a ``ValueError``
    is raised if the greedy rule strands untraversed edges; otherwise the
    caller (:func:`build_patrol_walk`) is expected to repair the walk.
    """
    if start not in structure:
        raise KeyError(start)
    used: set[int] = set()
    walk: list[NodeId] = [start]
    current: NodeId = start
    previous: NodeId | None = None
    total_edges = structure.num_edges()

    while len(used) < total_edges:
        available = [(nb, k) for nb, k in structure.neighbors(current) if k not in used]
        if not available:
            break
        neighbor, key = next_edge_by_angle(structure, current, previous, available)
        used.add(key)
        walk.append(neighbor)
        previous, current = current, neighbor

    if strict and (len(used) < total_edges or current != start):
        raise ValueError(
            "angle-based traversal did not produce a complete closed walk "
            f"({len(used)}/{total_edges} edges used, ended at {current!r})"
        )
    return walk


def build_patrol_walk(structure: MultiTour, start: NodeId) -> list[NodeId]:
    """Complete closed patrol walk (every edge exactly once), angle rule first.

    Uses :func:`angle_walk`; if the greedy rule terminates early the remaining
    edges are covered by Euler sub-circuits spliced into the walk at a shared
    node (standard Hierholzer repair).  The result always satisfies
    Definition 3's "the path itself is a cycle" requirement provided the
    structure is Eulerian.
    """
    if not structure.is_eulerian():
        raise ValueError("patrol structure must be Eulerian to admit a closed patrol walk")

    walk = angle_walk(structure, start, strict=False)
    total_edges = structure.num_edges()

    used_edges = _edges_of_walk(structure, walk)
    if len(used_edges) == total_edges and walk[0] == walk[-1]:
        return walk

    # Repair: splice Euler circuits of the unused sub-multigraph into the walk.
    remaining = structure.copy()
    for u, v, key_hint in used_edges:
        remaining.remove_edge(u, v, key_hint)

    walk = list(walk)
    if walk[0] != walk[-1]:
        # Close the walk through unused edges if possible; otherwise restart
        # cleanly from a pure Hierholzer circuit (still deterministic).
        return structure.euler_circuit(start=start)

    guard = 0
    while remaining.num_edges() > 0:
        guard += 1
        if guard > total_edges + 1:  # pragma: no cover - defensive
            return structure.euler_circuit(start=start)
        anchor_pos = next(
            (i for i, node in enumerate(walk) if remaining.neighbors(node)), None
        )
        if anchor_pos is None:  # disconnected leftovers should be impossible for Eulerian input
            return structure.euler_circuit(start=start)
        anchor = walk[anchor_pos]
        # The leftovers may form several disjoint even-degree components; cover
        # the one touching the walk at this anchor and splice it in.
        sub = remaining.euler_circuit(start=anchor, require_connected=False)
        # Remove the sub-circuit's edges from the remaining structure.
        for a, b in zip(sub[:-1], sub[1:]):
            remaining.remove_edge(a, b)
        walk = walk[:anchor_pos] + sub + walk[anchor_pos + 1 :]
    return walk


def _edges_of_walk(structure: MultiTour, walk: Sequence[NodeId]) -> list[tuple[NodeId, NodeId, int | None]]:
    """Map consecutive walk nodes back to concrete (u, v, key) edges, greedily."""
    available: dict[frozenset, list[int]] = {}
    for u, v, k in structure.edges():
        available.setdefault(frozenset((u, v)), []).append(k)
    out: list[tuple[NodeId, NodeId, int | None]] = []
    for a, b in zip(walk[:-1], walk[1:]):
        keys = available.get(frozenset((a, b)), [])
        key = keys.pop() if keys else None
        out.append((a, b, key))
    return out
