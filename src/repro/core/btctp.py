"""B-TCTP: the Basic Target-Coverage Target-Patrolling algorithm (Section II).

Phase 1 — path construction: every data mule independently builds the same
Hamiltonian circuit over all targets plus the sink, using the convex-hull
insertion heuristic (the same construction the CHB baseline uses).

Phase 2 — patrolling strategy: the most-north target becomes the reference
start point; the circuit is partitioned into ``n`` equal-length segments whose
endpoints are the start points; every mule drives to its assigned start point
(closest first, energy-based displacement on conflicts) and then patrols the
circuit counter-clockwise.  Because consecutive mules are separated by exactly
``|P| / n`` metres of path and move at the same speed, every target is visited
every ``|P| / (n·v)`` seconds with zero variance — the property Figures 7 and
8 of the paper demonstrate.
"""

from __future__ import annotations

from dataclasses import dataclass

from repro.core.plan import PatrolPlan
from repro.graphs.hamiltonian import build_hamiltonian_circuit
from repro.graphs.tour import Tour
from repro.graphs.validation import validate_tour
from repro.network.scenario import Scenario

__all__ = ["BTCTPPlanner", "plan_btctp", "expected_visiting_interval"]


def expected_visiting_interval(path_length: float, num_mules: int, velocity: float) -> float:
    """Closed-form visiting interval of B-TCTP: ``|P| / (n * v)``.

    With the mules equally spaced along the circuit and all moving at the same
    velocity, every point of the path (hence every target) is passed by some
    mule exactly once per ``|P| / (n v)`` seconds.
    """
    if num_mules <= 0:
        raise ValueError("num_mules must be positive")
    if velocity <= 0:
        raise ValueError("velocity must be positive")
    return path_length / (num_mules * velocity)


@dataclass
class BTCTPPlanner:
    """Planner object form of B-TCTP (handy for strategy registries and ablations).

    Parameters
    ----------
    tsp_method:
        Hamiltonian-circuit heuristic: ``"hull-insertion"`` (paper default),
        ``"nearest-neighbor"`` or ``"christofides"``.
    improve_tour:
        Run a 2-opt pass on the circuit (ablation EXT-A2; the paper does not).
    location_initialization:
        Perform the phase-2 start-point assignment.  Disabling it degrades
        B-TCTP into "CHB with shared direction" and is used by the EXT-A1
        ablation to isolate the contribution of the initialisation step.
    """

    tsp_method: str = "hull-insertion"
    improve_tour: bool = False
    location_initialization: bool = True
    name: str = "B-TCTP"

    def build_circuit(self, scenario: Scenario) -> Tour:
        """Phase 1: the shared Hamiltonian circuit over targets plus sink."""
        coords = scenario.patrol_points()
        tour = build_hamiltonian_circuit(
            coords, method=self.tsp_method, improve=self.improve_tour, start=scenario.sink.id
        )
        validate_tour(tour, expected_nodes=list(coords))
        return tour

    def pipeline(self):
        """The stage composition this planner executes (a :class:`PlanningPipeline`).

        ``hamiltonian | none | as-built | equal-spacing`` (or ``depot-start``
        when location initialisation is disabled); output is byte-identical
        to the historical fused implementation.
        """
        from repro.planning.compositions import btctp_pipeline

        return btctp_pipeline(
            tsp_method=self.tsp_method,
            improve_tour=self.improve_tour,
            location_initialization=self.location_initialization,
            name=self.name,
        )

    def plan(self, scenario: Scenario) -> PatrolPlan:
        """Run both phases and return the per-mule patrol plan."""
        return self.pipeline().plan(scenario)


def plan_btctp(scenario: Scenario, *, tsp_method: str = "hull-insertion",
               improve_tour: bool = False, location_initialization: bool = True) -> PatrolPlan:
    """Functional wrapper around :class:`BTCTPPlanner` (see its docstring)."""
    planner = BTCTPPlanner(
        tsp_method=tsp_method,
        improve_tour=improve_tour,
        location_initialization=location_initialization,
    )
    return planner.plan(scenario)
