"""Spec-schema drift check: the wire format of the specs is a committed golden.

RunSpec / CampaignSpec / ScenarioSpec / SimulationConfig / PipelineSpec /
StageSpec round-trip through JSON — they *are* the repo's wire format: spec
files on disk, campaign grids, the result store's payloads, and (per
ROADMAP) the future service API all speak it.  This check derives a schema
from each dataclass — field names, annotation strings, default reprs — and
asserts it equals the committed golden
(``src/repro/analysis/golden/spec_schemas.json``).

Any schema change therefore shows up as a reviewable golden diff instead of
a silent format drift: adding a field, changing a default (which changes
what serialisers omit), or renaming anything fails ``repro-patrol check``
until ``repro-patrol check --write-golden`` re-records the schemas — at
which point the fingerprint-coverage rules independently force a hashing
decision for any new field.
"""

from __future__ import annotations

import dataclasses
import json
from pathlib import Path
from typing import Any, Mapping

from repro.analysis.findings import Finding

__all__ = [
    "spec_schema",
    "current_schemas",
    "golden_path",
    "load_golden",
    "write_golden",
    "check_schema_drift",
]

_GOLDEN_RELPATH = "src/repro/analysis/golden/spec_schemas.json"


def _spec_classes() -> dict[str, type]:
    from repro.planning.spec import PipelineSpec, StageSpec
    from repro.runner.spec import CampaignSpec, RunSpec
    from repro.scenarios.spec import ScenarioSpec
    from repro.sim.engine import SimulationConfig

    return {
        "CampaignSpec": CampaignSpec,
        "PipelineSpec": PipelineSpec,
        "RunSpec": RunSpec,
        "ScenarioSpec": ScenarioSpec,
        "SimulationConfig": SimulationConfig,
        "StageSpec": StageSpec,
    }


def _default_repr(field: dataclasses.Field) -> str:
    if field.default is not dataclasses.MISSING:
        return repr(field.default)
    if field.default_factory is not dataclasses.MISSING:  # type: ignore[misc]
        # Spec factories are deterministic constructors (dict, ScenarioSpec,
        # StageSpec("hamiltonian")); recording the produced value keeps
        # default *changes* visible, not just default *presence*.
        return repr(field.default_factory())  # type: ignore[misc]
    return "<required>"


def spec_schema(cls: type) -> dict:
    """The drift-checked schema of one spec dataclass (field/type/default)."""
    if not dataclasses.is_dataclass(cls):
        raise TypeError(f"{cls!r} is not a dataclass")
    return {
        "fields": {
            f.name: {"type": str(f.type), "default": _default_repr(f)}
            for f in dataclasses.fields(cls)
        },
    }


def current_schemas(classes: "Mapping[str, type] | None" = None) -> dict[str, dict]:
    """Schemas of all round-trippable spec classes, keyed by class name."""
    classes = dict(classes) if classes is not None else _spec_classes()
    return {name: spec_schema(classes[name]) for name in sorted(classes)}


def golden_path() -> Path:
    """Location of the committed golden schema file (inside the package)."""
    return Path(__file__).parent / "golden" / "spec_schemas.json"


def load_golden(path: "Path | None" = None) -> dict[str, dict]:
    """The committed golden schemas; raises on a missing/corrupt golden."""
    golden_file = path if path is not None else golden_path()
    try:
        return json.loads(golden_file.read_text())["schemas"]
    except FileNotFoundError:
        raise
    except (json.JSONDecodeError, KeyError, TypeError) as exc:
        raise ValueError(f"malformed golden schema file {golden_file}: {exc}") from exc


def write_golden(path: "Path | None" = None,
                 schemas: "Mapping[str, dict] | None" = None) -> Path:
    """Re-record the golden schemas (``repro-patrol check --write-golden``)."""
    golden_file = path if path is not None else golden_path()
    payload = {
        "comment": "golden wire-format schemas of the round-trippable specs; "
                   "regenerate with `repro-patrol check --write-golden` "
                   "(see docs/ANALYSIS.md)",
        "schemas": dict(schemas) if schemas is not None else current_schemas(),
    }
    golden_file.parent.mkdir(parents=True, exist_ok=True)
    golden_file.write_text(json.dumps(payload, indent=2, sort_keys=True) + "\n")
    return golden_file


def _diff_fields(name: str, golden: Mapping[str, Any],
                 current: Mapping[str, Any], path: str) -> list[Finding]:
    findings = []
    golden_fields = dict(golden.get("fields", {}))
    current_fields = dict(current.get("fields", {}))
    for field_name in sorted(set(current_fields) - set(golden_fields)):
        findings.append(Finding(
            rule="schema-drift", path=path, line=0,
            message=f"{name}.{field_name} was added but the golden schema was "
                    "not updated (run `repro-patrol check --write-golden` after "
                    "reviewing the wire-format change)",
        ))
    for field_name in sorted(set(golden_fields) - set(current_fields)):
        findings.append(Finding(
            rule="schema-drift", path=path, line=0,
            message=f"{name}.{field_name} exists in the golden schema but not "
                    "in the dataclass (removed or renamed without updating the "
                    "golden)",
        ))
    for field_name in sorted(set(golden_fields) & set(current_fields)):
        recorded, actual = golden_fields[field_name], current_fields[field_name]
        for aspect in ("type", "default"):
            if recorded.get(aspect) != actual.get(aspect):
                findings.append(Finding(
                    rule="schema-drift", path=path, line=0,
                    message=f"{name}.{field_name} {aspect} changed: golden "
                            f"{recorded.get(aspect)!r} vs current "
                            f"{actual.get(aspect)!r}",
                ))
    return findings


def check_schema_drift(
    current: "Mapping[str, dict] | None" = None,
    golden: "Mapping[str, dict] | None" = None,
) -> list[Finding]:
    """Compare the live spec schemas against the committed golden."""
    path = _GOLDEN_RELPATH
    if current is None:
        current = current_schemas()
    if golden is None:
        try:
            golden = load_golden()
        except FileNotFoundError:
            return [Finding(
                rule="schema-missing-golden", path=path, line=0,
                message="golden schema file is missing; run `repro-patrol "
                        "check --write-golden` and commit the result",
            )]
    findings: list[Finding] = []
    for name in sorted(set(current) - set(golden)):
        findings.append(Finding(
            rule="schema-missing-golden", path=path, line=0,
            message=f"spec class {name!r} has no golden schema entry",
        ))
    for name in sorted(set(golden) - set(current)):
        findings.append(Finding(
            rule="schema-missing-golden", path=path, line=0,
            message=f"golden schema names {name!r}, which is no longer a "
                    "round-trippable spec class",
        ))
    for name in sorted(set(golden) & set(current)):
        findings.extend(_diff_fields(name, golden[name], current[name], path))
    return findings
