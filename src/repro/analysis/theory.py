"""Closed-form analysis of fixed-walk patrolling.

Setting: ``n`` data mules move at speed ``v`` along the same closed walk of
length ``L`` (a Hamiltonian circuit for B-TCTP, a weighted patrolling path for
W-TCTP), with arc-length phase offsets ``phi_1 .. phi_n`` (B-TCTP's location
initialisation makes these ``k L / n``).  A target that appears in the walk at
arc positions ``s_1 .. s_w`` (``w`` = its weight) is visited at times

    t = (s_j - phi_i) / v  (mod L / v)        for every mule i and occurrence j.

The steady-state visiting intervals of the target are therefore the
circular gaps of the multiset ``{ (s_j - phi_i) mod L }`` divided by ``v``.
Everything the paper measures in Figures 7-10 follows from those gaps:

* B-TCTP (w = 1, equally spaced mules): all gaps are ``L / n`` -> interval
  ``L / (n v)``, SD = 0.
* W-TCTP with one mule: the gaps are the VIP's cycle lengths -> the
  Balancing-Length policy directly minimises their spread.
* W-TCTP with several mules: the gaps interleave cycle lengths with mule
  offsets, which is why balancing the cycles alone does not always minimise
  the SD (the interference effect recorded in EXPERIMENTS.md).
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Mapping, Sequence

import numpy as np

from repro.geometry.point import Point, distance

__all__ = [
    "PatrolAnalysis",
    "analyze_loop",
    "vip_visit_offsets",
    "predicted_interval_btctp",
    "predicted_sd_for_offsets",
    "interval_lower_bound",
]


def predicted_interval_btctp(path_length: float, num_mules: int, velocity: float) -> float:
    """B-TCTP's steady-state visiting interval ``L / (n v)`` (same as Section II predicts)."""
    if num_mules <= 0 or velocity <= 0:
        raise ValueError("num_mules and velocity must be positive")
    return path_length / (num_mules * velocity)


def interval_lower_bound(hull_perimeter: float, num_mules: int, velocity: float) -> float:
    """A lower bound on the max visiting interval achievable by *any* shared-circuit strategy.

    Any closed tour through all targets is at least as long as the convex hull
    perimeter, and with ``n`` mules on one circuit some target waits at least
    ``length / (n v)`` between visits; hence no shared-circuit schedule can
    beat ``hull_perimeter / (n v)``.
    """
    if num_mules <= 0 or velocity <= 0:
        raise ValueError("num_mules and velocity must be positive")
    return hull_perimeter / (num_mules * velocity)


def _circular_gaps(positions: Sequence[float], length: float) -> list[float]:
    """Gaps between consecutive positions around a circle of circumference ``length``."""
    if length <= 0:
        raise ValueError("length must be positive")
    pos = sorted(p % length for p in positions)
    if not pos:
        return []
    gaps = [b - a for a, b in zip(pos, pos[1:])]
    gaps.append(length - (pos[-1] - pos[0]))
    return gaps


def vip_visit_offsets(
    occurrence_arcs: Sequence[float],
    mule_offsets: Sequence[float],
    length: float,
) -> list[float]:
    """Arc positions (mod ``length``) at which *some* mule passes the target.

    ``occurrence_arcs`` are the arc lengths of the target's occurrences in the
    walk; ``mule_offsets`` are the mules' phase offsets along the same walk.
    """
    return sorted(
        (s - phi) % length for s in occurrence_arcs for phi in mule_offsets
    )


def predicted_sd_for_offsets(
    occurrence_arcs: Sequence[float],
    mule_offsets: Sequence[float],
    length: float,
    velocity: float,
) -> float:
    """Steady-state SD of the target's visiting intervals (the paper's SD formula)."""
    if velocity <= 0:
        raise ValueError("velocity must be positive")
    offsets = vip_visit_offsets(occurrence_arcs, mule_offsets, length)
    gaps = _circular_gaps(offsets, length)
    intervals = [g / velocity for g in gaps]
    if len(intervals) < 2:
        return 0.0
    return float(np.std(intervals, ddof=1))


@dataclass(frozen=True)
class PatrolAnalysis:
    """Analytic steady-state prediction for one closed patrol walk.

    Attributes
    ----------
    length:
        Length of the walk (one lap), metres.
    lap_time:
        Time for one lap at the given velocity.
    occurrences:
        Target id -> arc positions of its occurrences along the walk.
    mule_offsets:
        Phase offsets (arc lengths) of the mules along the walk.
    velocity:
        Mule speed in m/s.
    """

    length: float
    lap_time: float
    occurrences: dict[str, tuple[float, ...]]
    mule_offsets: tuple[float, ...]
    velocity: float

    # ------------------------------------------------------------------ #
    def intervals_for(self, target_id: str) -> list[float]:
        """Predicted steady-state visiting intervals of ``target_id`` (seconds, one lap's worth)."""
        arcs = self.occurrences[target_id]
        offsets = vip_visit_offsets(arcs, self.mule_offsets, self.length)
        return [g / self.velocity for g in _circular_gaps(offsets, self.length)]

    def mean_interval(self, target_id: str) -> float:
        """Mean predicted interval; equals ``lap_time / (w * n)`` for every target."""
        intervals = self.intervals_for(target_id)
        return float(np.mean(intervals)) if intervals else float("nan")

    def sd(self, target_id: str) -> float:
        """Predicted SD of the target's visiting intervals (paper's formula, ``n-1``)."""
        intervals = self.intervals_for(target_id)
        if len(intervals) < 2:
            return 0.0
        return float(np.std(intervals, ddof=1))

    def max_interval(self) -> float:
        """Predicted maximal visiting interval over all targets."""
        return max(max(self.intervals_for(t)) for t in self.occurrences)

    def average_sd(self) -> float:
        """Mean SD over all targets — the quantity plotted in Figures 8 and 10."""
        sds = [self.sd(t) for t in self.occurrences]
        return float(np.mean(sds)) if sds else float("nan")

    def summary(self) -> dict:
        return {
            "length": self.length,
            "lap_time": self.lap_time,
            "num_mules": len(self.mule_offsets),
            "max_interval": self.max_interval(),
            "average_sd": self.average_sd(),
        }


def analyze_loop(
    loop: Sequence[str],
    coordinates: Mapping[str, Point],
    *,
    num_mules: int | None = None,
    mule_offsets: Sequence[float] | None = None,
    velocity: float = 2.0,
) -> PatrolAnalysis:
    """Build a :class:`PatrolAnalysis` for a closed walk.

    Either ``num_mules`` (equally spaced offsets, as after B-TCTP's location
    initialisation) or explicit ``mule_offsets`` must be given.
    """
    loop = list(loop)
    if not loop:
        raise ValueError("loop must be non-empty")
    if (num_mules is None) == (mule_offsets is None):
        raise ValueError("give exactly one of num_mules or mule_offsets")
    if velocity <= 0:
        raise ValueError("velocity must be positive")

    # Arc positions of every loop vertex.
    arcs: list[float] = [0.0]
    for a, b in zip(loop[:-1], loop[1:]):
        arcs.append(arcs[-1] + distance(coordinates[a], coordinates[b]))
    length = arcs[-1] + distance(coordinates[loop[-1]], coordinates[loop[0]])
    if length <= 0:
        raise ValueError("loop has zero length")

    occurrences: dict[str, list[float]] = {}
    for node, arc in zip(loop, arcs):
        occurrences.setdefault(node, []).append(arc)

    if mule_offsets is None:
        assert num_mules is not None
        if num_mules <= 0:
            raise ValueError("num_mules must be positive")
        mule_offsets = [k * length / num_mules for k in range(num_mules)]

    return PatrolAnalysis(
        length=length,
        lap_time=length / velocity,
        occurrences={k: tuple(v) for k, v in occurrences.items()},
        mule_offsets=tuple(float(o) for o in mule_offsets),
        velocity=velocity,
    )
