"""The rule catalog of the self-checking layer: one id per checkable predicate.

Every analyzer in :mod:`repro.analysis` emits findings tagged with a rule id
from this catalog.  The ids are stable, kebab-case strings — they appear in
``# repro: allow[rule-id]`` suppression comments, in the committed baseline
file, in ``repro-patrol check --only`` filters and in ``docs/ANALYSIS.md`` —
so renaming one is a breaking change to every suppression that names it.

The catalog groups into four analyzers:

* ``registry`` — the three declaration registries (strategies, scenario
  families, planning-stage backends) must keep their declared contracts in
  sync with the factories behind them;
* ``determinism`` — registered code paths must stay reproducible: seeded
  RNGs only, no wall clock, no set-iteration order, no environment branches;
* ``fingerprint`` — every spec dataclass field must flow into the run
  fingerprint (or be exempted with a reason), so the content-addressed
  result store can never serve stale hits after a schema change;
* ``schema`` — the round-trippable spec dataclasses must match their
  committed golden schemas, so wire-format drift is always a reviewed diff.
"""

from __future__ import annotations

from dataclasses import dataclass

__all__ = ["Rule", "RULES", "RULE_IDS", "ANALYZERS", "rules_for_analyzer"]


@dataclass(frozen=True)
class Rule:
    """One checkable predicate: stable id, owning analyzer, summary."""

    id: str
    analyzer: str
    summary: str


RULES: tuple[Rule, ...] = (
    # -- registry contract ------------------------------------------------ #
    Rule("registry-signature-drift", "registry",
         "declared strategy parameters differ from the factory signature"),
    Rule("registry-undeclared-kwargs", "registry",
         "registered factory takes **kwargs with no declared parameter set"),
    Rule("registry-alias-shadow", "registry",
         "two registry entries collide once separators are normalised"),
    Rule("registry-docstring-drift", "registry",
         "factory docstring Parameters section disagrees with the declared table"),
    Rule("registry-mutable-default", "registry",
         "declared parameter default is mutable (shared-state hazard)"),
    Rule("registry-missing-description", "registry",
         "registry entry has no description (listings show an empty row)"),
    Rule("registry-param-ambiguity", "registry",
         "parameter name collides with a SimulationConfig field (bare grid "
         "axes resolve scenario > sim > strategy, silently shadowing)"),
    # -- determinism ------------------------------------------------------ #
    Rule("det-unseeded-random", "determinism",
         "stdlib random module-level call (process-global, unseeded RNG)"),
    Rule("det-global-np-random", "determinism",
         "legacy numpy global RNG call (np.random.*) instead of default_rng(seed)"),
    Rule("det-wall-clock", "determinism",
         "wall-clock read (time.time / datetime.now / ...) in a registered code path"),
    Rule("det-set-iteration", "determinism",
         "direct iteration over a set (iteration order is not deterministic)"),
    Rule("det-env-branch", "determinism",
         "environment-dependent value (os.environ / os.getenv) in a registered code path"),
    # -- fingerprint coverage --------------------------------------------- #
    Rule("fpr-uncovered-field", "fingerprint",
         "spec dataclass field neither hashed by run_fingerprint nor exempted"),
    Rule("fpr-stale-entry", "fingerprint",
         "fingerprint coverage/exemption entry names a field that no longer exists"),
    Rule("fpr-unread-field", "fingerprint",
         "coverage claims a field is hashed but the canonicaliser never reads it"),
    # -- spec schema drift ------------------------------------------------ #
    Rule("schema-drift", "schema",
         "round-trippable spec schema differs from the committed golden schema"),
    Rule("schema-missing-golden", "schema",
         "spec class has no committed golden schema (or the golden names a "
         "class that no longer exists)"),
)

RULE_IDS: frozenset[str] = frozenset(rule.id for rule in RULES)
ANALYZERS: tuple[str, ...] = ("registry", "determinism", "fingerprint", "schema")


def rules_for_analyzer(analyzer: str) -> tuple[Rule, ...]:
    """The catalog rules owned by one analyzer (see :data:`ANALYZERS`)."""
    if analyzer not in ANALYZERS:
        raise ValueError(
            f"unknown analyzer {analyzer!r}; expected one of {', '.join(ANALYZERS)}"
        )
    return tuple(rule for rule in RULES if rule.analyzer == analyzer)
