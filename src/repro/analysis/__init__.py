"""Analytic models of the patrolling algorithms.

The simulator measures; this subpackage *predicts*.  For B-TCTP and the
weighted variants the steady-state visiting behaviour has a closed form once
the patrol structure is fixed, because the mules move at constant speed along
a fixed closed walk with fixed phase offsets.  The analysis module exposes
those closed forms — per-target visit phases, visiting intervals, SD, lower
bounds on the achievable interval — so tests and users can cross-check the
discrete-event simulation against theory (and so the multi-mule interference
effect documented in EXPERIMENTS.md can be computed exactly instead of
observed empirically).
"""

from repro.analysis.theory import (
    PatrolAnalysis,
    analyze_loop,
    interval_lower_bound,
    predicted_interval_btctp,
    predicted_sd_for_offsets,
    vip_visit_offsets,
)

__all__ = [
    "PatrolAnalysis",
    "analyze_loop",
    "interval_lower_bound",
    "predicted_interval_btctp",
    "predicted_sd_for_offsets",
    "vip_visit_offsets",
]
