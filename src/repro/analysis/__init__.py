"""Analytic models of the algorithms, and the repo's self-checking layer.

The simulator measures; this subpackage *predicts and verifies*.

:mod:`repro.analysis.theory` holds the closed forms of the patrolling
algorithms — per-target visit phases, visiting intervals, SD, lower bounds
on the achievable interval — so tests and users can cross-check the
discrete-event simulation against theory.

The rest of the subpackage is the static self-checking layer behind
``repro-patrol check`` (see ``docs/ANALYSIS.md``): the repo's correctness
invariants — registry declarations match factory signatures, registered
code paths stay deterministic, every spec field reaches the run
fingerprint, the spec wire format matches its committed golden — verified
as local, checkable predicates over the live registries and the AST, the
same "global property as locally checkable predicate" move that makes
lattice-linear predicate detection tractable:

* :mod:`repro.analysis.rules` — the stable rule catalog;
* :mod:`repro.analysis.findings` — findings, suppressions, the baseline;
* :mod:`repro.analysis.registry_contract` — the three registries;
* :mod:`repro.analysis.determinism` — the AST determinism lint;
* :mod:`repro.analysis.fingerprint_coverage` — store-poisoning prevention;
* :mod:`repro.analysis.schema_drift` — golden wire-format schemas;
* :mod:`repro.analysis.check` — the orchestrator the CLI calls.
"""

from repro.analysis.check import CheckReport, run_check
from repro.analysis.findings import Finding
from repro.analysis.rules import RULES, Rule
from repro.analysis.theory import (
    PatrolAnalysis,
    analyze_loop,
    interval_lower_bound,
    predicted_interval_btctp,
    predicted_sd_for_offsets,
    vip_visit_offsets,
)

__all__ = [
    "PatrolAnalysis",
    "analyze_loop",
    "interval_lower_bound",
    "predicted_interval_btctp",
    "predicted_sd_for_offsets",
    "vip_visit_offsets",
    "CheckReport",
    "run_check",
    "Finding",
    "Rule",
    "RULES",
]
