"""Structured findings, inline suppressions, and the committed baseline.

A :class:`Finding` is one analyzer hit: a stable rule id, a repo-relative
path, a 1-based line (0 for whole-artifact findings such as schema drift) and
a human message.  Findings are plain data so ``repro-patrol check`` can
render them as ``path:line: rule-id: message`` text or as JSON for CI
artifacts.

Two escape hatches keep the checkers adoptable on a living tree:

* **inline suppressions** — a ``# repro: allow[rule-id]`` comment on the
  offending line acknowledges one finding in place (several ids separated by
  commas).  Suppressions are for *justified* violations — the comment should
  say why, e.g. the byte-invisible geometry-cache switch;
* **a committed baseline** — ``.repro-analysis-baseline.json`` records known
  findings by ``(rule, path, message)`` so pre-existing debt does not block
  ``--strict`` while still failing the build on anything new.  Line numbers
  are deliberately not part of the key: unrelated edits move code around.
"""

from __future__ import annotations

import json
import re
from dataclasses import dataclass
from pathlib import Path
from typing import Iterable, Mapping

__all__ = [
    "Finding",
    "suppressed_rules_by_line",
    "load_baseline",
    "write_baseline",
    "split_suppressed",
]

BASELINE_DEFAULT = ".repro-analysis-baseline.json"

_SUPPRESS_RE = re.compile(r"#\s*repro:\s*allow\[([a-z0-9,\-\s]+)\]")


@dataclass(frozen=True)
class Finding:
    """One analyzer hit: rule id, location, message."""

    rule: str
    path: str
    line: int
    message: str

    def key(self) -> tuple[str, str, str]:
        """The baseline identity: rule + path + message (line-independent)."""
        return (self.rule, self.path, self.message)

    def format(self) -> str:
        return f"{self.path}:{self.line}: {self.rule}: {self.message}"

    def to_dict(self) -> dict:
        return {"rule": self.rule, "path": self.path, "line": self.line,
                "message": self.message}

    @classmethod
    def from_dict(cls, data: Mapping) -> "Finding":
        return cls(rule=str(data["rule"]), path=str(data["path"]),
                   line=int(data.get("line", 0)), message=str(data["message"]))


def suppressed_rules_by_line(source: str) -> dict[int, frozenset[str]]:
    """Parse ``# repro: allow[...]`` comments: 1-based line -> suppressed ids."""
    table: dict[int, frozenset[str]] = {}
    for lineno, line in enumerate(source.splitlines(), start=1):
        match = _SUPPRESS_RE.search(line)
        if match:
            ids = frozenset(
                item.strip() for item in match.group(1).split(",") if item.strip()
            )
            if ids:
                table[lineno] = ids
    return table


def load_baseline(path: "str | Path") -> frozenset[tuple[str, str, str]]:
    """The baselined finding keys from a committed baseline file.

    Raises :class:`ValueError` on a malformed file — a baseline that cannot
    be parsed must not silently disable itself.
    """
    text = Path(path).read_text()
    try:
        payload = json.loads(text)
        entries = payload["findings"]
    except (json.JSONDecodeError, KeyError, TypeError) as exc:
        raise ValueError(f"malformed analysis baseline {path}: {exc}") from exc
    keys = set()
    for entry in entries:
        finding = Finding.from_dict(entry)
        keys.add(finding.key())
    return frozenset(keys)


def write_baseline(path: "str | Path", findings: Iterable[Finding]) -> None:
    """Write ``findings`` as the new committed baseline (sorted, line-free)."""
    entries = sorted(
        {f.key() for f in findings}  # dedup: the key ignores line numbers
    )
    payload = {
        "version": 1,
        "comment": "known findings tolerated by `repro-patrol check`; "
                   "see docs/ANALYSIS.md for the workflow",
        "findings": [
            {"rule": rule, "path": p, "message": message}
            for rule, p, message in entries
        ],
    }
    Path(path).write_text(json.dumps(payload, indent=2, sort_keys=True) + "\n")


def split_suppressed(
    findings: Iterable[Finding],
    *,
    source_cache: "Mapping[str, str] | None" = None,
    baseline: "frozenset[tuple[str, str, str]] | None" = None,
) -> tuple[list[Finding], int, int]:
    """Partition findings into (kept, inline-suppressed count, baselined count).

    ``source_cache`` maps finding paths to their source text (for inline
    suppression comments); ``baseline`` is the loaded baseline key set.
    """
    kept: list[Finding] = []
    suppressed = baselined = 0
    suppression_tables: dict[str, dict[int, frozenset[str]]] = {}
    for finding in findings:
        if baseline and finding.key() in baseline:
            baselined += 1
            continue
        if source_cache and finding.path in source_cache:
            if finding.path not in suppression_tables:
                suppression_tables[finding.path] = suppressed_rules_by_line(
                    source_cache[finding.path]
                )
            allowed = suppression_tables[finding.path].get(finding.line, frozenset())
            if finding.rule in allowed:
                suppressed += 1
                continue
        kept.append(finding)
    return kept, suppressed, baselined
