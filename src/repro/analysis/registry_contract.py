"""Registry-contract checker: declarations must match the factories behind them.

PRs 1–5 moved the repo onto three declaration registries — strategies
(:mod:`repro.baselines.base`), scenario families
(:mod:`repro.scenarios.registry`) and planning-stage backends
(:mod:`repro.planning.stages`).  Campaign validation, grid-axis resolution
and the CLI listings all *trust* those declarations; this checker makes the
trust checkable:

* an explicitly declared strategy parameter set that drifted from the
  factory signature (``registry-signature-drift``);
* a registered factory taking ``**kwargs`` with no declared parameter set,
  so validation silently accepts anything (``registry-undeclared-kwargs``);
* two entries whose names/aliases collide once ``-``/``_`` separators are
  normalised — alias resolution is case-insensitive but not
  separator-insensitive, so ``grid_jitter`` and ``grid-jitter`` living in
  different entries would be a user trap (``registry-alias-shadow``);
* a factory docstring whose NumPy-style ``Parameters`` section documents
  parameters the registry does not declare, or vice versa
  (``registry-docstring-drift``);
* mutable declared defaults (``registry-mutable-default``), missing
  descriptions (``registry-missing-description``), and parameter names that
  collide with :class:`~repro.sim.engine.SimulationConfig` fields — bare
  campaign grid axes resolve scenario > sim > strategy, so such a name
  silently shadows one layer (``registry-param-ambiguity``).

Everything here is introspection over the live registries (via their
``all_*_infos`` hooks) plus light docstring parsing; no simulation runs.
"""

from __future__ import annotations

import inspect
import re
from pathlib import Path
from typing import Any, Callable, Iterable, Mapping

from repro.analysis.findings import Finding

__all__ = ["check_registries", "documented_params", "factory_location"]

_MUTABLE_TYPES = (list, dict, set, bytearray)

# Parameters injected by the runner / pipeline machinery rather than declared
# by users: absent from the declared tables by design.
_INJECTED_PARAMS = frozenset({"seed"})


def factory_location(factory: Callable) -> tuple[str, int]:
    """``(repo-relative path, first line)`` of a factory, best effort.

    Wrapped factories (``functools.wraps`` builders) are unwrapped first so
    the finding points at the code a human would edit.  Uninspectable
    factories anchor at line 0 of an empty path.
    """
    target = inspect.unwrap(factory)
    try:
        source_file = inspect.getsourcefile(target)
        _, lineno = inspect.getsourcelines(target)
    except (OSError, TypeError):
        return "", 0
    if source_file is None:  # pragma: no cover - C-level factory
        return "", 0
    return relative_to_repo(source_file), lineno


def relative_to_repo(source_file: "str | Path") -> str:
    """Render a source path repo-relative (``src/repro/...``) when possible."""
    path = Path(source_file).resolve()
    for ancestor in path.parents:
        if ancestor.name == "src" and (ancestor / "repro").is_dir():
            return path.relative_to(ancestor.parent).as_posix()
    try:
        return path.relative_to(Path.cwd()).as_posix()
    except ValueError:
        return path.as_posix()


_SECTION_RE = re.compile(r"^\s*Parameters\s*$")
_UNDERLINE_RE = re.compile(r"^\s*-{3,}\s*$")
# One entry may document several parameters: ``tsp_method, improve_tour : ...``
_ENTRY_RE = re.compile(r"^(\*{0,2}\w+(?:\s*,\s*\*{0,2}\w+)*)\s*(?::.*)?$")


def documented_params(docstring: "str | None") -> "frozenset[str] | None":
    """Names documented by a NumPy-style ``Parameters`` section, or ``None``.

    ``None`` means the docstring has no ``Parameters`` section at all — no
    drift can be diagnosed.  ``*args`` / ``**kwargs`` entries are stripped of
    their stars.  Only entries at the section's own indentation count;
    deeper-indented lines are descriptions.
    """
    if not docstring:
        return None
    lines = inspect.cleandoc(docstring).splitlines()
    names: set[str] = set()
    in_section = False
    section_found = False
    entry_indent: "int | None" = None
    for index, line in enumerate(lines):
        if not in_section:
            if _SECTION_RE.match(line) and index + 1 < len(lines) \
                    and _UNDERLINE_RE.match(lines[index + 1]):
                in_section = True
                section_found = True
            continue
        if _UNDERLINE_RE.match(line):
            continue
        if not line.strip():
            continue
        indent = len(line) - len(line.lstrip())
        if entry_indent is None:
            entry_indent = indent
        if indent > entry_indent:
            continue  # description / continuation
        if indent < entry_indent:
            break  # dedent: the section ended
        match = _ENTRY_RE.match(line.strip())
        if match is None:
            break  # a new section header ("Returns", ...) ends Parameters
        for part in match.group(1).split(","):
            names.add(part.strip().lstrip("*"))
    return frozenset(names) if section_found else None


def _normalize(name: str) -> str:
    return name.replace("-", "").replace("_", "")


def _alias_shadow_findings(
    what: str, alias_table: Mapping[str, str], locate: Callable[[str], tuple[str, int]]
) -> list[Finding]:
    """Entries whose accepted keys collide once separators are normalised."""
    findings: list[Finding] = []
    normalized: dict[str, tuple[str, str]] = {}  # normal form -> (key, canonical)
    for key in sorted(alias_table):
        canonical = alias_table[key]
        form = _normalize(key)
        seen = normalized.get(form)
        if seen is None:
            normalized[form] = (key, canonical)
        elif seen[1] != canonical:
            path, line = locate(canonical)
            findings.append(Finding(
                rule="registry-alias-shadow", path=path, line=line,
                message=f"{what} key {key!r} (-> {canonical!r}) normalises to the "
                        f"same name as {seen[0]!r} (-> {seen[1]!r}); separator "
                        "spelling would silently pick a different entry",
            ))
    return findings


def _docstring_drift_findings(
    what: str,
    name: str,
    factory: Callable,
    declared: Iterable[str],
    *,
    extra_allowed: frozenset[str] = frozenset(),
) -> list[Finding]:
    documented = documented_params(inspect.getdoc(inspect.unwrap(factory)))
    if documented is None:
        return []
    declared_set = set(declared) | _INJECTED_PARAMS | extra_allowed
    path, line = factory_location(factory)
    findings = []
    for param in sorted(documented - declared_set):
        findings.append(Finding(
            rule="registry-docstring-drift", path=path, line=line,
            message=f"{what} {name!r} documents parameter {param!r} that the "
                    "registry does not declare",
        ))
    for param in sorted(set(declared) - documented):
        findings.append(Finding(
            rule="registry-docstring-drift", path=path, line=line,
            message=f"{what} {name!r} declares parameter {param!r} that its "
                    "docstring Parameters section does not document",
        ))
    return findings


def _mutable_default_findings(
    what: str, name: str, factory: Callable, defaults: Mapping[str, Any]
) -> list[Finding]:
    findings = []
    path, line = factory_location(factory)
    for param, default in sorted(defaults.items()):
        if isinstance(default, _MUTABLE_TYPES):
            findings.append(Finding(
                rule="registry-mutable-default", path=path, line=line,
                message=f"{what} {name!r} declares parameter {param!r} with "
                        f"mutable default {default!r}; one shared instance "
                        "leaks state across builds",
            ))
    return findings


def _sim_field_names() -> frozenset[str]:
    import dataclasses

    from repro.sim.engine import SimulationConfig

    return frozenset(f.name for f in dataclasses.fields(SimulationConfig))


def check_registries(
    *,
    strategies: "Mapping[str, Any] | None" = None,
    strategy_aliases: "Mapping[str, str] | None" = None,
    scenarios: "Mapping[str, Any] | None" = None,
    scenario_aliases: "Mapping[str, str] | None" = None,
    stages: "Mapping[str, Mapping[str, Any]] | None" = None,
    transports: "Mapping[str, Any] | None" = None,
    transport_aliases: "Mapping[str, str] | None" = None,
) -> list[Finding]:
    """Run every registry-contract rule over the four registries.

    All parameters default to the live registries (via their ``all_*_infos``
    introspection hooks); tests inject synthetic info tables to seed
    violations without registering anything for real — registrations are
    permanent, so polluting the live registries from a test would leak into
    every later listing.
    """
    from repro.baselines.base import (
        all_strategy_infos,
        derived_strategy_params,
        strategy_alias_table,
    )
    from repro.planning.stages import STAGE_KINDS, all_stage_infos, stage_alias_table
    from repro.scenarios.registry import all_scenario_infos, scenario_alias_table
    from repro.service.registry import all_transport_infos, transport_alias_table

    findings: list[Finding] = []
    sim_fields = _sim_field_names()

    # -- strategies ------------------------------------------------------- #
    if strategies is None:
        strategies = all_strategy_infos()
        strategy_aliases = strategy_alias_table()
    elif strategy_aliases is None:
        strategy_aliases = {name: name for name in strategies}
    findings += _alias_shadow_findings(
        "strategy", strategy_aliases,
        lambda name: factory_location(strategies[name].factory),
    )
    for name in sorted(strategies):
        info = strategies[name]
        path, line = factory_location(info.factory)
        derived, derived_strict = derived_strategy_params(info.factory)
        if not info.strict:
            findings.append(Finding(
                rule="registry-undeclared-kwargs", path=path, line=line,
                message=f"strategy {name!r} is registered without a declared "
                        "parameter set (**kwargs factory): validation accepts "
                        "anything, so typos reach the factory",
            ))
        elif derived_strict and derived != info.params:
            missing = sorted(info.params - derived)
            extra = sorted(derived - info.params)
            detail = "; ".join(
                part for part in (
                    f"declared but not accepted: {', '.join(missing)}" if missing else "",
                    f"accepted but not declared: {', '.join(extra)}" if extra else "",
                ) if part
            )
            findings.append(Finding(
                rule="registry-signature-drift", path=path, line=line,
                message=f"strategy {name!r} declared parameters drifted from "
                        f"the factory signature ({detail})",
            ))
        if not info.description.strip():
            findings.append(Finding(
                rule="registry-missing-description", path=path, line=line,
                message=f"strategy {name!r} has no description",
            ))
        findings += _docstring_drift_findings("strategy", name, info.factory, info.params)
        for param in sorted(info.params & sim_fields):
            findings.append(Finding(
                rule="registry-param-ambiguity", path=path, line=line,
                message=f"strategy {name!r} parameter {param!r} collides with a "
                        "SimulationConfig field; a bare campaign grid axis "
                        f"{param!r} resolves to sim.{param}, never reaching the "
                        "strategy",
            ))

    # -- scenario families ------------------------------------------------ #
    if scenarios is None:
        scenarios = all_scenario_infos()
        scenario_aliases = scenario_alias_table()
    elif scenario_aliases is None:
        scenario_aliases = {name: name for name in scenarios}
    findings += _alias_shadow_findings(
        "scenario family", scenario_aliases,
        lambda name: factory_location(scenarios[name].factory),
    )
    for name in sorted(scenarios):
        info = scenarios[name]
        path, line = factory_location(info.factory)
        if not info.description.strip():
            findings.append(Finding(
                rule="registry-missing-description", path=path, line=line,
                message=f"scenario family {name!r} has no description",
            ))
        findings += _docstring_drift_findings(
            "scenario family", name, info.factory, info.params
        )
        findings += _mutable_default_findings(
            "scenario family", name, info.factory, info.defaults()
        )
        for param in sorted(set(info.params) & sim_fields):
            findings.append(Finding(
                rule="registry-param-ambiguity", path=path, line=line,
                message=f"scenario family {name!r} parameter {param!r} collides "
                        "with a SimulationConfig field; a bare campaign grid "
                        f"axis {param!r} resolves to the scenario, silently "
                        f"shadowing sim.{param}",
            ))

    # -- planning-stage backends ------------------------------------------ #
    if stages is None:
        stages = all_stage_infos()
        stage_aliases = {kind: stage_alias_table(kind) for kind in STAGE_KINDS}
    else:
        stage_aliases = {
            kind: {name: name for name in stages.get(kind, {})} for kind in stages
        }
    for kind in stages:
        findings += _alias_shadow_findings(
            f"{kind} backend", stage_aliases[kind],
            lambda name, _kind=kind: factory_location(stages[_kind][name].factory),
        )
        for name in sorted(stages[kind]):
            info = stages[kind][name]
            path, line = factory_location(info.factory)
            if not info.description.strip():
                findings.append(Finding(
                    rule="registry-missing-description", path=path, line=line,
                    message=f"{kind} backend {name!r} has no description",
                ))
            findings += _docstring_drift_findings(
                f"{kind} backend", name, info.factory, info.params,
                extra_allowed=frozenset({"ctx"}),
            )
            findings += _mutable_default_findings(
                f"{kind} backend", name, info.factory, info.defaults()
            )

    # -- serve transports -------------------------------------------------- #
    if transports is None:
        transports = all_transport_infos()
        transport_aliases = transport_alias_table()
    elif transport_aliases is None:
        transport_aliases = {name: name for name in transports}
    findings += _alias_shadow_findings(
        "transport", transport_aliases,
        lambda name: factory_location(transports[name].factory),
    )
    for name in sorted(transports):
        info = transports[name]
        path, line = factory_location(info.factory)
        if not info.description.strip():
            findings.append(Finding(
                rule="registry-missing-description", path=path, line=line,
                message=f"transport {name!r} has no description",
            ))
        # The leading scheduler argument is injected by the server wiring,
        # so docstrings may document it without declaring it an option.
        findings += _docstring_drift_findings(
            "transport", name, info.factory, info.params,
            extra_allowed=frozenset({"scheduler"}),
        )
        findings += _mutable_default_findings(
            "transport", name, info.factory, info.defaults()
        )
    return findings
