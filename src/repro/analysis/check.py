"""The ``repro-patrol check`` orchestrator: run analyzers, filter, report.

Runs the four static analyzers (registry contract, determinism lint,
fingerprint coverage, spec-schema drift), applies inline
``# repro: allow[rule-id]`` suppressions and the committed baseline, and
renders the surviving findings — as ``path:line: rule-id: message`` text or
as a JSON report for CI artifacts.

The global checks always see the whole tree; passing explicit ``paths``
switches to *file mode*, which runs only the determinism lint over those
files (that is how the fixture tests seed one violation per rule and how a
pre-commit hook would lint a changed file quickly).
"""

from __future__ import annotations

import json
from dataclasses import dataclass, field
from pathlib import Path
from typing import Iterable, Sequence

from repro.analysis.findings import (
    BASELINE_DEFAULT,
    Finding,
    load_baseline,
    split_suppressed,
)
from repro.analysis.rules import RULE_IDS, RULES

__all__ = ["CheckReport", "run_check", "render_text", "render_json"]


@dataclass
class CheckReport:
    """Outcome of one ``check`` invocation."""

    findings: list[Finding]
    files_scanned: int
    suppressed: int = 0
    baselined: int = 0
    analyzers: tuple[str, ...] = ()
    errors: list[str] = field(default_factory=list)

    @property
    def ok(self) -> bool:
        return not self.findings and not self.errors

    def counts(self) -> dict[str, int]:
        """Findings per rule id (only rules that fired)."""
        table: dict[str, int] = {}
        for finding in self.findings:
            table[finding.rule] = table.get(finding.rule, 0) + 1
        return dict(sorted(table.items()))


def _validate_only(only: "Iterable[str] | None") -> "frozenset[str] | None":
    if only is None:
        return None
    requested = frozenset(only)
    unknown = sorted(requested - RULE_IDS)
    if unknown:
        raise ValueError(
            f"unknown rule id(s): {', '.join(unknown)}; see `repro-patrol "
            "check --rules` for the catalog"
        )
    return requested


def run_check(
    paths: "Sequence[str | Path] | None" = None,
    *,
    only: "Iterable[str] | None" = None,
    baseline: "str | Path | None" = None,
) -> CheckReport:
    """Run the self-checking analyzers and return the filtered report.

    Parameters
    ----------
    paths:
        When given, lint only these files/directories (determinism rules
        only).  When omitted, run all four analyzers over the whole tree.
    only:
        Restrict to these rule ids (raises on unknown ids).
    baseline:
        Baseline file of tolerated findings; defaults to
        ``.repro-analysis-baseline.json`` in the working directory when that
        file exists.
    """
    from repro.analysis.determinism import check_determinism
    from repro.analysis.fingerprint_coverage import check_fingerprint_coverage
    from repro.analysis.registry_contract import check_registries
    from repro.analysis.schema_drift import check_schema_drift

    selected = _validate_only(only)
    findings: list[Finding] = []
    analyzers: list[str] = []
    errors: list[str] = []

    det_findings, sources = check_determinism(paths)
    findings.extend(det_findings)
    analyzers.append("determinism")

    if paths is None:
        for name, analyzer in (
            ("registry", check_registries),
            ("fingerprint", check_fingerprint_coverage),
            ("schema", check_schema_drift),
        ):
            try:
                findings.extend(analyzer())
                analyzers.append(name)
            except Exception as exc:  # a broken analyzer must fail the check loudly
                errors.append(f"analyzer {name!r} crashed: {exc!r}")

    if selected is not None:
        findings = [f for f in findings if f.rule in selected]

    # Inline suppressions need each finding's source text: the determinism
    # lint already read its files; registry findings anchor in source files
    # too, so read any missing ones on demand.
    for finding in findings:
        if finding.path and finding.path not in sources:
            candidate = _resolve_repo_path(finding.path)
            if candidate is not None:
                sources[finding.path] = candidate.read_text()

    baseline_keys = None
    baseline_path = Path(baseline) if baseline is not None else Path(BASELINE_DEFAULT)
    if baseline is not None or baseline_path.is_file():
        baseline_keys = load_baseline(baseline_path)

    kept, suppressed, baselined = split_suppressed(
        findings, source_cache=sources, baseline=baseline_keys
    )
    kept.sort(key=lambda f: (f.path, f.line, f.rule, f.message))
    return CheckReport(
        findings=kept,
        files_scanned=len(sources),
        suppressed=suppressed,
        baselined=baselined,
        analyzers=tuple(analyzers),
        errors=errors,
    )


def _resolve_repo_path(rel: str) -> "Path | None":
    """Find the file behind a repo-relative finding path (``src/repro/...``)."""
    direct = Path(rel)
    if direct.is_file():
        return direct
    if rel.startswith("src/repro/"):
        import repro

        candidate = Path(repro.__file__).parent.parent.parent / rel
        if candidate.is_file():
            return candidate
    return None


def render_text(report: CheckReport) -> str:
    """Human-readable report: one line per finding, then a summary line."""
    lines = [f.format() for f in report.findings]
    lines.extend(f"error: {message}" for message in report.errors)
    counts = report.counts()
    if counts:
        per_rule = ", ".join(f"{rule} x{n}" for rule, n in counts.items())
        lines.append(f"check: {len(report.findings)} finding(s) ({per_rule}) "
                     f"over {report.files_scanned} file(s)")
    else:
        lines.append(
            f"check ok: {len(RULES)} rules, {report.files_scanned} file(s), "
            f"{report.suppressed} suppressed, {report.baselined} baselined"
        )
    return "\n".join(lines)


def render_json(report: CheckReport) -> str:
    """Machine-readable report (the CI artifact format)."""
    payload = {
        "ok": report.ok,
        "analyzers": list(report.analyzers),
        "files_scanned": report.files_scanned,
        "suppressed": report.suppressed,
        "baselined": report.baselined,
        "counts": report.counts(),
        "findings": [f.to_dict() for f in report.findings],
        "errors": list(report.errors),
    }
    return json.dumps(payload, indent=2, sort_keys=True)
