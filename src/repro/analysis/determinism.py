"""Determinism linter: an AST pass over the registered code paths.

Byte-identical records and the content-addressed result store (PR 5's ~54x
warm resumes) both rest on one invariant: **everything between a spec and
its record is a pure function of the spec**.  This linter walks the AST of
every module on a registered code path — scenario families, strategy and
stage factories, the simulator (``sim/engine.py``, ``sim/fastpath.py``), the
geometry/graphs/network layers they call into — and flags the constructs
that break the invariant:

* ``det-unseeded-random`` — module-level :mod:`random` calls
  (``random.random()``, ``random.shuffle(...)``, a bare ``from random
  import shuffle``): process-global state, unseeded by the spec.  The seeded
  idiom ``random.Random(seed)`` is allowed;
* ``det-global-np-random`` — legacy global-state numpy RNG calls
  (``np.random.rand``, ``np.random.seed``, ``np.random.shuffle``, ...).
  The repo's seeded idioms — ``np.random.default_rng(seed)``,
  ``np.random.Generator``, ``np.random.SeedSequence`` and the bit
  generators — are allowed;
* ``det-wall-clock`` — ``time.time()`` / ``time.perf_counter()`` /
  ``datetime.now()`` and friends: records must never depend on when they
  were computed.  The :mod:`repro.obs` package carries a first-class
  allowance for this rule (see :data:`SCOPED_ALLOWANCES`): its spans time
  stages by design, and its byte-invisibility is proven differentially;
* ``det-set-iteration`` — ``for x in {...}`` / comprehensions directly over
  ``set(...)``: iteration order is undefined, so anything built from it
  (plan legs, record rows) is load-order lottery.  Wrap in ``sorted(...)``;
* ``det-env-branch`` — ``os.environ`` / ``os.getenv`` reads: the same spec
  must produce the same record on every machine.  Byte-invisible switches
  (the geometry cache toggle) carry an inline ``# repro: allow[...]``.

The linter is deliberately syntactic: it never imports the modules it
checks, so fixture files full of seeded violations are safe to analyze.
"""

from __future__ import annotations

import ast
from pathlib import Path
from typing import Iterable

from repro.analysis.findings import Finding
from repro.analysis.registry_contract import relative_to_repo

__all__ = [
    "DEFAULT_SCOPE",
    "SCOPED_ALLOWANCES",
    "scope_files",
    "check_determinism",
    "lint_source",
]

#: Packages under ``repro`` whose modules are reachable from registered
#: factories or the simulator: the registered code paths.  ``service`` is in
#: scope because the serve daemon promises byte identity with CLI execution —
#: a wall clock or environment branch anywhere on its path would break it.
DEFAULT_SCOPE: tuple[str, ...] = (
    "baselines",
    "core",
    "geometry",
    "graphs",
    "network",
    "obs",
    "planning",
    "scenarios",
    "service",
    "sim",
    "workloads",
)

#: First-class per-package allowances: ``package -> rule ids`` whose findings
#: are dropped for files under ``repro/<package>/``.  The observability
#: registry (:mod:`repro.obs`) *exists* to read the clock — its spans time
#: stages by design, and its byte-invisibility is proven by differential
#: tests, not by avoiding ``perf_counter`` — so the wall-clock rule does not
#: apply there.  A scoped allowance beats sprinkling inline suppressions on
#: every timing line: the policy is declared once, here, and every other
#: rule (env branches, unseeded RNGs, set iteration) still applies to obs
#: in full.
SCOPED_ALLOWANCES: dict[str, frozenset[str]] = {
    "obs": frozenset({"det-wall-clock"}),
}

#: Seeded / explicitly-deterministic numpy RNG entry points.
_NP_RANDOM_ALLOWED = frozenset({
    "default_rng", "Generator", "SeedSequence", "BitGenerator",
    "PCG64", "PCG64DXSM", "Philox", "SFC64", "MT19937",
})

#: Seeded stdlib RNG constructors.
_STDLIB_RANDOM_ALLOWED = frozenset({"Random"})

_CLOCK_FUNCS = frozenset({
    "time", "time_ns", "monotonic", "monotonic_ns", "perf_counter",
    "perf_counter_ns", "process_time", "process_time_ns", "clock_gettime",
})
_DATETIME_CLOCK_METHODS = frozenset({"now", "utcnow", "today"})
_DATETIME_CLASSES = frozenset({"datetime", "date"})


def scope_files(scope: "Iterable[str] | None" = None) -> list[Path]:
    """Every ``.py`` file in the registered-code-path packages, sorted."""
    import repro

    package_root = Path(repro.__file__).parent
    files: list[Path] = []
    for package in (scope if scope is not None else DEFAULT_SCOPE):
        directory = package_root / package
        if directory.is_dir():
            files.extend(sorted(directory.rglob("*.py")))
    return files


class _ImportTable(ast.NodeVisitor):
    """First pass: which local names refer to the modules we care about."""

    def __init__(self) -> None:
        self.random_modules: set[str] = set()
        self.random_funcs: set[str] = set()       # from random import shuffle
        self.numpy_modules: set[str] = set()
        self.np_random_modules: set[str] = set()  # from numpy import random (as r)
        self.time_modules: set[str] = set()
        self.time_funcs: set[str] = set()         # from time import time
        self.datetime_modules: set[str] = set()
        self.datetime_classes: set[str] = set()   # from datetime import datetime
        self.os_modules: set[str] = set()
        self.env_funcs: set[str] = set()          # from os import getenv / environ

    def visit_Import(self, node: ast.Import) -> None:
        for alias in node.names:
            local = alias.asname or alias.name.partition(".")[0]
            if alias.name == "random" or alias.name.startswith("random."):
                self.random_modules.add(local)
            elif alias.name in ("numpy", "np") or alias.name.startswith("numpy."):
                if alias.name == "numpy.random":
                    self.np_random_modules.add(alias.asname or "numpy")
                else:
                    self.numpy_modules.add(local)
            elif alias.name == "time":
                self.time_modules.add(local)
            elif alias.name == "datetime":
                self.datetime_modules.add(local)
            elif alias.name == "os" or alias.name.startswith("os."):
                self.os_modules.add(local)

    def visit_ImportFrom(self, node: ast.ImportFrom) -> None:
        if node.module == "random":
            for alias in node.names:
                local = alias.asname or alias.name
                if alias.name in _STDLIB_RANDOM_ALLOWED:
                    continue
                self.random_funcs.add(local)
        elif node.module == "numpy":
            for alias in node.names:
                if alias.name == "random":
                    self.np_random_modules.add(alias.asname or "random")
        elif node.module == "time":
            for alias in node.names:
                if alias.name in _CLOCK_FUNCS:
                    self.time_funcs.add(alias.asname or alias.name)
        elif node.module == "datetime":
            for alias in node.names:
                if alias.name in _DATETIME_CLASSES:
                    self.datetime_classes.add(alias.asname or alias.name)
        elif node.module == "os":
            for alias in node.names:
                if alias.name in ("environ", "getenv"):
                    self.env_funcs.add(alias.asname or alias.name)


class _DeterminismVisitor(ast.NodeVisitor):
    def __init__(self, path: str, imports: _ImportTable) -> None:
        self.path = path
        self.imports = imports
        self.findings: list[Finding] = []

    # -- helpers ---------------------------------------------------------- #
    def _add(self, rule: str, node: ast.AST, message: str) -> None:
        self.findings.append(Finding(
            rule=rule, path=self.path, line=getattr(node, "lineno", 0), message=message
        ))

    def _is_np_random(self, node: ast.expr) -> bool:
        """``np.random`` / ``numpy.random`` / a ``from numpy import random`` name."""
        if isinstance(node, ast.Attribute) and node.attr == "random" \
                and isinstance(node.value, ast.Name) \
                and node.value.id in self.imports.numpy_modules:
            return True
        return isinstance(node, ast.Name) and node.id in self.imports.np_random_modules

    def _is_set_expr(self, node: ast.expr) -> bool:
        if isinstance(node, ast.Set):
            return True
        return (
            isinstance(node, ast.Call)
            and isinstance(node.func, ast.Name)
            and node.func.id in ("set", "frozenset")
        )

    # -- calls ------------------------------------------------------------ #
    def visit_Call(self, node: ast.Call) -> None:
        func = node.func
        if isinstance(func, ast.Attribute):
            owner = func.value
            # random.<fn>(...)
            if isinstance(owner, ast.Name) and owner.id in self.imports.random_modules \
                    and func.attr not in _STDLIB_RANDOM_ALLOWED:
                self._add("det-unseeded-random", node,
                          f"call to random.{func.attr}() uses the process-global "
                          "RNG; use random.Random(seed) from the spec instead")
            # np.random.<fn>(...)
            elif self._is_np_random(owner) and func.attr not in _NP_RANDOM_ALLOWED:
                self._add("det-global-np-random", node,
                          f"call to np.random.{func.attr}() uses numpy's global "
                          "RNG; use np.random.default_rng(seed) instead")
            # time.<clock>(...)
            elif isinstance(owner, ast.Name) and owner.id in self.imports.time_modules \
                    and func.attr in _CLOCK_FUNCS:
                self._add("det-wall-clock", node,
                          f"call to time.{func.attr}() reads the wall clock; "
                          "records must not depend on when they were computed")
            # datetime.now() / date.today() / datetime.datetime.now()
            elif func.attr in _DATETIME_CLOCK_METHODS and self._is_datetime_owner(owner):
                self._add("det-wall-clock", node,
                          f"call to {ast.unparse(owner)}.{func.attr}() reads the "
                          "wall clock; records must not depend on when they "
                          "were computed")
            # os.getenv(...)
            elif isinstance(owner, ast.Name) and owner.id in self.imports.os_modules \
                    and func.attr == "getenv":
                self._add("det-env-branch", node,
                          "os.getenv() makes the result environment-dependent; "
                          "thread configuration through the spec instead")
        elif isinstance(func, ast.Name):
            if func.id in self.imports.random_funcs:
                self._add("det-unseeded-random", node,
                          f"call to {func.id}() (from random import ...) uses the "
                          "process-global RNG; use random.Random(seed) instead")
            elif func.id in self.imports.time_funcs:
                self._add("det-wall-clock", node,
                          f"call to {func.id}() (from time import ...) reads the "
                          "wall clock")
            elif func.id in self.imports.env_funcs and func.id == "getenv":
                self._add("det-env-branch", node,
                          "getenv() makes the result environment-dependent; "
                          "thread configuration through the spec instead")
        self.generic_visit(node)

    def _is_datetime_owner(self, owner: ast.expr) -> bool:
        if isinstance(owner, ast.Name) and owner.id in self.imports.datetime_classes:
            return True
        return (
            isinstance(owner, ast.Attribute)
            and owner.attr in _DATETIME_CLASSES
            and isinstance(owner.value, ast.Name)
            and owner.value.id in self.imports.datetime_modules
        )

    # -- os.environ (read or branch, not just calls) ----------------------- #
    def visit_Attribute(self, node: ast.Attribute) -> None:
        if node.attr == "environ" and isinstance(node.value, ast.Name) \
                and node.value.id in self.imports.os_modules:
            self._add("det-env-branch", node,
                      "os.environ makes the result environment-dependent; "
                      "thread configuration through the spec instead")
        self.generic_visit(node)

    def visit_Name(self, node: ast.Name) -> None:
        if node.id in self.imports.env_funcs and node.id == "environ":
            self._add("det-env-branch", node,
                      "os.environ makes the result environment-dependent; "
                      "thread configuration through the spec instead")
        self.generic_visit(node)

    # -- set iteration ----------------------------------------------------- #
    def visit_For(self, node: ast.For) -> None:
        if self._is_set_expr(node.iter):
            self._add("det-set-iteration", node.iter,
                      "iterating a set directly: the order is undefined; "
                      "wrap it in sorted(...)")
        self.generic_visit(node)

    def _check_comprehension(self, node) -> None:
        for generator in node.generators:
            if self._is_set_expr(generator.iter):
                self._add("det-set-iteration", generator.iter,
                          "comprehension over a set: the order is undefined; "
                          "wrap it in sorted(...)")
        self.generic_visit(node)

    visit_ListComp = _check_comprehension
    visit_SetComp = _check_comprehension
    visit_DictComp = _check_comprehension
    visit_GeneratorExp = _check_comprehension


def lint_source(source: str, path: str) -> list[Finding]:
    """Lint one module's source text; ``path`` is used verbatim in findings."""
    try:
        tree = ast.parse(source)
    except SyntaxError as exc:
        raise ValueError(f"{path}:{exc.lineno}: cannot lint unparsable file: {exc.msg}") from exc
    imports = _ImportTable()
    imports.visit(tree)
    visitor = _DeterminismVisitor(path, imports)
    visitor.visit(tree)
    return sorted(visitor.findings, key=lambda f: (f.line, f.rule, f.message))


def check_determinism(
    paths: "Iterable[str | Path] | None" = None,
) -> tuple[list[Finding], dict[str, str]]:
    """Lint the registered code paths (or explicit ``paths``).

    Returns ``(findings, sources)`` where ``sources`` maps each finding path
    to the file's text — the orchestrator reuses it to honour inline
    ``# repro: allow[...]`` suppressions without re-reading files.

    Findings covered by a :data:`SCOPED_ALLOWANCES` entry (by package and
    rule id) are dropped here, before suppression accounting.
    """
    if paths is None:
        files: list[Path] = scope_files()
    else:
        files = []
        for entry in paths:
            p = Path(entry)
            if p.is_dir():
                files.extend(sorted(p.rglob("*.py")))
            else:
                files.append(p)
    findings: list[Finding] = []
    sources: dict[str, str] = {}
    for file in files:
        rel = relative_to_repo(file)
        try:
            source = file.read_text()
        except OSError as exc:
            raise FileNotFoundError(f"cannot lint {file}: {exc}") from exc
        sources[rel] = source
        findings.extend(
            f for f in lint_source(source, rel) if not _scope_allowed(rel, f.rule)
        )
    return findings, sources


def _scope_allowed(path: str, rule: str) -> bool:
    """Whether a finding falls under a first-class per-package allowance."""
    normalized = path.replace("\\", "/")
    return any(
        rule in rules and f"repro/{package}/" in normalized
        for package, rules in SCOPED_ALLOWANCES.items()
    )
