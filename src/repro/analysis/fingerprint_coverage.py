"""Fingerprint-coverage checker: every spec field must reach the run fingerprint.

The content-addressed result store (PR 5) serves records by
:func:`repro.store.fingerprint.run_fingerprint`.  Its correctness argument
is global — *two specs share a fingerprint exactly when execution would
produce byte-identical records* — but it decomposes into a local, checkable
predicate per dataclass field: **each field of each spec type is either
hashed by the canonicaliser, or exempted with a written reason**.  A field
added to :class:`~repro.runner.RunSpec` (or any nested spec) without a
hashing decision would make two *different* runs collide and silently serve
a stale cached record; this checker turns that failure mode into a build
break.

Three rules:

* ``fpr-uncovered-field`` — a spec dataclass field with no entry in
  :data:`~repro.store.fingerprint.FINGERPRINT_COVERAGE` and no exemption in
  :data:`~repro.store.fingerprint.FINGERPRINT_EXEMPT`;
* ``fpr-stale-entry`` — a coverage or exemption entry naming a field (or
  class) that no longer exists, or a field that is both explicitly declared
  and exempted (an exemption may override only the ``"*"`` wildcard);
* ``fpr-unread-field`` — a coverage entry claiming ``"hashed"`` whose field
  the canonicaliser's source never actually reads (checked against the AST
  of ``repro/store/fingerprint.py``), or an ``"asdict"`` wildcard with no
  ``dataclasses.asdict`` call in sight: the declaration must not be able to
  lie about the code.

The checker takes explicit ``spec_classes`` / ``coverage`` / ``exempt``
overrides so tests can prove the failure mode: registering a spec class with
one extra field *must* produce ``fpr-uncovered-field``.
"""

from __future__ import annotations

import ast
import dataclasses
import inspect
from typing import Any, Mapping

from repro.analysis.findings import Finding
from repro.analysis.registry_contract import relative_to_repo

__all__ = ["check_fingerprint_coverage", "default_spec_classes"]

#: Field-read evidence that differs from the field name: ScenarioSpec.family
#: is consumed through its canonical resolver, not a bare attribute read.
_EVIDENCE_ALIASES: dict[tuple[str, str], str] = {
    ("ScenarioSpec", "family"): "canonical_family",
}

_MECHANISMS = frozenset({"hashed", "asdict", "via-params"})


def default_spec_classes() -> dict[str, type]:
    """The spec dataclasses whose fields must be fingerprint-covered."""
    from repro.planning.spec import PipelineSpec
    from repro.runner.spec import RunSpec
    from repro.scenarios.spec import ScenarioSpec
    from repro.sim.engine import SimulationConfig

    return {
        "RunSpec": RunSpec,
        "ScenarioSpec": ScenarioSpec,
        "SimulationConfig": SimulationConfig,
        "PipelineSpec": PipelineSpec,
    }


def _fingerprint_module():
    import repro.store.fingerprint as fingerprint

    return fingerprint


def _module_evidence(source: str) -> tuple[frozenset[str], bool]:
    """``(attribute names read anywhere, asdict call present)`` for the module."""
    tree = ast.parse(source)
    attrs: set[str] = set()
    asdict_called = False
    for node in ast.walk(tree):
        if isinstance(node, ast.Attribute):
            attrs.add(node.attr)
            if node.attr == "asdict":
                asdict_called = True
        elif isinstance(node, ast.Call) and isinstance(node.func, ast.Name) \
                and node.func.id == "asdict":
            asdict_called = True
    return frozenset(attrs), asdict_called


def check_fingerprint_coverage(
    spec_classes: "Mapping[str, type] | None" = None,
    coverage: "Mapping[str, Mapping[str, str]] | None" = None,
    exempt: "Mapping[tuple[str, str], str] | None" = None,
    fingerprint_source: "str | None" = None,
) -> list[Finding]:
    """Check the coverage declaration against the spec fields and the code.

    All parameters default to the live library state; tests override them to
    seed violations (an extra spec field, a stale entry, a lying ``hashed``
    claim).
    """
    module = _fingerprint_module()
    if spec_classes is None:
        spec_classes = default_spec_classes()
    if coverage is None:
        coverage = module.FINGERPRINT_COVERAGE
    if exempt is None:
        exempt = module.FINGERPRINT_EXEMPT
    if fingerprint_source is None:
        fingerprint_source = inspect.getsource(module)
    path = relative_to_repo(module.__file__)
    attrs_read, asdict_called = _module_evidence(fingerprint_source)

    findings: list[Finding] = []

    def _add(rule: str, message: str) -> None:
        findings.append(Finding(rule=rule, path=path, line=_coverage_line(module), message=message))

    # -- stale entries ----------------------------------------------------- #
    for class_name in sorted(coverage):
        if class_name not in spec_classes:
            _add("fpr-stale-entry",
                 f"FINGERPRINT_COVERAGE names unknown spec class {class_name!r}")
    for class_name, field_name in sorted(exempt):
        if class_name not in spec_classes:
            _add("fpr-stale-entry",
                 f"FINGERPRINT_EXEMPT names unknown spec class {class_name!r}")
        elif field_name not in _field_names(spec_classes[class_name]):
            _add("fpr-stale-entry",
                 f"FINGERPRINT_EXEMPT names unknown field "
                 f"{class_name}.{field_name}")

    # -- per-class field coverage ------------------------------------------ #
    for class_name in sorted(spec_classes):
        cls = spec_classes[class_name]
        declared = dict(coverage.get(class_name, {}))
        wildcard = declared.pop("*", None)
        fields = _field_names(cls)
        for field_name in sorted(set(declared) - fields):
            _add("fpr-stale-entry",
                 f"FINGERPRINT_COVERAGE names unknown field "
                 f"{class_name}.{field_name}")
        for field_name in sorted(fields):
            mechanism = declared.get(field_name, wildcard)
            # An exemption overrides a *wildcard* mechanism: "every field is
            # asdict-hashed" is the class default, and an exempt field is the
            # declared exception to it (the payload builder pops it from the
            # asdict output).  An exemption on an *explicitly* declared field
            # is a contradiction and stays an error below.
            if (class_name, field_name) in exempt:
                if field_name in declared:
                    _add("fpr-stale-entry",
                         f"{class_name}.{field_name} is both explicitly "
                         f"declared ({declared[field_name]!r}) and exempted: "
                         "pick one — a field cannot be hashed and excluded "
                         "at once")
                    continue
                mechanism = None
            if mechanism is None:
                if (class_name, field_name) in exempt:
                    reason = str(exempt[(class_name, field_name)]).strip()
                    if not reason:
                        _add("fpr-uncovered-field",
                             f"{class_name}.{field_name} is exempted without a "
                             "reason; exemptions must explain why the field is "
                             "byte-invisible")
                    continue
                _add("fpr-uncovered-field",
                     f"{class_name}.{field_name} is not consumed by "
                     "canonical_run_payload() and carries no exemption: a new "
                     "spec field that does not reach the fingerprint can serve "
                     "stale cached records")
                continue
            if mechanism not in _MECHANISMS:
                _add("fpr-stale-entry",
                     f"{class_name}.{field_name} declares unknown coverage "
                     f"mechanism {mechanism!r} (expected one of "
                     f"{', '.join(sorted(_MECHANISMS))})")
                continue
            if mechanism == "hashed":
                evidence = _EVIDENCE_ALIASES.get((class_name, field_name), field_name)
                if evidence not in attrs_read:
                    _add("fpr-unread-field",
                         f"{class_name}.{field_name} is declared 'hashed' but "
                         f"the fingerprint module never reads .{evidence}: the "
                         "declaration does not match the code")
            elif mechanism == "asdict" and not asdict_called:
                _add("fpr-unread-field",
                     f"{class_name}.{field_name} is declared 'asdict' but the "
                     "fingerprint module never calls dataclasses.asdict()")
    return findings


def _field_names(cls: type) -> frozenset[str]:
    if not dataclasses.is_dataclass(cls):
        raise TypeError(f"spec class {cls!r} is not a dataclass")
    return frozenset(f.name for f in dataclasses.fields(cls))


def _coverage_line(module: Any) -> int:
    """The line of the FINGERPRINT_COVERAGE declaration (anchor for findings)."""
    try:
        source = inspect.getsource(module)
    except OSError:  # pragma: no cover - source unavailable
        return 0
    for lineno, line in enumerate(source.splitlines(), start=1):
        if line.startswith("FINGERPRINT_COVERAGE"):
            return lineno
    return 0
