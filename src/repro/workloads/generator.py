"""Random scenario generation following Section 5.1 of the paper.

"The network size is 800 m x 800 m and the locations of targets are randomly
distributed over the monitoring region.  Each simulation result is obtained
from the average results of 20 simulations."

Two spatial distributions are provided here:

* ``uniform`` — targets scattered uniformly over the whole field;
* ``clustered`` — targets grouped into several disconnected areas (the
  scenario the paper's introduction motivates: static sensors cannot bridge
  the gaps, so mules provide connectivity).

The extended spatial catalog (corridor, hotspot, ring, ...) lives in
:mod:`repro.scenarios.families`; every family — including these two — is
registered in the :mod:`repro.scenarios` registry and shares
:func:`assemble_scenario`, the position-to-scenario assembly step (VIP
promotion, heterogeneous data-rate draws, sink/recharge placement, mule
deployment).

All generation is driven by a ``numpy.random.Generator`` derived from an
explicit seed, so replication ``k`` of an experiment is reproducible.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Sequence

import numpy as np

from repro.energy.battery import Battery
from repro.geometry.point import Point
from repro.network.field import Cluster, Field
from repro.network.mules import DataMule
from repro.network.scenario import Scenario, SimulationParameters
from repro.network.targets import RechargeStation, Sink, Target, make_targets

__all__ = [
    "ScenarioConfig",
    "check_assembly_knobs",
    "assemble_scenario",
    "generate_scenario",
    "uniform_scenario",
    "clustered_scenario",
    "paper_default_scenario",
]

_MULE_PLACEMENTS = ("sink", "random", "corner")


def check_assembly_knobs(
    *,
    num_targets: int,
    num_mules: int,
    num_vips: int = 0,
    vip_weight: int = 2,
    data_rate: float = 1.0,
    data_rate_jitter: float = 0.0,
    mule_placement: str = "sink",
) -> None:
    """Range-check the family-independent scenario knobs (no generation).

    The single home of these checks: :class:`ScenarioConfig`,
    :func:`assemble_scenario` and every scenario-family validator in
    :mod:`repro.scenarios.families` all delegate here.
    """
    if num_targets < 1:
        raise ValueError("num_targets must be >= 1")
    if num_mules < 1:
        raise ValueError("num_mules must be >= 1")
    if num_vips < 0 or num_vips > num_targets:
        raise ValueError("num_vips must lie in [0, num_targets]")
    if vip_weight < 1:
        raise ValueError("vip_weight must be >= 1")
    if data_rate < 0:
        raise ValueError("data_rate must be non-negative")
    if not 0.0 <= data_rate_jitter <= 1.0:
        raise ValueError("data_rate_jitter must lie in [0, 1]")
    if mule_placement not in _MULE_PLACEMENTS:
        raise ValueError("mule_placement must be 'sink', 'random' or 'corner'")


@dataclass(frozen=True)
class ScenarioConfig:
    """All knobs of the random scenario generator.

    Attributes
    ----------
    num_targets / num_mules:
        ``h`` and ``n`` of the paper.
    distribution:
        ``"uniform"`` or ``"clustered"``.
    num_clusters / cluster_radius:
        Geometry of the disconnected areas (clustered distribution only).
    num_vips / vip_weight:
        How many targets are promoted to VIPs and with what weight
        (the Figure 9/10 sweeps vary exactly these two numbers).
    data_rate / data_rate_jitter:
        Mean sensor data rate, and the relative half-width of the per-target
        uniform draw around it (``0`` keeps every target at ``data_rate``).
    mule_battery:
        Battery capacity in joules; ``None`` disables energy modelling.
    with_recharge_station:
        Place a recharge station (at the field centre unless overridden).
    field_size:
        Side length of the square monitoring region in metres.
    mule_placement:
        ``"sink"`` (all mules start at the sink, the paper's Figure 1 setup),
        ``"random"`` (uniform over the field) or ``"corner"``.
    """

    num_targets: int = 20
    num_mules: int = 4
    distribution: str = "uniform"
    num_clusters: int = 4
    cluster_radius: float = 80.0
    num_vips: int = 0
    vip_weight: int = 2
    data_rate: float = 1.0
    data_rate_jitter: float = 0.0
    mule_battery: float | None = None
    with_recharge_station: bool = False
    field_size: float = 800.0
    sink_position: tuple[float, float] | None = None
    recharge_position: tuple[float, float] | None = None
    mule_placement: str = "sink"
    params: SimulationParameters = field(default_factory=SimulationParameters)
    name: str = "generated"

    def __post_init__(self) -> None:
        check_assembly_knobs(
            num_targets=self.num_targets,
            num_mules=self.num_mules,
            num_vips=self.num_vips,
            vip_weight=self.vip_weight,
            data_rate=self.data_rate,
            data_rate_jitter=self.data_rate_jitter,
            mule_placement=self.mule_placement,
        )
        if self.distribution not in ("uniform", "clustered"):
            raise ValueError("distribution must be 'uniform' or 'clustered'")
        if self.num_clusters < 1:
            raise ValueError("num_clusters must be >= 1")
        if self.cluster_radius <= 0:
            raise ValueError("cluster_radius must be positive")
        if self.distribution == "clustered":
            # Cluster centres are drawn from [margin, field_size - margin] so the
            # whole disc stays inside the field; a radius at or beyond the limit
            # would silently invert that interval and scatter centres (and
            # therefore targets) outside the monitoring region.
            margin = self.cluster_radius + 10.0
            if margin >= self.field_size - margin:
                raise ValueError(
                    f"cluster_radius {self.cluster_radius:g} does not fit a "
                    f"{self.field_size:g} m field: cluster centres need a "
                    f"{margin:g} m margin on each side; use a radius below "
                    f"{self.field_size / 2.0 - 10.0:g} m or enlarge the field"
                )


def _target_positions(cfg: ScenarioConfig, rng: np.random.Generator, fld: Field) -> list[Point]:
    if cfg.distribution == "uniform":
        return fld.sample_uniform(rng, cfg.num_targets)
    # clustered: disc-shaped disconnected areas with centres kept apart
    clusters: list[Cluster] = []
    margin = cfg.cluster_radius + 10.0
    attempts = 0
    while len(clusters) < cfg.num_clusters and attempts < 1000:
        attempts += 1
        cx = rng.uniform(margin, cfg.field_size - margin)
        cy = rng.uniform(margin, cfg.field_size - margin)
        candidate = Cluster(Point(float(cx), float(cy)), cfg.cluster_radius)
        if all(candidate.separation(c) > 2.0 * cfg.params.communication_range for c in clusters):
            clusters.append(candidate)
    while len(clusters) < cfg.num_clusters:  # fall back: accept overlap rather than fail
        cx = rng.uniform(margin, cfg.field_size - margin)
        cy = rng.uniform(margin, cfg.field_size - margin)
        clusters.append(Cluster(Point(float(cx), float(cy)), cfg.cluster_radius))

    positions: list[Point] = []
    for i in range(cfg.num_targets):
        cluster = clusters[i % len(clusters)]
        positions.extend(cluster.sample(rng, 1, fld))
    return positions


def _select_vips(
    num_targets: int, num_vips: int, vip_weight: int, rng: np.random.Generator
) -> dict[int, int]:
    if num_vips == 0:
        return {}
    indices = rng.choice(num_targets, size=num_vips, replace=False)
    return {int(i): vip_weight for i in indices}


def _mule_positions(
    mule_placement: str, num_mules: int, rng: np.random.Generator, fld: Field, sink: Point
) -> list[Point]:
    if mule_placement == "sink":
        return [sink for _ in range(num_mules)]
    if mule_placement == "corner":
        return [Point(0.0, 0.0) for _ in range(num_mules)]
    return fld.sample_uniform(rng, num_mules)


def assemble_scenario(
    rng: np.random.Generator,
    fld: Field,
    positions: Sequence[Point],
    *,
    num_mules: int,
    num_vips: int = 0,
    vip_weight: int = 2,
    data_rate: float = 1.0,
    data_rate_jitter: float = 0.0,
    mule_battery: "float | None" = None,
    with_recharge_station: bool = False,
    sink_position: "tuple[float, float] | None" = None,
    recharge_position: "tuple[float, float] | None" = None,
    mule_placement: str = "sink",
    params: "SimulationParameters | None" = None,
    name: str = "generated",
) -> Scenario:
    """Turn sampled target positions into a full scenario.

    This is the family-independent half of scenario generation: VIP
    promotion, (optionally heterogeneous) data-rate draws, sink and recharge
    placement, and mule deployment.  Every registered scenario family funnels
    through here, so the knobs behave identically across the whole catalog.

    Parameters
    ----------
    rng : numpy.random.Generator
        Generator the family already used to sample ``positions``; consumed
        in a fixed order (VIP selection, then data-rate jitter when enabled,
        then random mule placement), keeping scenarios byte-identical across
        code paths for a given seed.
    fld : Field
        The monitoring region the positions were sampled from.
    positions : Sequence[Point]
        Target coordinates, one per target.
    num_mules : int
        Number of data mules to deploy.
    num_vips, vip_weight : int
        Promote ``num_vips`` randomly chosen targets to weight ``vip_weight``.
    data_rate, data_rate_jitter : float
        Per-target data generation rate; with jitter ``j > 0`` each target's
        rate is drawn uniformly from ``rate * [1 - j, 1 + j]``.
    mule_battery : float, optional
        Battery capacity in joules (``None`` disables energy modelling).
    with_recharge_station : bool
        Place a recharge station (required by RW-TCTP).
    sink_position, recharge_position : tuple of float, optional
        Explicit coordinates; default to the field centre / its mirror.
    mule_placement : str
        ``"sink"`` (default), ``"corner"`` or ``"random"``.
    params : SimulationParameters, optional
        Physical constants; defaults to the paper's Section 5.1 values.
    name : str
        Free-form scenario label used in reports.

    Returns
    -------
    Scenario
        The assembled problem instance.
    """
    params = params if params is not None else SimulationParameters()
    num_targets = len(positions)
    if num_targets < 1:
        raise ValueError("a scenario needs at least one target position")
    check_assembly_knobs(
        num_targets=num_targets,
        num_mules=num_mules,
        num_vips=num_vips,
        vip_weight=vip_weight,
        data_rate=data_rate,
        data_rate_jitter=data_rate_jitter,
        mule_placement=mule_placement,
    )

    weights = _select_vips(num_targets, num_vips, vip_weight, rng)
    rates: "float | list[float]" = data_rate
    if data_rate_jitter > 0.0:
        factors = rng.uniform(1.0 - data_rate_jitter, 1.0 + data_rate_jitter,
                              size=num_targets)
        rates = [float(data_rate * f) for f in factors]
    targets = make_targets(positions, weights=weights, data_rate=rates)

    sink_pos = (
        Point(*sink_position)
        if sink_position is not None
        else Point(fld.origin.x + fld.width / 2.0, fld.origin.y)
    )
    sink = Sink("sink", sink_pos)

    recharge = None
    if with_recharge_station:
        rpos = Point(*recharge_position) if recharge_position is not None else fld.center
        recharge = RechargeStation("recharge", rpos)

    mule_pos = _mule_positions(mule_placement, num_mules, rng, fld, sink_pos)
    mules = [
        DataMule(
            id=f"m{i + 1}",
            position=pos,
            velocity=params.mule_velocity,
            sensing_range=params.sensing_range,
            communication_range=params.communication_range,
            battery=Battery(mule_battery) if mule_battery is not None else None,
        )
        for i, pos in enumerate(mule_pos)
    ]

    return Scenario(
        targets=targets,
        sink=sink,
        mules=mules,
        recharge_station=recharge,
        field=fld,
        params=params,
        name=name,
    )


def generate_scenario(cfg: ScenarioConfig, seed: int | np.random.Generator = 0) -> Scenario:
    """Generate a full scenario from a config and a seed (or an existing generator)."""
    rng = seed if isinstance(seed, np.random.Generator) else np.random.default_rng(seed)
    fld = Field(cfg.field_size, cfg.field_size)
    positions = _target_positions(cfg, rng, fld)
    return assemble_scenario(
        rng,
        fld,
        positions,
        num_mules=cfg.num_mules,
        num_vips=cfg.num_vips,
        vip_weight=cfg.vip_weight,
        data_rate=cfg.data_rate,
        data_rate_jitter=cfg.data_rate_jitter,
        mule_battery=cfg.mule_battery,
        with_recharge_station=cfg.with_recharge_station,
        sink_position=cfg.sink_position,
        recharge_position=cfg.recharge_position,
        mule_placement=cfg.mule_placement,
        params=cfg.params,
        name=cfg.name,
    )


def uniform_scenario(
    num_targets: int = 20,
    num_mules: int = 4,
    *,
    seed: int = 0,
    num_vips: int = 0,
    vip_weight: int = 2,
    mule_battery: float | None = None,
    with_recharge_station: bool = False,
) -> Scenario:
    """Shortcut: uniformly distributed targets over the paper's 800 m field."""
    cfg = ScenarioConfig(
        num_targets=num_targets,
        num_mules=num_mules,
        distribution="uniform",
        num_vips=num_vips,
        vip_weight=vip_weight,
        mule_battery=mule_battery,
        with_recharge_station=with_recharge_station,
        name=f"uniform-h{num_targets}-n{num_mules}",
    )
    return generate_scenario(cfg, seed)


def clustered_scenario(
    num_targets: int = 20,
    num_mules: int = 4,
    *,
    num_clusters: int = 4,
    seed: int = 0,
    num_vips: int = 0,
    vip_weight: int = 2,
    mule_battery: float | None = None,
    with_recharge_station: bool = False,
) -> Scenario:
    """Shortcut: targets grouped into disconnected areas (the paper's motivating setting)."""
    cfg = ScenarioConfig(
        num_targets=num_targets,
        num_mules=num_mules,
        distribution="clustered",
        num_clusters=num_clusters,
        num_vips=num_vips,
        vip_weight=vip_weight,
        mule_battery=mule_battery,
        with_recharge_station=with_recharge_station,
        name=f"clustered-h{num_targets}-n{num_mules}-c{num_clusters}",
    )
    return generate_scenario(cfg, seed)


def paper_default_scenario(seed: int = 0) -> Scenario:
    """The Figure 1 style setting: 10 targets, 4 data mules, sink on the field edge."""
    cfg = ScenarioConfig(num_targets=10, num_mules=4, distribution="clustered",
                         num_clusters=3, name="paper-default")
    return generate_scenario(cfg, seed)
