"""Random scenario generation following Section 5.1 of the paper.

"The network size is 800 m x 800 m and the locations of targets are randomly
distributed over the monitoring region.  Each simulation result is obtained
from the average results of 20 simulations."

Two spatial distributions are provided:

* ``uniform`` — targets scattered uniformly over the whole field;
* ``clustered`` — targets grouped into several disconnected areas (the
  scenario the paper's introduction motivates: static sensors cannot bridge
  the gaps, so mules provide connectivity).

All generation is driven by a ``numpy.random.Generator`` derived from an
explicit seed, so replication ``k`` of an experiment is reproducible.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Sequence

import numpy as np

from repro.energy.battery import Battery
from repro.geometry.point import Point, distance
from repro.network.field import Cluster, Field
from repro.network.mules import DataMule
from repro.network.scenario import Scenario, SimulationParameters
from repro.network.targets import RechargeStation, Sink, Target, make_targets

__all__ = [
    "ScenarioConfig",
    "generate_scenario",
    "uniform_scenario",
    "clustered_scenario",
    "paper_default_scenario",
]


@dataclass(frozen=True)
class ScenarioConfig:
    """All knobs of the random scenario generator.

    Attributes
    ----------
    num_targets / num_mules:
        ``h`` and ``n`` of the paper.
    distribution:
        ``"uniform"`` or ``"clustered"``.
    num_clusters / cluster_radius:
        Geometry of the disconnected areas (clustered distribution only).
    num_vips / vip_weight:
        How many targets are promoted to VIPs and with what weight
        (the Figure 9/10 sweeps vary exactly these two numbers).
    mule_battery:
        Battery capacity in joules; ``None`` disables energy modelling.
    with_recharge_station:
        Place a recharge station (at the field centre unless overridden).
    field_size:
        Side length of the square monitoring region in metres.
    mule_placement:
        ``"sink"`` (all mules start at the sink, the paper's Figure 1 setup),
        ``"random"`` (uniform over the field) or ``"corner"``.
    """

    num_targets: int = 20
    num_mules: int = 4
    distribution: str = "uniform"
    num_clusters: int = 4
    cluster_radius: float = 80.0
    num_vips: int = 0
    vip_weight: int = 2
    data_rate: float = 1.0
    mule_battery: float | None = None
    with_recharge_station: bool = False
    field_size: float = 800.0
    sink_position: tuple[float, float] | None = None
    recharge_position: tuple[float, float] | None = None
    mule_placement: str = "sink"
    params: SimulationParameters = field(default_factory=SimulationParameters)
    name: str = "generated"

    def __post_init__(self) -> None:
        if self.num_targets < 1:
            raise ValueError("num_targets must be >= 1")
        if self.num_mules < 1:
            raise ValueError("num_mules must be >= 1")
        if self.distribution not in ("uniform", "clustered"):
            raise ValueError("distribution must be 'uniform' or 'clustered'")
        if self.num_vips < 0 or self.num_vips > self.num_targets:
            raise ValueError("num_vips must lie in [0, num_targets]")
        if self.vip_weight < 1:
            raise ValueError("vip_weight must be >= 1")
        if self.mule_placement not in ("sink", "random", "corner"):
            raise ValueError("mule_placement must be 'sink', 'random' or 'corner'")


def _target_positions(cfg: ScenarioConfig, rng: np.random.Generator, fld: Field) -> list[Point]:
    if cfg.distribution == "uniform":
        return fld.sample_uniform(rng, cfg.num_targets)
    # clustered: disc-shaped disconnected areas with centres kept apart
    clusters: list[Cluster] = []
    margin = cfg.cluster_radius + 10.0
    attempts = 0
    while len(clusters) < cfg.num_clusters and attempts < 1000:
        attempts += 1
        cx = rng.uniform(margin, cfg.field_size - margin)
        cy = rng.uniform(margin, cfg.field_size - margin)
        candidate = Cluster(Point(float(cx), float(cy)), cfg.cluster_radius)
        if all(candidate.separation(c) > 2.0 * cfg.params.communication_range for c in clusters):
            clusters.append(candidate)
    while len(clusters) < cfg.num_clusters:  # fall back: accept overlap rather than fail
        cx = rng.uniform(margin, cfg.field_size - margin)
        cy = rng.uniform(margin, cfg.field_size - margin)
        clusters.append(Cluster(Point(float(cx), float(cy)), cfg.cluster_radius))

    positions: list[Point] = []
    for i in range(cfg.num_targets):
        cluster = clusters[i % len(clusters)]
        positions.extend(cluster.sample(rng, 1, fld))
    return positions


def _select_vips(cfg: ScenarioConfig, rng: np.random.Generator) -> dict[int, int]:
    if cfg.num_vips == 0:
        return {}
    indices = rng.choice(cfg.num_targets, size=cfg.num_vips, replace=False)
    return {int(i): cfg.vip_weight for i in indices}


def _mule_positions(cfg: ScenarioConfig, rng: np.random.Generator, fld: Field, sink: Point) -> list[Point]:
    if cfg.mule_placement == "sink":
        return [sink for _ in range(cfg.num_mules)]
    if cfg.mule_placement == "corner":
        return [Point(0.0, 0.0) for _ in range(cfg.num_mules)]
    return fld.sample_uniform(rng, cfg.num_mules)


def generate_scenario(cfg: ScenarioConfig, seed: int | np.random.Generator = 0) -> Scenario:
    """Generate a full scenario from a config and a seed (or an existing generator)."""
    rng = seed if isinstance(seed, np.random.Generator) else np.random.default_rng(seed)
    fld = Field(cfg.field_size, cfg.field_size)

    positions = _target_positions(cfg, rng, fld)
    weights = _select_vips(cfg, rng)
    targets = make_targets(positions, weights=weights, data_rate=cfg.data_rate)

    sink_pos = (
        Point(*cfg.sink_position)
        if cfg.sink_position is not None
        else Point(cfg.field_size / 2.0, 0.0)
    )
    sink = Sink("sink", sink_pos)

    recharge = None
    if cfg.with_recharge_station:
        rpos = (
            Point(*cfg.recharge_position)
            if cfg.recharge_position is not None
            else fld.center
        )
        recharge = RechargeStation("recharge", rpos)

    mule_positions = _mule_positions(cfg, rng, fld, sink_pos)
    mules = [
        DataMule(
            id=f"m{i + 1}",
            position=pos,
            velocity=cfg.params.mule_velocity,
            sensing_range=cfg.params.sensing_range,
            communication_range=cfg.params.communication_range,
            battery=Battery(cfg.mule_battery) if cfg.mule_battery is not None else None,
        )
        for i, pos in enumerate(mule_positions)
    ]

    return Scenario(
        targets=targets,
        sink=sink,
        mules=mules,
        recharge_station=recharge,
        field=fld,
        params=cfg.params,
        name=cfg.name,
    )


def uniform_scenario(
    num_targets: int = 20,
    num_mules: int = 4,
    *,
    seed: int = 0,
    num_vips: int = 0,
    vip_weight: int = 2,
    mule_battery: float | None = None,
    with_recharge_station: bool = False,
) -> Scenario:
    """Shortcut: uniformly distributed targets over the paper's 800 m field."""
    cfg = ScenarioConfig(
        num_targets=num_targets,
        num_mules=num_mules,
        distribution="uniform",
        num_vips=num_vips,
        vip_weight=vip_weight,
        mule_battery=mule_battery,
        with_recharge_station=with_recharge_station,
        name=f"uniform-h{num_targets}-n{num_mules}",
    )
    return generate_scenario(cfg, seed)


def clustered_scenario(
    num_targets: int = 20,
    num_mules: int = 4,
    *,
    num_clusters: int = 4,
    seed: int = 0,
    num_vips: int = 0,
    vip_weight: int = 2,
    mule_battery: float | None = None,
    with_recharge_station: bool = False,
) -> Scenario:
    """Shortcut: targets grouped into disconnected areas (the paper's motivating setting)."""
    cfg = ScenarioConfig(
        num_targets=num_targets,
        num_mules=num_mules,
        distribution="clustered",
        num_clusters=num_clusters,
        num_vips=num_vips,
        vip_weight=vip_weight,
        mule_battery=mule_battery,
        with_recharge_station=with_recharge_station,
        name=f"clustered-h{num_targets}-n{num_mules}-c{num_clusters}",
    )
    return generate_scenario(cfg, seed)


def paper_default_scenario(seed: int = 0) -> Scenario:
    """The Figure 1 style setting: 10 targets, 4 data mules, sink on the field edge."""
    cfg = ScenarioConfig(num_targets=10, num_mules=4, distribution="clustered",
                         num_clusters=3, name="paper-default")
    return generate_scenario(cfg, seed)
