"""Workload generation: seeded random scenarios matching the paper's simulation model."""

from repro.workloads.generator import (
    ScenarioConfig,
    generate_scenario,
    uniform_scenario,
    clustered_scenario,
    paper_default_scenario,
)
from repro.workloads.scenarios import figure1_scenario, single_vip_scenario, grid_scenario

__all__ = [
    "ScenarioConfig",
    "generate_scenario",
    "uniform_scenario",
    "clustered_scenario",
    "paper_default_scenario",
    "figure1_scenario",
    "single_vip_scenario",
    "grid_scenario",
]
