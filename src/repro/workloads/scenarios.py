"""Hand-crafted deterministic scenarios used by examples and tests.

Unlike :mod:`repro.workloads.generator` these are fixed layouts: the Figure-1
style ring of ten targets, a single-VIP layout matching the Figure 2/5 worked
example, and a regular grid useful for analytically checkable tests.
"""

from __future__ import annotations

import math

from repro.energy.battery import Battery
from repro.geometry.point import Point
from repro.network.field import Field
from repro.network.mules import DataMule
from repro.network.scenario import Scenario, SimulationParameters
from repro.network.targets import RechargeStation, Sink, Target

__all__ = ["figure1_scenario", "single_vip_scenario", "grid_scenario"]


def _default_mules(n: int, position: Point, params: SimulationParameters,
                   battery: float | None = None) -> list[DataMule]:
    return [
        DataMule(
            id=f"m{i + 1}",
            position=position,
            velocity=params.mule_velocity,
            sensing_range=params.sensing_range,
            communication_range=params.communication_range,
            battery=Battery(battery) if battery is not None else None,
        )
        for i in range(n)
    ]


def figure1_scenario(num_mules: int = 4, *, battery: float | None = None,
                     with_recharge_station: bool = False) -> Scenario:
    """Ten targets arranged like the paper's Figure 1, four mules starting at the sink.

    The exact coordinates of Figure 1 are not published; this layout places
    ``g1 .. g10`` on a ring of distinct radii so the Hamiltonian circuit is
    unambiguous and every geometric routine gets exercised.
    """
    params = SimulationParameters()
    field = Field(800.0, 800.0)
    center = Point(400.0, 400.0)
    targets = []
    for i in range(10):
        angle = 2.0 * math.pi * i / 10.0
        radius = 250.0 + 60.0 * ((i % 3) - 1)
        pos = Point(center.x + radius * math.cos(angle), center.y + radius * math.sin(angle))
        targets.append(Target(f"g{i + 1}", pos, weight=1, data_rate=1.0))
    sink = Sink("sink", Point(400.0, 40.0))
    recharge = RechargeStation("recharge", Point(400.0, 400.0)) if with_recharge_station else None
    mules = _default_mules(num_mules, sink.position, params, battery)
    return Scenario(targets=targets, sink=sink, mules=mules, recharge_station=recharge,
                    field=field, params=params, name="figure1")


def single_vip_scenario(vip_weight: int = 2, *, num_mules: int = 2,
                        battery: float | None = None,
                        with_recharge_station: bool = False) -> Scenario:
    """Ten targets with ``g4`` promoted to a VIP — the worked example of Figures 2 and 5."""
    params = SimulationParameters()
    field = Field(800.0, 800.0)
    center = Point(400.0, 420.0)
    targets = []
    for i in range(10):
        angle = 2.0 * math.pi * i / 10.0
        radius = 260.0
        pos = Point(center.x + radius * math.cos(angle), center.y + radius * math.sin(angle))
        weight = vip_weight if i == 3 else 1  # g4 is the VIP, as in Figure 2
        targets.append(Target(f"g{i + 1}", pos, weight=weight, data_rate=1.0))
    sink = Sink("sink", Point(400.0, 60.0))
    recharge = RechargeStation("recharge", Point(150.0, 150.0)) if with_recharge_station else None
    mules = _default_mules(num_mules, sink.position, params, battery)
    return Scenario(targets=targets, sink=sink, mules=mules, recharge_station=recharge,
                    field=field, params=params, name="single-vip")


def grid_scenario(rows: int = 3, cols: int = 4, *, spacing: float = 150.0,
                  num_mules: int = 2, battery: float | None = None,
                  with_recharge_station: bool = False) -> Scenario:
    """Targets on a regular ``rows x cols`` grid — convenient for analytic checks."""
    if rows < 1 or cols < 1:
        raise ValueError("grid dimensions must be positive")
    params = SimulationParameters()
    side = max(rows, cols) * spacing + 200.0
    field = Field(side, side)
    targets = []
    idx = 1
    for r in range(rows):
        for c in range(cols):
            pos = Point(100.0 + c * spacing, 100.0 + r * spacing)
            targets.append(Target(f"g{idx}", pos, weight=1, data_rate=1.0))
            idx += 1
    sink = Sink("sink", Point(100.0 + (cols - 1) * spacing / 2.0, 20.0))
    recharge = (
        RechargeStation("recharge", Point(60.0, 60.0)) if with_recharge_station else None
    )
    mules = _default_mules(num_mules, sink.position, params, battery)
    return Scenario(targets=targets, sink=sink, mules=mules, recharge_station=recharge,
                    field=field, params=params, name=f"grid-{rows}x{cols}")
