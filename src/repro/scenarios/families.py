"""The built-in scenario family catalog.

Every family is registered in :mod:`repro.scenarios.registry` and buildable
from a :class:`~repro.scenarios.spec.ScenarioSpec` (JSON), the CLI
(``--scenario family:key=val,...``) or Python (:func:`build_scenario`).

The catalog covers:

* the paper's Section 5.1 generators — ``uniform``, ``clustered`` and the
  Figure-1-style ``paper-default``;
* the hand-crafted deterministic layouts of
  :mod:`repro.workloads.scenarios` — ``figure1``, ``single-vip``, ``grid``;
* an extended spatial catalog — ``corridor`` (targets along a road with
  gaps), ``hotspot`` (power-law density around attraction points), ``ring``
  (an annulus), ``grid-jitter`` (a perturbed lattice) and ``mixed-density``
  (dense core, sparse fringe).

All randomised families share the assembly knobs of
:func:`repro.workloads.generator.assemble_scenario`: VIP promotion
(``num_vips`` / ``vip_weight``), heterogeneous per-target data rates
(``data_rate`` / ``data_rate_jitter``), battery and recharge-station
placement, and mule deployment — so a campaign can sweep
``scenario.family`` while holding every other knob fixed.
"""

from __future__ import annotations

import math
from typing import Any, Mapping

import numpy as np

from repro.geometry.point import Point
from repro.network.field import Cluster, Field
from repro.network.scenario import Scenario, SimulationParameters
from repro.scenarios.registry import register_scenario
from repro.workloads.generator import (
    ScenarioConfig,
    assemble_scenario,
    check_assembly_knobs,
    generate_scenario,
    paper_default_scenario,
)
from repro.workloads.scenarios import figure1_scenario, grid_scenario, single_vip_scenario

__all__: list[str] = []  # everything here is reached through the registry


# --------------------------------------------------------------------------- #
# shared helpers
# --------------------------------------------------------------------------- #

def _sim_params(value: "SimulationParameters | Mapping[str, Any] | None") -> SimulationParameters:
    """Accept a ``SimulationParameters``, a plain mapping (JSON), or ``None``."""
    if value is None:
        return SimulationParameters()
    if isinstance(value, SimulationParameters):
        return value
    return SimulationParameters(**dict(value))


_GENERATOR_KEYS = (
    "num_targets", "num_mules", "num_vips", "vip_weight", "data_rate",
    "data_rate_jitter", "mule_battery", "with_recharge_station", "field_size",
    "sink_position", "recharge_position", "mule_placement", "name",
)


def _generator_cfg(distribution: str, p: Mapping[str, Any],
                   extra: tuple[str, ...] = ()) -> ScenarioConfig:
    """Build (and thereby range-check) a :class:`ScenarioConfig` from family params."""
    kwargs = {k: p[k] for k in _GENERATOR_KEYS + extra if k in p}
    return ScenarioConfig(distribution=distribution,
                          params=_sim_params(p.get("params")), **kwargs)


def _finish(seed: int, field_size: float, positions, p: Mapping[str, Any],
            default_name: str) -> Scenario:
    """Common tail of the randomised families: sample positions, then assemble."""
    rng = np.random.default_rng(seed)
    fld = Field(field_size, field_size)
    pts = positions(rng, fld)
    return assemble_scenario(
        rng, fld, pts,
        num_mules=p["num_mules"],
        num_vips=p["num_vips"],
        vip_weight=p["vip_weight"],
        data_rate=p["data_rate"],
        data_rate_jitter=p["data_rate_jitter"],
        mule_battery=p["mule_battery"],
        with_recharge_station=p["with_recharge_station"],
        sink_position=p["sink_position"],
        recharge_position=p["recharge_position"],
        mule_placement=p["mule_placement"],
        params=_sim_params(p["params"]),
        name=p["name"] or default_name,
    )


def _check_common(p: Mapping[str, Any]) -> None:
    """Range checks shared by the extended randomised families (no generation)."""
    check_assembly_knobs(
        num_targets=p["num_targets"],
        num_mules=p["num_mules"],
        num_vips=p["num_vips"],
        vip_weight=p["vip_weight"],
        data_rate=p["data_rate"],
        data_rate_jitter=p["data_rate_jitter"],
        mule_placement=p["mule_placement"],
    )
    if p["field_size"] <= 0:
        raise ValueError("field_size must be positive")
    _sim_params(p.get("params"))


# --------------------------------------------------------------------------- #
# the paper's generators
# --------------------------------------------------------------------------- #

def _validate_uniform(p: dict) -> None:
    _generator_cfg("uniform", p)


@register_scenario(
    "uniform",
    description="targets uniformly distributed over the square field "
                "(the paper's Section 5.1 baseline workload)",
    validator=_validate_uniform,
)
def _uniform_family(
    *,
    seed: int = 0,
    num_targets: int = 20,
    num_mules: int = 4,
    num_vips: int = 0,
    vip_weight: int = 2,
    data_rate: float = 1.0,
    data_rate_jitter: float = 0.0,
    mule_battery: "float | None" = None,
    with_recharge_station: bool = False,
    field_size: float = 800.0,
    sink_position: "tuple[float, float] | None" = None,
    recharge_position: "tuple[float, float] | None" = None,
    mule_placement: str = "sink",
    params: "SimulationParameters | None" = None,
    name: str = "generated",
) -> Scenario:
    return generate_scenario(_generator_cfg("uniform", dict(locals())), seed)


def _validate_clustered(p: dict) -> None:
    _generator_cfg("clustered", p, extra=("num_clusters", "cluster_radius"))


@register_scenario(
    "clustered",
    aliases=("clusters",),
    description="targets grouped into disconnected disc-shaped areas "
                "(the paper's motivating disconnected-targets workload)",
    validator=_validate_clustered,
)
def _clustered_family(
    *,
    seed: int = 0,
    num_targets: int = 20,
    num_mules: int = 4,
    num_clusters: int = 4,
    cluster_radius: float = 80.0,
    num_vips: int = 0,
    vip_weight: int = 2,
    data_rate: float = 1.0,
    data_rate_jitter: float = 0.0,
    mule_battery: "float | None" = None,
    with_recharge_station: bool = False,
    field_size: float = 800.0,
    sink_position: "tuple[float, float] | None" = None,
    recharge_position: "tuple[float, float] | None" = None,
    mule_placement: str = "sink",
    params: "SimulationParameters | None" = None,
    name: str = "generated",
) -> Scenario:
    cfg = _generator_cfg("clustered", dict(locals()),
                         extra=("num_clusters", "cluster_radius"))
    return generate_scenario(cfg, seed)


@register_scenario(
    "paper-default",
    aliases=("paper_default",),
    description="the Figure-1 style setting: 10 targets in 3 disconnected "
                "clusters, 4 mules, sink on the field edge",
)
def _paper_default_family(*, seed: int = 0) -> Scenario:
    return paper_default_scenario(seed)


# --------------------------------------------------------------------------- #
# hand-crafted deterministic layouts
# --------------------------------------------------------------------------- #

@register_scenario(
    "figure1",
    description="deterministic ring of ten targets matching the paper's "
                "Figure 1 (seed has no effect)",
)
def _figure1_family(
    *,
    seed: int = 0,
    num_mules: int = 4,
    mule_battery: "float | None" = None,
    with_recharge_station: bool = False,
) -> Scenario:
    return figure1_scenario(num_mules, battery=mule_battery,
                            with_recharge_station=with_recharge_station)


@register_scenario(
    "single-vip",
    aliases=("single_vip",),
    description="deterministic ten-target circle with g4 promoted to a VIP "
                "(the Figure 2/5 worked example; seed has no effect)",
)
def _single_vip_family(
    *,
    seed: int = 0,
    vip_weight: int = 2,
    num_mules: int = 2,
    mule_battery: "float | None" = None,
    with_recharge_station: bool = False,
) -> Scenario:
    return single_vip_scenario(vip_weight, num_mules=num_mules, battery=mule_battery,
                               with_recharge_station=with_recharge_station)


def _validate_grid(p: dict) -> None:
    if p["rows"] < 1 or p["cols"] < 1:
        raise ValueError("grid dimensions must be positive")
    if p["spacing"] <= 0:
        raise ValueError("spacing must be positive")


@register_scenario(
    "grid",
    description="deterministic regular rows x cols target lattice, convenient "
                "for analytically checkable tests (seed has no effect)",
    validator=_validate_grid,
)
def _grid_family(
    *,
    seed: int = 0,
    rows: int = 3,
    cols: int = 4,
    spacing: float = 150.0,
    num_mules: int = 2,
    mule_battery: "float | None" = None,
    with_recharge_station: bool = False,
) -> Scenario:
    return grid_scenario(rows, cols, spacing=spacing, num_mules=num_mules,
                         battery=mule_battery,
                         with_recharge_station=with_recharge_station)


# --------------------------------------------------------------------------- #
# extended spatial catalog
# --------------------------------------------------------------------------- #

def _validate_corridor(p: dict) -> None:
    _check_common(p)
    if p["num_segments"] < 1:
        raise ValueError("num_segments must be >= 1")
    if not 0.0 <= p["gap_fraction"] < 1.0:
        raise ValueError("gap_fraction must lie in [0, 1)")
    if not 0.0 < p["corridor_width"] <= p["field_size"]:
        raise ValueError("corridor_width must lie in (0, field_size]")


@register_scenario(
    "corridor",
    aliases=("road",),
    description="targets along a road crossing the field, broken into "
                "segments separated by gaps (a patrol route workload)",
    validator=_validate_corridor,
)
def _corridor_family(
    *,
    seed: int = 0,
    num_targets: int = 20,
    corridor_width: float = 80.0,
    num_segments: int = 3,
    gap_fraction: float = 0.3,
    num_mules: int = 4,
    num_vips: int = 0,
    vip_weight: int = 2,
    data_rate: float = 1.0,
    data_rate_jitter: float = 0.0,
    mule_battery: "float | None" = None,
    with_recharge_station: bool = False,
    field_size: float = 800.0,
    sink_position: "tuple[float, float] | None" = None,
    recharge_position: "tuple[float, float] | None" = None,
    mule_placement: str = "sink",
    params: "SimulationParameters | None" = None,
    name: "str | None" = None,
) -> Scenario:
    p = dict(locals())
    _validate_corridor(p)

    def positions(rng: np.random.Generator, fld: Field) -> list[Point]:
        margin = min(40.0, field_size / 10.0)
        usable = field_size - 2.0 * margin
        gaps = num_segments - 1
        gap_len = (gap_fraction * usable / gaps) if gaps else 0.0
        seg_len = (usable - gap_len * gaps) / num_segments
        mid_y = field_size / 2.0
        pts: list[Point] = []
        for i in range(num_targets):
            seg = i % num_segments
            start = margin + seg * (seg_len + gap_len)
            x = rng.uniform(start, start + seg_len)
            y = mid_y + rng.uniform(-corridor_width / 2.0, corridor_width / 2.0)
            pts.append(fld.clamp(Point(float(x), float(y))))
        return pts

    return _finish(seed, field_size, positions, p, "corridor")


def _validate_hotspot(p: dict) -> None:
    _check_common(p)
    if p["num_hotspots"] < 1:
        raise ValueError("num_hotspots must be >= 1")
    if p["exponent"] <= 1.0:
        raise ValueError("exponent must be > 1 (heavier tails need a finite mean)")
    if p["core_scale"] <= 0:
        raise ValueError("core_scale must be positive")


@register_scenario(
    "hotspot",
    aliases=("powerlaw",),
    description="power-law target density around a few hotspot centres "
                "(dense cores with heavy-tailed outskirts)",
    validator=_validate_hotspot,
)
def _hotspot_family(
    *,
    seed: int = 0,
    num_targets: int = 20,
    num_hotspots: int = 3,
    exponent: float = 2.5,
    core_scale: float = 25.0,
    num_mules: int = 4,
    num_vips: int = 0,
    vip_weight: int = 2,
    data_rate: float = 1.0,
    data_rate_jitter: float = 0.0,
    mule_battery: "float | None" = None,
    with_recharge_station: bool = False,
    field_size: float = 800.0,
    sink_position: "tuple[float, float] | None" = None,
    recharge_position: "tuple[float, float] | None" = None,
    mule_placement: str = "sink",
    params: "SimulationParameters | None" = None,
    name: "str | None" = None,
) -> Scenario:
    p = dict(locals())
    _validate_hotspot(p)

    def positions(rng: np.random.Generator, fld: Field) -> list[Point]:
        margin = min(100.0, field_size / 4.0)
        centres = [
            Point(float(rng.uniform(margin, field_size - margin)),
                  float(rng.uniform(margin, field_size - margin)))
            for _ in range(num_hotspots)
        ]
        pts: list[Point] = []
        for i in range(num_targets):
            centre = centres[i % num_hotspots]
            # Lomax (shifted-Pareto) radius: density ~ r^-exponent in the tail
            u = rng.uniform()
            r = core_scale * ((1.0 - u) ** (-1.0 / (exponent - 1.0)) - 1.0)
            theta = rng.uniform(0.0, 2.0 * math.pi)
            pts.append(fld.clamp(Point(centre.x + r * math.cos(theta),
                                       centre.y + r * math.sin(theta))))
        return pts

    return _finish(seed, field_size, positions, p, "hotspot")


def _validate_ring(p: dict) -> None:
    _check_common(p)
    if p["ring_radius"] <= 0:
        raise ValueError("ring_radius must be positive")
    if not 0.0 <= p["ring_width"] <= 2.0 * p["ring_radius"]:
        raise ValueError("ring_width must lie in [0, 2 * ring_radius]")


@register_scenario(
    "ring",
    aliases=("annulus",),
    description="targets on an annulus around the field centre (a perimeter "
                "surveillance workload)",
    validator=_validate_ring,
)
def _ring_family(
    *,
    seed: int = 0,
    num_targets: int = 20,
    ring_radius: float = 300.0,
    ring_width: float = 60.0,
    num_mules: int = 4,
    num_vips: int = 0,
    vip_weight: int = 2,
    data_rate: float = 1.0,
    data_rate_jitter: float = 0.0,
    mule_battery: "float | None" = None,
    with_recharge_station: bool = False,
    field_size: float = 800.0,
    sink_position: "tuple[float, float] | None" = None,
    recharge_position: "tuple[float, float] | None" = None,
    mule_placement: str = "sink",
    params: "SimulationParameters | None" = None,
    name: "str | None" = None,
) -> Scenario:
    p = dict(locals())
    _validate_ring(p)

    def positions(rng: np.random.Generator, fld: Field) -> list[Point]:
        centre = fld.center
        pts: list[Point] = []
        for _ in range(num_targets):
            r = ring_radius + rng.uniform(-ring_width / 2.0, ring_width / 2.0)
            theta = rng.uniform(0.0, 2.0 * math.pi)
            pts.append(fld.clamp(Point(centre.x + r * math.cos(theta),
                                       centre.y + r * math.sin(theta))))
        return pts

    return _finish(seed, field_size, positions, p, "ring")


def _validate_grid_jitter(p: dict) -> None:
    _check_common(p)
    if p["jitter"] < 0:
        raise ValueError("jitter must be non-negative")


@register_scenario(
    "grid-jitter",
    aliases=("grid_jitter", "jittered-grid"),
    description="targets on a regular lattice perturbed by gaussian jitter "
                "(planned deployments with placement error)",
    validator=_validate_grid_jitter,
)
def _grid_jitter_family(
    *,
    seed: int = 0,
    num_targets: int = 20,
    jitter: float = 25.0,
    num_mules: int = 4,
    num_vips: int = 0,
    vip_weight: int = 2,
    data_rate: float = 1.0,
    data_rate_jitter: float = 0.0,
    mule_battery: "float | None" = None,
    with_recharge_station: bool = False,
    field_size: float = 800.0,
    sink_position: "tuple[float, float] | None" = None,
    recharge_position: "tuple[float, float] | None" = None,
    mule_placement: str = "sink",
    params: "SimulationParameters | None" = None,
    name: "str | None" = None,
) -> Scenario:
    p = dict(locals())
    _validate_grid_jitter(p)

    def positions(rng: np.random.Generator, fld: Field) -> list[Point]:
        cols = max(1, math.ceil(math.sqrt(num_targets)))
        rows = max(1, math.ceil(num_targets / cols))
        margin = field_size / 8.0
        dx = (field_size - 2.0 * margin) / max(cols - 1, 1)
        dy = (field_size - 2.0 * margin) / max(rows - 1, 1)
        offsets = rng.normal(0.0, jitter, size=(num_targets, 2)) if jitter > 0 else \
            np.zeros((num_targets, 2))
        pts: list[Point] = []
        for i in range(num_targets):
            r, c = divmod(i, cols)
            pts.append(fld.clamp(Point(margin + c * dx + float(offsets[i, 0]),
                                       margin + r * dy + float(offsets[i, 1]))))
        return pts

    return _finish(seed, field_size, positions, p, "grid-jitter")


def _validate_mixed_density(p: dict) -> None:
    _check_common(p)
    if not 0.0 <= p["core_fraction"] <= 1.0:
        raise ValueError("core_fraction must lie in [0, 1]")
    if not 0.0 < p["core_radius"] <= p["field_size"] / 2.0:
        raise ValueError("core_radius must lie in (0, field_size / 2]")


@register_scenario(
    "mixed-density",
    aliases=("mixed_density",),
    description="a dense core disc at the field centre with a sparse uniform "
                "fringe around it (urban-core / rural-fringe workload)",
    validator=_validate_mixed_density,
)
def _mixed_density_family(
    *,
    seed: int = 0,
    num_targets: int = 20,
    core_fraction: float = 0.6,
    core_radius: float = 120.0,
    num_mules: int = 4,
    num_vips: int = 0,
    vip_weight: int = 2,
    data_rate: float = 1.0,
    data_rate_jitter: float = 0.0,
    mule_battery: "float | None" = None,
    with_recharge_station: bool = False,
    field_size: float = 800.0,
    sink_position: "tuple[float, float] | None" = None,
    recharge_position: "tuple[float, float] | None" = None,
    mule_placement: str = "sink",
    params: "SimulationParameters | None" = None,
    name: "str | None" = None,
) -> Scenario:
    p = dict(locals())
    _validate_mixed_density(p)

    def positions(rng: np.random.Generator, fld: Field) -> list[Point]:
        num_core = int(round(core_fraction * num_targets))
        core = Cluster(fld.center, core_radius)
        pts = core.sample(rng, num_core, fld) if num_core else []
        pts.extend(fld.sample_uniform(rng, num_targets - num_core))
        return pts

    return _finish(seed, field_size, positions, p, "mixed-density")
