"""Declarative scenario specification: family + parameters + optional seed.

A :class:`ScenarioSpec` is the data twin of a registered scenario family —
exactly as a :class:`~repro.runner.spec.RunSpec` is the data twin of a
strategy invocation.  It round-trips losslessly through JSON::

    {"family": "corridor", "params": {"num_targets": 30, "gap_fraction": 0.4}}

and replaces the bare :class:`~repro.workloads.generator.ScenarioConfig`
inside run specs: ``RunSpec(scenario=ScenarioSpec("ring", {...}))``.  Legacy
``ScenarioConfig`` objects and legacy JSON scenario dicts (plain config
fields, no ``"family"`` key) keep loading through
:func:`spec_from_scenario_config` / the runner's shim and produce
byte-identical scenarios.

``seed`` is usually left ``None`` so the surrounding run spec's replication
seed drives generation; set it to pin the scenario while sweeping everything
else.
"""

from __future__ import annotations

import dataclasses
from dataclasses import dataclass, field, replace
from typing import Any, Mapping

from repro.network.scenario import Scenario, SimulationParameters
from repro.scenarios.registry import (
    build_scenario,
    canonical_scenario_family,
    filter_scenario_kwargs,
    scenario_family_info,
    validate_scenario_params,
)

__all__ = ["ScenarioSpec", "spec_from_scenario_config"]

_PARAMS_FIELDS = frozenset(f.name for f in dataclasses.fields(SimulationParameters))


def _normalize_value(value: Any) -> Any:
    """JSON arrays arrive as lists; positions and the like are tuples in Python."""
    if isinstance(value, list):
        return tuple(_normalize_value(v) for v in value)
    return value


@dataclass(frozen=True)
class ScenarioSpec:
    """One scenario as data: registry family, parameters, optional pinned seed.

    Attributes
    ----------
    family:
        Registry name (aliases accepted, e.g. ``"grid_jitter"``).
    params:
        Keyword parameters for the family factory; validated against the
        family's declared parameter table.
    seed:
        Optional scenario-generation seed.  ``None`` (the default) defers to
        the run spec's replication seed; an explicit value pins the spatial
        layout across all replications of a campaign.

    Declared parameters are also readable as attributes —
    ``spec.num_targets`` returns the explicit value or the family's declared
    default — so code written against ``ScenarioConfig`` fields keeps
    working.
    """

    family: str = "uniform"
    params: Mapping[str, Any] = field(default_factory=dict)
    seed: "int | None" = None

    def __post_init__(self) -> None:
        object.__setattr__(
            self, "params", {k: _normalize_value(v) for k, v in dict(self.params).items()}
        )

    def __getattr__(self, name: str):
        # Only called for attributes not found normally: resolve declared
        # family parameters (explicit value, else declared default).
        if name.startswith("_"):
            raise AttributeError(name)
        try:
            params = object.__getattribute__(self, "params")
            family = object.__getattribute__(self, "family")
        except AttributeError:
            raise AttributeError(name) from None
        if name in params:
            return params[name]
        try:
            info = scenario_family_info(family)
        except ValueError:
            raise AttributeError(name) from None
        declared = info.params.get(name)
        if declared is not None and not declared.required:
            return declared.default
        raise AttributeError(
            f"scenario family {info.name!r} declares no parameter {name!r}"
        )

    # -- derived --------------------------------------------------------- #
    def canonical_family(self) -> str:
        return canonical_scenario_family(self.family)

    def with_params(self, **updates: Any) -> "ScenarioSpec":
        """Copy of this spec with ``updates`` merged into the parameters."""
        return replace(self, params={**self.params, **updates})

    def restricted_to_family(self) -> "ScenarioSpec":
        """Copy keeping only the parameters the family declares.

        Campaign expansion applies this per cell so one shared scenario
        parameter set can fan out over a ``scenario.family`` axis whose
        families accept different subsets (symmetric to
        :meth:`RunSpec.with_strategy_defaults`).
        """
        return replace(self, params=filter_scenario_kwargs(self.family, self.params))

    def validate(self) -> "ScenarioSpec":
        """Raise :class:`ValueError` on an unknown family or undeclared/bad params."""
        validate_scenario_params(self.family, self.params)
        return self

    def build(self, default_seed: int = 0) -> Scenario:
        """Build the scenario (``seed`` falls back to ``default_seed`` when unset)."""
        seed = self.seed if self.seed is not None else default_seed
        return build_scenario(self.family, self.params, seed=seed)

    # -- serialisation --------------------------------------------------- #
    def to_dict(self) -> dict:
        data: dict[str, Any] = {"family": self.family}
        if self.params:
            params = dict(self.params)
            if isinstance(params.get("params"), SimulationParameters):
                params["params"] = dataclasses.asdict(params["params"])
            data["params"] = params
        if self.seed is not None:
            data["seed"] = self.seed
        return data

    @classmethod
    def from_dict(cls, data: Mapping[str, Any]) -> "ScenarioSpec":
        payload = dict(data)
        unknown = sorted(set(payload) - {"family", "params", "seed"})
        if unknown:
            raise ValueError(
                f"unknown scenario spec field(s): {', '.join(unknown)}; "
                "allowed: family, params, seed"
            )
        params = dict(payload.get("params") or {})
        sim = params.get("params")
        if sim is not None and not isinstance(sim, SimulationParameters):
            bad = sorted(set(sim) - _PARAMS_FIELDS)
            if bad:
                raise ValueError(
                    f"unknown scenario params.params field(s): {', '.join(bad)}"
                )
            params["params"] = SimulationParameters(**sim)
        return cls(family=payload.get("family", "uniform"), params=params,
                   seed=payload.get("seed"))


def spec_from_scenario_config(cfg: Any) -> ScenarioSpec:
    """Convert a legacy :class:`ScenarioConfig` into the equivalent spec.

    ``cfg.distribution`` becomes the family; fields still at their defaults
    are dropped so the spec (and its JSON) stays lean.  Building the result
    with the same seed reproduces the legacy scenario byte for byte, because
    the ``uniform`` / ``clustered`` families drive the very same generator.
    """
    from repro.workloads.generator import ScenarioConfig

    if isinstance(cfg, ScenarioSpec):
        return cfg
    if not isinstance(cfg, ScenarioConfig):
        raise TypeError(f"expected ScenarioConfig or ScenarioSpec, got {type(cfg).__name__}")
    default = ScenarioConfig()
    cluster_only = {"num_clusters", "cluster_radius"}
    params: dict[str, Any] = {}
    for f in dataclasses.fields(ScenarioConfig):
        if f.name == "distribution":
            continue
        if f.name in cluster_only and cfg.distribution != "clustered":
            continue  # the uniform generator ignores cluster geometry entirely
        value = getattr(cfg, f.name)
        if value == getattr(default, f.name):
            continue
        params[f.name] = value
    return ScenarioSpec(family=cfg.distribution, params=params)
