"""Pluggable scenario construction: a registry of scenario families.

The package mirrors the strategy registry (:mod:`repro.baselines.base`) for
workloads:

* :func:`register_scenario` — decorator registering a scenario family with a
  declared parameter table (names, defaults, types), aliases and a
  description;
* :class:`ScenarioSpec` — one scenario as JSON-round-trippable data
  (``family`` + ``params`` + optional pinned ``seed``), the type carried by
  :class:`repro.runner.RunSpec`;
* :func:`build_scenario` — resolve a family name, validate the parameters
  and build the :class:`~repro.network.scenario.Scenario`;
* :mod:`repro.scenarios.families` — the built-in catalog: the paper's
  ``uniform`` / ``clustered`` / ``paper-default`` generators, the
  hand-crafted ``figure1`` / ``single-vip`` / ``grid`` layouts, and the
  extended spatial families ``corridor``, ``hotspot``, ``ring``,
  ``grid-jitter`` and ``mixed-density``.

New workloads arrive as data: register a family once and it is immediately
sweepable as a campaign grid axis (``"scenario.family"``), runnable from
``RunSpec`` JSON files and from the CLI (``--scenario family:key=val,...``),
and listed by ``repro-patrol scenarios``.
"""

from repro.scenarios.registry import (
    REQUIRED,
    ScenarioInfo,
    ScenarioParam,
    available_scenario_families,
    build_scenario,
    canonical_scenario_family,
    filter_scenario_kwargs,
    get_scenario,
    register_scenario,
    scenario_family_info,
    scenario_family_params,
    validate_scenario_params,
)
from repro.scenarios.spec import ScenarioSpec, spec_from_scenario_config

__all__ = [
    "REQUIRED",
    "ScenarioInfo",
    "ScenarioParam",
    "ScenarioSpec",
    "available_scenario_families",
    "build_scenario",
    "canonical_scenario_family",
    "filter_scenario_kwargs",
    "get_scenario",
    "register_scenario",
    "scenario_family_info",
    "scenario_family_params",
    "spec_from_scenario_config",
    "validate_scenario_params",
]
