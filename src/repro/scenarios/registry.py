"""Scenario family registry: declarative, pluggable scenario construction.

Symmetric to the strategy registry in :mod:`repro.baselines.base`: every way
of building a :class:`~repro.network.scenario.Scenario` — the paper's uniform
and clustered generators, the hand-crafted layouts, and the extended catalog
of spatial families — is registered under a name with a declared parameter
table (names, defaults, type annotations), aliases and a description.  The
:mod:`repro.runner` campaign executor, the CLI and hand-written
:class:`~repro.scenarios.spec.ScenarioSpec` JSON files all resolve families
through this registry, so a typo'd family or parameter is rejected *before*
any simulation runs, and new workloads arrive as data, not code.

Registering a family is a decorator::

    @register_scenario("ring", aliases=("annulus",),
                       description="targets on an annulus around the centre")
    def ring_family(*, seed: int = 0, num_targets: int = 20, ...) -> Scenario:
        ...

The factory's keyword parameters (minus ``seed``, which the runner injects)
become the family's declared parameter table.  Factories must be strict —
``**kwargs`` catch-alls are rejected so the declaration stays truthful.  An
optional ``validator`` receives the fully merged parameter dict and should
raise :class:`ValueError` on out-of-range values; it runs during campaign
validation, cheaply, without generating anything.
"""

from __future__ import annotations

import inspect
from dataclasses import dataclass, field
from typing import Any, Callable, Mapping

from repro.network.scenario import Scenario

__all__ = [
    "REQUIRED",
    "ScenarioParam",
    "ScenarioInfo",
    "register_scenario",
    "available_scenario_families",
    "canonical_scenario_family",
    "scenario_family_info",
    "scenario_family_params",
    "filter_scenario_kwargs",
    "validate_scenario_params",
    "build_scenario",
    "all_scenario_infos",
    "scenario_alias_table",
]


class _Required:
    """Sentinel default for parameters a family requires explicitly."""

    def __repr__(self) -> str:  # pragma: no cover - cosmetic
        return "<required>"


REQUIRED = _Required()


@dataclass(frozen=True)
class ScenarioParam:
    """One declared parameter of a scenario family: name, default, type."""

    name: str
    default: Any = REQUIRED
    kind: str = ""

    @property
    def required(self) -> bool:
        return self.default is REQUIRED


@dataclass(frozen=True)
class ScenarioInfo:
    """Registry record: how to build a scenario family and what it accepts.

    ``params`` maps each declared parameter name to its
    :class:`ScenarioParam`; ``validator`` (optional) raises
    :class:`ValueError` on out-of-range parameter values without building
    anything, so campaign validation stays cheap.
    """

    name: str
    factory: Callable[..., Scenario]
    params: Mapping[str, ScenarioParam]
    aliases: tuple[str, ...] = ()
    description: str = ""
    validator: "Callable[[dict], None] | None" = None

    def defaults(self) -> dict[str, Any]:
        """The declared defaults (required parameters omitted)."""
        return {p.name: p.default for p in self.params.values() if not p.required}

    def merged(self, params: Mapping[str, Any]) -> dict[str, Any]:
        """Declared defaults overlaid with ``params`` (assumed validated)."""
        merged = self.defaults()
        merged.update(params)
        return merged


_REGISTRY: dict[str, ScenarioInfo] = {}      # canonical name -> info
_ALIASES: dict[str, str] = {}                # every accepted key -> canonical name
_defaults_loaded = False                     # guards the lazy built-in registration


def _annotation_name(annotation: Any) -> str:
    if annotation is inspect.Parameter.empty:
        return ""
    if isinstance(annotation, str):
        return annotation
    return getattr(annotation, "__name__", str(annotation))


def _param_table(factory: Callable[..., Scenario]) -> dict[str, ScenarioParam]:
    """Derive the declared parameter table from the factory signature.

    ``seed`` is excluded — it is the runner-injected randomness handle, not a
    family parameter.  ``**kwargs`` factories are rejected: the registry's
    whole point is that the declaration is complete and validation can trust
    it.
    """
    signature = inspect.signature(factory)
    table: dict[str, ScenarioParam] = {}
    for param in signature.parameters.values():
        if param.kind is inspect.Parameter.VAR_KEYWORD:
            raise TypeError(
                f"scenario factory {factory!r} takes **{param.name}; scenario "
                "families must declare an explicit keyword parameter set"
            )
        if param.kind is inspect.Parameter.VAR_POSITIONAL:
            continue
        if param.name == "seed":
            continue
        default = REQUIRED if param.default is inspect.Parameter.empty else param.default
        table[param.name] = ScenarioParam(
            name=param.name, default=default, kind=_annotation_name(param.annotation)
        )
    return table


def register_scenario(
    name: str,
    factory: "Callable[..., Scenario] | None" = None,
    *,
    aliases: tuple[str, ...] = (),
    description: str = "",
    validator: "Callable[[dict], None] | None" = None,
):
    """Register a scenario family (decorator or direct call, case-insensitive).

    As a decorator::

        @register_scenario("ring", description="...")
        def ring_family(*, seed: int = 0, num_targets: int = 20) -> Scenario: ...

    or directly: ``register_scenario("ring", ring_family, description=...)``.
    """
    def _register(fac: Callable[..., Scenario]) -> Callable[..., Scenario]:
        _ensure_defaults()  # custom registrations must never shadow the built-ins
        key = name.lower()
        if key in _ALIASES:
            raise ValueError(f"scenario family {name!r} is already registered")
        for alias in aliases:
            if alias.lower() in _ALIASES:
                raise ValueError(f"scenario alias {alias!r} is already registered")
        info = ScenarioInfo(
            name=key,
            factory=fac,
            params=_param_table(fac),
            aliases=tuple(a.lower() for a in aliases),
            description=description,
            validator=validator,
        )
        _REGISTRY[key] = info
        _ALIASES[key] = key
        for alias in info.aliases:
            _ALIASES[alias] = key
        return fac

    if factory is not None:
        return _register(factory)
    return _register


def available_scenario_families(*, include_aliases: bool = False) -> list[str]:
    """Names of all registered scenario families (canonical only by default)."""
    _ensure_defaults()
    return sorted(_ALIASES) if include_aliases else sorted(_REGISTRY)


def canonical_scenario_family(name: str) -> str:
    """Resolve an alias (``"grid_jitter"``) to its canonical family name."""
    _ensure_defaults()
    try:
        return _ALIASES[name.lower()]
    except KeyError as exc:
        raise ValueError(
            f"unknown scenario family {name!r}; available: "
            f"{', '.join(available_scenario_families())}"
        ) from exc


def scenario_family_info(name: str) -> ScenarioInfo:
    """The :class:`ScenarioInfo` record for ``name`` (alias-tolerant)."""
    return _REGISTRY[canonical_scenario_family(name)]


def scenario_family_params(name: str) -> frozenset[str]:
    """The keyword parameters declared by family ``name``."""
    return frozenset(scenario_family_info(name).params)


def filter_scenario_kwargs(name: str, kwargs: Mapping[str, Any]) -> dict[str, Any]:
    """Subset of ``kwargs`` that family ``name`` declares it accepts.

    The campaign-layer convenience, symmetric to
    :func:`repro.baselines.base.filter_strategy_kwargs`: one shared scenario
    parameter set can be fanned out across families that each take only part
    of it (e.g. a ``scenario.family`` axis crossing ``uniform`` with
    ``figure1``, which takes no ``num_targets``).
    """
    declared = scenario_family_info(name).params
    return {k: v for k, v in kwargs.items() if k in declared}


def validate_scenario_params(name: str, params: Mapping[str, Any]) -> None:
    """Raise :class:`ValueError` on an unknown family, undeclared or bad params.

    Runs the family's declared-name check, the required-parameter check, and
    the family validator (range checks), all without generating a scenario —
    cheap enough to run on every cell of a campaign before simulation starts.
    """
    info = scenario_family_info(name)  # raises on unknown family
    unknown = sorted(set(params) - set(info.params))
    if unknown:
        raise ValueError(
            f"scenario family {info.name!r} does not accept parameter(s) "
            f"{', '.join(repr(p) for p in unknown)}; accepted: "
            f"{', '.join(sorted(info.params)) or '(none)'}"
        )
    missing = sorted(
        p.name for p in info.params.values() if p.required and p.name not in params
    )
    if missing:
        raise ValueError(
            f"scenario family {info.name!r} requires parameter(s): {', '.join(missing)}"
        )
    if info.validator is not None:
        try:
            info.validator(info.merged(params))
        except TypeError as exc:
            # e.g. a string where a number belongs: surface it as the same
            # clean pre-run rejection as any other bad parameter value.
            raise ValueError(
                f"invalid parameter value for scenario family {info.name!r}: {exc}"
            ) from exc


def build_scenario(
    family: str,
    params: "Mapping[str, Any] | None" = None,
    *,
    seed: int = 0,
) -> Scenario:
    """Build a scenario from a registered family, its parameters and a seed.

    Parameters
    ----------
    family : str
        Registry name of the scenario family (aliases accepted, e.g.
        ``"grid_jitter"`` for ``"grid-jitter"``).
    params : Mapping[str, Any], optional
        Keyword parameters for the family factory; validated against the
        family's declared parameter table before anything is built, so a
        typo'd name surfaces as a clean :class:`ValueError` instead of a
        ``TypeError`` from deep inside a factory.
    seed : int, default 0
        Seed for the family's random generator; equal seeds reproduce the
        scenario byte for byte.

    Returns
    -------
    Scenario
        The generated problem instance (targets, sink, mules, field,
        physical parameters).

    See Also
    --------
    get_scenario : keyword-argument convenience wrapper.
    repro.scenarios.ScenarioSpec : the same description as round-trippable data.
    """
    params = dict(params or {})
    validate_scenario_params(family, params)
    info = scenario_family_info(family)
    return info.factory(seed=seed, **params)


def get_scenario(family: str, *, seed: int = 0, **params: Any) -> Scenario:
    """Instantiate a registered scenario family by name (keyword form).

    The scenario twin of :func:`repro.baselines.base.get_strategy`: resolve
    ``family`` in the registry, validate ``params`` against its declared
    parameter table, and build the scenario.

    Parameters
    ----------
    family : str
        Registry name or alias of the scenario family (see
        ``repro-patrol scenarios`` for the catalog).
    seed : int, default 0
        Generation seed; equal seeds reproduce the scenario byte for byte.
    **params
        The family's declared parameters, e.g. ``num_targets=24``.

    Returns
    -------
    Scenario
        The generated problem instance.

    Examples
    --------
    >>> from repro.scenarios import get_scenario
    >>> scenario = get_scenario("ring", num_targets=24, num_vips=2, seed=7)
    >>> scenario.num_targets
    24
    """
    return build_scenario(family, params, seed=seed)


def all_scenario_infos() -> dict[str, ScenarioInfo]:
    """Snapshot of the whole registry: canonical family -> :class:`ScenarioInfo`.

    The introspection hook for :mod:`repro.analysis.registry_contract`; the
    returned dict is a copy, so analyzers can never mutate the registry.
    """
    _ensure_defaults()
    return dict(_REGISTRY)


def scenario_alias_table() -> dict[str, str]:
    """Every accepted family key (canonical names included) -> canonical name."""
    _ensure_defaults()
    return dict(_ALIASES)


def _ensure_defaults() -> None:
    """Populate the registry lazily (avoids import cycles at module load)."""
    global _defaults_loaded
    if _defaults_loaded:
        return
    _defaults_loaded = True
    import repro.scenarios.families  # noqa: F401  (registers the built-in catalog)
