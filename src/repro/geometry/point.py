"""Point primitives and vectorised distance helpers.

Targets, data mules, the sink and the recharge station are all located at 2-D
points.  ``Point`` is an immutable value type; the module-level helpers accept
either ``Point`` instances or plain ``(x, y)`` tuples / numpy rows so the
higher-level code can stay agnostic.
"""

from __future__ import annotations

import math
from dataclasses import dataclass
from typing import Iterable, Sequence

import numpy as np

__all__ = [
    "Point",
    "as_point",
    "as_array",
    "distance",
    "distance_matrix",
    "hypot_row",
    "centroid",
    "total_length",
    "northmost_index",
]


@dataclass(frozen=True, order=True)
class Point:
    """An immutable point in the Euclidean plane (coordinates in metres)."""

    x: float
    y: float

    def distance_to(self, other: "Point | tuple[float, float]") -> float:
        """Euclidean distance to ``other``."""
        ox, oy = _coords(other)
        return math.hypot(self.x - ox, self.y - oy)

    def translated(self, dx: float, dy: float) -> "Point":
        """Return a new point shifted by ``(dx, dy)``."""
        return Point(self.x + dx, self.y + dy)

    def towards(self, other: "Point | tuple[float, float]", dist: float) -> "Point":
        """Return the point ``dist`` metres from ``self`` towards ``other``.

        If ``other`` coincides with ``self`` the point itself is returned.
        """
        ox, oy = _coords(other)
        d = math.hypot(ox - self.x, oy - self.y)
        if d == 0.0:
            return self
        t = dist / d
        return Point(self.x + (ox - self.x) * t, self.y + (oy - self.y) * t)

    def as_tuple(self) -> tuple[float, float]:
        return (self.x, self.y)

    def __iter__(self):
        yield self.x
        yield self.y


def _coords(p: "Point | Sequence[float]") -> tuple[float, float]:
    if isinstance(p, Point):
        return p.x, p.y
    return float(p[0]), float(p[1])


def as_point(p: "Point | Sequence[float]") -> Point:
    """Coerce a ``Point`` or an ``(x, y)`` pair into a ``Point``."""
    if isinstance(p, Point):
        return p
    x, y = _coords(p)
    return Point(x, y)


def as_array(points: Iterable["Point | Sequence[float]"]) -> np.ndarray:
    """Stack points into an ``(n, 2)`` float array."""
    rows = [_coords(p) for p in points]
    if not rows:
        return np.empty((0, 2), dtype=float)
    return np.asarray(rows, dtype=float)


def distance(a: "Point | Sequence[float]", b: "Point | Sequence[float]") -> float:
    """Euclidean distance between two points."""
    ax, ay = _coords(a)
    bx, by = _coords(b)
    return math.hypot(ax - bx, ay - by)


def distance_matrix(points: Iterable["Point | Sequence[float]"]) -> np.ndarray:
    """Full pairwise Euclidean distance matrix as an ``(n, n)`` array.

    Uses a vectorised broadcast rather than a double Python loop; for the
    paper's scales (tens to a few hundred targets) this is instantaneous and
    keeps tour-construction heuristics cheap to iterate.
    """
    arr = as_array(points)
    if arr.shape[0] == 0:
        return np.empty((0, 0), dtype=float)
    diff = arr[:, None, :] - arr[None, :, :]
    return np.sqrt(np.einsum("ijk,ijk->ij", diff, diff))


def hypot_row(coords: np.ndarray, index: int) -> np.ndarray:
    """Distances from row ``index`` to every row of an ``(n, 2)`` array.

    The batched companion of :func:`distance` for one source point: a single
    ``np.hypot`` over the coordinate columns instead of n scalar calls.
    Caution for exact-reproduction callers: ``np.hypot`` is faithful but not
    guaranteed bit-identical to ``math.hypot`` — selection logic that must
    match a ``math.hypot``-based scan has to re-measure near-minimal
    candidates with the scalar function (see
    :func:`repro.planning.kernels.nearest_neighbor_order`).
    """
    return np.hypot(coords[index, 0] - coords[:, 0], coords[index, 1] - coords[:, 1])


def centroid(points: Iterable["Point | Sequence[float]"]) -> Point:
    """Arithmetic mean of a non-empty collection of points."""
    arr = as_array(points)
    if arr.shape[0] == 0:
        raise ValueError("centroid of an empty point set is undefined")
    cx, cy = arr.mean(axis=0)
    return Point(float(cx), float(cy))


def total_length(points: Sequence["Point | Sequence[float]"], *, closed: bool = False) -> float:
    """Length of the polyline through ``points`` (optionally closing the loop)."""
    arr = as_array(points)
    if arr.shape[0] < 2:
        return 0.0
    seg = np.diff(arr, axis=0)
    length = float(np.sqrt((seg ** 2).sum(axis=1)).sum())
    if closed:
        length += float(np.hypot(*(arr[0] - arr[-1])))
    return length


def northmost_index(points: Sequence["Point | Sequence[float]"]) -> int:
    """Index of the most-north point (largest ``y``; ties broken by smallest ``x``).

    B-TCTP uses the most-north target as the reference start point for
    partitioning the patrolling path into equal-length segments.
    """
    arr = as_array(points)
    if arr.shape[0] == 0:
        raise ValueError("no points supplied")
    max_y = arr[:, 1].max()
    candidates = np.flatnonzero(arr[:, 1] == max_y)
    return int(candidates[np.argmin(arr[candidates, 0])])
