"""Polyline arithmetic: arc-length parametrisation of patrolling routes.

A patrolling route is a closed polyline through target points.  B-TCTP's
location-initialisation step needs to place ``n`` start points at equal
arc-length spacing along the route, and the simulator needs to know where a
data mule is after travelling a given distance.  Both reduce to arc-length
queries on a polyline, implemented here with cumulative-length arrays.
"""

from __future__ import annotations

from typing import Sequence

import numpy as np

from repro.geometry.point import Point, as_array

__all__ = ["Polyline", "point_along", "resample_positions"]


class Polyline:
    """A (optionally closed) polyline with arc-length queries.

    Parameters
    ----------
    vertices:
        Ordered vertices of the polyline.  For a closed polyline the first
        vertex must *not* be repeated at the end; closure is handled by the
        ``closed`` flag.
    closed:
        Whether the polyline loops back from the last vertex to the first.
    """

    def __init__(self, vertices: Sequence, *, closed: bool = False) -> None:
        arr = as_array(vertices)
        if arr.shape[0] == 0:
            raise ValueError("a polyline needs at least one vertex")
        self._vertices = arr
        self.closed = bool(closed)
        if closed and arr.shape[0] > 1:
            seg_pts = np.vstack([arr, arr[:1]])
        else:
            seg_pts = arr
        seg = np.diff(seg_pts, axis=0)
        seg_len = np.sqrt((seg ** 2).sum(axis=1)) if seg.size else np.empty(0)
        self._segment_lengths = seg_len
        self._cumulative = np.concatenate([[0.0], np.cumsum(seg_len)])

    # ------------------------------------------------------------------ #
    @property
    def vertices(self) -> np.ndarray:
        """Vertex coordinates as an ``(n, 2)`` array (read-only view)."""
        v = self._vertices.view()
        v.flags.writeable = False
        return v

    @property
    def num_vertices(self) -> int:
        return int(self._vertices.shape[0])

    @property
    def length(self) -> float:
        """Total arc length of the polyline (including the closing segment if closed)."""
        return float(self._cumulative[-1])

    @property
    def segment_lengths(self) -> np.ndarray:
        s = self._segment_lengths.view()
        s.flags.writeable = False
        return s

    # ------------------------------------------------------------------ #
    def vertex(self, i: int) -> Point:
        """The ``i``-th vertex as a :class:`Point` (supports negative indices)."""
        x, y = self._vertices[i]
        return Point(float(x), float(y))

    def arc_length_of_vertex(self, i: int) -> float:
        """Arc length from the first vertex to vertex ``i`` along the polyline."""
        if i < 0:
            i += self.num_vertices
        if not 0 <= i < self.num_vertices:
            raise IndexError(f"vertex index {i} out of range")
        return float(self._cumulative[i])

    def point_at(self, s: float) -> Point:
        """Point at arc length ``s`` from the start.

        For closed polylines ``s`` wraps modulo the total length; for open
        polylines it is clamped to ``[0, length]``.
        """
        total = self.length
        if total == 0.0:
            return self.vertex(0)
        if self.closed:
            s = float(np.fmod(s, total))
            if s < 0.0:
                s += total
        else:
            s = min(max(s, 0.0), total)
        idx = int(np.searchsorted(self._cumulative, s, side="right")) - 1
        idx = min(max(idx, 0), len(self._segment_lengths) - 1)
        seg_start = self._cumulative[idx]
        seg_len = self._segment_lengths[idx]
        if seg_len == 0.0:
            x, y = self._vertices[idx]
            return Point(float(x), float(y))
        t = (s - seg_start) / seg_len
        a = self._vertices[idx]
        b = self._vertices[(idx + 1) % self.num_vertices] if self.closed else self._vertices[idx + 1]
        x, y = a + t * (b - a)
        return Point(float(x), float(y))

    def equally_spaced(self, n: int, *, offset: float = 0.0) -> list[Point]:
        """``n`` points spaced ``length / n`` apart starting at arc length ``offset``.

        This is the geometric core of B-TCTP's start-point computation: the
        patrolling path is divided into ``n`` equal-length segments and the
        segment endpoints become the start points of the data mules.
        """
        if n <= 0:
            raise ValueError("n must be positive")
        if not self.closed:
            raise ValueError("equally_spaced is defined for closed polylines only")
        step = self.length / n
        return [self.point_at(offset + k * step) for k in range(n)]

    def nearest_vertex(self, point) -> int:
        """Index of the vertex closest to ``point``."""
        arr = as_array([point])[0]
        d = np.sqrt(((self._vertices - arr) ** 2).sum(axis=1))
        return int(np.argmin(d))


def point_along(vertices: Sequence, s: float, *, closed: bool = True) -> Point:
    """Convenience wrapper: point at arc length ``s`` of the polyline ``vertices``."""
    return Polyline(vertices, closed=closed).point_at(s)


def resample_positions(vertices: Sequence, n: int, *, closed: bool = True) -> list[Point]:
    """``n`` equally spaced points along the polyline ``vertices``."""
    return Polyline(vertices, closed=closed).equally_spaced(n)
