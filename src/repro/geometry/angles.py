"""Angle utilities for the W-TCTP patrolling rule.

Section 3.2 of the paper resolves the traversal order at a VIP with the rule:
"When a DM arrives at a VIP ``g_i`` from target ``g_j``, it selects a target
``g_k`` ... which has minimal included angle with the former route ``g_j`` to
``g_i`` in the counterclockwise direction".  The helpers here compute headings
and counter-clockwise included angles so that rule can be applied verbatim and
deterministically by every data mule.
"""

from __future__ import annotations

import math

from repro.geometry.point import _coords

__all__ = [
    "normalize_angle",
    "heading",
    "ccw_angle",
    "included_angle",
    "orientation",
    "turn_direction",
]

_TWO_PI = 2.0 * math.pi


def normalize_angle(theta: float) -> float:
    """Map an angle in radians into ``[0, 2*pi)``."""
    theta = math.fmod(theta, _TWO_PI)
    if theta < 0.0:
        theta += _TWO_PI
    return theta


def heading(origin, target) -> float:
    """Heading (radians, CCW from +x axis, in ``[0, 2*pi)``) of ``origin -> target``.

    Raises ``ValueError`` when the two points coincide — a patrolling edge of
    zero length has no direction and the caller must handle that case.
    """
    ox, oy = _coords(origin)
    tx, ty = _coords(target)
    if ox == tx and oy == ty:
        raise ValueError("heading undefined for coincident points")
    return normalize_angle(math.atan2(ty - oy, tx - ox))


def ccw_angle(from_heading: float, to_heading: float) -> float:
    """Counter-clockwise rotation (in ``[0, 2*pi)``) taking ``from_heading`` to ``to_heading``."""
    return normalize_angle(to_heading - from_heading)


def included_angle(vertex, from_point, to_point) -> float:
    """CCW included angle at ``vertex`` from edge ``vertex->from_point`` to ``vertex->to_point``.

    This is the quantity minimised by the W-TCTP patrolling rule: the incoming
    route is ``from_point -> vertex`` so the reference direction at the vertex
    is ``vertex -> from_point``; the candidate outgoing edge is
    ``vertex -> to_point``.  The rotation is measured counter-clockwise.
    """
    h_in = heading(vertex, from_point)
    h_out = heading(vertex, to_point)
    return ccw_angle(h_in, h_out)


def orientation(a, b, c, *, eps: float = 1e-12) -> int:
    """Orientation of the ordered triple: +1 CCW, -1 CW, 0 collinear."""
    ax, ay = _coords(a)
    bx, by = _coords(b)
    cx, cy = _coords(c)
    cross = (bx - ax) * (cy - ay) - (by - ay) * (cx - ax)
    scale = max(abs(bx - ax), abs(by - ay), abs(cx - ax), abs(cy - ay), 1.0)
    if cross > eps * scale:
        return 1
    if cross < -eps * scale:
        return -1
    return 0


def turn_direction(prev_point, vertex, next_point) -> str:
    """Classify the turn at ``vertex`` along ``prev -> vertex -> next``.

    Returns ``"left"``, ``"right"`` or ``"straight"``; useful for diagnostics
    and for tests on patrol walk geometry.
    """
    o = orientation(prev_point, vertex, next_point)
    if o > 0:
        return "left"
    if o < 0:
        return "right"
    return "straight"
