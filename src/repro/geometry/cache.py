"""Content-addressed geometry caches shared by the fast simulation path.

Campaign workloads run thousands of cells that share immutable geometric
structure: the same scenario layout appears once per strategy in a grid, the
same tour is rebuilt once per replication, and the same pairwise-distance
matrix is recomputed by every construction and improvement pass.  This module
provides the one shared caching layer for all of that:

* :func:`cached_distance_matrix` — memoized pairwise Euclidean distance
  matrices, keyed by the *content* of the point set (not object identity);
* :func:`cached_polyline_length` — memoized closed/open polyline lengths;
* :func:`points_fingerprint` — the stable point-set content hash keying the
  distance/length caches and the tour memoization in
  :mod:`repro.graphs.hamiltonian`;
* :func:`scenario_fingerprint` — a stable content hash over everything a
  planner or simulator reads from a scenario; the equivalence tests use it
  to prove prototype copies are exact, and it is the supported key for any
  scenario-derived reuse layered on top.  (The campaign prototype cache in
  :mod:`repro.runner.campaign` keys on the *generative* content instead —
  family + declared params + effective seed — which identifies the same
  scenarios without building them first.)

Caches are **purely memoizing**: a hit returns a value bit-for-bit identical
to what the miss path computes, so enabling or disabling caching never
changes a simulation record.  All caches register themselves in a module
registry so :func:`clear_caches`, :func:`cache_stats` and the global
:func:`configure` switch cover every consumer at once (including caches that
other modules register here, e.g. the tour and scenario caches).

>>> import numpy as np
>>> from repro.geometry.cache import cached_distance_matrix, cache_stats, clear_caches
>>> clear_caches()
>>> pts = [(0.0, 0.0), (3.0, 4.0)]
>>> float(cached_distance_matrix(pts)[0, 1])
5.0
>>> _ = cached_distance_matrix(pts)          # same content: served from cache
>>> cache_stats()["distance_matrix"]["hits"]
1
"""

from __future__ import annotations

import hashlib
import os
import threading
from collections import OrderedDict
from contextlib import contextmanager
from typing import Any, Callable, Iterable

import numpy as np

from repro.geometry.point import as_array, distance_matrix
from repro.geometry.polyline import Polyline
from repro.obs import registry as _obs

__all__ = [
    "ContentCache",
    "register_cache",
    "configure",
    "cache_enabled",
    "caching_disabled",
    "clear_caches",
    "cache_stats",
    "points_fingerprint",
    "scenario_fingerprint",
    "cached_distance_matrix",
    "cached_polyline_length",
]


# --------------------------------------------------------------------------- #
# Cache registry and the global switch
# --------------------------------------------------------------------------- #

_REGISTRY: "dict[str, ContentCache]" = {}
_LOCK = threading.Lock()

# One global switch for every geometry/tour/scenario cache.  The environment
# variable gives CI and benchmark harnesses an off-switch without code changes
# (case/whitespace-insensitive: "0", "false", "no", "off" all disable).
# Byte-invisible by proof: the cache equivalence tests assert records are
# identical with the switch on or off, so this env read can never change a
# result — exactly the justification the determinism lint suppression wants.
_ENABLED: bool = (
    os.environ.get("REPRO_GEOMETRY_CACHE", "1").strip().lower()  # repro: allow[det-env-branch]
    not in ("0", "false", "no", "off")
)


class ContentCache:
    """A small LRU cache keyed by content fingerprints.

    Parameters
    ----------
    name:
        Registry name (must be unique); shows up in :func:`cache_stats`.
    maxsize:
        Maximum number of retained entries; the least recently used entry is
        evicted first.

    Notes
    -----
    Instances auto-register themselves so the module-level
    :func:`clear_caches` / :func:`cache_stats` / :func:`configure` cover
    them.  Lookups honour the global switch: with caching disabled,
    :meth:`get` always misses and :meth:`put` is a no-op, which makes an
    on/off comparison a pure code-path toggle.
    """

    def __init__(self, name: str, maxsize: int = 256) -> None:
        if maxsize <= 0:
            raise ValueError("maxsize must be positive")
        self.name = name
        self.maxsize = maxsize
        self._data: "OrderedDict[Any, Any]" = OrderedDict()
        self.hits = 0
        self.misses = 0
        self.evictions = 0
        register_cache(self)

    def get(self, key: Any, default: Any = None) -> Any:
        if not _ENABLED:
            self.misses += 1
            _obs.inc("cache_requests", cache=self.name, outcome="miss")
            return default
        with _LOCK:
            try:
                value = self._data[key]
            except KeyError:
                self.misses += 1
                _obs.inc("cache_requests", cache=self.name, outcome="miss")
                return default
            self._data.move_to_end(key)
            self.hits += 1
            _obs.inc("cache_requests", cache=self.name, outcome="hit")
            return value

    def put(self, key: Any, value: Any) -> None:
        if not _ENABLED:
            return
        with _LOCK:
            self._data[key] = value
            self._data.move_to_end(key)
            while len(self._data) > self.maxsize:
                self._data.popitem(last=False)
                self.evictions += 1
                _obs.inc("cache_evictions", cache=self.name)

    def get_or_compute(self, key: Any, compute: Callable[[], Any]) -> Any:
        """Cached value for ``key``, computing (and storing) it on a miss."""
        sentinel = object()
        value = self.get(key, sentinel)
        if value is sentinel:
            value = compute()
            self.put(key, value)
        return value

    def clear(self) -> None:
        with _LOCK:
            self._data.clear()
        self.hits = 0
        self.misses = 0
        self.evictions = 0

    def __len__(self) -> int:
        return len(self._data)

    def stats(self) -> dict:
        return {
            "size": len(self._data),
            "maxsize": self.maxsize,
            "hits": self.hits,
            "misses": self.misses,
            "evictions": self.evictions,
        }


def register_cache(cache: ContentCache) -> ContentCache:
    """Add ``cache`` to the registry (idempotent for the same instance)."""
    existing = _REGISTRY.get(cache.name)
    if existing is not None and existing is not cache:
        raise ValueError(f"a cache named {cache.name!r} is already registered")
    _REGISTRY[cache.name] = cache
    return cache


def configure(*, enabled: bool | None = None) -> None:
    """Flip the global cache switch (``None`` leaves it unchanged).

    Disabling does not drop stored entries — re-enabling resumes hits — so a
    benchmark can interleave cached and uncached phases cheaply.  Use
    :func:`clear_caches` for a cold start.
    """
    global _ENABLED
    if enabled is not None:
        _ENABLED = bool(enabled)


def cache_enabled() -> bool:
    """Whether the geometry/tour/scenario caches are currently active."""
    return _ENABLED


@contextmanager
def caching_disabled():
    """Context manager that turns every registered cache off inside the block.

    >>> from repro.geometry.cache import caching_disabled, cache_enabled
    >>> with caching_disabled():
    ...     cache_enabled()
    False
    """
    previous = _ENABLED
    configure(enabled=False)
    try:
        yield
    finally:
        configure(enabled=previous)


def clear_caches() -> None:
    """Empty every registered cache and reset its hit/miss counters."""
    for cache in _REGISTRY.values():
        cache.clear()


def cache_stats() -> dict[str, dict]:
    """Per-cache ``{size, maxsize, hits, misses, evictions}`` stats, by name."""
    return {name: cache.stats() for name, cache in sorted(_REGISTRY.items())}


# --------------------------------------------------------------------------- #
# Content fingerprints
# --------------------------------------------------------------------------- #

def points_fingerprint(points: Iterable) -> bytes:
    """Stable content hash of a point collection (order-sensitive).

    Two collections with equal coordinates in equal order share a
    fingerprint regardless of whether they are ``Point`` objects, tuples or
    numpy rows.
    """
    arr = np.ascontiguousarray(as_array(points))
    digest = hashlib.blake2b(digest_size=16)
    digest.update(str(arr.shape).encode())
    digest.update(arr.tobytes())
    return digest.digest()


def scenario_fingerprint(scenario) -> str:
    """Stable content hash of a :class:`~repro.network.scenario.Scenario`.

    Covers everything the planners and the simulator read: target ids,
    positions, weights and data rates; the sink; mule ids, deployment
    positions, velocities and battery capacities; the optional recharge
    station; the field bounds; and the physical parameters.  Two scenarios
    generated from the same spec and seed hash identically, so the hash is a
    safe reuse key for tours and plans built from scenario geometry.
    """
    digest = hashlib.blake2b(digest_size=16)

    def feed(*parts: object) -> None:
        for part in parts:
            digest.update(repr(part).encode())
            digest.update(b"\x1f")

    for t in scenario.targets:
        feed("target", t.id, t.position.x, t.position.y, t.weight, t.data_rate)
    feed("sink", scenario.sink.id, scenario.sink.position.x, scenario.sink.position.y)
    for m in scenario.mules:
        capacity = m.battery.capacity if m.battery is not None else None
        feed("mule", m.id, m.position.x, m.position.y, m.velocity,
             m.sensing_range, m.communication_range, capacity)
    station = scenario.recharge_station
    if station is not None:
        feed("recharge", station.id, station.position.x, station.position.y)
    feed("field", scenario.field)
    feed("params", scenario.params)
    return digest.hexdigest()


# --------------------------------------------------------------------------- #
# Memoized geometry computations
# --------------------------------------------------------------------------- #

_DISTANCE_MATRIX_CACHE = ContentCache("distance_matrix", maxsize=128)
_POLYLINE_LENGTH_CACHE = ContentCache("polyline_length", maxsize=512)


def cached_distance_matrix(points: Iterable) -> np.ndarray:
    """Pairwise Euclidean distance matrix, memoized by point-set content.

    Bit-for-bit identical to :func:`repro.geometry.point.distance_matrix`;
    the returned array is read-only because cache entries are shared between
    callers (copy before mutating).
    """
    arr = as_array(points)
    key = points_fingerprint(arr)

    def compute() -> np.ndarray:
        mat = distance_matrix(arr)
        mat.flags.writeable = False
        return mat

    return _DISTANCE_MATRIX_CACHE.get_or_compute(key, compute)


def cached_polyline_length(points, *, closed: bool = False) -> float:
    """Length of the polyline through ``points``, memoized by content.

    Equals :attr:`repro.geometry.polyline.Polyline.length` bit for bit (the
    arc-length parametrisation every tour and start-point computation uses),
    so :meth:`repro.graphs.tour.Tour.length` can serve from this cache and
    share one computation across tours with identical geometry.
    """
    arr = as_array(points)
    key = (points_fingerprint(arr), bool(closed))
    return _POLYLINE_LENGTH_CACHE.get_or_compute(
        key, lambda: Polyline(arr, closed=closed).length if arr.shape[0] else 0.0
    )
