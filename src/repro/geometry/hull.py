"""Convex hull computation (Andrew's monotone chain).

The CHB Hamiltonian-circuit heuristic (reference [5] of the paper) starts from
the convex hull of the target set and inserts interior points one at a time.
The hull is implemented from scratch so the library has no dependency on
``scipy.spatial`` for its core path-construction step.
"""

from __future__ import annotations

from typing import Sequence

import numpy as np

from repro.geometry.point import Point, as_array

__all__ = ["convex_hull_indices", "convex_hull", "point_in_hull"]


def _cross(o: np.ndarray, a: np.ndarray, b: np.ndarray) -> float:
    """Z-component of the cross product (OA × OB)."""
    return float((a[0] - o[0]) * (b[1] - o[1]) - (a[1] - o[1]) * (b[0] - o[0]))


def convex_hull_indices(points: Sequence) -> list[int]:
    """Indices of the convex hull of ``points`` in counter-clockwise order.

    Collinear points on the hull boundary are dropped (only extreme points are
    returned).  Degenerate inputs are handled gracefully:

    * 0 points -> ``[]``
    * 1 point  -> ``[0]``
    * 2 points -> ``[0, 1]`` (or ``[0]`` if they coincide)
    * all collinear -> the two extreme endpoints
    """
    arr = as_array(points)
    n = arr.shape[0]
    if n == 0:
        return []
    if n == 1:
        return [0]

    order = np.lexsort((arr[:, 1], arr[:, 0]))
    # Drop exact duplicates while preserving the first occurrence.
    unique: list[int] = []
    seen: set[tuple[float, float]] = set()
    for idx in order:
        key = (float(arr[idx, 0]), float(arr[idx, 1]))
        if key not in seen:
            seen.add(key)
            unique.append(int(idx))
    if len(unique) == 1:
        return [unique[0]]
    if len(unique) == 2:
        return unique

    pts = arr[unique]

    def half_hull(indices_range) -> list[int]:
        hull: list[int] = []
        for i in indices_range:
            while len(hull) >= 2 and _cross(pts[hull[-2]], pts[hull[-1]], pts[i]) <= 0:
                hull.pop()
            hull.append(i)
        return hull

    lower = half_hull(range(len(unique)))
    upper = half_hull(range(len(unique) - 1, -1, -1))
    hull_local = lower[:-1] + upper[:-1]
    if len(hull_local) < 3:
        # All points collinear: return the two extremes.
        return [unique[lower[0]], unique[lower[-1]]]
    return [unique[i] for i in hull_local]


def convex_hull(points: Sequence) -> list[Point]:
    """Convex hull of ``points`` as a CCW-ordered list of :class:`Point`."""
    arr = as_array(points)
    return [Point(float(arr[i, 0]), float(arr[i, 1])) for i in convex_hull_indices(points)]


def point_in_hull(point, hull_points: Sequence, *, eps: float = 1e-9) -> bool:
    """True if ``point`` lies inside or on the boundary of the CCW hull polygon."""
    arr = as_array(hull_points)
    p = as_array([point])[0]
    m = arr.shape[0]
    if m == 0:
        return False
    if m == 1:
        return bool(np.allclose(arr[0], p, atol=eps))
    if m == 2:
        # Degenerate hull: the segment between the two points.
        a, b = arr
        cross = _cross(a, b, p)
        if abs(cross) > eps * max(1.0, np.linalg.norm(b - a)):
            return False
        t = np.dot(p - a, b - a)
        return -eps <= t <= np.dot(b - a, b - a) + eps
    for i in range(m):
        a = arr[i]
        b = arr[(i + 1) % m]
        if _cross(a, b, p) < -eps:
            return False
    return True
