"""2-D geometry kernel used by every path-construction routine.

The patrolling algorithms of the paper operate on target points in the
Euclidean plane: tours are built from pairwise distances, the convex-hull
(cheapest-insertion) heuristic needs a hull routine, and the W-TCTP
patrolling rule needs counter-clockwise angle computations.  This subpackage
provides those primitives with no dependency on the rest of the library.

:mod:`repro.geometry.cache` adds the content-addressed caching layer on top:
memoized distance matrices and polyline lengths, stable point-set / scenario
fingerprints, and the registry behind the global cache switch that the tour
memoization (:mod:`repro.graphs.hamiltonian`) and the campaign scenario
reuse (:mod:`repro.runner.campaign`) plug into.
"""

from repro.geometry.point import Point, distance, distance_matrix, centroid, total_length
from repro.geometry.cache import (
    cache_enabled,
    cache_stats,
    cached_distance_matrix,
    cached_polyline_length,
    caching_disabled,
    clear_caches,
    configure,
    points_fingerprint,
    scenario_fingerprint,
)
from repro.geometry.hull import convex_hull, convex_hull_indices, point_in_hull
from repro.geometry.angles import (
    ccw_angle,
    heading,
    included_angle,
    normalize_angle,
    orientation,
    turn_direction,
)
from repro.geometry.polyline import Polyline, resample_positions, point_along

__all__ = [
    "Point",
    "distance",
    "distance_matrix",
    "centroid",
    "total_length",
    "convex_hull",
    "convex_hull_indices",
    "point_in_hull",
    "ccw_angle",
    "heading",
    "included_angle",
    "normalize_angle",
    "orientation",
    "turn_direction",
    "Polyline",
    "resample_positions",
    "point_along",
    "cache_enabled",
    "cache_stats",
    "cached_distance_matrix",
    "cached_polyline_length",
    "caching_disabled",
    "clear_caches",
    "configure",
    "points_fingerprint",
    "scenario_fingerprint",
]
