"""Regenerate ``BENCH_PR10.json``: observability overhead on the PR 8 workload.

Times the batched fastpath campaign sweep of ``bench_pr8.py`` (four
deterministic loop strategies on a pinned 12-target / 3-mule layout,
replicated out to ``--cells`` cells) three ways:

* **baseline** — the instrumentation registry disabled (the default
  configuration: ``inc``/``observe`` return after one flag check and
  ``span`` hands back a shared no-op);
* **instrumented** — the registry enabled (``REPRO_OBS=1``), recording
  dispatch counters, cache counters and spans for every cell;
* the **identity leg** — before any number is written, the harness asserts
  the instrumented records are byte-identical to the baseline records.

The acceptance gate is ``--max-overhead`` (default 3%): the instrumented
median must stay within that factor of the baseline median.  Run from the
repository root::

    PYTHONPATH=src python benchmarks/bench_pr10.py [--out BENCH_PR10.json]
        [--cells 2000] [--rounds 3] [--max-overhead 0.03]
"""

from __future__ import annotations

import argparse
import json
import platform
import statistics
import time

from repro import __version__
from repro.geometry.cache import clear_caches
from repro.obs import obs_collected, obs_disabled, registry as obs_registry
from repro.runner import execute_many
from repro.runner.campaign import _json_sanitize
from repro.runner.spec import spec_from_dict

STRATEGIES = ["b-tctp", "sweep", "w-tctp", "b-tctp-cw"]
HORIZON = 50_000.0


def campaign_spec(num_cells: int):
    if num_cells % len(STRATEGIES):
        raise SystemExit(f"--cells must be a multiple of {len(STRATEGIES)}")
    return spec_from_dict({
        "kind": "campaign",
        "base": {
            "scenario": {
                "family": "uniform",
                "params": {"num_targets": 12, "num_mules": 3},
                "seed": 42,
            },
            "strategy": STRATEGIES[0],
            "sim": {"horizon": HORIZON, "track_energy": False},
            "seed": 1,
        },
        "grid": {"strategy": STRATEGIES},
        "replications": num_cells // len(STRATEGIES),
    })


def canonical(records) -> str:
    return json.dumps(_json_sanitize(records), sort_keys=True)


def timeit(fn, *, warmup: int = 1, rounds: int = 3) -> dict:
    for _ in range(warmup):
        fn()
    samples = []
    for _ in range(rounds):
        t0 = time.perf_counter()
        fn()
        samples.append(time.perf_counter() - t0)
    return {
        "median_s": statistics.median(samples),
        "mean_s": statistics.mean(samples),
        "min_s": min(samples),
        "rounds": rounds,
    }


def main() -> None:
    parser = argparse.ArgumentParser(description=__doc__)
    parser.add_argument("--out", default="BENCH_PR10.json")
    parser.add_argument("--cells", type=int, default=2_000)
    parser.add_argument("--rounds", type=int, default=3)
    parser.add_argument("--max-overhead", type=float, default=0.03,
                        help="acceptance gate: max instrumented/baseline - 1")
    args = parser.parse_args()

    spec = campaign_spec(args.cells)
    cells = spec.cells()

    # -- identity first: no overhead number without byte equality ---------- #
    clear_caches()
    with obs_disabled():
        plain = execute_many(cells)
    clear_caches()
    obs_registry.reset()
    with obs_collected(enabled=True) as window:
        instrumented = execute_many(cells)
        snapshot = window.snapshot()
    if canonical(plain) != canonical(instrumented):
        raise SystemExit("records diverged with the registry on")
    if not snapshot["counters"]:
        raise SystemExit("registry recorded nothing while enabled")

    # -- then the timings (registry cleared between rounds so the span list
    # cannot grow across samples) ------------------------------------------ #
    def run_baseline():
        with obs_disabled():
            execute_many(cells)

    def run_instrumented():
        obs_registry.reset()
        with obs_collected(enabled=True):
            execute_many(cells)

    baseline = timeit(run_baseline, rounds=args.rounds)
    timed = timeit(run_instrumented, rounds=args.rounds)
    obs_registry.reset()

    overhead = timed["median_s"] / baseline["median_s"] - 1.0
    payload = {
        "benchmark": "instrumentation registry overhead on the batched "
                     "fastpath sweep (bench_pr8 workload)",
        "workload": {
            "strategies": STRATEGIES,
            "num_cells": len(cells),
            "num_targets": 12,
            "num_mules": 3,
            "horizon": HORIZON,
            "scenario_seed": 42,
        },
        "baseline": {
            "description": "registry disabled (default): no-op verbs",
            **baseline,
        },
        "instrumented": {
            "description": "REPRO_OBS=1: counters, histograms and spans on",
            **timed,
        },
        "overhead_median": overhead,
        "max_overhead": args.max_overhead,
        "records_byte_identical": True,
        "counters_recorded": len(snapshot["counters"]),
        "spans_recorded": snapshot["spans"]["recorded"],
        "environment": {
            "python": platform.python_version(),
            "platform": platform.platform(),
            "library_version": __version__,
        },
    }
    with open(args.out, "w") as fh:
        json.dump(payload, fh, indent=2, sort_keys=True)
        fh.write("\n")
    print(f"obs overhead (median): {overhead:+.2%} "
          f"(gate {args.max_overhead:.0%}) -> {args.out}")
    if overhead > args.max_overhead:
        raise SystemExit(
            f"instrumentation overhead {overhead:.2%} exceeds the "
            f"{args.max_overhead:.0%} gate"
        )


if __name__ == "__main__":
    main()
