"""Micro-benchmarks of the library's building blocks.

These do not correspond to a paper figure; they track the cost of the pieces
every experiment is built from — circuit construction, WPP construction, the
patrolling-rule walk, planning, and raw simulator throughput — so performance
regressions show up independently of the experiment harness.
"""

import pytest

from repro.core.btctp import plan_btctp
from repro.core.wtctp import build_weighted_patrolling_path, plan_wtctp
from repro.graphs.hamiltonian import build_hamiltonian_circuit, convex_hull_insertion_tour
from repro.graphs.improve import two_opt
from repro.sim.engine import PatrolSimulator, SimulationConfig
from repro.workloads.generator import uniform_scenario


@pytest.fixture(scope="module")
def scenario_40():
    return uniform_scenario(num_targets=40, num_mules=4, seed=3)


@pytest.fixture(scope="module")
def vip_scenario_30():
    return uniform_scenario(num_targets=30, num_mules=2, seed=4, num_vips=4, vip_weight=3)


@pytest.mark.benchmark(group="micro-path")
def test_bench_hull_insertion_tour(benchmark, scenario_40):
    coords = scenario_40.patrol_points()
    tour = benchmark(convex_hull_insertion_tour, coords)
    assert len(tour) == len(coords)


@pytest.mark.benchmark(group="micro-path")
def test_bench_two_opt(benchmark, scenario_40):
    coords = scenario_40.patrol_points()
    tour = build_hamiltonian_circuit(coords, method="nearest-neighbor")
    improved = benchmark(two_opt, tour)
    assert improved.length() <= tour.length() + 1e-6


@pytest.mark.benchmark(group="micro-path")
def test_bench_wpp_construction(benchmark, vip_scenario_30):
    coords = vip_scenario_30.patrol_points()
    tour = build_hamiltonian_circuit(coords, start=vip_scenario_30.sink.id)
    weights = vip_scenario_30.weights()

    def build():
        return build_weighted_patrolling_path(tour, weights, "balanced")

    structure, walk = benchmark(build)
    assert structure.is_eulerian()
    assert len(walk) > len(tour)


@pytest.mark.benchmark(group="micro-plan")
def test_bench_plan_btctp(benchmark, scenario_40):
    plan = benchmark(plan_btctp, scenario_40)
    assert plan.metadata["path_length"] > 0


@pytest.mark.benchmark(group="micro-plan")
def test_bench_plan_wtctp(benchmark, vip_scenario_30):
    plan = benchmark(plan_wtctp, vip_scenario_30)
    assert plan.metadata["wpp_length"] >= plan.metadata["hamiltonian_length"]


@pytest.mark.benchmark(group="micro-sim")
def test_bench_simulator_throughput(benchmark, scenario_40):
    """Simulate 50k seconds of a 4-mule patrol; reports events/second indirectly."""
    plan = plan_btctp(scenario_40)

    def run():
        return PatrolSimulator(scenario_40.fresh_copy(), plan,
                               SimulationConfig(horizon=50_000.0)).run()

    result = benchmark(run)
    assert len(result.visits) > 100
