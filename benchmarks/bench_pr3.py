"""Regenerate ``BENCH_PR3.json``: fast-path speedup on the campaign benchmark.

Times the workload of ``benchmarks/test_bench_campaign.py`` (a two-strategy
campaign with three replications on the standard 12-target / 3-mule quick
setting) twice:

* **optimized** — the default configuration: geometry/tour/scenario caches on
  and the analytic fast path enabled;
* **baseline** — caches disabled and ``SimulationConfig.fast_path=False``,
  which is exactly the pre-PR-3 serial code path (the discrete-event loop and
  per-cell regeneration are unchanged).

Records are asserted byte-identical between the two configurations before any
number is written.  Run from the repository root::

    PYTHONPATH=src python benchmarks/bench_pr3.py [--out BENCH_PR3.json]
"""

from __future__ import annotations

import argparse
import json
import platform
import statistics
import time

from repro import __version__
from repro.experiments import ExperimentSettings
from repro.geometry.cache import caching_disabled, clear_caches
from repro.runner import Campaign, CampaignSpec, RunSpec, execute_run
from repro.sim.engine import SimulationConfig


def campaign_spec(*, fast_path: bool) -> CampaignSpec:
    settings = ExperimentSettings.quick(replications=3, horizon=25_000.0,
                                        num_targets=12, num_mules=3)
    return CampaignSpec(
        base=RunSpec(
            strategy="b-tctp",
            scenario=settings.scenario_config(),
            sim=SimulationConfig(horizon=settings.horizon, track_energy=False,
                                 fast_path=fast_path),
            seed=settings.base_seed,
        ),
        grid={"strategy": ["chb", "b-tctp"]},
        replications=settings.replications,
    )


def timeit(fn, *, warmup: int = 3, rounds: int = 25) -> dict:
    for _ in range(warmup):
        fn()
    samples = []
    for _ in range(rounds):
        t0 = time.perf_counter()
        fn()
        samples.append(time.perf_counter() - t0)
    return {
        "median_s": statistics.median(samples),
        "mean_s": statistics.mean(samples),
        "min_s": min(samples),
        "rounds": rounds,
    }


def main() -> None:
    parser = argparse.ArgumentParser(description=__doc__)
    parser.add_argument("--out", default="BENCH_PR3.json")
    parser.add_argument("--rounds", type=int, default=25)
    args = parser.parse_args()

    fast_spec = campaign_spec(fast_path=True)
    slow_spec = campaign_spec(fast_path=False)

    clear_caches()
    optimized_records = Campaign(fast_spec).run().records
    clear_caches()
    with caching_disabled():
        baseline_records = Campaign(slow_spec).run().records
    identical = json.dumps(optimized_records, sort_keys=True) == json.dumps(
        baseline_records, sort_keys=True
    )
    if not identical:
        raise SystemExit("records diverged between baseline and optimized paths")

    def run_baseline():
        with caching_disabled():
            Campaign(slow_spec).run()

    clear_caches()
    baseline = timeit(run_baseline, rounds=args.rounds)
    clear_caches()
    optimized = timeit(lambda: Campaign(fast_spec).run(), rounds=args.rounds)

    cell = fast_spec.cells()[3]  # a b-tctp replication cell
    single_fast = timeit(lambda: execute_run(cell), rounds=args.rounds)

    payload = {
        "benchmark": "benchmarks/test_bench_campaign.py::test_bench_campaign_serial_run workload",
        "workload": {
            "strategies": ["chb", "b-tctp"],
            "replications": 3,
            "num_targets": 12,
            "num_mules": 3,
            "horizon": 25_000.0,
        },
        "baseline": {
            "description": "caches disabled + fast_path=False (pre-PR-3 serial path)",
            **baseline,
        },
        "optimized": {
            "description": "geometry/tour/scenario caches + analytic fast path (defaults)",
            **optimized,
        },
        "single_run_btctp_optimized": single_fast,
        "speedup_median": baseline["median_s"] / optimized["median_s"],
        "records_byte_identical": identical,
        "environment": {
            "python": platform.python_version(),
            "platform": platform.platform(),
            "library_version": __version__,
        },
    }
    with open(args.out, "w") as fh:
        json.dump(payload, fh, indent=2, sort_keys=True)
        fh.write("\n")
    print(f"speedup (median): {payload['speedup_median']:.2f}x -> {args.out}")


if __name__ == "__main__":
    main()
