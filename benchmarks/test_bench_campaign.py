"""Campaign-executor benchmarks: spec expansion and end-to-end execution.

Times the :mod:`repro.runner` layer itself — expanding a campaign grid into
run cells, and executing a small strategy-sweep campaign serially, both with
the PR-3 fast path + caches (the default) and with the pre-fast-path baseline
configuration — and re-asserts the executor's core guarantees: parallel
execution returns records identical to the serial run, and the cached fast
path returns records identical to the uncached baseline.  The measured
fast/baseline ratio is recorded in ``BENCH_PR3.json``
(``benchmarks/bench_pr3.py`` regenerates it).
"""

import json

import pytest

from repro.geometry.cache import caching_disabled, clear_caches
from repro.runner import Campaign


@pytest.mark.benchmark(group="campaign")
def test_bench_campaign_expansion(benchmark, bench_campaign_spec):
    cells = benchmark(bench_campaign_spec.cells)
    assert len(cells) == 2 * bench_campaign_spec.replications
    # replications innermost, deterministic seed schedule
    assert [c.seed for c in cells[:3]] == bench_campaign_spec.seeds()


@pytest.mark.benchmark(group="campaign")
def test_bench_campaign_serial_run(benchmark, bench_campaign_spec):
    result = benchmark(Campaign(bench_campaign_spec).run)
    assert len(result) == 2 * bench_campaign_spec.replications
    sd = result.group_mean("average_sd", by="strategy")
    assert sd["b-tctp"] == pytest.approx(0.0, abs=1e-6)
    assert sd["chb"] > 0.0


@pytest.mark.benchmark(group="campaign")
def test_bench_campaign_serial_run_baseline(benchmark, bench_campaign_spec_baseline):
    """The same workload on the pre-PR-3 path: no caches, no fast path."""

    def run():
        clear_caches()
        with caching_disabled():
            return Campaign(bench_campaign_spec_baseline).run()

    result = benchmark(run)
    assert len(result) == 2 * bench_campaign_spec_baseline.replications


def test_campaign_parallel_matches_serial(bench_campaign_spec):
    serial = Campaign(bench_campaign_spec).run()
    parallel = Campaign(bench_campaign_spec, max_workers=4).run()
    assert json.dumps(serial.records) == json.dumps(parallel.records)


def test_campaign_fast_path_matches_baseline(bench_campaign_spec, bench_campaign_spec_baseline):
    """PR-3 acceptance: cached fast-path records are byte-identical to the baseline."""
    fast = Campaign(bench_campaign_spec).run()
    clear_caches()
    with caching_disabled():
        baseline = Campaign(bench_campaign_spec_baseline).run()
    assert json.dumps(fast.records) == json.dumps(baseline.records)
