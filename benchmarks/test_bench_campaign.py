"""Campaign-executor benchmarks: spec expansion and end-to-end execution.

Times the :mod:`repro.runner` layer itself — expanding a campaign grid into
run cells, and executing a small strategy-sweep campaign serially — and
re-asserts the executor's core guarantee: parallel execution returns records
identical to the serial run.
"""

import json

import pytest

from repro.runner import Campaign


@pytest.mark.benchmark(group="campaign")
def test_bench_campaign_expansion(benchmark, bench_campaign_spec):
    cells = benchmark(bench_campaign_spec.cells)
    assert len(cells) == 2 * bench_campaign_spec.replications
    # replications innermost, deterministic seed schedule
    assert [c.seed for c in cells[:3]] == bench_campaign_spec.seeds()


@pytest.mark.benchmark(group="campaign")
def test_bench_campaign_serial_run(benchmark, bench_campaign_spec):
    result = benchmark(Campaign(bench_campaign_spec).run)
    assert len(result) == 2 * bench_campaign_spec.replications
    sd = result.group_mean("average_sd", by="strategy")
    assert sd["b-tctp"] == pytest.approx(0.0, abs=1e-6)
    assert sd["chb"] > 0.0


def test_campaign_parallel_matches_serial(bench_campaign_spec):
    serial = Campaign(bench_campaign_spec).run()
    parallel = Campaign(bench_campaign_spec, max_workers=4).run()
    assert json.dumps(serial.records) == json.dumps(parallel.records)
