"""FIG7 benchmark — Data Collection Delay Time per visit (Random / Sweep / CHB / TCTP).

Times the full Figure 7 experiment and re-asserts its qualitative shape:
TCTP's DCDT is flat, Random's fluctuates and has the worst average.
"""

import pytest

from repro.experiments.fig7_dcdt import run_fig7


@pytest.mark.benchmark(group="figures")
def test_fig7_dcdt_series(benchmark, bench_settings):
    data = benchmark(run_fig7, bench_settings)

    assert set(data["series"]) == {"random", "sweep", "chb", "b-tctp"}
    assert all(len(s) == 41 for s in data["series"].values())

    # Shape checks straight out of the paper's Figure 7 discussion.
    avg = data["average_dcdt"]
    spread = data["dcdt_spread"]
    assert avg["random"] == max(avg.values()), "Random should have the worst average DCDT"
    assert spread["b-tctp"] < 0.05 * avg["b-tctp"], "TCTP's DCDT should be (near-)constant"
    assert spread["random"] > spread["b-tctp"]
    assert spread["chb"] > spread["b-tctp"]
