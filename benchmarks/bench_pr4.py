"""Regenerate ``BENCH_PR4.json``: composed-pipeline planning overhead.

PR 4 re-expresses every planner as a four-stage composition
(:mod:`repro.planning`).  This benchmark holds that refactor to its two
promises:

1. **byte identity** — for each legacy strategy, the plan produced through
   the composed pipeline equals the plan produced by a frozen copy of the
   pre-refactor fused implementation (kept verbatim in this file), down to
   float bits (compared through ``repr``);
2. **≤ 2% planning overhead** — with all geometry/tour caches disabled (so
   real construction work dominates and nothing is amortised away), planning
   the full strategy suite through the pipeline costs at most 2% more than
   the fused implementations (min-of-rounds timing).

Identity is asserted *before* any number is written.  Run from the
repository root::

    PYTHONPATH=src python benchmarks/bench_pr4.py [--out BENCH_PR4.json]
"""

from __future__ import annotations

import argparse
import itertools
import json
import platform
import statistics
import time

import numpy as np

from repro import __version__
from repro.baselines.base import get_strategy
from repro.baselines.sweep import partition_targets_balanced
from repro.core.btctp import expected_visiting_interval
from repro.core.plan import AlternatingLoopRoute, LoopRoute, PatrolPlan, StochasticRoute
from repro.core.policies import get_policy
from repro.core.rwtctp import build_weighted_recharge_path
from repro.core.start_points import assign_mules_to_start_points, compute_start_points
from repro.core.wtctp import build_weighted_patrolling_path
from repro.energy.model import patrolling_rounds
from repro.geometry.cache import caching_disabled, clear_caches
from repro.geometry.point import centroid
from repro.graphs.hamiltonian import build_hamiltonian_circuit
from repro.graphs.validation import validate_tour
from repro.scenarios import ScenarioSpec


# --------------------------------------------------------------------------- #
# Frozen pre-refactor planners (verbatim fused implementations, PR-3 seed)
# --------------------------------------------------------------------------- #

def legacy_plan_btctp(scenario, *, tsp_method="hull-insertion", improve_tour=False,
                      location_initialization=True):
    coords = scenario.patrol_points()
    tour = build_hamiltonian_circuit(
        coords, method=tsp_method, improve=improve_tour, start=scenario.sink.id)
    validate_tour(tour, expected_nodes=list(coords))
    loop = list(tour.order)
    coords = tour.coordinates
    routes = {}
    metadata = {
        "path_length": tour.length(),
        "tour": loop,
        "expected_visiting_interval": expected_visiting_interval(
            tour.length(), scenario.num_mules, scenario.params.mule_velocity),
    }
    if location_initialization:
        start_points = compute_start_points(loop, coords, scenario.num_mules)
        assignment = assign_mules_to_start_points(
            start_points,
            {m.id: m.position for m in scenario.mules},
            {m.id: m.remaining_energy for m in scenario.mules})
        metadata["start_points"] = [
            {"index": sp.index, "x": sp.position.x, "y": sp.position.y, "arc": sp.arc_length}
            for sp in start_points]
        for mule in scenario.mules:
            sp = assignment.start_point_for(mule.id)
            routes[mule.id] = LoopRoute(mule.id, loop, coords,
                                        entry_index=sp.entry_index, start=sp.position)
    else:
        for mule in scenario.mules:
            nearest = tour.nearest_node(mule.position)
            routes[mule.id] = LoopRoute(mule.id, loop, coords,
                                        entry_index=loop.index(nearest), start=None)
    return PatrolPlan(strategy="B-TCTP", routes=routes, metadata=metadata)


def legacy_plan_chb(scenario, *, tsp_method="hull-insertion", improve_tour=False):
    coords = scenario.patrol_points()
    tour = build_hamiltonian_circuit(
        coords, method=tsp_method, improve=improve_tour, start=scenario.sink.id)
    validate_tour(tour, expected_nodes=list(coords))
    loop = list(tour.order)
    routes = {}
    for mule in scenario.mules:
        nearest = tour.nearest_node(mule.position)
        routes[mule.id] = LoopRoute(mule.id, loop, tour.coordinates,
                                    entry_index=loop.index(nearest), start=None)
    return PatrolPlan(strategy="CHB", routes=routes,
                      metadata={"path_length": tour.length(), "tour": loop})


def legacy_plan_sweep(scenario, *, include_sink_in_groups=True, tsp_method="hull-insertion"):
    center = scenario.field.center if scenario.field is not None else centroid(
        [t.position for t in scenario.targets])
    groups = partition_targets_balanced(list(scenario.targets), scenario.num_mules, center)
    routes, group_info = {}, []
    for mule, group in zip(scenario.mules, groups):
        coords = {t.id: t.position for t in group}
        if include_sink_in_groups or not coords:
            coords[scenario.sink.id] = scenario.sink.position
        start = scenario.sink.id if scenario.sink.id in coords else next(iter(coords))
        tour = build_hamiltonian_circuit(coords, method=tsp_method, start=start)
        loop = list(tour.order)
        entry = loop.index(tour.nearest_node(mule.position))
        routes[mule.id] = LoopRoute(mule.id, loop, tour.coordinates,
                                    entry_index=entry, start=None)
        group_info.append({"mule": mule.id, "targets": [t.id for t in group],
                           "cycle_length": tour.length()})
    return PatrolPlan(strategy="Sweep", routes=routes, metadata={"groups": group_info})


def legacy_plan_random(scenario, *, seed=0, include_sink=True, avoid_repeat=True):
    coords = scenario.patrol_points()
    candidates = [t.id for t in scenario.targets]
    if include_sink:
        candidates.append(scenario.sink.id)
    children = np.random.SeedSequence(seed).spawn(len(scenario.mules))
    routes = {}
    for child, mule in zip(children, scenario.mules):
        routes[mule.id] = StochasticRoute(mule.id, candidates, coords,
                                          rng=np.random.default_rng(child),
                                          avoid_repeat=avoid_repeat)
    return PatrolPlan(strategy="Random", routes=routes,
                      metadata={"seed": seed, "candidates": len(candidates)})


def legacy_plan_wtctp(scenario, *, policy="balanced", tsp_method="hull-insertion",
                      improve_tour=False, location_initialization=True):
    coords = scenario.patrol_points()
    tour = build_hamiltonian_circuit(
        coords, method=tsp_method, improve=improve_tour, start=scenario.sink.id)
    structure, walk = build_weighted_patrolling_path(tour, scenario.weights(), policy)
    loop = list(walk[:-1]) if len(walk) > 1 and walk[0] == walk[-1] else list(walk)
    coords = structure.coordinates
    metadata = {
        "hamiltonian_length": tour.length(),
        "wpp_length": structure.length(),
        "walk": loop,
        "policy": get_policy(policy).name,
        "vip_cycles": {vip.id: [c.length for c in structure.cycles_at(vip.id, walk)]
                       for vip in scenario.vips()},
    }
    routes = {}
    if location_initialization:
        start_points = compute_start_points(loop, coords, scenario.num_mules)
        assignment = assign_mules_to_start_points(
            start_points,
            {m.id: m.position for m in scenario.mules},
            {m.id: m.remaining_energy for m in scenario.mules})
        for mule in scenario.mules:
            sp = assignment.start_point_for(mule.id)
            routes[mule.id] = LoopRoute(mule.id, loop, coords,
                                        entry_index=sp.entry_index, start=sp.position)
    else:
        for mule in scenario.mules:
            nearest = min(range(len(loop)),
                          key=lambda i: mule.position.distance_to(coords[loop[i]]))
            routes[mule.id] = LoopRoute(mule.id, loop, coords, entry_index=nearest, start=None)
    return PatrolPlan(strategy=f"W-TCTP[{get_policy(policy).name}]",
                      routes=routes, metadata=metadata)


def legacy_plan_rwtctp(scenario, *, policy="balanced", tsp_method="hull-insertion",
                       improve_tour=False, location_initialization=True,
                       treat_targets_as_vips=False, vip_weight=2):
    if scenario.recharge_station is None:
        raise ValueError("RW-TCTP requires a scenario with a recharge station")
    coords = scenario.patrol_points()
    tour = build_hamiltonian_circuit(
        coords, method=tsp_method, improve=improve_tour, start=scenario.sink.id)
    weights = scenario.weights()
    if treat_targets_as_vips:
        weights = {n: (max(w, vip_weight) if n != scenario.sink.id else w)
                   for n, w in weights.items()}
    wpp, wpp_walk = build_weighted_patrolling_path(tour, weights, policy)
    wrp, wrp_walk = build_weighted_recharge_path(
        wpp, weights, scenario.recharge_station.id,
        scenario.recharge_station.position, walk_start=scenario.sink.id)
    patrol_loop = wpp_walk[:-1] if wpp_walk[0] == wpp_walk[-1] else list(wpp_walk)
    recharge_loop = wrp_walk[:-1] if wrp_walk[0] == wrp_walk[-1] else list(wrp_walk)
    coords = wrp.coordinates
    model = scenario.params.energy_model
    m_energy = min(m.battery.capacity for m in scenario.mules if m.battery is not None)
    rounds = max(patrolling_rounds(m_energy, wpp.length(), scenario.num_targets, model), 1)
    metadata = {
        "hamiltonian_length": tour.length(),
        "wpp_length": wpp.length(),
        "wrp_length": wrp.length(),
        "patrol_rounds": rounds,
        "policy": get_policy(policy).name,
        "recharge_station": scenario.recharge_station.id,
    }
    routes = {}
    if location_initialization:
        start_points = compute_start_points(patrol_loop, coords, scenario.num_mules)
        assignment = assign_mules_to_start_points(
            start_points,
            {m.id: m.position for m in scenario.mules},
            {m.id: m.remaining_energy for m in scenario.mules})
        for mule in scenario.mules:
            sp = assignment.start_point_for(mule.id)
            routes[mule.id] = AlternatingLoopRoute(
                mule.id, patrol_loop, recharge_loop, coords, patrol_rounds=rounds,
                entry_index=sp.entry_index, start=sp.position)
    else:
        for mule in scenario.mules:
            nearest = min(range(len(patrol_loop)),
                          key=lambda i: mule.position.distance_to(coords[patrol_loop[i]]))
            routes[mule.id] = AlternatingLoopRoute(
                mule.id, patrol_loop, recharge_loop, coords, patrol_rounds=rounds,
                entry_index=nearest, start=None)
    return PatrolPlan(strategy=f"RW-TCTP[{get_policy(policy).name}]",
                      routes=routes, metadata=metadata)


# --------------------------------------------------------------------------- #
# Workload and identity check
# --------------------------------------------------------------------------- #

def scenarios() -> dict:
    # The paper's evaluation sweeps up to 40 targets (Figure 8); benchmarking
    # at that scale keeps real construction work (the quantity planners spend
    # their time on) dominant over per-call dispatch.
    return {
        "plain": ScenarioSpec("uniform", {
            "num_targets": 40, "num_mules": 4, "num_vips": 4, "vip_weight": 3,
        }).build(7),
        "recharge": ScenarioSpec("uniform", {
            "num_targets": 30, "num_mules": 3, "num_vips": 3, "vip_weight": 4,
            "mule_battery": 200_000.0, "with_recharge_station": True,
        }).build(3),
    }


#: (label, scenario key, legacy fn, registry strategy name, kwargs)
SUITE = (
    ("b-tctp", "plain", legacy_plan_btctp, "b-tctp", {}),
    ("b-tctp/no-init", "plain", legacy_plan_btctp, "b-tctp",
     {"location_initialization": False}),
    ("chb", "plain", legacy_plan_chb, "chb", {}),
    ("sweep", "plain", legacy_plan_sweep, "sweep", {}),
    ("random", "plain", legacy_plan_random, "random", {"seed": 11}),
    ("w-tctp/balanced", "plain", legacy_plan_wtctp, "w-tctp", {"policy": "balanced"}),
    ("w-tctp/shortest", "plain", legacy_plan_wtctp, "w-tctp", {"policy": "shortest"}),
    ("rw-tctp", "recharge", legacy_plan_rwtctp, "rw-tctp", {}),
)


def _point(p):
    return None if p is None else (repr(p.x), repr(p.y))


def describe_plan(plan: PatrolPlan) -> tuple:
    """Exact structural description (floats through ``repr``) for identity checks."""
    routes = []
    for mule_id in plan.mule_ids:
        route = plan.route_for(mule_id)
        if isinstance(route, AlternatingLoopRoute):
            routes.append(("alt", mule_id, tuple(route.patrol_loop),
                           tuple(route.recharge_loop), route.patrol_rounds,
                           route.entry_index, _point(route.start_position())))
        elif isinstance(route, LoopRoute):
            routes.append(("loop", mule_id, tuple(route.loop), route.entry_index,
                           _point(route.start_position()), repr(route.lap_length())))
        else:
            draws = tuple(itertools.islice(route.waypoints(), 64))
            routes.append(("stochastic", mule_id, tuple(route.candidates),
                           route.avoid_repeat, draws))
    return (plan.strategy, tuple(routes), repr(sorted(plan.metadata.items(), key=lambda kv: kv[0])))


def assert_byte_identical() -> int:
    scens = scenarios()
    checked = 0
    for label, key, legacy_fn, strategy, kwargs in SUITE:
        legacy = describe_plan(legacy_fn(scens[key].fresh_copy(), **kwargs))
        composed = describe_plan(get_strategy(strategy, **kwargs).plan(scens[key].fresh_copy()))
        assert legacy == composed, f"{label}: composed plan differs from the fused implementation"
        checked += 1
    return checked


# --------------------------------------------------------------------------- #
# Timing
# --------------------------------------------------------------------------- #

def build_planners(scens) -> list:
    """``(scenario, legacy fn, kwargs, composed planner)`` per suite entry.

    Planners are constructed once, outside the timed region: strategy
    *construction* (`get_strategy`) is the unchanged registry path shared by
    both eras, so timing it would only dilute the quantity under test — the
    per-plan cost of the staged pipeline vs the fused method bodies.
    """
    return [
        (scens[key], legacy_fn, kwargs, get_strategy(strategy, **kwargs))
        for _label, key, legacy_fn, strategy, kwargs in SUITE
    ]


def plan_suite(planners, *, legacy: bool) -> None:
    for scenario, legacy_fn, kwargs, planner in planners:
        if legacy:
            legacy_fn(scenario, **kwargs)
        else:
            planner.plan(scenario)


def timeit_interleaved(fn_a, fn_b, *, warmup: int, rounds: int) -> tuple[dict, dict, list]:
    """Time two workloads pairwise so machine drift hits both equally.

    Sequential windows are hostile to a tight overhead bound: CPU frequency
    scaling or a noisy neighbour during one window skews the ratio by far
    more than the effect under test.  Each round times both sides
    back-to-back (swapping the in-pair order every round); the per-round
    *paired differences* cancel round-level drift, and their median is robust
    to GC/scheduler spikes.  Returned third: the list of paired differences
    ``b - a`` per round.
    """
    for _ in range(warmup):
        fn_a()
        fn_b()

    def one(fn) -> float:
        t0 = time.perf_counter()
        fn()
        return time.perf_counter() - t0

    samples_a: list[float] = []
    samples_b: list[float] = []
    diffs: list[float] = []
    for i in range(rounds):
        if i % 2 == 0:
            a = one(fn_a)
            b = one(fn_b)
        else:
            b = one(fn_b)
            a = one(fn_a)
        samples_a.append(a)
        samples_b.append(b)
        diffs.append(b - a)

    def stats(samples: list[float]) -> dict:
        return {
            "min_s": min(samples),
            "median_s": statistics.median(samples),
            "mean_s": statistics.mean(samples),
            "rounds": rounds,
        }

    return stats(samples_a), stats(samples_b), diffs


MAX_OVERHEAD = 0.02


def main() -> None:
    parser = argparse.ArgumentParser(description=__doc__)
    parser.add_argument("--out", default="BENCH_PR4.json")
    parser.add_argument("--rounds", type=int, default=30)
    parser.add_argument("--warmup", type=int, default=3)
    args = parser.parse_args()

    checked = assert_byte_identical()
    print(f"byte identity: {checked} strategy variants identical to the fused planners")

    # Caches off: every round redoes the real O(n^2)/O(n^3) construction, so
    # the measured delta is pipeline dispatch, not cache accounting.
    scens = scenarios()
    planners = build_planners(scens)
    clear_caches()
    with caching_disabled():
        legacy, composed, diffs = timeit_interleaved(
            lambda: plan_suite(planners, legacy=True),
            lambda: plan_suite(planners, legacy=False),
            warmup=args.warmup, rounds=args.rounds,
        )

    # Median paired difference over the legacy floor: robust to drift/spikes.
    overhead = statistics.median(diffs) / legacy["min_s"]
    print(f"legacy   min {legacy['min_s'] * 1e3:8.2f} ms")
    print(f"composed min {composed['min_s'] * 1e3:8.2f} ms")
    print(f"median paired diff {statistics.median(diffs) * 1e6:+8.1f} us")
    print(f"overhead {overhead * 100:+.2f}%  (allowed: +{MAX_OVERHEAD * 100:.0f}%)")
    assert overhead <= MAX_OVERHEAD, (
        f"composed pipeline adds {overhead * 100:.2f}% planning overhead "
        f"(> {MAX_OVERHEAD * 100:.0f}% allowed)"
    )

    payload = {
        "benchmark": "pr4-composed-pipeline-overhead",
        "library_version": __version__,
        "python": platform.python_version(),
        "platform": platform.platform(),
        "identity": {"strategies_checked": checked, "byte_identical": True},
        "suite": [label for label, *_ in SUITE],
        "legacy_fused": legacy,
        "composed_pipeline": composed,
        "overhead_fraction": overhead,
        "max_allowed_fraction": MAX_OVERHEAD,
    }
    with open(args.out, "w") as fh:
        json.dump(payload, fh, indent=2, sort_keys=True)
        fh.write("\n")
    print(f"wrote {args.out}")


if __name__ == "__main__":
    main()
