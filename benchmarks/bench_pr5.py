"""Regenerate ``BENCH_PR5.json``: warm-resume speedup of the persistent result store.

Runs the campaign benchmark workload (the two-strategy, three-replication
quick campaign of ``benchmarks/test_bench_campaign.py``) against a temporary
:class:`repro.store.ResultStore` in two configurations:

* **cold** — the store is cleared before every round, so every cell
  fingerprints, misses, simulates and writes back (a cold resumable run);
* **warm** — the store is fully populated, so every cell is served from the
  cache and **zero cells execute**.

Before any timing, the byte-identity guarantee is asserted: the warm-resumed
records must serialise identically to the cold run's (and to a store-less
run), and the warm run must report zero misses.  The headline number is
``cold.median_s / warm.median_s`` — expected well above the 5x floor, since
a warm resume does no simulation at all.  Run from the repository root::

    PYTHONPATH=src python benchmarks/bench_pr5.py [--out BENCH_PR5.json]
"""

from __future__ import annotations

import argparse
import json
import platform
import statistics
import tempfile
import time

from repro import __version__
from repro.experiments import ExperimentSettings
from repro.runner import Campaign, CampaignSpec, RunSpec
from repro.sim.engine import SimulationConfig
from repro.store import ResultStore

MIN_EXPECTED_SPEEDUP = 5.0


def campaign_spec() -> CampaignSpec:
    settings = ExperimentSettings.quick(replications=3, horizon=25_000.0,
                                        num_targets=12, num_mules=3)
    return CampaignSpec(
        base=RunSpec(
            strategy="b-tctp",
            scenario=settings.scenario_config(),
            sim=SimulationConfig(horizon=settings.horizon, track_energy=False),
            seed=settings.base_seed,
        ),
        grid={"strategy": ["chb", "b-tctp"]},
        replications=settings.replications,
    )


def timeit(fn, *, warmup: int = 2, rounds: int = 25) -> dict:
    for _ in range(warmup):
        fn()
    samples = []
    for _ in range(rounds):
        t0 = time.perf_counter()
        fn()
        samples.append(time.perf_counter() - t0)
    return {
        "median_s": statistics.median(samples),
        "mean_s": statistics.mean(samples),
        "min_s": min(samples),
        "rounds": rounds,
    }


def main() -> None:
    parser = argparse.ArgumentParser(description=__doc__)
    parser.add_argument("--out", default="BENCH_PR5.json")
    parser.add_argument("--rounds", type=int, default=25)
    args = parser.parse_args()

    spec = campaign_spec()
    store = ResultStore(tempfile.mkdtemp(prefix="repro-bench-store-"))

    # Byte-identity first: store-less, cold-through-store and warm-resumed
    # records must all serialise identically, and the warm run must not
    # execute a single cell.
    plain = Campaign(spec).run(store=False)
    cold = Campaign(spec).run(store=store)
    warm = Campaign(spec).run(store=store)
    num_cells = len(spec.cells())
    if warm.metadata["store"]["misses"] != 0 or warm.metadata["store"]["hits"] != num_cells:
        raise SystemExit(f"warm resume executed cells: {warm.metadata['store']}")
    payloads = [json.dumps(r.records, sort_keys=True, allow_nan=True)
                for r in (plain, cold, warm)]
    identical = payloads[0] == payloads[1] == payloads[2]
    if not identical:
        raise SystemExit("records diverged between store-less, cold and warm runs")

    def run_cold():
        store.clear()
        Campaign(spec).run(store=store)

    def run_warm():
        Campaign(spec).run(store=store)

    cold_timing = timeit(run_cold, rounds=args.rounds)
    Campaign(spec).run(store=store)  # repopulate after the last clear
    warm_timing = timeit(run_warm, rounds=args.rounds)
    speedup = cold_timing["median_s"] / warm_timing["median_s"]
    if speedup < MIN_EXPECTED_SPEEDUP:
        raise SystemExit(
            f"warm-resume speedup {speedup:.2f}x below the {MIN_EXPECTED_SPEEDUP}x floor"
        )

    payload = {
        "benchmark": "benchmarks/test_bench_campaign.py workload through a ResultStore",
        "workload": {
            "strategies": ["chb", "b-tctp"],
            "replications": 3,
            "num_targets": 12,
            "num_mules": 3,
            "horizon": 25_000.0,
            "num_cells": num_cells,
        },
        "cold": {
            "description": "store cleared per round: fingerprint + simulate + write-back",
            **cold_timing,
        },
        "warm": {
            "description": "fully populated store: every cell served from disk, 0 executed",
            **warm_timing,
        },
        "speedup_median": speedup,
        "min_expected_speedup": MIN_EXPECTED_SPEEDUP,
        "records_byte_identical": identical,
        "warm_misses": warm.metadata["store"]["misses"],
        "environment": {
            "python": platform.python_version(),
            "platform": platform.platform(),
            "library_version": __version__,
        },
    }
    with open(args.out, "w") as fh:
        json.dump(payload, fh, indent=2, sort_keys=True)
        fh.write("\n")
    print(f"warm-resume speedup (median): {speedup:.1f}x -> {args.out}")


if __name__ == "__main__":
    main()
