"""Shared settings for the benchmark harness.

Each ``test_bench_*`` module regenerates one figure (or extension experiment)
of the paper.  The benchmark fixture times the full experiment run; the bodies
additionally assert the figure's qualitative shape so a benchmark run doubles
as a reproduction check.  ``BENCH_SETTINGS`` keeps the runs small enough to
iterate on (a handful of replications, shorter horizon); pass ``--full`` style
settings through ``examples/reproduce_paper.py`` or the CLI for the paper's
full 20-replication protocol.
"""

from __future__ import annotations

import pytest

from repro.experiments import ExperimentSettings


@pytest.fixture(scope="session")
def bench_settings() -> ExperimentSettings:
    """Small but representative experiment settings used by every benchmark."""
    return ExperimentSettings.quick(replications=3, horizon=25_000.0,
                                    num_targets=12, num_mules=3)
