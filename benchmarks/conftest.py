"""Shared settings for the benchmark harness.

Each ``test_bench_*`` module regenerates one figure (or extension experiment)
of the paper.  The benchmark fixture times the full experiment run; the bodies
additionally assert the figure's qualitative shape so a benchmark run doubles
as a reproduction check.  ``bench_settings`` keeps the runs small enough to
iterate on (a handful of replications, shorter horizon); pass ``--full`` style
settings through ``examples/reproduce_paper.py`` or the CLI for the paper's
full 20-replication protocol.

The experiments all execute through the :mod:`repro.runner` campaign API, so
``bench_campaign_spec`` additionally exposes a small strategy-sweep campaign
for benchmarking the executor itself.
"""

from __future__ import annotations

import pytest

from repro.experiments import ExperimentSettings
from repro.runner import CampaignSpec, RunSpec
from repro.sim.engine import SimulationConfig


@pytest.fixture(scope="session")
def bench_settings() -> ExperimentSettings:
    """Small but representative experiment settings used by every benchmark."""
    return ExperimentSettings.quick(replications=3, horizon=25_000.0,
                                    num_targets=12, num_mules=3)


@pytest.fixture(scope="session")
def bench_campaign_spec(bench_settings: ExperimentSettings) -> CampaignSpec:
    """A small strategy-sweep campaign mirroring ``bench_settings``."""
    return CampaignSpec(
        base=RunSpec(
            strategy="b-tctp",
            scenario=bench_settings.scenario_config(),
            sim=SimulationConfig(horizon=bench_settings.horizon, track_energy=False),
            seed=bench_settings.base_seed,
        ),
        grid={"strategy": ["chb", "b-tctp"]},
        replications=bench_settings.replications,
    )


@pytest.fixture(scope="session")
def bench_campaign_spec_baseline(bench_campaign_spec: CampaignSpec) -> CampaignSpec:
    """The same campaign with the analytic fast path switched off.

    Benchmarks pair this with the caches disabled (see
    ``test_bench_campaign``) to time the pre-fast-path serial code path;
    ``BENCH_PR3.json`` records the measured ratio.
    """
    import dataclasses

    base = bench_campaign_spec.base
    return dataclasses.replace(
        bench_campaign_spec,
        base=dataclasses.replace(base, sim=dataclasses.replace(base.sim, fast_path=False)),
    )
